"""Communication-layer benchmarks: phase analysis and batched pricing.

Not a paper artifact — these guard the columnar CommPhase analysis and
the machines' ``comm_time_batch`` pricers, the two layers the vector
engine leans on.  A regression here inflates every figure sweep.
"""

import numpy as np

from repro.calibration.microbench import random_h_relation
from repro.core.relations import CommPhase, merge_phases
from repro.machines import CM5, GCel, MasParMP1


def _fresh_phase(ph: CommPhase) -> CommPhase:
    """Copy a phase so cached_property analysis runs again."""
    return CommPhase(P=ph.P, src=ph.src, dst=ph.dst, count=ph.count,
                     msg_bytes=ph.msg_bytes, step=ph.step,
                     stagger=ph.stagger)


def test_phase_analysis_columnar(benchmark):
    """The full per-phase summary battery on a P=1024 8-relation."""
    rng = np.random.default_rng(0)
    base = random_h_relation(1024, 8, rng)

    def analyse():
        ph = _fresh_phase(base)
        return (ph.h, ph.active_procs, ph.is_partial_permutation,
                ph.cube_bit, ph.max_fan_in, ph.relation,
                ph.dest_cluster_loads(16).sum())

    benchmark(analyse)


def test_phase_step_split(benchmark):
    """Splitting a 32-step schedule into sub-phases (single-port route)."""
    rng = np.random.default_rng(1)
    P, steps = 1024, 32
    src = np.tile(np.arange(P), steps)
    dst = np.concatenate([rng.permutation(P) for _ in range(steps)])
    step = np.repeat(np.arange(steps), P)
    n = P * steps
    base = CommPhase(P=P, src=src, dst=dst,
                     count=np.ones(n, dtype=np.int64),
                     msg_bytes=np.full(n, 8, dtype=np.int64), step=step)
    benchmark(lambda: len(_fresh_phase(base).split_steps()))


def test_merge_phases_columnar(benchmark):
    rng = np.random.default_rng(2)
    parts = [random_h_relation(1024, 2, rng) for _ in range(16)]
    benchmark(lambda: merge_phases(parts).total_messages)


def test_maspar_comm_time_batch(benchmark):
    """Batched pricing of 64 P=1024 phases (8 distinct, interned)."""
    rng = np.random.default_rng(3)
    uniq = [random_h_relation(1024, 4, rng) for _ in range(8)]
    phases = [uniq[i % len(uniq)] for i in range(64)]

    def price():
        m = MasParMP1(seed=0)
        pricer = m.comm_time_batch(phases)
        clocks = np.zeros(1024)
        for i in range(len(phases)):
            clocks = pricer.comm_time(i, clocks)
        return clocks

    benchmark(price)


def test_gcel_comm_time_batch(benchmark):
    rng = np.random.default_rng(4)
    uniq = [random_h_relation(64, 16, rng) for _ in range(8)]
    phases = [uniq[i % len(uniq)] for i in range(64)]

    def price():
        m = GCel(seed=0)
        pricer = m.comm_time_batch(phases)
        clocks = np.zeros(64)
        for i in range(len(phases)):
            clocks = pricer.comm_time(i, clocks)
        return clocks

    benchmark(price)


def test_cm5_comm_time_batch(benchmark):
    rng = np.random.default_rng(5)
    uniq = [random_h_relation(64, 16, rng) for _ in range(8)]
    phases = [uniq[i % len(uniq)] for i in range(64)]

    def price():
        m = CM5(seed=0)
        pricer = m.comm_time_batch(phases)
        clocks = np.zeros(64)
        for i in range(len(phases)):
            clocks = pricer.comm_time(i, clocks)
        return clocks

    benchmark(price)
