"""Benchmarks regenerating the APSP figures: Figs. 12, 13 and 15."""

SCALE = 0.3


def test_fig12(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig12", scale=SCALE)
    assert result.passed


def test_fig13(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig13", scale=SCALE)
    assert result.passed


def test_fig15(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig15", scale=SCALE)
    assert result.passed
