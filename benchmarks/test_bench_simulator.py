"""Engine-level benchmarks: raw simulator throughput.

Not a paper artifact — these guard the harness itself against
performance regressions (pattern analysis, machine pricing, SPMD
scheduling), which directly bound how large the figure sweeps can be.
"""

import numpy as np

from repro.algorithms import bitonic, matmul
from repro.calibration.microbench import random_h_relation, time_phase
from repro.machines import CM5, GCel, MasParMP1
from repro.simulator import run_spmd


def test_engine_superstep_throughput(benchmark):
    machine = CM5(seed=0)

    def prog(ctx):
        for step in range(50):
            ctx.put((ctx.rank + 1) % ctx.P, step, nbytes=8, tag=step)
            yield ctx.sync()
            ctx.get(tag=step)

    benchmark(lambda: run_spmd(machine, prog))


def test_maspar_phase_pricing(benchmark):
    machine = MasParMP1(seed=0)
    rng = np.random.default_rng(0)
    phases = [random_h_relation(1024, 4, rng) for _ in range(10)]
    benchmark(lambda: [time_phase(machine, ph) for ph in phases])


def test_gcel_phase_pricing(benchmark):
    machine = GCel(seed=0)
    rng = np.random.default_rng(0)
    phases = [random_h_relation(64, 64, rng) for _ in range(10)]
    benchmark(lambda: [time_phase(machine, ph) for ph in phases])


def test_matmul_end_to_end(benchmark):
    machine = CM5(seed=0)
    benchmark(lambda: matmul.run(machine, 64, variant="bpram", seed=0))


def test_bitonic_end_to_end(benchmark):
    machine = GCel(seed=0)
    benchmark(lambda: bitonic.run(machine, 256, variant="bpram", seed=0))
