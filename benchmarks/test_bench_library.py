"""Benchmarks regenerating the library-comparison figures (Figs. 19, 20)
and the ablations."""

SCALE = 0.3


def test_fig19(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig19", scale=SCALE)
    assert result.passed


def test_fig20(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig20", scale=SCALE)
    assert result.passed


def test_abl_stagger(benchmark, run_experiment):
    result = benchmark(run_experiment, "abl-stagger", scale=SCALE)
    assert result.passed


def test_abl_msgsize(benchmark, run_experiment):
    result = benchmark(run_experiment, "abl-msgsize", scale=SCALE)
    assert result.passed


def test_abl_sync(benchmark, run_experiment):
    result = benchmark(run_experiment, "abl-sync", scale=SCALE)
    assert result.passed


def test_abl_oversample(benchmark, run_experiment):
    result = benchmark(run_experiment, "abl-oversample", scale=SCALE)
    assert result.passed


def test_ext_models(benchmark, run_experiment):
    result = benchmark(run_experiment, "ext-models", scale=SCALE)
    assert result.passed


def test_ext_sensitivity(benchmark, run_experiment):
    result = benchmark(run_experiment, "ext-sensitivity", scale=SCALE)
    assert result.passed


def test_ext_lu(benchmark, run_experiment):
    result = benchmark(run_experiment, "ext-lu", scale=SCALE)
    assert result.passed


def test_ext_primitives(benchmark, run_experiment):
    result = benchmark(run_experiment, "ext-primitives", scale=SCALE)
    assert result.passed


def test_ext_t800(benchmark, run_experiment):
    result = benchmark(run_experiment, "ext-t800", scale=SCALE)
    assert result.passed


def test_ext_misranking(benchmark, run_experiment):
    result = benchmark(run_experiment, "ext-misranking", scale=SCALE)
    assert result.passed
