"""Benchmarks regenerating the sorting figures:
Figs. 5, 6, 10, 11, 17 and 18."""

SCALE = 0.3


def test_fig5(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig5", scale=SCALE)
    assert result.passed


def test_fig6(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig6", scale=SCALE)
    assert result.passed


def test_fig10(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig10", scale=SCALE)
    assert result.passed


def test_fig11(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig11", scale=SCALE)
    assert result.passed


def test_fig17(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig17", scale=SCALE)
    assert result.passed


def test_fig18(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig18", scale=SCALE)
    assert result.passed


def test_abl_radix(benchmark, run_experiment):
    result = benchmark(run_experiment, "abl-radix", scale=SCALE)
    assert result.passed
