"""Benchmark configuration.

Each benchmark regenerates one paper table/figure (at a reduced scale so
the suite stays fast) and asserts its paper-claim checks still pass —
pytest-benchmark times the *simulation harness* (wall clock); the
scientific output is the virtual-time series inside the result.
"""

from __future__ import annotations

import pytest

from repro.experiments import get


@pytest.fixture
def run_experiment():
    """Run a registered experiment and assert its checks."""

    def _run(exp_id: str, *, scale: float, seed: int = 0):
        result = get(exp_id).run(scale=scale, seed=seed)
        failed = [c for c in result.checks if not c.passed]
        assert not failed, (
            f"{exp_id} checks failed: " + "; ".join(str(c) for c in failed))
        return result

    return _run
