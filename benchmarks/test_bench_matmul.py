"""Benchmarks regenerating the matrix-multiplication figures:
Figs. 3, 4, 8, 9 and 16."""

SCALE = 0.3


def test_fig3(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig3", scale=SCALE)
    assert result.passed


def test_fig4(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig4", scale=SCALE)
    assert result.passed


def test_fig8(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig8", scale=SCALE)
    assert result.passed


def test_fig9(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig9", scale=SCALE)
    assert result.passed


def test_fig16(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig16", scale=SCALE)
    assert result.passed


def test_abl_layout(benchmark, run_experiment):
    result = benchmark(run_experiment, "abl-layout", scale=SCALE)
    assert result.passed
