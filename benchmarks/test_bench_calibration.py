"""Benchmarks regenerating the microbenchmark artifacts:
Table 1 and Figs. 1, 2, 7, 14."""

SCALE = 0.3


def test_table1(benchmark, run_experiment):
    result = benchmark(run_experiment, "table1", scale=SCALE)
    assert result.passed


def test_fig1(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig1", scale=SCALE)
    assert result.get("fit g*h+L").ys[-1] > result.get("fit g*h+L").ys[0]


def test_fig2(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig2", scale=SCALE)
    assert result.passed


def test_fig7(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig7", scale=SCALE)
    assert result.passed


def test_fig14(benchmark, run_experiment):
    result = benchmark(run_experiment, "fig14", scale=SCALE)
    assert result.passed
