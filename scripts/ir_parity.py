#!/usr/bin/env python
"""CI gate: record → serialise → replay parity for the step-program IR.

For a spread of (machine, algorithm) configurations this script

1. records the step program and prices it (``engine="ir"``, fresh
   store), writing the canonical blob to disk,
2. reloads the blob in a second fresh store (the "new process" path,
   checksum verification included), re-serialises it and **diffs the
   bytes** — canonical encoding means any drift is a bug,
3. replays the reloaded program and compares clocks, trace and per-rank
   results **bit-for-bit** against the generator engine's run of the
   same configuration.

Exit code 0 only if every configuration passes all three.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.algorithms import apsp, bitonic, lu, matmul, radix, samplesort  # noqa: E402
from repro.machines import CM5, GCel, MasParMP1, ModernCluster, T800Grid  # noqa: E402
from repro.simulator.ir import (IRStore, _decode_blob, _encode_blob,  # noqa: E402
                                StepProgram, ir_store_scope)

MACHINES = {"maspar": MasParMP1, "gcel": GCel, "cm5": CM5, "t800": T800Grid,
            "modern": ModernCluster}

CASES = [
    ("matmul", lambda m, e: matmul.run(m, 24, P=8, seed=3, engine=e)),
    ("bitonic", lambda m, e: bitonic.run(m, 256, P=16, seed=5, engine=e)),
    ("lu", lambda m, e: lu.run(m, 32, P=16, seed=7, engine=e)),
    ("apsp", lambda m, e: apsp.run(m, 24, P=16, seed=11, engine=e)),
    ("samplesort", lambda m, e: samplesort.run(m, 512, P=16, seed=13,
                                               engine=e)),
    ("radix", lambda m, e: radix.run(m, 256, P=16, seed=17, engine=e)),
]


def identical(a, b) -> bool:
    if a.time_us != b.time_us or not np.array_equal(a.clocks, b.clocks):
        return False
    if len(a.returns) != len(b.returns):
        return False
    for x, y in zip(a.returns, b.returns):
        if not np.array_equal(np.asarray(x), np.asarray(y)):
            return False
    if len(a.trace.supersteps) != len(b.trace.supersteps):
        return False
    for sa, sb in zip(a.trace.supersteps, b.trace.supersteps):
        if (sa.label != sb.label or sa.measured_us != sb.measured_us
                or sa.work != sb.work):
            return False
    return True


def main() -> int:
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "ir"
        for mname, cls in sorted(MACHINES.items()):
            for aname, case in CASES:
                tag = f"{mname}/{aname}"
                oracle = case(cls(seed=1), "generator")

                with ir_store_scope(IRStore(root)) as store:
                    recorded = case(cls(seed=1), "ir")
                    assert store.recorded == 1, tag

                blobs = [p for p in root.rglob("*.irp")]
                if len(blobs) != 1:
                    print(f"FAIL {tag}: expected 1 blob, found {len(blobs)}")
                    failures += 1
                    continue
                raw = blobs[0].read_bytes()
                again = _encode_blob(
                    StepProgram.from_doc(_decode_blob(raw)).to_doc())
                if again != raw:
                    print(f"FAIL {tag}: reserialised blob differs "
                          f"({len(again)} vs {len(raw)} bytes)")
                    failures += 1

                with ir_store_scope(IRStore(root)) as store:
                    replayed = case(cls(seed=1), "ir")
                    if store.disk_hits != 1:
                        print(f"FAIL {tag}: blob not loaded from disk")
                        failures += 1

                for other, what in ((recorded, "record"),
                                    (replayed, "disk replay")):
                    if not identical(oracle, other):
                        print(f"FAIL {tag}: {what} differs from generator")
                        failures += 1

                for p in blobs:
                    p.unlink()
                print(f"ok   {tag}  ({len(raw)} byte blob)")
    if failures:
        print(f"{failures} parity failure(s)")
        return 1
    print("ir-parity: all configurations bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
