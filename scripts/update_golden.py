#!/usr/bin/env python
"""Regenerate the golden-figure snapshots under ``tests/golden/``.

Run after an *intentional* change to simulated series:

    PYTHONPATH=src python scripts/update_golden.py

and commit the resulting JSON together with the code change.  The golden
tests (``tests/test_golden.py``) assert bit-identical reproduction of
these snapshots, so an unintentional diff here means a determinism or
behaviour regression.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.ablation import AblateRequest, ablate  # noqa: E402
from repro.bounds import BoundsRequest, bounds  # noqa: E402
from repro.experiments import get  # noqa: E402

#: (experiment id, scale, seed) — a fast subset covering both machines,
#: calibration fits, an algorithm figure, and the scenario-diversity
#: extension (radix sort priced under every model, BSF included).
GOLDEN = [
    ("fig1", 0.3, 0),
    ("fig4", 0.3, 0),
    ("fig14", 0.3, 0),
    ("table1", 0.3, 0),
    ("ext-radix", 0.3, 0),
]

#: (scale, seed) of the pinned full-matrix ablation ranking.
ABLATION_GOLDEN = (0.3, 0)

#: (scale, seed) of the pinned optimality (bounds) ranking.
BOUNDS_GOLDEN = (0.3, 0)


def main() -> int:
    out_dir = Path(__file__).resolve().parents[1] / "tests" / "golden"
    out_dir.mkdir(parents=True, exist_ok=True)
    for exp_id, scale, seed in GOLDEN:
        result = get(exp_id).run(scale=scale, seed=seed)
        doc = {"scale": scale, "seed": seed, "result": result.to_dict()}
        path = out_dir / f"{exp_id}.json"
        path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path} ({'PASS' if result.passed else 'FAIL'})")

    scale, seed = ABLATION_GOLDEN
    report = ablate(AblateRequest(scale=scale, seed=seed, use_cache=False))
    doc = {"scale": scale, "seed": seed, "report": report}
    path = out_dir / "ablate.json"
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    ranked = ", ".join(e["component"] for e in report["ranking"])
    print(f"wrote {path} (ranking: {ranked})")

    scale, seed = BOUNDS_GOLDEN
    report = bounds(BoundsRequest(scale=scale, seed=seed, use_cache=False))
    doc = {"scale": scale, "seed": seed, "report": report}
    path = out_dir / "bounds.json"
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    worst = report["ranking"][0]
    print(f"wrote {path} (max ratio: {worst['ratio']:.2f}x on "
          f"{worst['cell']}, {len(report['summary']['flagged'])} flagged)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
