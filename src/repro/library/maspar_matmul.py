"""The MasPar ``matmul`` intrinsic (paper §7, Fig. 19).

The MasPar Programming Language ships a hand-tuned ``matmul`` that
"squeezes the highest performance from this architecture": the paper
measures 61.7 Mflops at ``N = 700`` on the 1K MP-1 (peak: 75 Mflops,
single precision), against 39.9 Mflops for the model-derived MP-BPRAM
implementation — a 35% penalty for portability, which the paper calls
acceptable.

We model the intrinsic's throughput with a saturating curve calibrated to
the published point and the machine peak; small matrices are dominated by
per-call overhead, exactly like any vendor BLAS.
"""

from __future__ import annotations

from ..core.errors import ModelError

__all__ = ["mflops", "time_us", "PEAK_MFLOPS"]

#: 1K MasPar MP-1 peak, single precision (paper §7).
PEAK_MFLOPS = 75.0

#: saturation constant calibrated so mflops(700) ~= 61.7.
_HALF_N2 = 49_000.0
_SCALE = 68.0


def mflops(N: int) -> float:
    """Sustained Mflops of the ``matmul`` intrinsic for ``N x N``."""
    if N <= 0:
        raise ModelError("matrix dimension must be positive")
    return _SCALE * N * N / (N * N + _HALF_N2)


def time_us(N: int) -> float:
    """Running time of the intrinsic, counting ``2 N^3`` flops."""
    return 2.0 * N ** 3 / mflops(N)
