"""CMSSL ``gen_matrix_mult`` on the CM-5 (paper §7, Fig. 20).

Compiled for the scalar (no vector units) model — the configuration the
paper compares against — ``gen_matrix_mult`` "never achieves more than
151 Mflops", well below the model-derived MP-BPRAM implementation's 372
Mflops (65% of the 576 Mflop scalar peak).  Compiled for the vector-units
model it reaches 1016 Mflops at ``N = 512`` (the paper's caveat, which we
expose as :func:`mflops_vector_units`).
"""

from __future__ import annotations

from ..core.errors import ModelError

__all__ = ["mflops", "mflops_vector_units", "time_us", "SCALAR_PEAK_MFLOPS"]

#: 64 nodes x 9 Mflops scalar peak (paper §7: "64 * 9 = 576 Mflops").
SCALAR_PEAK_MFLOPS = 576.0

_SCALE = 160.0
_HALF_N2 = 17_000.0

_VU_SCALE = 1180.0
_VU_HALF_N2 = 42_000.0


def mflops(N: int) -> float:
    """Sustained Mflops of scalar ``gen_matrix_mult`` (caps at 151)."""
    if N <= 0:
        raise ModelError("matrix dimension must be positive")
    return min(151.0, _SCALE * N * N / (N * N + _HALF_N2))


def mflops_vector_units(N: int) -> float:
    """The vector-units build (1016 Mflops at N = 512, paper §7)."""
    if N <= 0:
        raise ModelError("matrix dimension must be positive")
    return _VU_SCALE * N * N / (N * N + _VU_HALF_N2)


def time_us(N: int) -> float:
    """Running time of the scalar build, counting ``2 N^3`` flops."""
    return 2.0 * N ** 3 / mflops(N)
