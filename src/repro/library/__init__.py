"""Simulated vendor library routines (the paper's Section 7 comparators)."""

from . import cmssl, maspar_matmul

__all__ = ["maspar_matmul", "cmssl"]
