"""Per-experiment cProfile capture (``repro run --profile``).

This mechanises the workflow that found the engine hot spots: run one
experiment under cProfile, dump the raw ``pstats`` file where later
sessions can load it (``python -m pstats <file>``), and print the
top cumulative-time entries.  Dumps live under ``<cache-dir>/profiles``
so they ride along with the result cache instead of littering the tree.
"""

from __future__ import annotations

import cProfile
import pstats
from pathlib import Path

from ..validation.series import ExperimentResult

__all__ = ["profile_path", "profiled_run", "render_profile",
           "render_ir_phases"]


def profile_path(profile_dir: str | Path, exp_id: str, *, scale: float,
                 seed: int) -> Path:
    tag = f"{exp_id}_s{scale:g}_r{seed}".replace("/", "_")
    return Path(profile_dir) / f"{tag}.pstats"


def profiled_run(exp_id: str, *, scale: float = 1.0, seed: int = 0,
                 profile_dir: str | Path) -> tuple[ExperimentResult, Path]:
    """Run one experiment under cProfile; dump stats, return both."""
    from ..experiments import get

    path = profile_path(profile_dir, exp_id, scale=scale, seed=seed)
    path.parent.mkdir(parents=True, exist_ok=True)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = get(exp_id).run(scale=scale, seed=seed)
    finally:
        profiler.disable()
        profiler.dump_stats(path)
    return result, path


def render_profile(path: str | Path, *, top: int = 12) -> str:
    """The top cumulative-time lines of a dumped profile, as text."""
    import io

    buf = io.StringIO()
    stats = pstats.Stats(str(path), stream=buf)
    stats.sort_stats("cumulative").print_stats(top)
    return buf.getvalue()


#: IR engine phase attribution: (section title, filename regex restricting
#: the profile to that phase's module).
_IR_SECTIONS = (
    ("ir record (pass-1 execution + interning)", r"simulator[/\\]lower\.py"),
    ("ir replay (pricing)", r"simulator[/\\]replay\.py"),
)


def render_ir_phases(path: str | Path, *, top: int = 6) -> str:
    """Record-vs-replay attribution of an ``engine="ir"`` profile.

    Two cProfile sections restricted to the lowering and replay modules:
    the ``cumtime`` of ``run_lowered`` (record side: pass-1 program
    execution, interning, store traffic, data passes) and of ``replay``
    (pricing).  Regressions then point at a phase, not just a total.
    Empty sections simply mean the experiment never took the IR path.
    """
    import io

    buf = io.StringIO()
    stats = pstats.Stats(str(path), stream=buf)
    stats.sort_stats("cumulative")
    for title, pattern in _IR_SECTIONS:
        buf.write(f"--- {title} ---\n")
        stats.print_stats(pattern, top)
    return buf.getvalue()
