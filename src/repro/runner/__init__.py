"""Parallel, cache-aware experiment execution (``repro run --jobs N``)."""

from .cache import CacheStats, ResultCache, default_cache_root
from .fingerprint import clear_fingerprint_memo, experiment_key, source_fingerprint
from .pool import RunOutcome, resolve_ids, run_experiments

__all__ = [
    "CacheStats",
    "ResultCache",
    "default_cache_root",
    "experiment_key",
    "source_fingerprint",
    "clear_fingerprint_memo",
    "RunOutcome",
    "resolve_ids",
    "run_experiments",
]
