"""Parallel, cache-aware experiment execution (``repro run --jobs N``)."""

from .bench import (
    BenchRecord,
    QUICK_IDS,
    append_trajectory,
    check_budgets,
    compare_last_runs,
    compare_last_service_runs,
    parse_budgets,
    render_bench,
    run_bench,
)
from .cache import CacheStats, ResultCache, default_cache_root
from .fingerprint import clear_fingerprint_memo, experiment_key, source_fingerprint
from .pool import RunOutcome, resolve_ids, run_experiments
from .profile import (profile_path, profiled_run, render_ir_phases,
                      render_profile)

__all__ = [
    "BenchRecord",
    "QUICK_IDS",
    "append_trajectory",
    "check_budgets",
    "compare_last_runs",
    "compare_last_service_runs",
    "parse_budgets",
    "render_bench",
    "run_bench",
    "CacheStats",
    "ResultCache",
    "default_cache_root",
    "experiment_key",
    "source_fingerprint",
    "clear_fingerprint_memo",
    "RunOutcome",
    "resolve_ids",
    "run_experiments",
    "profile_path",
    "profiled_run",
    "render_ir_phases",
    "render_profile",
]
