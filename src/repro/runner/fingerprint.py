"""Code fingerprinting and cache-key derivation for the runner.

A cached figure is only valid while the code that produced it is
unchanged, so every cache key mixes in a *code fingerprint*: the SHA-256
of every ``.py`` file in the :mod:`repro` package (path + contents, in
sorted order).  Editing any module — an algorithm, a machine model, a
tolerance in an experiment — therefore invalidates the whole cache,
which errs on the side of recomputing rather than serving stale series.

The experiment key itself is content-addressed: the SHA-256 of a
canonical-JSON document holding the experiment id, its declared cache
inputs (machines, parameter revision), the run parameters (scale, seed)
and the code fingerprint.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

__all__ = ["source_fingerprint", "experiment_key", "clear_fingerprint_memo"]

_FP_MEMO: dict[Path, str] = {}


def _package_root() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def source_fingerprint(root: Path | None = None) -> str:
    """SHA-256 over every ``.py`` file of the package (memoised per root)."""
    root = (_package_root() if root is None else Path(root)).resolve()
    memo = _FP_MEMO.get(root)
    if memo is not None:
        return memo
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _FP_MEMO[root] = digest.hexdigest()
    return _FP_MEMO[root]


def clear_fingerprint_memo() -> None:
    """Forget memoised fingerprints (tests that rewrite sources use this)."""
    _FP_MEMO.clear()


def experiment_key(exp_id: str, *, scale: float, seed: int,
                   fingerprint: str, inputs: dict | None = None) -> str:
    """Content-addressed cache key for one experiment invocation."""
    doc = {
        "experiment": exp_id,
        "scale": float(scale),
        "seed": int(seed),
        "code": fingerprint,
        "inputs": inputs or {},
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()
