"""Perf-regression harness: cold wall-times for the experiment sweep.

``repro bench`` runs experiments *without* the result cache, measures the
host wall-clock of each, and appends one record to a trajectory file
(``BENCH_sweep.json`` by default).  The file accumulates one entry per
bench run, so regressions show up as a step in the trajectory — the same
methodology the paper applies to its machines, pointed at the simulator
itself.

Budgets (``--budget fig5=60``) turn the harness into a CI gate: the run
fails if any budgeted experiment exceeds its allotted seconds.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from ..core.errors import ExperimentError

__all__ = ["BenchRecord", "run_bench", "render_bench", "parse_budgets",
           "compare_last_runs", "compare_last_service_runs", "QUICK_IDS"]

#: the ``--quick`` subset: one experiment per subsystem (calibration,
#: matmul, sorting, scatter analysis) — small enough for a CI smoke job,
#: still exercising every machine model and the engine hot path.
QUICK_IDS = ["table1", "fig1", "fig4", "fig5", "fig14"]


@dataclass
class BenchRecord:
    """One bench run: per-experiment cold wall times, in seconds."""

    label: str
    scale: float
    seed: int
    times_s: dict[str, float] = field(default_factory=dict)
    errors: dict[str, str] = field(default_factory=dict)

    @property
    def total_s(self) -> float:
        return float(sum(self.times_s.values()))

    def slowest(self, n: int = 5) -> list[tuple[str, float]]:
        ranked = sorted(self.times_s.items(), key=lambda kv: -kv[1])
        return ranked[:n]

    def to_dict(self) -> dict:
        doc = {
            "label": self.label,
            "utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "python": platform.python_version(),
            # environment stamp: trajectory entries are only comparable
            # within one numpy/host/CPU configuration
            "numpy": np.__version__,
            "host": platform.node(),
            "cpus": os.cpu_count(),
            "scale": self.scale,
            "seed": self.seed,
            "total_s": round(self.total_s, 3),
            "experiments": {k: round(v, 4) for k, v in self.times_s.items()},
        }
        if self.errors:
            doc["errors"] = dict(self.errors)
        return doc


def parse_budgets(specs: list[str]) -> dict[str, float]:
    """Parse ``["fig5=60", ...]`` into ``{"fig5": 60.0}``."""
    budgets: dict[str, float] = {}
    for spec in specs:
        exp_id, sep, limit = spec.partition("=")
        try:
            budgets[exp_id] = float(limit) if sep else float("nan")
        except ValueError:
            sep = ""
        if not sep or budgets.get(exp_id) != budgets.get(exp_id) \
                or budgets[exp_id] <= 0:
            raise ExperimentError(
                f"bad budget {spec!r}; expected e.g. fig5=60 (seconds)")
    return budgets


def run_bench(ids: list[str], *, scale: float = 1.0, seed: int = 0,
              label: str = "", profile_dir: str | Path | None = None,
              progress=None) -> BenchRecord:
    """Cold-run ``ids`` one at a time, timing each with the host clock.

    "Cold" is about *results*: no result cache is consulted or written —
    the point is the cost of computing, not of loading.  The step-program
    IR store is the ambient one and stays on: structures are a persistent
    artifact of the source tree (content-addressed by algorithm
    fingerprint), so a sweep records each structure at most once, ever,
    and re-prices it on every later run — the record-once/price-many
    contract the bench is meant to measure.  First-ever sweeps on a host
    therefore pay recording inside the timings; label them accordingly.
    ``profile_dir`` additionally collects one cProfile ``pstats`` dump
    per experiment (see ``repro run --profile``).
    """
    from ..experiments import get
    from .pool import resolve_ids

    ids = resolve_ids(ids)
    record = BenchRecord(label=label, scale=scale, seed=seed)
    for exp_id in ids:
        if progress is not None:
            progress(f"bench {exp_id} ...")
        t0 = time.perf_counter()
        try:
            if profile_dir is not None:
                from .profile import profiled_run

                profiled_run(exp_id, scale=scale, seed=seed,
                             profile_dir=profile_dir)
            else:
                get(exp_id).run(scale=scale, seed=seed)
        except Exception as exc:  # record, keep sweeping
            record.errors[exp_id] = f"{type(exc).__name__}: {exc}"
        record.times_s[exp_id] = time.perf_counter() - t0
        if progress is not None:
            progress(f"bench {exp_id}: {record.times_s[exp_id]:.2f}s")
    return record


def append_trajectory(record: BenchRecord, out: str | Path) -> Path:
    """Append ``record`` to the trajectory file ``out`` (created if new)."""
    path = Path(out)
    doc = {"runs": []}
    if path.exists():
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError:
            doc = {"runs": []}
        if not isinstance(doc, dict) or not isinstance(doc.get("runs"), list):
            doc = {"runs": []}
    doc["runs"].append(record.to_dict())
    path.write_text(json.dumps(doc, indent=1) + "\n")
    return path


def render_bench(record: BenchRecord, *, top: int = 5) -> str:
    """The slowest-experiments table plus totals."""
    lines = [f"bench: {len(record.times_s)} experiment(s), "
             f"scale={record.scale}, seed={record.seed}, "
             f"total {record.total_s:.1f}s"]
    if record.times_s:
        lines.append(f"{'slowest':<16} {'seconds':>9}   share")
        total = record.total_s or 1.0
        for exp_id, secs in record.slowest(top):
            lines.append(f"{exp_id:<16} {secs:>9.2f}   {secs / total:>5.1%}")
    for exp_id, err in record.errors.items():
        lines.append(f"ERROR {exp_id}: {err}")
    return "\n".join(lines)


def compare_last_runs(path: str | Path, *,
                      tolerance: float = 0.25) -> tuple[str, list[str]]:
    """Diff the last two runs of a trajectory file.

    Returns ``(table, regressions)``: a per-experiment speedup table
    (markdown-friendly, pipe-separated) comparing the latest run against
    the one before it, and one message per experiment that got slower by
    more than ``tolerance`` (fractional; 0.25 = 25% slower).  Tiny
    absolute times are exempt from flagging — below 0.2s the host timer
    noise swamps any real change.
    """
    if tolerance < 0:
        raise ExperimentError(f"tolerance must be >= 0, got {tolerance}")
    p = Path(path)
    if not p.exists():
        raise ExperimentError(f"no trajectory file {p}")
    try:
        doc = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"unreadable trajectory file {p}: {exc}")
    runs = doc.get("runs", []) if isinstance(doc, dict) else []
    # the loadtest harness appends `kind: "service"` records to the same
    # trajectory; those have no per-experiment times, so the cold-sweep
    # diff looks straight past them
    runs = [r for r in runs if isinstance(r, dict)
            and r.get("kind") != "service"]
    if len(runs) < 2:
        raise ExperimentError(
            f"{p} holds {len(runs)} comparable run(s); --compare needs two")
    prev, last = runs[-2], runs[-1]
    prev_t = prev.get("experiments", {})
    last_t = last.get("experiments", {})

    def _tag(run: dict) -> str:
        return run.get("label") or run.get("utc", "?")

    lines = [f"| experiment | {_tag(prev)} (s) | {_tag(last)} (s) "
             "| speedup |",
             "|---|---:|---:|---:|"]
    regressions: list[str] = []
    ids = list(prev_t) + [k for k in last_t if k not in prev_t]
    for exp_id in ids:
        a, b = prev_t.get(exp_id), last_t.get(exp_id)
        if a is None or b is None:
            lines.append(f"| {exp_id} | {'-' if a is None else f'{a:.2f}'} "
                         f"| {'-' if b is None else f'{b:.2f}'} | - |")
            continue
        ratio = a / b if b > 0 else float("inf")
        mark = ""
        if b > a * (1.0 + tolerance) and b >= 0.2:
            mark = " ⚠"
            regressions.append(
                f"regression: {exp_id} {a:.2f}s -> {b:.2f}s "
                f"({b / a - 1.0:+.0%} > +{tolerance:.0%} tolerance)")
        lines.append(f"| {exp_id} | {a:.2f} | {b:.2f} | {ratio:.2f}x{mark} |")
    total_a = prev.get("total_s", sum(prev_t.values()))
    total_b = last.get("total_s", sum(last_t.values()))
    ratio = total_a / total_b if total_b else float("inf")
    lines.append(f"| **total** | {total_a:.2f} | {total_b:.2f} "
                 f"| {ratio:.2f}x |")
    return "\n".join(lines), regressions


def compare_last_service_runs(path: str | Path, *,
                              tolerance: float = 0.25
                              ) -> tuple[str, list[str]]:
    """Diff the two most recent *matching* ``kind="service"`` records.

    Service loadtest records are only comparable at the same process
    topology and load shape: the latest record is diffed against the
    most recent earlier one with the same ``(processes, concurrency,
    mix)`` — a 1-process and an N-process run never get compared
    (apples-to-oranges by construction).  Regressions are throughput
    drops past ``tolerance`` or p95 latency increases past
    ``tolerance`` (with a 1 ms noise floor).
    """
    if tolerance < 0:
        raise ExperimentError(f"tolerance must be >= 0, got {tolerance}")
    p = Path(path)
    if not p.exists():
        raise ExperimentError(f"no trajectory file {p}")
    try:
        doc = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"unreadable trajectory file {p}: {exc}")
    runs = doc.get("runs", []) if isinstance(doc, dict) else []
    runs = [r for r in runs if isinstance(r, dict)
            and r.get("kind") == "service"]
    if not runs:
        raise ExperimentError(f"{p} holds no service records")

    def topology(run: dict) -> tuple:
        # records before topology stamping carry no "processes" key;
        # treat them as single-process so old baselines stay diffable
        return (run.get("processes", 1) or 1, run.get("concurrency"),
                run.get("mix"))

    last = runs[-1]
    prev = next((r for r in reversed(runs[:-1])
                 if topology(r) == topology(last)), None)
    if prev is None:
        proc, conc, mix = topology(last)
        raise ExperimentError(
            f"{p} holds no earlier service record matching the latest "
            f"topology (processes={proc} concurrency={conc} mix={mix})")

    def _tag(run: dict) -> str:
        return run.get("label") or run.get("utc", "?")

    proc, conc, mix = topology(last)
    lines = [f"service compare at processes={proc} concurrency={conc} "
             f"mix={mix}:",
             "",
             f"| metric | {_tag(prev)} | {_tag(last)} | change |",
             "|---|---:|---:|---:|"]
    regressions: list[str] = []

    def row(name: str, key: str, *, fmt: str = "{:.1f}",
            better: str = "higher", floor: float = 0.0,
            gate: bool = False) -> None:
        a, b = prev.get(key), last.get(key)
        if a is None or b is None:
            lines.append(f"| {name} | {'-' if a is None else fmt.format(a)} "
                         f"| {'-' if b is None else fmt.format(b)} | - |")
            return
        change = (b - a) / a if a else 0.0
        worse = -change if better == "higher" else change
        mark = ""
        if worse > tolerance and abs(b - a) > floor:
            mark = " ⚠"
            if gate:
                regressions.append(
                    f"regression: {name} {fmt.format(a)} -> "
                    f"{fmt.format(b)} ({change:+.0%} vs "
                    f"{tolerance:.0%} tolerance)")
        lines.append(f"| {name} | {fmt.format(a)} | {fmt.format(b)} "
                     f"| {change:+.1%}{mark} |")

    # only throughput and p95 gate (exit 3); the other rows are context
    row("throughput (req/s)", "rps", better="higher", gate=True)
    row("p50 (ms)", "p50_ms", fmt="{:.2f}", better="lower", floor=1.0)
    row("p95 (ms)", "p95_ms", fmt="{:.2f}", better="lower", floor=1.0,
        gate=True)
    row("p99 (ms)", "p99_ms", fmt="{:.2f}", better="lower", floor=1.0)
    row("errors", "errors", fmt="{:.0f}", better="lower", floor=10.0)
    row("mean batch", "mean_batch", fmt="{:.2f}", better="higher")
    row("LRU hit ratio", "lru_hit_ratio", fmt="{:.3f}", better="higher")
    return "\n".join(lines), regressions


def check_budgets(record: BenchRecord,
                  budgets: dict[str, float]) -> list[str]:
    """Return one violation message per budget exceeded (or missing)."""
    problems = []
    for exp_id, limit in budgets.items():
        got = record.times_s.get(exp_id)
        if got is None:
            problems.append(f"budget {exp_id}={limit}s: experiment not run")
        elif exp_id in record.errors:
            problems.append(f"budget {exp_id}: {record.errors[exp_id]}")
        elif got > limit:
            problems.append(
                f"budget exceeded: {exp_id} took {got:.1f}s > {limit:.0f}s")
    return problems
