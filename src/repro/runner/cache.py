"""Content-addressed on-disk cache of experiment results.

Layout: one JSON file per entry under ``<root>/results/<key[:2]>/<key>.json``
holding a metadata header (experiment id, scale, seed, code fingerprint)
next to the full :class:`~repro.validation.series.ExperimentResult`
serialisation.  JSON round-trips ``float64`` exactly (``repr`` is the
shortest round-tripping decimal), so cached series are bit-identical to
freshly computed ones — which the golden tests assert.

The default root is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.  Writes
are atomic (temp file + ``os.replace``) so a crashed run never leaves a
truncated entry behind.

Self-healing reads: every entry stores a SHA-256 checksum of its result
payload, verified on ``get``.  An entry that fails to parse or to verify
(bit-rot, torn write, stale checksum) is *quarantined* — moved aside
under ``<root>/quarantine/`` for post-mortems — and reported as a miss,
so the caller recomputes and the next ``put`` heals the slot.  The
chaos suite drives this path via the ``cache-corrupt``/``cache-truncate``
/``cache-stale`` fault points, which mangle the payload between
serialisation and the atomic rename.

Fleet mode: when a shared-memory arena is attached (``arena=``), the
exact on-disk entry text is mirrored into it, so sibling worker
processes hit warm entries without touching the filesystem.  Arena
entries carry the same embedded checksum as the files and go through
the same verification on read — a poisoned arena slot is invalidated
and the read falls back to disk (and from there to recompute).
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..core.errors import ExperimentError
from ..faults import fault_flag
from ..validation.series import ExperimentResult

__all__ = ["CacheStats", "ResultCache", "default_cache_root"]

_FORMAT = 2  # v2: adds the result-payload checksum


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def _result_checksum(result_doc: dict) -> str:
    """SHA-256 of the canonical result serialisation.

    Computed over the exact compact JSON text that is stored, so a
    parse → re-dump on read reproduces it byte for byte (JSON object
    order is preserved and floats round-trip via ``repr``).
    """
    text = json.dumps(result_doc, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: entries moved aside after failing parse/checksum verification.
    quarantined: int = 0
    #: per-experiment outcome, id -> "hit" | "miss"
    outcomes: dict[str, str] = field(default_factory=dict)

    def record(self, exp_id: str, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        self.outcomes[exp_id] = "hit" if hit else "miss"

    def summary(self) -> str:
        base = f"{self.hits} hit(s), {self.misses} miss(es)"
        if self.quarantined:
            base += f", {self.quarantined} quarantined"
        return base


class ResultCache:
    """Read/write access to the content-addressed result store."""

    def __init__(self, root: Path | str | None = None, *, arena=None):
        self.root = Path(root) if root is not None else default_cache_root()
        self.stats = CacheStats()
        #: optional cross-process entry mirror (fleet mode).
        self.arena = arena

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        if len(key) < 8 or not all(c in "0123456789abcdef" for c in key):
            raise ExperimentError(f"malformed cache key {key!r}")
        return self.root / "results" / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move a failed entry aside (never raises; best effort)."""
        dest_dir = self.root / "quarantine"
        try:
            dest_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest_dir / path.name)
            self.stats.quarantined += 1
        except OSError:
            pass

    @staticmethod
    def _verify_payload(raw: str) -> dict | None:
        """Parse + checksum-verify one entry text; None when invalid."""
        try:
            doc = json.loads(raw)
            if doc.get("format") != _FORMAT:
                raise ValueError("unknown cache format")
            if doc.get("checksum") != _result_checksum(doc["result"]):
                raise ValueError("checksum mismatch")
        except (ValueError, KeyError, TypeError):
            return None
        return doc

    @staticmethod
    def _arena_key(key: str) -> bytes:
        return f"rc:{key}".encode()

    def get_doc(self, key: str, label: str = "?") -> dict | None:
        """The raw JSON payload cached under ``key``, or None.

        The generic sibling of :meth:`get` — same verification and
        quarantine behaviour, but the payload is handed back as parsed
        JSON instead of an :class:`ExperimentResult` (the ablation
        harness caches per-cell scoreboard documents this way).
        """
        if self.arena is not None:
            hot = self.arena.get(self._arena_key(key))
            if hot is not None:
                try:
                    doc = self._verify_payload(hot.decode())
                except UnicodeDecodeError:
                    doc = None
                if doc is not None:
                    self.stats.record(label, hit=True)
                    return doc["result"]
                # poisoned slot: drop it and fall back to disk
                self.arena.invalidate(self._arena_key(key))
        path = self._path(key)
        try:
            with open(path) as fh:
                raw = fh.read()
        except OSError:
            self.stats.record(label, hit=False)
            return None
        doc = self._verify_payload(raw)
        if doc is None:
            self._quarantine(path)
            self.stats.record(label, hit=False)
            return None
        if self.arena is not None:
            self.arena.put(self._arena_key(key), raw.encode())
        self.stats.record(label, hit=True)
        return doc["result"]

    def get(self, key: str, exp_id: str = "?") -> ExperimentResult | None:
        """The cached result under ``key``, or None.

        Corrupt entries — unparseable JSON, wrong format, or a checksum
        mismatch — are quarantined and reported as a miss, so callers
        transparently recompute.
        """
        result_doc = self.get_doc(key, exp_id)
        if result_doc is None:
            return None
        try:
            return ExperimentResult.from_dict(result_doc)
        except (ValueError, KeyError, TypeError):
            self._quarantine(self._path(key))
            self.stats.hits -= 1
            self.stats.record(exp_id, hit=False)
            return None

    def put(self, key: str, result: ExperimentResult, *,
            meta: dict | None = None) -> Path:
        """Store ``result`` under ``key`` atomically; returns the path."""
        return self.put_doc(key, result.to_dict(), meta=meta)

    def put_doc(self, key: str, result_doc: dict, *,
                meta: dict | None = None) -> Path:
        """Store a raw JSON payload under ``key`` atomically.

        Everything :meth:`put` layers on top of the payload — checksum,
        fault points, atomic rename — lives here, so generic documents
        get the same corruption handling as experiment results.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        checksum = _result_checksum(result_doc)
        if fault_flag("cache-stale"):
            checksum = "0" * 64
        doc = {"format": _FORMAT, "key": key, "checksum": checksum,
               "meta": meta or {}, "result": result_doc}
        payload = json.dumps(doc, separators=(",", ":"))
        if fault_flag("cache-truncate"):
            payload = payload[: len(payload) // 2]
        if fault_flag("cache-corrupt"):
            from ..faults import corrupt_text

            payload = corrupt_text(payload)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                fh.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.arena is not None:
            # mirror the exact stored text — fault-mangled payloads stay
            # mangled, so arena readers verify the same bytes as disk
            self.arena.put(self._arena_key(key), payload.encode())
        self.stats.stores += 1
        return path

    # ------------------------------------------------------------------
    def entries(self) -> list[dict]:
        """Metadata headers of every cache entry (sorted by experiment id)."""
        out = []
        results = self.root / "results"
        if results.is_dir():
            for path in sorted(results.glob("*/*.json")):
                try:
                    with open(path) as fh:
                        doc = json.load(fh)
                    out.append({"key": doc.get("key", path.stem),
                                "bytes": path.stat().st_size,
                                **doc.get("meta", {})})
                except (OSError, ValueError):
                    continue
        return sorted(out, key=lambda e: (e.get("experiment", ""), e["key"]))

    def quarantined(self) -> list[Path]:
        """The quarantined entry files (newest last)."""
        qdir = self.root / "quarantine"
        if not qdir.is_dir():
            return []
        return sorted(qdir.glob("*.json"), key=lambda p: p.stat().st_mtime)

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        results = self.root / "results"
        if results.is_dir():
            for path in results.glob("*/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
            for sub in results.glob("*"):
                try:
                    sub.rmdir()
                except OSError:
                    continue
        return removed
