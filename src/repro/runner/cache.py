"""Content-addressed on-disk cache of experiment results.

Layout: one JSON file per entry under ``<root>/results/<key[:2]>/<key>.json``
holding a metadata header (experiment id, scale, seed, code fingerprint)
next to the full :class:`~repro.validation.series.ExperimentResult`
serialisation.  JSON round-trips ``float64`` exactly (``repr`` is the
shortest round-tripping decimal), so cached series are bit-identical to
freshly computed ones — which the golden tests assert.

The default root is ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``.  Writes
are atomic (temp file + ``os.replace``) so a crashed run never leaves a
truncated entry behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from ..core.errors import ExperimentError
from ..validation.series import ExperimentResult

__all__ = ["CacheStats", "ResultCache", "default_cache_root"]

_FORMAT = 1


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


@dataclass
class CacheStats:
    """Hit/miss/store counters of one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: per-experiment outcome, id -> "hit" | "miss"
    outcomes: dict[str, str] = field(default_factory=dict)

    def record(self, exp_id: str, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        self.outcomes[exp_id] = "hit" if hit else "miss"

    def summary(self) -> str:
        return f"{self.hits} hit(s), {self.misses} miss(es)"


class ResultCache:
    """Read/write access to the content-addressed result store."""

    def __init__(self, root: Path | str | None = None):
        self.root = Path(root) if root is not None else default_cache_root()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        if len(key) < 8 or not all(c in "0123456789abcdef" for c in key):
            raise ExperimentError(f"malformed cache key {key!r}")
        return self.root / "results" / key[:2] / f"{key}.json"

    def get(self, key: str, exp_id: str = "?") -> ExperimentResult | None:
        """The cached result under ``key``, or None (corrupt entries miss)."""
        path = self._path(key)
        try:
            with open(path) as fh:
                doc = json.load(fh)
            if doc.get("format") != _FORMAT:
                raise ValueError("unknown cache format")
            result = ExperimentResult.from_dict(doc["result"])
        except (OSError, ValueError, KeyError):
            self.stats.record(exp_id, hit=False)
            return None
        self.stats.record(exp_id, hit=True)
        return result

    def put(self, key: str, result: ExperimentResult, *,
            meta: dict | None = None) -> Path:
        """Store ``result`` under ``key`` atomically; returns the path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"format": _FORMAT, "key": key, "meta": meta or {},
               "result": result.to_dict()}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(doc, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        return path

    # ------------------------------------------------------------------
    def entries(self) -> list[dict]:
        """Metadata headers of every cache entry (sorted by experiment id)."""
        out = []
        results = self.root / "results"
        if results.is_dir():
            for path in sorted(results.glob("*/*.json")):
                try:
                    with open(path) as fh:
                        doc = json.load(fh)
                    out.append({"key": doc.get("key", path.stem),
                                "bytes": path.stat().st_size,
                                **doc.get("meta", {})})
                except (OSError, ValueError):
                    continue
        return sorted(out, key=lambda e: (e.get("experiment", ""), e["key"]))

    def clear(self) -> int:
        """Delete every cache entry; returns the number removed."""
        removed = 0
        results = self.root / "results"
        if results.is_dir():
            for path in results.glob("*/*.json"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
            for sub in results.glob("*"):
                try:
                    sub.rmdir()
                except OSError:
                    continue
        return removed
