"""Parallel experiment execution with cache-aware scheduling.

:func:`run_experiments` fans a batch of registered experiments out across
a process pool.  The flow per experiment:

1. derive its content-addressed key (:mod:`repro.runner.fingerprint`);
2. probe the on-disk cache — hits are served in milliseconds;
3. dispatch the misses to ``jobs`` worker processes (or run them inline
   when ``jobs == 1``), then store each fresh result.

Determinism: every experiment draws all randomness from generators
seeded by its ``(seed, scale)`` arguments, so a result is a pure function
of its cache key — parallel and serial runs are bit-identical, and a
cache hit equals a recomputation.  Workers are separate processes, so
per-process memoisation (calibration fits) never leaks between runs.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..core.errors import ExperimentError
from ..validation.series import ExperimentResult
from .cache import ResultCache
from .fingerprint import experiment_key, source_fingerprint

__all__ = ["RunOutcome", "resolve_ids", "run_experiments"]


@dataclass
class RunOutcome:
    """One experiment's result plus how it was obtained."""

    id: str
    result: ExperimentResult
    cached: bool
    elapsed_s: float


def resolve_ids(ids: list[str]) -> list[str]:
    """Expand ``all``, validate every id, drop duplicates (order kept).

    Raises :class:`ExperimentError` naming the valid ids on an unknown id.
    """
    from ..experiments import all_experiments

    known = all_experiments()
    if ids == ["all"]:
        return list(known)
    out: list[str] = []
    for exp_id in ids:
        if exp_id not in known:
            valid = ", ".join(known)
            raise ExperimentError(
                f"unknown experiment {exp_id!r}; valid ids: {valid}")
        if exp_id not in out:
            out.append(exp_id)
    return out


def _worker(exp_id: str, scale: float, seed: int) -> tuple[dict, float]:
    """Run one experiment in a worker process (dict result pickles small).

    Returns the serialised result plus the in-worker wall time, so the
    parent's timing summary reflects compute cost, not queue wait.
    """
    from ..experiments import get

    t0 = time.perf_counter()
    result = get(exp_id).run(scale=scale, seed=seed).to_dict()
    return result, time.perf_counter() - t0


def run_experiments(ids: list[str], *, scale: float = 1.0, seed: int = 0,
                    jobs: int = 1, cache: ResultCache | None = None,
                    force: bool = False) -> list[RunOutcome]:
    """Run a batch of experiments, using ``cache`` and ``jobs`` workers.

    ``cache=None`` disables caching entirely; ``force=True`` recomputes
    even on a hit (and refreshes the stored entry).  Outcomes come back
    in the order of ``ids``.
    """
    from ..experiments import all_experiments

    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    ids = resolve_ids(ids)
    registry = all_experiments()

    fingerprint = source_fingerprint()
    keys = {exp_id: experiment_key(
        exp_id, scale=scale, seed=seed, fingerprint=fingerprint,
        inputs=registry[exp_id].cache_inputs())
        for exp_id in ids}

    outcomes: dict[str, RunOutcome] = {}
    misses: list[str] = []
    for exp_id in ids:
        if cache is not None and not force:
            t0 = time.perf_counter()
            hit = cache.get(keys[exp_id], exp_id)
            if hit is not None:
                outcomes[exp_id] = RunOutcome(
                    id=exp_id, result=hit, cached=True,
                    elapsed_s=time.perf_counter() - t0)
                continue
        misses.append(exp_id)

    if misses:
        if jobs == 1 or len(misses) == 1:
            fresh = {}
            for exp_id in misses:
                t0 = time.perf_counter()
                result = registry[exp_id].run(scale=scale, seed=seed)
                fresh[exp_id] = (result, time.perf_counter() - t0)
        else:
            fresh = {}
            with ProcessPoolExecutor(max_workers=min(jobs, len(misses))) as ex:
                futures = {exp_id: ex.submit(_worker, exp_id, scale, seed)
                           for exp_id in misses}
                for exp_id, fut in futures.items():
                    doc, elapsed = fut.result()
                    fresh[exp_id] = (ExperimentResult.from_dict(doc), elapsed)
        for exp_id, (result, elapsed) in fresh.items():
            if cache is not None:
                if force:
                    cache.stats.record(exp_id, hit=False)
                cache.put(keys[exp_id], result, meta={
                    "experiment": exp_id, "scale": scale, "seed": seed,
                    "code": fingerprint})
            outcomes[exp_id] = RunOutcome(id=exp_id, result=result,
                                          cached=False, elapsed_s=elapsed)

    return [outcomes[exp_id] for exp_id in ids]
