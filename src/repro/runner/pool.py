"""Parallel experiment execution with cache-aware scheduling.

:func:`run_experiments` fans a batch of registered experiments out across
a process pool.  The flow per experiment:

1. derive its content-addressed key (:mod:`repro.runner.fingerprint`);
2. probe the on-disk cache — hits are served in milliseconds;
3. dispatch the misses to ``jobs`` worker processes (or run them inline
   when ``jobs == 1``), then store each fresh result.

Determinism: every experiment draws all randomness from generators
seeded by its ``(seed, scale)`` arguments, so a result is a pure function
of its cache key — parallel and serial runs are bit-identical, and a
cache hit equals a recomputation.  Workers are separate processes, so
per-process memoisation (calibration fits) never leaks between runs.

Workers are *persistent*: one forked worker pool lives for the process
(:func:`warm_pool`), so the interpreter/NumPy import cost is paid once
per worker rather than once per batch.  Before the pool is built the
parent pre-fits the standard Table 1 calibrations (``calibration_for``
is memoised per process); forked workers inherit the warmed memo, so no
experiment pays the fit cost either (on platforms without ``fork`` a
per-worker initializer does the same warming).  A memo hit is
observationally identical to a recomputation — see
:mod:`repro.calibration.table1` — so pre-warming cannot change results.
"""

from __future__ import annotations

import atexit
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..core.errors import ExperimentError
from ..validation.series import ExperimentResult
from .cache import ResultCache
from .fingerprint import experiment_key, source_fingerprint

__all__ = ["RunOutcome", "resolve_ids", "run_experiments", "warm_pool",
           "shutdown_pool"]

#: machine configurations the worker initializer pre-fits: the three
#: paper machines at their default partitions (what ``calibrated`` asks
#: for in every figure).
_WARM_CONFIGS = (("maspar", 1024), ("gcel", 64), ("cm5", 64))

_pool: ProcessPoolExecutor | None = None
_pool_workers: int | None = None


def _warm_worker(seed: int) -> None:
    """Worker initializer: import the stack and pre-fit calibrations.

    Runs once per worker process.  The fits land in the process-wide
    ``calibration_for`` memo with the exact keys ``calibrated`` uses
    (``machine_seed = seed + 1000``), so experiment code hits the memo
    instead of re-fitting.
    """
    from ..calibration.table1 import calibration_for

    for name, P in _WARM_CONFIGS:
        calibration_for(name, P=P, machine_seed=seed + 1000, seed=seed)


def warm_pool(jobs: int, *, seed: int = 0) -> ProcessPoolExecutor:
    """The persistent worker pool, (re)built only when ``jobs`` changes.

    Forked workers survive across :func:`run_experiments` calls; the
    parent's memo is warmed first so they inherit the fits.  A later
    call with a different ``seed`` reuses the running pool — workers
    then fit that seed's calibrations once each on demand (still
    memoised per worker process).
    """
    global _pool, _pool_workers
    if _pool is not None and _pool_workers == jobs:
        return _pool
    shutdown_pool()
    try:
        ctx = multiprocessing.get_context("fork")
        _warm_worker(seed)  # children fork off the warmed memo
        initializer, initargs = None, ()
    except ValueError:  # no fork (e.g. Windows): warm each worker instead
        ctx = multiprocessing.get_context()
        initializer, initargs = _warm_worker, (seed,)
    _pool = ProcessPoolExecutor(max_workers=jobs, mp_context=ctx,
                                initializer=initializer, initargs=initargs)
    _pool_workers = jobs
    atexit.register(shutdown_pool)
    return _pool


def shutdown_pool() -> None:
    """Stop the persistent pool (no-op when none is running)."""
    global _pool, _pool_workers
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
        _pool_workers = None


@dataclass
class RunOutcome:
    """One experiment's result plus how it was obtained."""

    id: str
    result: ExperimentResult
    cached: bool
    elapsed_s: float


def resolve_ids(ids: list[str]) -> list[str]:
    """Expand ``all``, validate every id, drop duplicates (order kept).

    Raises :class:`ExperimentError` naming the valid ids on an unknown id.
    """
    from ..experiments import all_experiments

    known = all_experiments()
    if ids == ["all"]:
        return list(known)
    out: list[str] = []
    for exp_id in ids:
        if exp_id not in known:
            valid = ", ".join(known)
            raise ExperimentError(
                f"unknown experiment {exp_id!r}; valid ids: {valid}")
        if exp_id not in out:
            out.append(exp_id)
    return out


def _worker(exp_id: str, scale: float, seed: int) -> tuple[dict, float]:
    """Run one experiment in a worker process (dict result pickles small).

    Returns the serialised result plus the in-worker wall time, so the
    parent's timing summary reflects compute cost, not queue wait.
    """
    from ..experiments import get

    t0 = time.perf_counter()
    result = get(exp_id).run(scale=scale, seed=seed).to_dict()
    return result, time.perf_counter() - t0


def run_experiments(ids: list[str], *, scale: float = 1.0, seed: int = 0,
                    jobs: int = 1, cache: ResultCache | None = None,
                    force: bool = False) -> list[RunOutcome]:
    """Run a batch of experiments, using ``cache`` and ``jobs`` workers.

    ``cache=None`` disables caching entirely; ``force=True`` recomputes
    even on a hit (and refreshes the stored entry).  Outcomes come back
    in the order of ``ids``.
    """
    from ..experiments import all_experiments

    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    ids = resolve_ids(ids)
    registry = all_experiments()

    fingerprint = source_fingerprint()
    keys = {exp_id: experiment_key(
        exp_id, scale=scale, seed=seed, fingerprint=fingerprint,
        inputs=registry[exp_id].cache_inputs())
        for exp_id in ids}

    outcomes: dict[str, RunOutcome] = {}
    misses: list[str] = []
    for exp_id in ids:
        if cache is not None and not force:
            t0 = time.perf_counter()
            hit = cache.get(keys[exp_id], exp_id)
            if hit is not None:
                outcomes[exp_id] = RunOutcome(
                    id=exp_id, result=hit, cached=True,
                    elapsed_s=time.perf_counter() - t0)
                continue
        misses.append(exp_id)

    if misses:
        if jobs == 1 or len(misses) == 1:
            fresh = {}
            for exp_id in misses:
                t0 = time.perf_counter()
                result = registry[exp_id].run(scale=scale, seed=seed)
                fresh[exp_id] = (result, time.perf_counter() - t0)
        else:
            fresh = {}
            ex = warm_pool(jobs, seed=seed)
            futures = {exp_id: ex.submit(_worker, exp_id, scale, seed)
                       for exp_id in misses}
            for exp_id, fut in futures.items():
                doc, elapsed = fut.result()
                fresh[exp_id] = (ExperimentResult.from_dict(doc), elapsed)
        for exp_id, (result, elapsed) in fresh.items():
            if cache is not None:
                if force:
                    cache.stats.record(exp_id, hit=False)
                cache.put(keys[exp_id], result, meta={
                    "experiment": exp_id, "scale": scale, "seed": seed,
                    "code": fingerprint})
            outcomes[exp_id] = RunOutcome(id=exp_id, result=result,
                                          cached=False, elapsed_s=elapsed)

    return [outcomes[exp_id] for exp_id in ids]
