"""Parallel experiment execution with cache-aware scheduling.

:func:`run_experiments` fans a batch of registered experiments out across
a process pool.  The flow per experiment:

1. derive its content-addressed key (:mod:`repro.runner.fingerprint`);
2. probe the on-disk cache — hits are served in milliseconds;
3. dispatch the misses to ``jobs`` worker processes (or run them inline
   when ``jobs == 1``), then store each fresh result.

Determinism: every experiment draws all randomness from generators
seeded by its ``(seed, scale)`` arguments, so a result is a pure function
of its cache key — parallel and serial runs are bit-identical, and a
cache hit equals a recomputation.  Workers are separate processes, so
per-process memoisation (calibration fits) never leaks between runs.

Workers are *persistent*: one forked worker pool lives for the process
(:func:`warm_pool`), so the interpreter/NumPy import cost is paid once
per worker rather than once per batch.  Before the pool is built the
parent pre-fits the standard Table 1 calibrations (``calibration_for``
is memoised per process); forked workers inherit the warmed memo, so no
experiment pays the fit cost either (on platforms without ``fork`` a
per-worker initializer does the same warming).  A memo hit is
observationally identical to a recomputation — see
:mod:`repro.calibration.table1` — so pre-warming cannot change results.

Fault tolerance: the pool is instrumented with deterministic fault
points (:mod:`repro.faults`) at worker spawn (``spawn-crash``,
``spawn-slow``) and exec (``worker-crash``, ``worker-hang``).  A failed
or timed-out worker task is retried under a bounded
:class:`~repro.faults.RetryPolicy` (respawning the pool when it broke);
once the attempts are exhausted the experiment falls back to in-process
execution.  Because results are pure functions of their arguments,
every recovery path is bit-identical to the fault-free run.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..core.errors import ExperimentError, FaultInjected
from ..faults import (
    Clock,
    FaultPlan,
    RetryExhausted,
    RetryPolicy,
    SYSTEM_CLOCK,
    active,
    fault_point,
    faults_active,
    install,
    retry_call,
)
from ..validation.series import ExperimentResult
from .cache import ResultCache
from .fingerprint import experiment_key, source_fingerprint

__all__ = ["RunOutcome", "collect_resilient", "resolve_ids",
           "run_experiments", "warm_pool", "shutdown_pool"]

#: machine configurations the worker initializer pre-fits: the three
#: paper machines at their default partitions (what ``calibrated`` asks
#: for in every figure).
_WARM_CONFIGS = (("maspar", 1024), ("gcel", 64), ("cm5", 64))

#: failures worth a respawn/retry — injected faults, a broken pool and
#: per-task deadline overruns.  Real experiment errors (bad parameters)
#: are deterministic and propagate immediately.
_RETRYABLE = (FaultInjected, BrokenProcessPool, FutureTimeout)

_pool: ProcessPoolExecutor | None = None
_pool_workers: int | None = None
_pool_plan: str | None = None
_pool_engine: str | None = None

# one process-wide atexit guard, registered at import: however the pool
# is (re)built later, interpreter exit always reaps it.
atexit.register(lambda: shutdown_pool())


def _fit_calibrations(seed: int) -> None:
    """Pre-fit the standard calibrations into the process-wide memo.

    The fits land with the exact keys ``calibrated`` uses
    (``machine_seed = seed + 1000``), so experiment code hits the memo
    instead of re-fitting.
    """
    from ..calibration.table1 import calibration_for

    for name, P in _WARM_CONFIGS:
        calibration_for(name, P=P, machine_seed=seed + 1000, seed=seed)


def _child_init(plan_text: str | None, seed: int, warm: bool) -> None:
    """Worker initializer: faults in, spawn fault points, optional warm.

    Runs once per worker process.  The fault plan is re-installed from
    its text so every worker replays a fresh per-point schedule; the
    ``spawn-*`` points then simulate crash/slow-start during pool
    bring-up (a crash marks the executor broken — the parent recovers
    by falling back to in-process execution).
    """
    if plan_text:
        install(FaultPlan.parse(plan_text))
    fault_point("spawn-slow")
    fault_point("spawn-crash")
    if warm:
        _fit_calibrations(seed)


def _plan_signature() -> str | None:
    """The active fault plan's canonical text (pool identity component)."""
    injector = active()
    return injector.plan.render() if injector is not None else None


def warm_pool(jobs: int, *, seed: int = 0) -> ProcessPoolExecutor:
    """The persistent worker pool, (re)built when ``jobs`` or the active
    fault plan changes.

    Forked workers survive across :func:`run_experiments` calls; the
    parent's memo is warmed first so they inherit the fits.  A later
    call with a different ``seed`` reuses the running pool — workers
    then fit that seed's calibrations once each on demand (still
    memoised per worker process).
    """
    global _pool, _pool_workers, _pool_plan, _pool_engine
    plan_text = _plan_signature()
    # forked workers resolve engine="auto" through the $REPRO_ENGINE they
    # inherited, so a changed engine needs a fresh pool
    engine = os.environ.get("REPRO_ENGINE")
    if _pool is not None and _pool_workers == jobs \
            and _pool_plan == plan_text and _pool_engine == engine:
        return _pool
    shutdown_pool()
    try:
        ctx = multiprocessing.get_context("fork")
        _fit_calibrations(seed)  # children fork off the warmed memo
        initargs = (plan_text, seed, False)
    except ValueError:  # no fork (e.g. Windows): warm each worker instead
        ctx = multiprocessing.get_context()
        initargs = (plan_text, seed, True)
    _pool = ProcessPoolExecutor(max_workers=jobs, mp_context=ctx,
                                initializer=_child_init, initargs=initargs)
    _pool_workers = jobs
    _pool_plan = plan_text
    _pool_engine = engine
    return _pool


def shutdown_pool() -> None:
    """Stop the persistent pool (no-op when none is running)."""
    global _pool, _pool_workers, _pool_plan, _pool_engine
    if _pool is not None:
        _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
        _pool_workers = None
        _pool_plan = None
        _pool_engine = None


@dataclass
class RunOutcome:
    """One experiment's result plus how it was obtained."""

    id: str
    result: ExperimentResult
    cached: bool
    elapsed_s: float


def resolve_ids(ids: list[str]) -> list[str]:
    """Expand ``all``, validate every id, drop duplicates (order kept).

    Raises :class:`ExperimentError` naming the valid ids on an unknown id.
    """
    from ..experiments import all_experiments

    known = all_experiments()
    if ids == ["all"]:
        return list(known)
    out: list[str] = []
    for exp_id in ids:
        if exp_id not in known:
            valid = ", ".join(known)
            raise ExperimentError(
                f"unknown experiment {exp_id!r}; valid ids: {valid}")
        if exp_id not in out:
            out.append(exp_id)
    return out


def _worker(exp_id: str, scale: float, seed: int) -> tuple[dict, float]:
    """Run one experiment in a worker process (dict result pickles small).

    Returns the serialised result plus the in-worker wall time, so the
    parent's timing summary reflects compute cost, not queue wait.
    """
    from ..experiments import get

    fault_point("worker-hang")
    fault_point("worker-crash")
    t0 = time.perf_counter()
    result = get(exp_id).run(scale=scale, seed=seed).to_dict()
    return result, time.perf_counter() - t0


def collect_resilient(fn, args: tuple, first_fut, *, fallback, jobs: int,
                      seed: int, policy: RetryPolicy, clock: Clock,
                      timeout_s: float | None):
    """Await one pool task, retrying transient failures under ``policy``.

    Attempt 0 consumes the already-submitted future; later attempts
    resubmit ``fn(*args)`` (rebuilding the pool first when it broke).  A
    timed-out task is cancelled and retried elsewhere.  Once the bounded
    attempts are spent, ``fallback()`` runs the task in-process — same
    arguments, same pure function, bit-identical result.  Shared by
    :func:`run_experiments` and the ablation evaluator
    (:mod:`repro.ablation.evaluate`).
    """
    state = {"fut": first_fut}

    def attempt(i: int):
        if i > 0:
            state["fut"] = warm_pool(jobs, seed=seed).submit(fn, *args)
        fut = state["fut"]
        try:
            return fut.result(timeout=timeout_s)
        except FutureTimeout:
            fut.cancel()
            raise
        except BrokenProcessPool:
            shutdown_pool()  # the next attempt (or caller) rebuilds
            raise

    try:
        return retry_call(attempt, policy=policy, clock=clock,
                          retry_on=_RETRYABLE)
    except RetryExhausted:
        return fallback()


def _collect_resilient(exp_id: str, first_fut, *, registry, scale: float,
                       seed: int, jobs: int, policy: RetryPolicy,
                       clock: Clock,
                       timeout_s: float | None) -> tuple[dict, float]:
    """One experiment's :func:`collect_resilient`, in-process fallback
    included."""

    def fallback() -> tuple[dict, float]:
        t0 = time.perf_counter()
        result = registry[exp_id].run(scale=scale, seed=seed)
        return result.to_dict(), time.perf_counter() - t0

    return collect_resilient(_worker, (exp_id, scale, seed), first_fut,
                             fallback=fallback, jobs=jobs, seed=seed,
                             policy=policy, clock=clock, timeout_s=timeout_s)


def run_experiments(ids: list[str], *, scale: float = 1.0, seed: int = 0,
                    jobs: int = 1, cache: ResultCache | None = None,
                    force: bool = False,
                    faults: FaultPlan | str | None = None,
                    retry: RetryPolicy | None = None,
                    exec_timeout_s: float | None = None,
                    clock: Clock | None = None,
                    engine: str | None = None) -> list[RunOutcome]:
    """Run a batch of experiments, using ``cache`` and ``jobs`` workers.

    ``cache=None`` disables caching entirely; ``force=True`` recomputes
    even on a hit (and refreshes the stored entry).  Outcomes come back
    in the order of ``ids``.

    ``faults`` installs a :class:`~repro.faults.FaultPlan` for the
    duration of the batch (also active inside pool workers);
    ``retry``/``exec_timeout_s``/``clock`` tune the recovery path —
    bounded backoff attempts per worker task, a per-task deadline, and
    the clock the backoff sleeps against (a ``FakeClock`` in tests).

    ``engine`` pins the simulation engine for the batch (``None`` /
    ``"auto"`` keep the ambient default).  Engines are observationally
    identical, so the cache key does not include it; an unknown name
    raises :class:`ExperimentError` before anything runs.
    """
    from ..experiments import all_experiments
    from ..simulator.vector import ENGINES, engine_scope

    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    if engine is not None and engine not in ENGINES:
        raise ExperimentError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")
    if isinstance(faults, str):
        faults = FaultPlan.parse(faults)
    ids = resolve_ids(ids)
    registry = all_experiments()
    clock = clock or SYSTEM_CLOCK
    policy = retry or RetryPolicy(max_attempts=3, base_delay_s=0.05,
                                  max_delay_s=1.0, seed=seed)

    with faults_active(faults), engine_scope(engine):
        fingerprint = source_fingerprint()
        keys = {exp_id: experiment_key(
            exp_id, scale=scale, seed=seed, fingerprint=fingerprint,
            inputs=registry[exp_id].cache_inputs())
            for exp_id in ids}

        outcomes: dict[str, RunOutcome] = {}
        misses: list[str] = []
        for exp_id in ids:
            if cache is not None and not force:
                t0 = time.perf_counter()
                hit = cache.get(keys[exp_id], exp_id)
                if hit is not None:
                    outcomes[exp_id] = RunOutcome(
                        id=exp_id, result=hit, cached=True,
                        elapsed_s=time.perf_counter() - t0)
                    continue
            misses.append(exp_id)

        if misses:
            if jobs == 1 or len(misses) == 1:
                fresh = {}
                for exp_id in misses:
                    t0 = time.perf_counter()
                    result = registry[exp_id].run(scale=scale, seed=seed)
                    fresh[exp_id] = (result, time.perf_counter() - t0)
            else:
                fresh = {}
                ex = warm_pool(jobs, seed=seed)
                futures = {exp_id: ex.submit(_worker, exp_id, scale, seed)
                           for exp_id in misses}
                try:
                    for exp_id, fut in futures.items():
                        doc, elapsed = _collect_resilient(
                            exp_id, fut, registry=registry, scale=scale,
                            seed=seed, jobs=jobs, policy=policy,
                            clock=clock, timeout_s=exec_timeout_s)
                        fresh[exp_id] = (ExperimentResult.from_dict(doc),
                                         elapsed)
                except BaseException:
                    # never leak a busy pool past an unexpected failure:
                    # cancel what has not started, reap the workers, and
                    # let the error propagate (regression-tested)
                    for pending in futures.values():
                        pending.cancel()
                    shutdown_pool()
                    raise
            for exp_id, (result, elapsed) in fresh.items():
                if cache is not None:
                    if force:
                        cache.stats.record(exp_id, hit=False)
                    cache.put(keys[exp_id], result, meta={
                        "experiment": exp_id, "scale": scale, "seed": seed,
                        "code": fingerprint})
                outcomes[exp_id] = RunOutcome(id=exp_id, result=result,
                                              cached=False, elapsed_s=elapsed)

    return [outcomes[exp_id] for exp_id in ids]
