"""Table 1 — the (MP-)BSP and MP-BPRAM machine parameters."""

from __future__ import annotations

import numpy as np

from ..calibration import calibrate_all
from ..core.params import paper_params
from ..validation.series import ExperimentResult, Series
from .base import register

#: acceptable relative deviation of a fitted parameter from Table 1.
TOLERANCE = {"g": 0.15, "L": 0.25, "sigma": 0.15, "ell": 0.30}


@register("table1", "Machine parameters (fitted vs published)",
          "Table 1, Section 3",
          machines=("maspar", "gcel", "cm5"))
def run(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    trials = max(6, int(10 * scale))
    cals = calibrate_all(seed=seed, trials=trials)
    result = ExperimentResult(
        experiment="table1",
        title="(MP-)BSP and MP-BPRAM parameters, fitted from simulated "
              "microbenchmarks",
        x_label="machine", y_label="parameter (us)")

    machines = list(cals)
    xs = np.arange(len(machines), dtype=float)
    for field in ("g", "L", "sigma", "ell"):
        result.series.append(Series(
            name=f"{field} (fitted)", xs=xs,
            ys=[getattr(cals[m].params, field) for m in machines]))
        result.series.append(Series(
            name=f"{field} (paper)", xs=xs,
            ys=[getattr(paper_params(m), field) for m in machines]))

    for m in machines:
        for field, tol in TOLERANCE.items():
            fitted = getattr(cals[m].params, field)
            published = getattr(paper_params(m), field)
            err = abs(fitted - published) / published
            result.check(
                f"{m}.{field} within {tol:.0%} of Table 1", err <= tol,
                f"fitted {fitted:.4g} vs paper {published:.4g} "
                f"({err:+.1%})")

    mp = cals["maspar"]
    if mp.unb is not None:
        ratio = mp.unb(32) / mp.unb(1024)
        result.check("MasPar 32-active partial permutation ~13% of full",
                     abs(ratio - 0.13) < 0.05, f"ratio {ratio:.3f}")
        result.notes.append(
            f"fitted T_unb(P') = {mp.unb.a:.2f} P' + {mp.unb.b:.1f} "
            f"sqrt(P') + {mp.unb.c:.1f} (paper: 0.84/11.8/73.3), "
            f"R^2 = {mp.unb_r2:.4f}")
    gs = cals["gcel"].g_scatter
    if gs is not None:
        result.check("GCel multinode scatter ~9x cheaper than h-relation",
                     5 < cals["gcel"].params.g / gs < 12,
                     f"g_mscat = {gs:.0f} vs g = "
                     f"{cals['gcel'].params.g:.0f} (paper: 492 vs 4480)")
    for m in machines:
        p = cals[m].params
        pub = paper_params(m)
        result.notes.append(
            f"{m}: fitted g={p.g:.1f} L={p.L:.0f} sigma={p.sigma:.2f} "
            f"ell={p.ell:.0f} | paper g={pub.g} L={pub.L} "
            f"sigma={pub.sigma} ell={pub.ell}")
    return result
