"""Experiment registry: one entry per paper table/figure.

Besides the runnable entry point, each registration declares the
metadata the runner (:mod:`repro.runner`) needs to cache results
safely: which simulated machines the experiment exercises and a
``rev`` counter an author can bump to invalidate that experiment's
cache entries without any code change (the code fingerprint already
invalidates on *any* source edit; ``rev`` covers e.g. regenerated
reference data).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.errors import ExperimentError
from ..validation.series import ExperimentResult

__all__ = ["Experiment", "register", "get", "all_experiments"]

Runner = Callable[..., ExperimentResult]

_REGISTRY: dict[str, "Experiment"] = {}

#: every valid value of ``Experiment.machines`` entries.
KNOWN_MACHINES = ("maspar", "gcel", "cm5", "t800", "modern")


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one paper artifact."""

    id: str
    title: str
    paper_ref: str
    runner: Runner
    #: simulated machines this experiment runs on (cache metadata).
    machines: tuple[str, ...] = field(default=())
    #: bump to invalidate cached results of this experiment only.
    rev: int = 1

    def run(self, *, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
        if not 0 < scale <= 1.0:
            raise ExperimentError(
                f"scale must be in (0, 1], got {scale}")
        return self.runner(scale=scale, seed=seed)

    def cache_inputs(self) -> dict:
        """The experiment-declared part of its cache key."""
        return {"machines": list(self.machines), "rev": self.rev}


def register(exp_id: str, title: str, paper_ref: str, *,
             machines: tuple[str, ...] = (), rev: int = 1):
    """Decorator registering an experiment runner under ``exp_id``."""
    for m in machines:
        if m not in KNOWN_MACHINES:
            raise ExperimentError(
                f"experiment {exp_id!r} declares unknown machine {m!r}")

    def deco(fn: Runner) -> Runner:
        if exp_id in _REGISTRY:
            raise ExperimentError(f"duplicate experiment id {exp_id!r}")
        _REGISTRY[exp_id] = Experiment(id=exp_id, title=title,
                                       paper_ref=paper_ref, runner=fn,
                                       machines=tuple(machines), rev=rev)
        return fn

    return deco


def get(exp_id: str) -> Experiment:
    _load_all()
    try:
        return _REGISTRY[exp_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ExperimentError(
            f"unknown experiment {exp_id!r}; known: {known}") from None


def all_experiments() -> dict[str, Experiment]:
    _load_all()
    return dict(sorted(_REGISTRY.items(), key=lambda kv: _sort_key(kv[0])))


def _sort_key(exp_id: str):
    if exp_id.startswith("fig"):
        return (1, int(exp_id[3:].split("-")[0]), exp_id)
    if exp_id.startswith("table"):
        return (0, 0, exp_id)
    return (2, 0, exp_id)


def _load_all() -> None:
    """Import every experiment module so its registrations run."""
    from . import (  # noqa: F401
        ablations,
        calibration_figs,
        extensions,
        matmul_figs,
        apsp_figs,
        radix_figs,
        sorting_figs,
        library_figs,
        table1_exp,
    )
