"""All-pairs-shortest-path figures: Figs. 12, 13 and 15."""

from __future__ import annotations

import numpy as np

from ..algorithms import apsp
from ..core.predictions import (
    bsp_apsp,
    ebsp_apsp_maspar,
    mp_bsp_apsp,
    scatter_corrected_apsp,
)
from ..validation.compare import relative_errors
from ..validation.series import ExperimentResult, Series
from .base import register
from .common import calibrated, machine_for, scaled_sizes


def _measure(machine, Ns, seed):
    return np.array([apsp.run(machine, N, seed=seed).time_us for N in Ns])


@register("fig12", "All pairs shortest path on the MasPar",
          "Fig. 12, Section 5.3",
          machines=("maspar",))
def fig12(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    # Full scale: P = 1024, N up to 512 (M = 16 < sqrt(P) = 32, like the
    # paper).  Reduced scales shrink the machine, keeping M < sqrt(P).
    if scale >= 0.99:
        P, Ns = 1024, [128, 256, 512]
    elif scale >= 0.5:
        P, Ns = 256, [64, 128, 256]
    else:
        P, Ns = 64, [32, 64]
    machine = machine_for("maspar", P=P, seed=seed)
    cal = calibrated(machine, seed=seed)
    params = cal.params
    unb = cal.unb

    measured = _measure(machine, Ns, seed)
    pred_mpbsp = np.array([mp_bsp_apsp(N, params, P=P) for N in Ns])
    pred_ebsp = np.array([ebsp_apsp_maspar(N, params, unb, P=P) for N in Ns])

    result = ExperimentResult(
        experiment="fig12",
        title=f"APSP on the MasPar (P={P}): MP-BSP vs E-BSP vs measured",
        x_label="N", y_label="time (us)")
    result.series.append(Series("measured", Ns, measured))
    result.series.append(Series("MP-BSP prediction", Ns, pred_mpbsp))
    result.series.append(Series("E-BSP prediction", Ns, pred_ebsp))

    over = pred_mpbsp[-1] / measured[-1] - 1
    result.check("MP-BSP overestimates massively (paper: +78% at N=512)",
                 over > 0.35, f"error {over:+.0%} at N={Ns[-1]}")
    errs = relative_errors(result.get("measured"),
                           result.get("E-BSP prediction"))
    # E-BSP's closed form counts M single-port steps where M-1 happen, so
    # it overestimates at tiny M; judge it at the largest N (the paper's
    # headline point) plus a loose mean over the sweep.
    tol = 0.25 if P >= 256 else 0.40
    result.check("E-BSP gives a much better estimation (largest N)",
                 abs(float(errs[-1])) < tol,
                 f"E-BSP err at N={Ns[-1]}: {float(errs[-1]):+.1%}")
    result.check("E-BSP reasonable across the sweep",
                 float(np.abs(errs).mean()) < 0.45,
                 f"mean |E-BSP err| = {float(np.abs(errs).mean()):.1%}")
    result.check("E-BSP beats MP-BSP at every point",
                 bool(np.all(np.abs(pred_ebsp - measured)
                             < np.abs(pred_mpbsp - measured))), "")
    result.notes.append(
        "The defect is unbalanced communication: the scatter superstep "
        "activates only sqrt(P) PEs, which BSP prices like a full "
        "h-relation (Section 5.3).")
    if P == 1024 and 512 in Ns:
        i = Ns.index(512)
        result.notes.append(
            f"paper at N=512: predicted 53.9 s, measured 30.3 s; "
            f"ours: predicted {pred_mpbsp[i] / 1e6:.1f} s, "
            f"measured {measured[i] / 1e6:.1f} s")
    return result


@register("fig13", "All pairs shortest path on the GCel",
          "Fig. 13, Section 5.3",
          machines=("gcel",))
def fig13(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("gcel", seed=seed)
    cal = calibrated(machine, seed=seed)
    params = cal.params
    g_mscat = cal.g_scatter or params.g / 9.1
    # multiples of 32 keep M = N/8 either >= 8 or a power-of-two divisor
    Ns = scaled_sizes([32, 64, 128, 256], scale, multiple=32)

    measured = _measure(machine, Ns, seed)
    pred_bsp = np.array([bsp_apsp(N, params) for N in Ns])
    pred_fix = np.array([scatter_corrected_apsp(N, params, g_mscat)
                         for N in Ns])

    result = ExperimentResult(
        experiment="fig13",
        title="APSP on the GCel: BSP vs scatter-corrected vs measured",
        x_label="N", y_label="time (us)")
    result.series.append(Series("measured", Ns, measured))
    result.series.append(Series("BSP prediction", Ns, pred_bsp))
    result.series.append(Series("BSP with g_mscat", Ns, pred_fix))

    over = float((pred_bsp / measured).mean())
    result.check("plain BSP substantially overestimates",
                 over > 1.4, f"mean ratio {over:.2f}")
    errs = relative_errors(result.get("measured"),
                           result.get("BSP with g_mscat"))
    result.check("using g_mscat for the scatter superstep closely matches",
                 float(np.abs(errs).max()) < 0.15,
                 f"max |err| = {float(np.abs(errs).max()):.1%}")
    return result


@register("fig15", "All pairs shortest path on the CM-5",
          "Fig. 15, Section 5.3",
          machines=("cm5",))
def fig15(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("cm5", seed=seed)
    params = calibrated(machine, seed=seed).params
    Ns = scaled_sizes([64, 128, 256], scale, multiple=32)

    measured = _measure(machine, Ns, seed)
    predicted = np.array([bsp_apsp(N, params) for N in Ns])

    result = ExperimentResult(
        experiment="fig15",
        title="APSP on the CM-5: measured vs BSP prediction",
        x_label="N", y_label="time (us)")
    result.series.append(Series("measured", Ns, measured))
    result.series.append(Series("BSP prediction", Ns, predicted))

    errs = relative_errors(result.get("measured"),
                           result.get("BSP prediction"))
    result.check("BSP predicts accurately on the fat tree "
                 "(scatters are not much cheaper there)",
                 float(np.abs(errs).max()) < 0.25,
                 f"max |err| = {float(np.abs(errs).max()):.1%}")
    result.notes.append(
        "Compare the +78% (MasPar) and ~2x (GCel) errors: only high-"
        "bandwidth networks price partial h-relations like full ones "
        "(Section 8).")
    return result
