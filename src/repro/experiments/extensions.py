"""Extension experiments beyond the paper's figures.

``ext-models`` prices the *same executions* under six cost models —
PRAM, LogP, LogGP, BSP, MP-BSP and MP-BPRAM — quantifying the paper's
narrative claims:

* PRAM "does not discourage ... huge amounts of interprocessor
  communication" (§1): it underestimates a communication-bound sort by
  orders of magnitude;
* LogP prices fine-grain traffic like BSP but has no long messages, so
  it mis-prices block workloads the way BSP does;
* LogGP "has many of the aspects of the MP-BPRAM" (§2.2) and tracks it
  closely on block workloads.

``ext-sensitivity`` sweeps one machine parameter (the GCel per-message
software cost) and shows how the paper's headline conclusion — bulk
transfer is "an absolute requirement" on this architecture (§6) —
weakens as messaging gets cheaper, reproducing §8's point that the
needed model features are properties of the machine.
"""

from __future__ import annotations

import numpy as np

from ..algorithms import bitonic
from ..core.bpram import MPBPRAM
from ..core.bsp import BSP
from ..core.logp import LogGP, LogP, logp_from_table1
from ..core.pram import PRAM
from ..machines import GCel
from ..validation.series import ExperimentResult, Series
from .base import register
from .common import calibrated, machine_for, scaled_sizes


@register("ext-models", "Six models price the same sort (extension)",
          "extension of Sections 1, 2.2 and 6",
          machines=("gcel",))
def ext_models(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("gcel", seed=seed)
    params = calibrated(machine, seed=seed).params
    lp = logp_from_table1(params)
    models = [PRAM(params), LogP(params, lp), LogGP(params, lp),
              BSP(params), MPBPRAM(params)]

    Ms = scaled_sizes([256, 512, 1024, 2048], scale, multiple=128)
    meas_blk, meas_word = [], []
    predictions: dict[str, list[float]] = {m.name: [] for m in models}
    for M in Ms:
        res = bitonic.run(machine, M, variant="bpram", seed=seed)
        meas_blk.append(res.time_us / M)
        for model in models:
            predictions[model.name].append(model.trace_cost(res.trace) / M)
        word = bitonic.run(machine_for("gcel", seed=seed + 1), M,
                           variant="bsp-sync", seed=seed)
        meas_word.append(word.time_us / M)

    result = ExperimentResult(
        experiment="ext-models",
        title="MP-BPRAM bitonic sort on the GCel, priced by six models",
        x_label="keys per node (M)", y_label="time per key (us)")
    result.series.append(Series("measured (block)", Ms, meas_blk))
    result.series.append(Series("measured (word, sync)", Ms, meas_word))
    for name, ys in predictions.items():
        result.series.append(Series(name, Ms, ys))

    blk = np.array(meas_blk)
    word = np.array(meas_word)
    pram = np.array(predictions["pram"])
    loggp = np.array(predictions["loggp"])
    logp = np.array(predictions["logp"])
    bpram = np.array(predictions["mp-bpram"])

    result.check("PRAM underestimates the fine-grain sort by >50x (§1)",
                 bool(np.all(pram < word / 50)),
                 f"PRAM {pram[-1]:.0f} vs measured {word[-1]:.0f} us/key")
    result.check("LogGP tracks MP-BPRAM on block workloads (§2.2)",
                 float(np.abs(loggp / bpram - 1).max()) < 0.25,
                 f"max |loggp/bpram - 1| = "
                 f"{float(np.abs(loggp / bpram - 1).max()):.0%}")
    result.check("LogGP within 50% of the block measurement",
                 float(np.abs(loggp / blk - 1).max()) < 0.5,
                 f"max |err| = {float(np.abs(loggp / blk - 1).max()):.0%}")
    result.check("LogP, lacking long messages, misprices the block trace "
                 "the way BSP does", bool(np.all(logp > 5 * blk)),
                 f"LogP {logp[-1]:.0f} vs measured {blk[-1]:.0f} us/key")
    return result


@register("ext-primitives", "Optimal BSP collectives: strategy crossover "
          "(extension)", "extension of reference [16] (IPL '95)",
          machines=("cm5",))
def ext_primitives(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    from ..algorithms.collectives import broadcast
    from ..simulator import run_spmd

    machine_name = "cm5"
    machine = machine_for(machine_name, seed=seed)
    params = calibrated(machine, seed=seed).params
    P = machine.P
    ns = [int(v) for v in
          np.array([64, 256, 1024, 4096, 16384]) * max(scale, 0.25)]
    ns = sorted({max(P, (n // P) * P) for n in ns})

    def bcast_time(n, strategy):
        vec = np.zeros(n)

        def prog(ctx):
            out = yield from broadcast(
                ctx, vec if ctx.rank == 0 else None, 0, "b", strategy)
            return out

        return run_spmd(machine_for(machine_name, seed=seed), prog).time_us

    naive = np.array([bcast_time(n, "naive") for n in ns])
    smart = np.array([bcast_time(n, "two-phase") for n in ns])
    pred_naive = np.array([params.g * n * (P - 1) + params.L for n in ns])
    pred_smart = np.array([2 * (params.g * n * (P - 1) / P + params.L)
                           for n in ns])

    result = ExperimentResult(
        experiment="ext-primitives",
        title=f"Vector broadcast strategies on the {machine_name.upper()}",
        x_label="vector length (words)", y_label="time (us)")
    result.series.append(Series("naive measured", ns, naive))
    result.series.append(Series("naive BSP prediction", ns, pred_naive))
    result.series.append(Series("two-phase measured", ns, smart))
    result.series.append(Series("two-phase BSP prediction", ns, pred_smart))

    result.check("two-phase wins for large vectors (bandwidth-bound)",
                 float(smart[-1]) < 0.5 * float(naive[-1]),
                 f"{smart[-1]:.0f} vs {naive[-1]:.0f} us at n={ns[-1]}")
    errs = np.abs(smart / pred_smart - 1)
    result.check("BSP prices the two-phase broadcast well on the fat tree",
                 float(errs.max()) < 0.30,
                 f"max |err| = {float(errs.max()):.0%}")
    # naive's single-sender pattern is exactly the unbalanced case: on
    # the injection-limited CM-5 BSP stays close, which is why the paper
    # saw no scatter anomaly there.
    errs_n = np.abs(naive / pred_naive - 1)
    result.check("even the single-sender pattern is priced fairly here",
                 float(errs_n.max()) < 0.35,
                 f"max |err| = {float(errs_n.max()):.0%}")
    result.notes.append(
        "On the GCel the naive broadcast is receive-bound and BSP "
        "overprices it ~8x — the same effect as Figs. 13/14.")
    return result


@register("ext-misranking", "BSP picks the wrong algorithm (extension)",
          "extension of Section 6 (the [18] misranking example)",
          machines=("gcel",))
def ext_misranking(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """Section 6: "by ignoring unbalanced communication the BSP model may
    incorrectly predict that one algorithm is superior to another."

    The task is APSP's building block on the GCel: each processor-row
    owner must broadcast an ``M``-word segment along its row.  Two
    designs:

    * **direct** — the owner sends the whole segment to each of the
      ``sqrt(P)-1`` row-mates.  BSP sees ``h = M (sqrt(P)-1)`` and hates
      it; on the machine the pattern is receive-bound (every receiver
      handles only ``M`` messages), so it costs ~``c_recv M``.
    * **scatter+allgather** — the paper's two-superstep scheme.  BSP
      sees ``h = M`` twice and prefers it ~3.5x; but the allgather is a
      genuinely balanced pattern that really does cost ``g M``.

    BSP ranks scatter+allgather far ahead; the measurement reverses the
    verdict; pricing the unbalanced phases correctly (ScatterAwareBSP)
    restores the true ranking.
    """
    import math

    from ..algorithms.apsp import _broadcast_line
    from ..core.ebsp import ScatterAwareBSP
    from ..simulator import run_spmd

    machine = machine_for("gcel", seed=seed)
    cal = calibrated(machine, seed=seed)
    params = cal.params
    flat = BSP(params)
    aware = ScatterAwareBSP(params, g_scatter=cal.g_scatter
                            or params.g / 9.1)
    side = math.isqrt(machine.P)
    M = max(side, int(64 * scale) // side * side)
    w = params.w

    def direct_prog(ctx):
        r, c = divmod(ctx.rank, side)
        if c == 0:
            seg = np.arange(M, dtype=float) + r
            for s in range(1, side):
                ctx.put(r * side + s, seg, nbytes=M * w, count=M,
                        tag="seg", step=s)
        yield ctx.sync("direct-bcast")
        if c == 0:
            return np.arange(M, dtype=float) + r
        return np.asarray(ctx.get(src=r * side, tag="seg"))

    def two_phase_prog(ctx):
        r, c = divmod(ctx.rank, side)
        seg = (np.arange(M, dtype=float) + r) if c == 0 else None
        out = yield from _broadcast_line(
            ctx, seg, owner_line=0, line=c,
            addr=lambda ll: r * side + ll, side=side, M=M, tag="b")
        return out

    results = {}
    for strategy, prog in (("direct", direct_prog),
                           ("two-phase", two_phase_prog)):
        res = run_spmd(machine_for("gcel", seed=seed), prog)
        # both must actually deliver the segment
        expected0 = np.arange(M, dtype=float)
        assert np.allclose(res.returns[1], expected0)
        results[strategy] = {
            "measured": res.time_us,
            "bsp": flat.trace_cost(res.trace),
            "aware": aware.trace_cost(res.trace),
        }

    xs = [0, 1]
    result = ExperimentResult(
        experiment="ext-misranking",
        title=f"Row-broadcast of {M} words on the GCel: who is faster?",
        x_label="strategy (0=direct, 1=scatter+allgather)",
        y_label="time (us)")
    for key, label in (("measured", "measured"), ("bsp", "BSP prediction"),
                       ("aware", "scatter-aware prediction")):
        result.series.append(Series(label, xs,
                                    [results["direct"][key],
                                     results["two-phase"][key]]))

    result.check("BSP ranks scatter+allgather as far superior",
                 results["direct"]["bsp"]
                 > 2.5 * results["two-phase"]["bsp"],
                 f"BSP: direct {results['direct']['bsp']:.0f} vs "
                 f"two-phase {results['two-phase']['bsp']:.0f} us")
    result.check("the measurement reverses the verdict (misranking!)",
                 results["direct"]["measured"]
                 < results["two-phase"]["measured"],
                 f"measured: direct {results['direct']['measured']:.0f} "
                 f"vs two-phase {results['two-phase']['measured']:.0f} us")
    result.check("pricing unbalanced patterns correctly restores the "
                 "right ranking",
                 results["direct"]["aware"]
                 < results["two-phase"]["aware"],
                 f"aware: direct {results['direct']['aware']:.0f} vs "
                 f"two-phase {results['two-phase']['aware']:.0f} us")
    return result


@register("ext-lu", "LU decomposition: a harder-to-parallelise problem "
          "(extension)", "extension of Sections 4.4 and 8",
          machines=("gcel", "cm5"))
def ext_lu(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    from ..algorithms import lu, matmul
    from ..core.predictions import bsp_lu, lu_flops

    Ns = scaled_sizes([64, 128, 256], scale, multiple=32)
    gcel = machine_for("gcel", seed=seed)
    cal_g = calibrated(gcel, seed=seed)
    cm5 = machine_for("cm5", seed=seed)
    cal_c = calibrated(cm5, seed=seed)
    g_bcast = (cal_g.g_scatter or cal_g.params.g / 9.1)

    meas_g, pred_g, fix_g, meas_c, pred_c = [], [], [], [], []
    for N in Ns:
        res_g = lu.run(gcel, N, seed=seed)
        meas_g.append(res_g.time_us)
        pred_g.append(bsp_lu(N, cal_g.params))
        fix_g.append(bsp_lu(N, cal_g.params, g_bcast=g_bcast))
        res_c = lu.run(cm5, N, seed=seed)
        meas_c.append(res_c.time_us)
        pred_c.append(bsp_lu(N, cal_c.params))
    meas_g, pred_g, fix_g = map(np.array, (meas_g, pred_g, fix_g))
    meas_c, pred_c = np.array(meas_c), np.array(pred_c)

    result = ExperimentResult(
        experiment="ext-lu",
        title="LU decomposition: measured vs predicted (GCel and CM-5)",
        x_label="N", y_label="time (us)")
    result.series.append(Series("GCel measured", Ns, meas_g))
    result.series.append(Series("GCel BSP", Ns, pred_g))
    result.series.append(Series("GCel BSP + g_bcast", Ns, fix_g))
    result.series.append(Series("CM-5 measured", Ns, meas_c))
    result.series.append(Series("CM-5 BSP", Ns, pred_c))

    over = float((pred_g / meas_g).mean())
    result.check("BSP overestimates the GCel badly (single-sender "
                 "broadcasts are receive-bound, like APSP's scatter)",
                 over > 3.0, f"mean ratio {over:.1f}")
    errs_fix = np.abs(fix_g / meas_g - 1)
    result.check("the g_mscat-style correction repairs it",
                 float(errs_fix.max()) < 0.30,
                 f"max |err| = {float(errs_fix.max()):.0%}")
    errs_c = np.abs(pred_c / meas_c - 1)
    result.check("BSP stays accurate on the CM-5 fat tree",
                 float(errs_c.max()) < 0.35,
                 f"max |err| = {float(errs_c.max()):.0%}")

    # the Section 8 question: efficiency on a harder problem
    N = Ns[-1]
    t_lu = meas_c[-1]
    eff_lu = (lu_flops(N) * cal_c.params.alpha) / (64 * t_lu)
    mm = matmul.run(cm5, max(64, N // 16 * 16), variant="bpram", seed=seed)
    eff_mm = (mm.setup.N ** 3 * cal_c.params.alpha) / (64 * mm.time_us)
    result.check("LU's parallel efficiency is far below matmul's "
                 "(the paper's closing question, answered)",
                 eff_lu < 0.6 * eff_mm,
                 f"efficiency {eff_lu:.0%} (LU) vs {eff_mm:.0%} (matmul)")
    result.notes.append(
        "LU's shrinking, imbalanced trailing updates and serial pivot "
        "chain cap its efficiency; the models still predict its running "
        "time once unbalanced broadcasts are priced correctly.")
    return result


@register("ext-t800", "General locality on a T800 grid (extension)",
          "extension of Section 3 (ref [15]) and the E-BSP report's "
          "locality half",
          machines=("t800",))
def ext_t800(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    from ..algorithms import stencil
    from ..calibration.fitting import fit_line
    from ..calibration.microbench import TimingSeries, time_phase
    from ..core.ebsp import LocalityAwareBSP
    from ..core.relations import CommPhase
    from ..machines import T800Grid

    machine = T800Grid(seed=seed)
    cal = calibrated(machine, seed=seed)
    params = cal.params
    side = machine.side

    # --- fit the locality law from fixed-distance shift permutations ---
    def shift_phase(d: int) -> CommPhase:
        ranks = np.arange(machine.P)
        cols = ranks % side
        dst = np.where(cols + d < side, ranks + d, -1)
        return CommPhase.permutation(dst, params.w)

    ds = np.arange(1, side)
    times = np.array([
        np.mean([time_phase(T800Grid(seed=seed + t), shift_phase(int(d)))
                 for t in range(3)]) - machine.barrier_us
        for d in ds])
    fit = fit_line(TimingSeries(name="shift", xs=ds.astype(float),
                                mean=times))
    g0, g_hop = fit.intercept, fit.slope
    local_model = LocalityAwareBSP(params, side, g0=max(0.0, g0),
                                   g_hop=g_hop)
    from ..core.bsp import BSP
    flat_model = BSP(params)

    # --- the neighbour workload: Jacobi halo exchange ---
    N = max(32, int(128 * scale) // 32 * 32)
    iters = max(4, int(12 * scale))
    res = stencil.run(machine, N, iters, seed=seed)
    got = stencil.assemble(machine.P, N, res.returns)
    ref = stencil.reference_jacobi(res.inputs, iters)
    correct = bool(np.allclose(got, ref))

    measured = res.time_us
    pred_flat = flat_model.trace_cost(res.trace)
    pred_local = local_model.trace_cost(res.trace)

    xs = [0, 1, 2]
    result = ExperimentResult(
        experiment="ext-t800",
        title=f"Jacobi stencil (N={N}, {iters} sweeps) on a T800 grid",
        x_label="series index", y_label="time (us)")
    result.series.append(Series("measured", xs, [measured] * 3))
    result.series.append(Series("flat BSP", xs, [pred_flat] * 3))
    result.series.append(Series("locality-aware BSP", xs,
                                [pred_local] * 3))

    result.check("stencil result matches the sequential oracle", correct,
                 f"N={N}, {iters} sweeps")
    over = pred_flat / measured
    result.check("flat BSP (calibrated on random patterns) overestimates "
                 "the neighbour workload", over > 1.6, f"ratio {over:.2f}")
    err = abs(pred_local / measured - 1)
    result.check("the locality-aware model prices it well",
                 err < 0.30, f"err {pred_local / measured - 1:+.0%}")
    result.check("fitted per-hop cost is positive and significant",
                 g_hop > 0.05 * params.g,
                 f"g0={g0:.0f}, g_hop={g_hop:.1f} vs flat g={params.g:.0f}")
    result.notes.append(
        "This is the 'general locality' half of E-BSP, which the paper's "
        "MasPar/GCel/CM-5 study could not isolate; the T800 grid of the "
        "authors' earlier study [15] exposes it directly.")
    return result


@register("ext-sensitivity", "Messaging-cost sensitivity of the bulk-"
          "transfer conclusion (extension)", "extension of Sections 6/8",
          machines=("gcel",))
def ext_sensitivity(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    M = max(256, int(1024 * scale) // 256 * 256)
    factors = [1.0, 0.5, 0.2, 0.1, 0.05]
    gains = []
    for f in factors:
        machine = GCel(seed=seed)
        machine.c_send *= f
        machine.c_recv *= f
        machine.barrier_us *= max(f, 0.1)
        machine.drift_window = int(machine.drift_window / max(f, 0.05))
        t_word = bitonic.run(machine, M, variant="bsp-sync",
                             seed=seed).time_us
        machine2 = GCel(seed=seed)
        machine2.c_send *= f
        machine2.c_recv *= f
        t_blk = bitonic.run(machine2, M, variant="bpram", seed=seed).time_us
        gains.append(t_word / t_blk)

    result = ExperimentResult(
        experiment="ext-sensitivity",
        title=f"GCel bulk-transfer gain vs per-message software cost "
              f"(bitonic, M={M})",
        x_label="software cost factor", y_label="word/block time ratio")
    result.series.append(Series("bulk-transfer gain", factors, gains))

    result.check("at the real cost the gain is enormous (paper: ~60x+)",
                 gains[0] > 30, f"x{gains[0]:.0f}")
    result.check("gain decays monotonically as messaging gets cheaper",
                 bool(np.all(np.diff(gains) < 0)),
                 " -> ".join(f"{v:.0f}" for v in gains))
    result.check("a 20x cheaper message layer drops the gain by ~an order",
                 gains[-1] < gains[0] / 8,
                 f"x{gains[0]:.0f} -> x{gains[-1]:.1f}")
    result.notes.append(
        "Whether a model must capture bulk transfer is a property of the "
        "machine's software stack (Section 8), quantified.")
    return result
