"""Shared helpers for experiment modules.

The important convention: every prediction curve in an experiment uses
*calibrated* parameters (fitted from microbenchmarks on the very machine
instance the experiment runs on, :mod:`repro.calibration`), exactly as
the paper first determines Table 1 (Section 3) and then predicts with it
(Section 5).  Calibrations are memoised per (machine, partition, seed).
"""

from __future__ import annotations

from ..calibration.table1 import Calibration, calibration_for
from ..machines import CM5, GCel, MasParMP1, ModernCluster, T800Grid
from ..machines.base import Machine

__all__ = ["machine_for", "calibrated", "scaled_sizes"]


def machine_for(name: str, *, P: int | None = None, seed: int = 0) -> Machine:
    """A fresh machine instance for one experiment run."""
    if name == "maspar":
        return MasParMP1(P=P or 1024, seed=seed)
    if name == "gcel":
        return GCel(P=P or 64, seed=seed)
    if name == "cm5":
        return CM5(P=P or 64, seed=seed)
    if name == "t800":
        return T800Grid(P=P or 64, seed=seed)
    if name == "modern":
        return ModernCluster(P=P or 256, seed=seed)
    raise ValueError(f"unknown machine {name!r}")


def calibrated(machine: Machine, *, seed: int = 0) -> Calibration:
    """Memoised Section-3 calibration of a machine configuration.

    Shares :mod:`repro.calibration`'s process-wide memo, so figures and
    the ``table1`` command fit each machine once per run.  The
    ``seed + 1000`` machine seed keeps the calibration machine's RNG
    stream distinct from the experiment machine's (seed convention of
    the original per-figure calibrations, preserved bit-for-bit).
    """
    return calibration_for(machine.name, P=machine.P,
                           machine_seed=seed + 1000, seed=seed)


def scaled_sizes(sizes: list[int], scale: float, *, multiple: int = 1,
                 minimum: int | None = None) -> list[int]:
    """Scale a sweep down, snapping to a multiple, dropping duplicates."""
    minimum = minimum if minimum is not None else multiple
    out: list[int] = []
    for s in sizes:
        v = max(minimum, int(round(s * scale / multiple)) * multiple)
        if v not in out:
            out.append(v)
    return out
