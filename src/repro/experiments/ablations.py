"""Ablation studies for the design choices the paper calls out.

Not figures of the paper, but direct quantifications of its §5/§6/§8
observations:

* ``abl-stagger`` — what staggering the communication schedule buys on
  each machine (§5.1);
* ``abl-msgsize`` — the message-size sweep behind the conclusion that
  "a satisfactory performance can be obtained by using fixed size short
  messages, but larger than one computational word" (§8: with 16-byte
  messages the short/long gap drops to ~1.37 on the MasPar and ~2.1 on
  the CM-5);
* ``abl-sync`` — the barrier-interval trade-off behind the GCel fix
  (§5.1: barrier every 256 messages);
* ``abl-oversample`` — sample sort's oversampling ratio vs bucket
  imbalance and running time (§4.3).
"""

from __future__ import annotations

import numpy as np

from ..algorithms import bitonic, matmul, samplesort
from ..calibration import hh_permutation_experiment
from ..validation.series import ExperimentResult, Series
from .base import register
from .common import machine_for
from .matmul_figs import MASPAR_MM_P


@register("abl-stagger", "Staggered vs unstaggered schedules, all machines",
          "ablation of Section 5.1",
          machines=("cm5", "gcel", "maspar"))
def abl_stagger(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    configs = [
        ("cm5", None, max(64, int(256 * scale) // 16 * 16)),
        ("gcel", None, max(64, int(256 * scale) // 16 * 16)),
        ("maspar", MASPAR_MM_P, max(100, int(400 * scale) // 100 * 100)),
    ]
    names, ratios = [], []
    for name, P, N in configs:
        machine = machine_for(name, seed=seed)
        t_uns = matmul.run(machine, N, variant="bsp", P=P, seed=seed).time_us
        t_stag = matmul.run(machine, N, variant="bsp-staggered", P=P,
                            seed=seed).time_us
        names.append(f"{name} (N={N})")
        ratios.append(t_uns / t_stag)

    result = ExperimentResult(
        experiment="abl-stagger",
        title="Unstaggered / staggered matmul time ratio",
        x_label="machine index", y_label="slowdown factor")
    result.series.append(Series("unstaggered/staggered",
                                np.arange(len(ratios)), ratios))
    result.notes.extend(f"{n}: x{r:.2f}" for n, r in zip(names, ratios))
    cm5_ratio = ratios[0]
    result.check("CM-5 pays ~20% for the naive schedule (paper: 21%)",
                 1.10 < cm5_ratio < 1.35, f"x{cm5_ratio:.2f}")
    maspar_ratio = ratios[2]
    result.check("the single-port MasPar serialises hot receivers too",
                 maspar_ratio > 1.08, f"x{maspar_ratio:.2f}")
    return result


@register("abl-msgsize", "Message-size sweep for bitonic sort",
          "ablation of Section 8",
          machines=("maspar", "cm5"))
def abl_msgsize(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    M = max(128, int(256 * scale) // 64 * 64)
    groups = [1, 2, 4, 8]

    result = ExperimentResult(
        experiment="abl-msgsize",
        title="Short-message size vs the block-transfer version "
              "(bitonic sort, time ratio to MP-BPRAM)",
        x_label="words per message", y_label="time / block-version time")

    ratios = {}
    for name in ("maspar", "cm5"):
        machine = machine_for(name, seed=seed)
        t_block = bitonic.run(machine, M, variant="bpram", seed=seed).time_us
        ys = []
        for gw in groups:
            t = bitonic.run(machine_for(name, seed=seed), M, variant="bsp",
                            group_words=gw, seed=seed).time_us
            ys.append(t / t_block)
        ratios[name] = np.array(ys)
        result.series.append(Series(name, groups, ys))

    for name in ("maspar", "cm5"):
        result.check(f"{name}: grouping words shrinks the gap monotonically",
                     bool(np.all(np.diff(ratios[name]) <= 0.05)),
                     " -> ".join(f"{v:.2f}" for v in ratios[name]))
    # 16 bytes = 4 words on the MasPar (w=4), 2 words on the CM-5 (w=8)
    mp16 = float(ratios["maspar"][groups.index(4)])
    cm16 = float(ratios["cm5"][groups.index(2)])
    result.check("MasPar at 16-byte messages: gap ~1.4 (paper: 1.37)",
                 1.0 < mp16 < 1.9, f"{mp16:.2f}")
    result.check("CM-5 at 16-byte messages: gap ~2.1 (paper: 2.1)",
                 1.5 < cm16 < 2.9, f"{cm16:.2f}")
    return result


@register("abl-sync", "Barrier interval for GCel message streams",
          "ablation of Section 5.1 (Fig. 7's fix)",
          machines=("gcel",))
def abl_sync(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    h = max(400, int(1000 * scale))
    intervals = [32, 64, 128, 256, 512, 1024]
    times = []
    for interval in intervals:
        series = hh_permutation_experiment(
            machine_for("gcel", seed=seed), [h],
            rng=np.random.default_rng(seed), sync_every=interval, trials=3)
        times.append(float(series.mean[0]))
    plain = hh_permutation_experiment(
        machine_for("gcel", seed=seed + 1), [h],
        rng=np.random.default_rng(seed + 1), sync_every=None, trials=3)
    t_plain = float(plain.mean[0])

    result = ExperimentResult(
        experiment="abl-sync",
        title=f"GCel: {h} back-to-back permutations vs barrier interval",
        x_label="messages between barriers", y_label="time (us)")
    result.series.append(Series("with barriers", intervals, times))
    result.series.append(Series("no barriers", intervals,
                                [t_plain] * len(intervals)))

    best = intervals[int(np.argmin(times))]
    result.check("some barrier interval beats no barriers at all",
                 min(times) < t_plain,
                 f"best {min(times):.0f} us at interval {best} vs "
                 f"{t_plain:.0f} us unsynchronised")
    result.check("too-frequent barriers waste L: interval 32 costs more "
                 "than the best interval", times[0] > min(times) * 1.02,
                 f"{times[0]:.0f} vs {min(times):.0f} us")
    result.check("the paper's 256 is near-optimal",
                 times[intervals.index(256)] < 1.15 * min(times),
                 f"interval 256: {times[intervals.index(256)]:.0f} us")
    return result


@register("abl-layout", "Initial distribution vs block transfers",
          "ablation of Section 4.1",
          machines=("gcel", "cm5"))
def abl_layout(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """§4.1: "the ability to use blocks of this size depends on the
    initial distribution of the matrices.  If the initial distribution
    is different, an extra communication phase ... is required.  In the
    BSP model this is not an issue."  Quantified: start both matmul
    versions from a row-strip layout instead of the 3D-native one.
    """
    # communication-bound sizes make the redistribution phase visible
    N = max(64, int(128 * scale) // 64 * 64)
    rows = {}
    for name, native, strip in (
            ("gcel block", "bpram", "bpram-2d"),
            ("cm5 block", "bpram", "bpram-2d"),
            ("cm5 fine-grain", "bsp-staggered", "bsp-2d")):
        machine = machine_for(name.split()[0], seed=seed)
        t_native = matmul.run(machine, N, variant=native, seed=seed).time_us
        t_strip = matmul.run(machine_for(name.split()[0], seed=seed + 1),
                             N, variant=strip, seed=seed).time_us
        rows[name] = t_strip / t_native

    result = ExperimentResult(
        experiment="abl-layout",
        title=f"Matmul (N={N}) from a mismatched initial distribution: "
              "slowdown vs the 3D-native layout",
        x_label="configuration index", y_label="slowdown factor")
    result.series.append(Series("strip/native time ratio",
                                np.arange(len(rows)), list(rows.values())))
    result.notes.extend(f"{k}: x{v:.2f}" for k, v in rows.items())

    result.check("block versions pay a real redistribution phase",
                 rows["gcel block"] > 1.2 and rows["cm5 block"] > 1.05,
                 f"gcel x{rows['gcel block']:.2f}, "
                 f"cm5 x{rows['cm5 block']:.2f}")
    result.check("the fine-grain BSP version barely notices (§4.1: "
                 "'not an issue')", rows["cm5 fine-grain"] < 1.12,
                 f"x{rows['cm5 fine-grain']:.2f}")
    result.check("layout hurts the message-startup-bound GCel blocks "
                 "most of all", rows["gcel block"]
                 > rows["cm5 fine-grain"] + 0.1, "")
    return result


@register("abl-radix", "Radix width of the local sort",
          "ablation of Section 4.2.1",
          machines=("maspar", "gcel", "cm5"))
def abl_radix(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """The paper uses an 8-bit radix sort (§4.2.1): T = (b/r)(beta 2^r +
    gamma n).  Sweep r on each platform's coefficients and verify r = 8
    is (near-)optimal at the paper's problem sizes.
    """
    from ..core.work import RadixSort

    n = max(512, int(4096 * scale))
    radices = [2, 4, 8, 11, 16]
    result = ExperimentResult(
        experiment="abl-radix",
        title=f"Local radix sort of {n} keys: cost vs digit width",
        x_label="radix bits r", y_label="time (us)")
    best = {}
    for name in ("maspar", "gcel", "cm5"):
        machine = machine_for(name, seed=seed)
        ys = [machine.compute_time(RadixSort(n, bits=32, radix_bits=r), 0)
              for r in radices]
        result.series.append(Series(name, radices, ys))
        best[name] = radices[int(np.argmin(ys))]

    for name, r_opt in best.items():
        result.check(f"{name}: the paper's 8-bit radix is near-optimal",
                     r_opt in (8, 11),
                     f"optimum at r={r_opt} for n={n}")
    result.notes.append(
        "Small r multiplies the passes (b/r); large r blows up the "
        "2^r bucket term — 8 bits balances them at these sizes.")
    return result


@register("abl-oversample", "Sample sort oversampling ratio",
          "ablation of Section 4.3",
          machines=("gcel",))
def abl_oversample(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    M = max(256, int(1024 * scale) // 128 * 128)
    Ss = [4, 8, 16, 32, 64, 128]
    imbalance, times = [], []
    for S in Ss:
        res = samplesort.run(machine_for("gcel", seed=seed), M,
                             variant="bpram", oversample=S, seed=seed)
        sizes = np.array([np.asarray(r).size for r in res.returns])
        imbalance.append(sizes.max() / sizes.mean())
        times.append(res.time_us / M)

    result = ExperimentResult(
        experiment="abl-oversample",
        title=f"Sample sort (GCel, M={M}): oversampling ratio S",
        x_label="oversampling ratio S", y_label="value")
    result.series.append(Series("M_max / M", Ss, imbalance))
    result.series.append(Series("time per key (us)", Ss, times))

    result.check("larger S balances the buckets",
                 imbalance[-1] < imbalance[0],
                 f"M_max/M: {imbalance[0]:.2f} (S=4) -> "
                 f"{imbalance[-1]:.2f} (S=128)")
    result.check("bucket imbalance stays modest at S=64 (paper's regime)",
                 imbalance[Ss.index(64)] < 1.6,
                 f"{imbalance[Ss.index(64)]:.2f}")
    result.notes.append(
        "The splitter phase sorts P*S samples with bitonic sort, so very "
        "large S eventually costs more than the imbalance it removes.")
    return result
