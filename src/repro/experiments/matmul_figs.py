"""Matrix multiplication figures: Figs. 3, 4, 8, 9 and 16."""

from __future__ import annotations

import numpy as np

from ..algorithms import matmul
from ..core.predictions import (
    bpram_matmul,
    bsp_matmul,
    matmul_mflops,
    mp_bsp_matmul,
)
from ..validation.compare import relative_errors
from ..validation.series import ExperimentResult, Series
from .base import register
from .common import calibrated, machine_for, scaled_sizes

#: the MasPar matmul runs on q^3 = 1000 of the 1024 PEs (N = 700 needs
#: q = 10 to divide it, and the measured 39.9 Mflops requires ~1000 PEs).
MASPAR_MM_P = 1000


def _measure(machine, Ns, variant, seed, P=None):
    times = []
    for N in Ns:
        times.append(matmul.run(machine, N, variant=variant, P=P,
                                seed=seed).time_us)
    return np.array(times)


@register("fig3", "MP-BSP matrix multiplication on the MasPar",
          "Fig. 3, Section 5.1",
          machines=("maspar",))
def fig3(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("maspar", seed=seed)
    params = calibrated(machine, seed=seed).params.with_updates(P=MASPAR_MM_P)
    Ns = scaled_sizes([100, 200, 300, 400, 500, 700], scale, multiple=100)
    measured = _measure(machine, Ns, "bsp-staggered", seed, P=MASPAR_MM_P)
    predicted = np.array([mp_bsp_matmul(N, params, P=MASPAR_MM_P)
                          for N in Ns])

    result = ExperimentResult(
        experiment="fig3",
        title="MP-BSP matmul on the MasPar: measured vs predicted",
        x_label="N", y_label="time (us)")
    result.series.append(Series("measured", Ns, measured))
    result.series.append(Series("MP-BSP prediction", Ns, predicted))

    errs = relative_errors(result.get("measured"),
                           result.get("MP-BSP prediction"))
    result.check("deviation below ~14% everywhere (paper: <14%)",
                 np.abs(errs).max() < 0.16,
                 f"max |err| = {np.abs(errs).max():.1%}")
    result.check("prediction errs on the high side (1-relations cost ~1300,"
                 " not g+L~1430)", errs.mean() > 0,
                 f"mean err {errs.mean():+.1%}")
    return result


@register("fig4", "BSP matrix multiplication on the CM-5",
          "Fig. 4, Section 5.1",
          machines=("cm5",))
def fig4(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("cm5", seed=seed)
    params = calibrated(machine, seed=seed).params
    Ns = scaled_sizes([32, 64, 128, 256, 512], scale, multiple=16)
    naive = _measure(machine, Ns, "bsp", seed)
    staggered = _measure(machine, Ns, "bsp-staggered", seed)
    predicted = np.array([bsp_matmul(N, params, P=64) for N in Ns])

    result = ExperimentResult(
        experiment="fig4",
        title="BSP matmul on the CM-5: naive vs staggered vs predicted",
        x_label="N", y_label="time (us)")
    result.series.append(Series("measured (naive order)", Ns, naive))
    result.series.append(Series("measured (staggered)", Ns, staggered))
    result.series.append(Series("BSP prediction", Ns, predicted))

    if 256 in Ns:
        i = Ns.index(256)
        gap = naive[i] / staggered[i] - 1
        result.check("contention costs ~21% at N=256 without staggering",
                     0.12 < gap < 0.30, f"gap {gap:+.1%} (paper: 21%)")
        err = predicted[i] / staggered[i] - 1
        result.check("staggered version matches the prediction at N=256",
                     abs(err) < 0.08, f"err {err:+.1%}")
    if 64 in Ns:
        i = Ns.index(64)
        small_err = predicted[i] / staggered[i] - 1
        result.check("small N deviates (local compute overhead, §5.1)",
                     small_err < -0.02,
                     f"err at N=64: {small_err:+.1%}")
    if 512 in Ns:
        i = Ns.index(512)
        err512 = predicted[i] / staggered[i] - 1
        result.check("large N deviates (cache effects, Section 5.1)",
                     err512 < -0.02, f"err at N=512: {err512:+.1%}")
    return result


@register("fig8", "MP-BPRAM matrix multiplication on the MasPar",
          "Fig. 8, Section 5.2",
          machines=("maspar",))
def fig8(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("maspar", seed=seed)
    params = calibrated(machine, seed=seed).params.with_updates(P=MASPAR_MM_P)
    Ns = scaled_sizes([100, 200, 300, 400, 500, 700], scale, multiple=100)
    measured = _measure(machine, Ns, "bpram", seed, P=MASPAR_MM_P)
    predicted = np.array([bpram_matmul(N, params, P=MASPAR_MM_P) for N in Ns])

    result = ExperimentResult(
        experiment="fig8",
        title="MP-BPRAM matmul on the MasPar: measured vs predicted",
        x_label="N", y_label="time (us)")
    result.series.append(Series("measured", Ns, measured))
    result.series.append(Series("MP-BPRAM prediction", Ns, predicted))

    mid = [i for i, N in enumerate(Ns) if N >= 200]
    errs = relative_errors(result.get("measured"),
                           result.get("MP-BPRAM prediction"))
    result.check("errors below 5% from N=200 up (paper: <3%)",
                 float(np.abs(errs[mid] if mid else errs).max()) < 0.05,
                 f"max |err| = {float(np.abs(errs[mid] if mid else errs).max()):.1%}")
    if Ns[-1] >= 500:
        mf = matmul_mflops(Ns[-1], measured[-1])
        result.check("~40 Mflops at the largest N (paper: 39.9 at N=700)",
                     30 < mf < 50, f"{mf:.1f} Mflops at N={Ns[-1]}")
    return result


@register("fig9", "MP-BPRAM matrix multiplication on the CM-5",
          "Fig. 9, Section 5.2",
          machines=("cm5",))
def fig9(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("cm5", seed=seed)
    params = calibrated(machine, seed=seed).params
    Ns = scaled_sizes([32, 64, 128, 256, 512], scale, multiple=16)
    measured = _measure(machine, Ns, "bpram", seed)
    predicted = np.array([bpram_matmul(N, params, P=64) for N in Ns])

    result = ExperimentResult(
        experiment="fig9",
        title="MP-BPRAM matmul on the CM-5: measured vs predicted",
        x_label="N", y_label="time (us)")
    result.series.append(Series("measured", Ns, measured))
    result.series.append(Series("MP-BPRAM prediction", Ns, predicted))

    mid = [i for i, N in enumerate(Ns) if 128 <= N <= 256]
    errs = relative_errors(result.get("measured"),
                           result.get("MP-BPRAM prediction"))
    if mid:
        result.check("accurate at mid sizes where alpha models local "
                     "compute", float(np.abs(errs[mid]).max()) < 0.10,
                     f"max |err| mid = {float(np.abs(errs[mid]).max()):.1%}")
    result.notes.append(
        "Residual error at the extremes comes from the local multiply "
        "(call overhead / cache), as the paper observes.")
    return result


@register("fig16", "BSP vs MP-BPRAM matmul throughput on the CM-5",
          "Fig. 16, Section 6",
          machines=("cm5",))
def fig16(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("cm5", seed=seed)
    Ns = scaled_sizes([64, 128, 256, 512], scale, multiple=16)
    t_bsp = _measure(machine, Ns, "bsp-staggered", seed)
    t_bpr = _measure(machine, Ns, "bpram", seed)
    mf_bsp = np.array([matmul_mflops(N, t) for N, t in zip(Ns, t_bsp)])
    mf_bpr = np.array([matmul_mflops(N, t) for N, t in zip(Ns, t_bpr)])

    result = ExperimentResult(
        experiment="fig16",
        title="BSP (staggered) vs MP-BPRAM matmul on the CM-5",
        x_label="N", y_label="Mflops")
    result.series.append(Series("staggered BSP", Ns, mf_bsp))
    result.series.append(Series("MP-BPRAM", Ns, mf_bpr))

    i = len(Ns) - 1
    gain = mf_bpr[i] / mf_bsp[i] - 1
    result.check("long messages win clearly at every size",
                 bool(np.all(mf_bpr > mf_bsp * 1.1)),
                 f"gain {gain:+.1%} at N={Ns[i]}")
    if Ns[i] >= 384:
        result.check("~43% gain at the largest N (paper: 43% at 512)",
                     0.30 < gain < 0.55, f"gain {gain:+.1%} at N={Ns[i]}")
        result.check("MP-BPRAM version in the 300-420 Mflops band "
                     "(paper: 366 at N=512)", 280 < mf_bpr[i] < 420,
                     f"{mf_bpr[i]:.0f} Mflops")
    result.notes.append(
        "The improvement is below the bulk gain g/(w sigma) ~ 4.2 because "
        "the communication share shrinks as N grows (Section 6).")
    return result
