"""Radix-sort and modern-machine experiments (scenario extension).

``ext-radix`` races the new integer radix sort against sample sort on
the GCel: both route through the same §4.3.1 padded grid scheme, but
radix sort has no sampling phase and its finishing sort covers only the
``key_bits - log2 P`` low bits (the route itself sorted the top digit),
so it wins on every size — and MP-BPRAM prices it as well as it prices
sample sort.  The BSF master-worker model is priced alongside: relaying
every key through a master serialises the whole route, which is exactly
why farm frameworks do not ship distributed sorts.

``ext-modern`` asks the repo's scenario question: *which 1996
conclusions survive 2020s parameters?*  On the fat-tree profile the
bulk-transfer conclusion does not merely survive — it is amplified:
per-message overhead fell two orders of magnitude since the GCel, but
per-word bandwidth cost fell three, so the fine-grain/block ratio is
*larger* than in 1996.  Meanwhile compute became nearly free, pushing
the sorts fully into the communication-bound regime, and the BSF
``P_max`` bound shows a master-worker farm could not scale them at all.
"""

from __future__ import annotations

import numpy as np

from ..algorithms import bitonic, radix, samplesort
from ..core.bpram import MPBPRAM
from ..core.bsf import BSF
from ..validation.series import ExperimentResult, Series
from .base import register
from .common import calibrated, machine_for, scaled_sizes


@register("ext-radix", "Radix sort vs sample sort on the GCel (extension)",
          "extension of Sections 4.3/4.3.1",
          machines=("gcel",))
def ext_radix(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("gcel", seed=seed)
    params = calibrated(machine, seed=seed).params
    bpram = MPBPRAM(params)
    bsf = BSF(params)

    Ms = scaled_sizes([256, 512, 1024, 2048], scale, multiple=128)
    meas_radix, meas_sample, pred_bpram, pred_bsf = [], [], [], []
    last = None
    for M in Ms:
        res = radix.run(machine, M, variant="bpram", seed=seed)
        last = res
        meas_radix.append(res.time_us / M)
        pred_bpram.append(bpram.trace_cost(res.trace) / M)
        pred_bsf.append(bsf.trace_cost(res.trace) / M)
        smp = samplesort.run(machine_for("gcel", seed=seed + 1), M,
                             variant="bpram", seed=seed)
        meas_sample.append(smp.time_us / M)

    result = ExperimentResult(
        experiment="ext-radix",
        title="Integer radix sort vs sample sort on the GCel (block routed)",
        x_label="keys per node (M)", y_label="time per key (us)")
    result.series.append(Series("radix measured", Ms, meas_radix))
    result.series.append(Series("sample sort measured", Ms, meas_sample))
    result.series.append(Series("mp-bpram prediction", Ms, pred_bpram))
    result.series.append(Series("bsf prediction", Ms, pred_bsf))

    P = machine.P
    allk = np.sort(last.inputs.ravel())
    got = np.concatenate([np.asarray(last.returns[p]) for p in range(P)])
    result.check("radix output is the globally sorted input",
                 bool(np.array_equal(allk, got)),
                 f"{allk.size} keys, M={Ms[-1]}")
    rx, sx = np.array(meas_radix), np.array(meas_sample)
    result.check("radix sort beats sample sort at every size (no sampling "
                 "phase, short finishing sort)",
                 bool(np.all(rx < sx)),
                 f"ratio {float((rx / sx).max()):.2f} at worst")
    errs = np.abs(np.array(pred_bpram) / rx - 1)
    result.check("MP-BPRAM prices the grid-routed radix sort well",
                 float(errs.max()) < 0.25,
                 f"max |err| = {float(errs.max()):.0%}")
    over = float((np.array(pred_bsf) / rx).min())
    result.check("BSF's master relay serialises the route (farms cannot "
                 "sort): >10x overprediction",
                 over > 10.0, f"min ratio {over:.0f}x")
    return result


@register("ext-modern", "Which 1996 conclusions survive 2020s parameters? "
          "(extension)", "extension of Sections 6 and 8",
          machines=("modern", "gcel"))
def ext_modern(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    modern = machine_for("modern", seed=seed)
    params = calibrated(modern, seed=seed).params
    bsf = BSF(params)
    P = modern.P

    Ms = scaled_sizes([256, 512, 1024], scale, multiple=128)
    gain_modern, gain_gcel, share, p_max = [], [], [], []
    for M in Ms:
        word = bitonic.run(machine_for("modern", seed=seed), M,
                           variant="bsp", seed=seed)
        blk = bitonic.run(machine_for("modern", seed=seed + 1), M,
                          variant="bpram", seed=seed)
        gain_modern.append(word.time_us / blk.time_us)
        gword = bitonic.run(machine_for("gcel", seed=seed + 2), M,
                            variant="bsp-sync", seed=seed)
        gblk = bitonic.run(machine_for("gcel", seed=seed + 3), M,
                           variant="bpram", seed=seed)
        gain_gcel.append(gword.time_us / gblk.time_us)

        res = radix.run(machine_for("modern", seed=seed + 4), M,
                        variant="bpram", seed=seed)
        work = sum(float(s.work_nominal_us(params).max())
                   for s in res.trace)
        share.append(work / res.time_us)
        p_max.append(bsf.p_max(res.trace))

    result = ExperimentResult(
        experiment="ext-modern",
        title="Bulk-transfer gain and compute share: 256-node fat tree "
              "vs 1996 GCel (bitonic/radix)",
        x_label="keys per node (M)", y_label="word/block time ratio")
    result.series.append(Series("modern word/block gain", Ms, gain_modern))
    result.series.append(Series("gcel word/block gain", Ms, gain_gcel))
    result.series.append(Series("radix compute share (modern)", Ms, share))
    result.series.append(Series("BSF p_max (radix on modern)", Ms, p_max))

    gm, gg = np.array(gain_modern), np.array(gain_gcel)
    result.check("the bulk-transfer conclusion survives: fine-grain "
                 "bitonic loses >50x on the fat tree",
                 bool(np.all(gm > 50)), f"min gain {float(gm.min()):.0f}x")
    result.check("...and is amplified: per-message overhead fell ~100x "
                 "but per-word cost fell ~1000x, so the gain exceeds "
                 "the GCel's",
                 bool(np.all(gm > gg)),
                 f"modern {float(gm.min()):.0f}x vs gcel "
                 f"{float(gg.max()):.0f}x")
    sh = np.array(share)
    result.check("compute is nearly free: the sorts are communication-"
                 "bound (<25% compute share)",
                 bool(np.all(sh < 0.25)),
                 f"max share {float(sh.max()):.0%}")
    pm = np.array(p_max)
    result.check("BSF: a master-worker farm could not scale this "
                 "workload at all (P_max << P)",
                 bool(np.all(pm < P / 16)),
                 f"max P_max {float(pm.max()):.1f} on P={P}")
    result.notes.append(
        "1996's advice ('pack your data, send it in blocks') is more "
        "binding on 2020s clusters, not less; what changed is *why*: "
        "software overhead per message, not wire bandwidth, is the "
        "fine-grain bottleneck.")
    return result
