"""Microbenchmark figures: Figs. 1, 2, 7 and 14."""

from __future__ import annotations

import numpy as np

from ..calibration import (
    fit_line,
    fit_unbalanced,
    full_h_relation_experiment,
    hh_permutation_experiment,
    multinode_scatter_experiment,
    one_h_relation_experiment,
    partial_permutation_experiment,
)
from ..validation.series import ExperimentResult, Series
from .base import register
from .common import machine_for


@register("fig1", "Time for routing 1-h relations on the MasPar MP-1",
          "Fig. 1, Section 3.1",
          machines=("maspar",))
def fig1(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("maspar", seed=seed)
    rng = np.random.default_rng(seed)
    trials = max(10, int(100 * scale))
    hs = np.array([1, 2, 4, 8, 16, 32])
    series = one_h_relation_experiment(machine, hs, trials=trials, rng=rng)
    fit = fit_line(series)

    result = ExperimentResult(
        experiment="fig1", title="1-h relations on the MasPar",
        x_label="h", y_label="time (us)")
    result.series.append(Series("measured (mean)", hs, series.mean))
    result.series.append(Series("measured (min)", hs, series.lo))
    result.series.append(Series("measured (max)", hs, series.hi))
    result.series.append(Series("fit g*h+L", hs, fit(hs)))

    result.check("fitted g near Table 1's 32.2",
                 25 < fit.slope < 42, f"g = {fit.slope:.1f}")
    result.check("fitted L near Table 1's 1400",
                 1100 < fit.intercept < 1600, f"L = {fit.intercept:.0f}")
    result.check("behaviour not perfectly linear: h=1 lies below the fit",
                 series.mean[0] < fit(1.0),
                 f"measured {series.mean[0]:.0f} vs fit {fit(1.0):.0f} "
                 "(the ~1300 vs ~1430 gap of Section 5.1)")
    spread = float((series.hi - series.lo).max())
    result.check("cluster conflicts produce visible variation (error bars)",
                 spread > 20, f"max spread {spread:.0f} us")
    result.notes.append(
        "Variation stems from one router channel per 16-PE cluster: "
        "destinations landing in one cluster serialise (Section 3.1).")
    return result


@register("fig2", "Partial permutations vs active PEs on the MasPar",
          "Fig. 2, Section 3.1",
          machines=("maspar",))
def fig2(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("maspar", seed=seed)
    rng = np.random.default_rng(seed)
    trials = max(10, int(100 * scale))
    actives = np.unique(np.geomspace(8, machine.P, 14).astype(int))
    series = partial_permutation_experiment(machine, actives, trials=trials,
                                            rng=rng)
    unb, r2 = fit_unbalanced(series)

    result = ExperimentResult(
        experiment="fig2",
        title="Partial permutations as a function of active PEs",
        x_label="active PEs", y_label="time (us)")
    result.series.append(Series("measured", actives, series.mean))
    result.series.append(Series("fit a*P' + b*sqrt(P') + c", actives,
                                [unb(a) for a in actives]))

    full = series.mean[-1]
    idx32 = int(np.argmin(np.abs(actives - 32)))
    ratio = series.mean[idx32] / full
    result.check("32 active PEs take ~13% of a full permutation",
                 abs(ratio - 0.13) < 0.05, f"ratio {ratio:.3f}")
    result.check("second-order fit is good (paper fits T_unb this way)",
                 r2 > 0.995, f"R^2 = {r2:.5f}")
    result.check("fitted coefficients near the paper's 0.84/11.8/73.3",
                 abs(unb.a - 0.84) < 0.2 and abs(unb.b - 11.8) < 6,
                 f"a={unb.a:.2f} b={unb.b:.1f} c={unb.c:.1f}")
    result.notes.append(
        f"T_unb(P') = {unb.a:.2f} P' + {unb.b:.1f} sqrt(P') + {unb.c:.1f}")
    return result


@register("fig7", "h-h permutations vs random h-relations on the GCel",
          "Fig. 7, Section 5.1",
          machines=("gcel",))
def fig7(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    rng = np.random.default_rng(seed)
    hs = np.array([50, 100, 200, 300, 400, 600, 800, 1000])
    if scale < 1.0:
        hs = hs[: max(4, int(len(hs) * scale))]
    trials = max(2, int(3 * scale))

    machine = machine_for("gcel", seed=seed)
    rel = full_h_relation_experiment(machine, hs, trials=trials, rng=rng)
    plain = hh_permutation_experiment(machine_for("gcel", seed=seed + 1), hs,
                                      rng=np.random.default_rng(seed + 1),
                                      sync_every=None, trials=trials)
    synced = hh_permutation_experiment(machine_for("gcel", seed=seed + 2), hs,
                                       rng=np.random.default_rng(seed + 2),
                                       sync_every=256, trials=trials)

    result = ExperimentResult(
        experiment="fig7",
        title="h-h permutations vs h-relations on the GCel (PVM)",
        x_label="h", y_label="time (us)")
    result.series.append(Series("random h-relations", hs, rel.mean))
    result.series.append(Series("h-h permutations", hs, plain.mean))
    result.series.append(Series("h-h + barrier every 256", hs, synced.mean))

    # below the drift window the three curves track each other
    low = hs <= 200
    ratio_low = float((plain.mean[low] / rel.mean[low]).mean())
    result.check("below h~300, h-h permutations track h-relations",
                 0.85 < ratio_low < 1.15, f"mean ratio {ratio_low:.2f}")
    if hs.max() >= 600:
        high = hs >= 600
        ratio_high = float((plain.mean[high] / rel.mean[high]).mean())
        result.check("beyond the window, times elevate (drift out of sync)",
                     ratio_high > 1.15, f"mean ratio {ratio_high:.2f}")
        ratio_sync = float((synced.mean[high] / rel.mean[high]).mean())
        result.check("a barrier every 256 messages eliminates the drop",
                     ratio_sync < min(ratio_high, 1.25),
                     f"synced ratio {ratio_sync:.2f}")
    return result


@register("fig14", "Full h-relations vs multinode scatter on the GCel",
          "Fig. 14, Section 5.3",
          machines=("gcel",))
def fig14(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("gcel", seed=seed)
    rng = np.random.default_rng(seed)
    hs = np.array([16, 32, 64, 128, 256])
    trials = max(2, int(5 * scale))
    rel = full_h_relation_experiment(machine, hs, trials=trials, rng=rng)
    scat = multinode_scatter_experiment(machine, hs, trials=trials, rng=rng)

    result = ExperimentResult(
        experiment="fig14",
        title="Full h-relations vs multinode scatters on the GCel",
        x_label="h", y_label="time (us)")
    result.series.append(Series("full h-relations", hs, rel.mean))
    result.series.append(Series("multinode scatter", hs, scat.mean))

    g_rel = fit_line(rel).slope
    g_mscat = fit_line(scat).slope
    factor = g_rel / g_mscat
    result.check("scatter much cheaper than a full h-relation "
                 "(paper: up to 9.1x)", 5 < factor < 12,
                 f"factor {factor:.1f} (g={g_rel:.0f}, "
                 f"g_mscat={g_mscat:.0f}; paper 4480 vs 492)")
    result.notes.append(
        "BSP charges both patterns identically; this gap is what breaks "
        "the GCel APSP prediction (Fig. 13).")
    return result
