"""Vendor-library comparison figures: Figs. 19 and 20 (Section 7)."""

from __future__ import annotations

import numpy as np

from ..algorithms import matmul
from ..core.predictions import matmul_mflops
from ..library import cmssl, maspar_matmul
from ..validation.series import ExperimentResult, Series
from .base import register
from .common import machine_for, scaled_sizes
from .matmul_figs import MASPAR_MM_P


@register("fig19", "Model-derived matmuls vs the matmul intrinsic (MasPar)",
          "Fig. 19, Section 7",
          machines=("maspar",))
def fig19(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("maspar", seed=seed)
    Ns = scaled_sizes([100, 200, 300, 400, 500, 700], scale, multiple=100)

    mf_word, mf_blk, mf_lib = [], [], []
    for N in Ns:
        t_w = matmul.run(machine, N, variant="bsp-staggered",
                         P=MASPAR_MM_P, seed=seed).time_us
        t_b = matmul.run(machine, N, variant="bpram",
                         P=MASPAR_MM_P, seed=seed).time_us
        mf_word.append(matmul_mflops(N, t_w))
        mf_blk.append(matmul_mflops(N, t_b))
        mf_lib.append(maspar_matmul.mflops(N))
    mf_word, mf_blk, mf_lib = map(np.array, (mf_word, mf_blk, mf_lib))

    result = ExperimentResult(
        experiment="fig19",
        title="Model matmuls vs the matmul intrinsic on the MasPar",
        x_label="N", y_label="Mflops")
    result.series.append(Series("MP-BSP version", Ns, mf_word))
    result.series.append(Series("MP-BPRAM version", Ns, mf_blk))
    result.series.append(Series("matmul intrinsic", Ns, mf_lib))

    result.check("the intrinsic wins at every measured point",
                 bool(np.all(mf_lib > mf_blk) and np.all(mf_lib > mf_word)),
                 f"intrinsic {mf_lib[-1]:.1f} vs MP-BPRAM "
                 f"{mf_blk[-1]:.1f} Mflops at N={Ns[-1]}")
    penalty = 1 - mf_blk[-1] / mf_lib[-1]
    result.check("portability penalty ~35% at the largest N (paper: 35%)",
                 0.20 < penalty < 0.45, f"penalty {penalty:.0%}")
    result.check("MP-BPRAM version beats the MP-BSP version",
                 bool(np.all(mf_blk >= mf_word)), "")
    result.notes.append(
        "Paper at N=700: intrinsic 61.7 Mflops, MP-BPRAM 39.9 Mflops; "
        f"ours: {mf_lib[-1]:.1f} vs {mf_blk[-1]:.1f} at N={Ns[-1]}.")
    return result


@register("fig20", "Model-derived matmuls vs CMSSL gen_matrix_mult (CM-5)",
          "Fig. 20, Section 7",
          machines=("cm5",))
def fig20(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("cm5", seed=seed)
    Ns = scaled_sizes([64, 128, 256, 512], scale, multiple=16)

    mf_bsp, mf_blk, mf_lib = [], [], []
    for N in Ns:
        t_w = matmul.run(machine, N, variant="bsp-staggered", seed=seed).time_us
        t_b = matmul.run(machine, N, variant="bpram", seed=seed).time_us
        mf_bsp.append(matmul_mflops(N, t_w))
        mf_blk.append(matmul_mflops(N, t_b))
        mf_lib.append(cmssl.mflops(N))
    mf_bsp, mf_blk, mf_lib = map(np.array, (mf_bsp, mf_blk, mf_lib))

    result = ExperimentResult(
        experiment="fig20",
        title="Model matmuls vs CMSSL gen_matrix_mult on the CM-5",
        x_label="N", y_label="Mflops")
    result.series.append(Series("staggered BSP version", Ns, mf_bsp))
    result.series.append(Series("MP-BPRAM version", Ns, mf_blk))
    result.series.append(Series("CMSSL gen_matrix_mult", Ns, mf_lib))

    result.check("the model versions are much faster than CMSSL",
                 bool(mf_blk[-1] > 2 * mf_lib[-1]),
                 f"MP-BPRAM {mf_blk[-1]:.0f} vs CMSSL {mf_lib[-1]:.0f} "
                 "Mflops")
    result.check("CMSSL never achieves more than 151 Mflops",
                 bool(np.all(mf_lib <= 151.0)),
                 f"max {mf_lib.max():.0f} Mflops")
    if max(Ns) >= 384:  # the peak needs the paper's large-N points
        result.check("MP-BPRAM version peaks in the 300-420 band "
                     "(paper: 372, 65% of the 576 scalar peak)",
                     280 < mf_blk.max() < 420, f"peak {mf_blk.max():.0f}")
    result.notes.append(
        "The comparison excludes the vector units (as in the paper); "
        f"the VU build would reach {cmssl.mflops_vector_units(512):.0f} "
        "Mflops at N=512.")
    return result
