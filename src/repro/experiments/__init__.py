"""Reproductions of every table and figure in the paper's evaluation.

Run any of them with::

    from repro.experiments import get
    result = get("fig12").run(scale=0.5, seed=0)
    print(result.passed)

or from the command line: ``python -m repro run fig12``.
"""

from .base import Experiment, all_experiments, get, register

__all__ = ["Experiment", "all_experiments", "get", "register"]
