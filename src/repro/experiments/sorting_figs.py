"""Sorting figures: Figs. 5, 6, 10, 11, 17 and 18."""

from __future__ import annotations

import numpy as np

from ..algorithms import bitonic, samplesort
from ..core.predictions import bpram_bitonic, bsp_bitonic, mp_bsp_bitonic
from ..validation.compare import relative_errors
from ..validation.series import ExperimentResult, Series
from .base import register
from .common import calibrated, machine_for, scaled_sizes


def _per_key(machine, Ms, variant, seed, P=None):
    out = []
    for M in Ms:
        res = bitonic.run(machine, M, variant=variant, P=P, seed=seed)
        out.append(res.time_us / M)
    return np.array(out)


@register("fig5", "Bitonic sort time per key on the MasPar",
          "Fig. 5, Section 5.1",
          machines=("maspar",))
def fig5(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("maspar", seed=seed)
    params = calibrated(machine, seed=seed).params
    Ms = scaled_sizes([16, 24, 32, 48, 64], scale, multiple=8,
                      minimum=16)
    measured = _per_key(machine, Ms, "bsp", seed)
    predicted = np.array([mp_bsp_bitonic(M, params) / M for M in Ms])

    result = ExperimentResult(
        experiment="fig5",
        title="Bitonic sort on the MasPar: time per key",
        x_label="keys per PE (M)", y_label="time per key (us)")
    result.series.append(Series("measured", Ms, measured))
    result.series.append(Series("MP-BSP prediction", Ms, predicted))

    ratio = float((predicted / measured).mean())
    result.check("MP-BSP overestimates by almost a factor 2 "
                 "(cube permutations are cheap on the router)",
                 1.7 < ratio < 2.7, f"mean ratio {ratio:.2f} (paper: ~2.0)")
    return result


@register("fig6", "Bitonic sort time per key on the GCel (BSP versions)",
          "Fig. 6, Section 5.1",
          machines=("gcel",))
def fig6(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    params = calibrated(machine_for("gcel", seed=seed), seed=seed).params
    Ms = scaled_sizes([256, 512, 1024, 2048, 4096], scale, multiple=128)
    plain = _per_key(machine_for("gcel", seed=seed), Ms, "bsp-nosync", seed)
    synced = _per_key(machine_for("gcel", seed=seed + 1), Ms, "bsp-sync",
                      seed)
    predicted = np.array([bsp_bitonic(M, params) / M for M in Ms])

    result = ExperimentResult(
        experiment="fig6",
        title="Bitonic sort on the GCel: plain PVM vs synchronized vs BSP",
        x_label="keys per node (M)", y_label="time per key (us)")
    result.series.append(Series("measured (plain PVM)", Ms, plain))
    result.series.append(Series("measured (synchronized)", Ms, synced))
    result.series.append(Series("BSP prediction", Ms, predicted))

    errs = relative_errors(result.get("measured (synchronized)"),
                           result.get("BSP prediction"))
    result.check("synchronized version matches the BSP prediction",
                 float(np.abs(errs).max()) < 0.12,
                 f"max |err| = {float(np.abs(errs).max()):.1%}")
    big = [i for i, M in enumerate(Ms) if M > 300]
    drift = float((plain[big] / synced[big]).mean())
    result.check("plain version drifts out of sync and runs slower",
                 drift > 1.10, f"plain/synced = {drift:.2f} beyond M~300")
    return result


@register("fig10", "MP-BPRAM bitonic sort time per key on the MasPar",
          "Fig. 10, Section 5.2",
          machines=("maspar",))
def fig10(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("maspar", seed=seed)
    params = calibrated(machine, seed=seed).params
    Ms = scaled_sizes([16, 24, 32, 48, 64], scale, multiple=8,
                      minimum=16)
    measured = _per_key(machine, Ms, "bpram", seed)
    predicted = np.array([bpram_bitonic(M, params) / M for M in Ms])

    result = ExperimentResult(
        experiment="fig10",
        title="MP-BPRAM bitonic sort on the MasPar: time per key",
        x_label="keys per PE (M)", y_label="time per key (us)")
    result.series.append(Series("measured", Ms, measured))
    result.series.append(Series("MP-BPRAM prediction", Ms, predicted))

    ratio = float((predicted / measured).mean())
    result.check("MP-BPRAM also overestimates (cube pattern still cheap)",
                 ratio > 1.2, f"mean ratio {ratio:.2f}")
    # compare against the MP-BSP ratio of fig5 on the same sizes
    word = _per_key(machine_for("maspar", seed=seed), Ms, "bsp", seed)
    pred_word = np.array([mp_bsp_bitonic(M, params) / M for M in Ms])
    ratio_word = float((pred_word / word).mean())
    result.check("but is slightly more precise than (MP-)BSP "
                 "(long messages less pattern-sensitive)",
                 ratio < ratio_word,
                 f"{ratio:.2f} vs {ratio_word:.2f}")
    return result


@register("fig11", "MP-BPRAM bitonic sort time per key on the GCel",
          "Fig. 11, Section 5.2",
          machines=("gcel",))
def fig11(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("gcel", seed=seed)
    params = calibrated(machine, seed=seed).params
    Ms = scaled_sizes([256, 512, 1024, 2048, 4096], scale, multiple=128)
    measured = _per_key(machine, Ms, "bpram", seed)
    predicted = np.array([bpram_bitonic(M, params) / M for M in Ms])

    result = ExperimentResult(
        experiment="fig11",
        title="MP-BPRAM bitonic sort on the GCel: time per key",
        x_label="keys per node (M)", y_label="time per key (us)")
    result.series.append(Series("measured", Ms, measured))
    result.series.append(Series("MP-BPRAM prediction", Ms, predicted))

    errs = relative_errors(result.get("measured"),
                           result.get("MP-BPRAM prediction"))
    result.check("estimates almost coincide with the measurements",
                 float(np.abs(errs).max()) < 0.08,
                 f"max |err| = {float(np.abs(errs).max()):.1%}")
    if 4096 in Ms:
        i = Ms.index(4096)
        result.check("~1.4 ms per key at M=4096 (paper: 1.36 ms)",
                     1.0 < measured[i] / 1e3 < 1.8,
                     f"{measured[i] / 1e3:.2f} ms/key")
    return result


@register("fig17", "MP-BSP vs MP-BPRAM bitonic sort on the MasPar",
          "Fig. 17, Section 6",
          machines=("maspar",))
def fig17(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    machine = machine_for("maspar", seed=seed)
    params = calibrated(machine, seed=seed).params
    Ms = scaled_sizes([16, 24, 32, 48, 64], scale, multiple=8,
                      minimum=16)
    word = _per_key(machine, Ms, "bsp", seed)
    block = _per_key(machine_for("maspar", seed=seed + 1), Ms, "bpram", seed)

    result = ExperimentResult(
        experiment="fig17",
        title="MP-BSP vs MP-BPRAM bitonic sort on the MasPar",
        x_label="keys per PE (M)", y_label="time per key (us)")
    result.series.append(Series("MP-BSP (word messages)", Ms, word))
    result.series.append(Series("MP-BPRAM (block messages)", Ms, block))

    big = np.array([M >= 16 for M in Ms])
    gain = float((word[big] / block[big]).mean()) if big.any() \
        else float((word / block).mean())
    bound = params.single_port_bulk_gain
    result.check("block transfers gain ~2.1x (paper: 2.1)",
                 1.6 < gain < 2.7, f"gain {gain:.2f}")
    result.check("observed gain below the (g+L)/(w sigma) bound "
                 f"(paper: 3.3)", gain < bound,
                 f"{gain:.2f} < {bound:.2f}")
    return result


@register("fig18", "Bitonic sort vs sample sort (MP-BPRAM) on the GCel",
          "Fig. 18, Section 6",
          machines=("gcel",))
def fig18(*, scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    Ms = scaled_sizes([128, 256, 512, 1024, 2048], scale, multiple=64)
    S = 64
    bit, plain, stag = [], [], []
    for M in Ms:
        bit.append(bitonic.run(machine_for("gcel", seed=seed), M,
                               variant="bpram", seed=seed).time_us / M)
        plain.append(samplesort.run(machine_for("gcel", seed=seed + 1), M,
                                    variant="bpram", oversample=min(S, M),
                                    seed=seed).time_us / M)
        stag.append(samplesort.run(machine_for("gcel", seed=seed + 2), M,
                                   variant="bpram-staggered",
                                   oversample=min(S, M),
                                   seed=seed).time_us / M)
    bit, plain, stag = np.array(bit), np.array(plain), np.array(stag)

    result = ExperimentResult(
        experiment="fig18",
        title="Bitonic vs sample sort (MP-BPRAM versions) on the GCel",
        x_label="keys per node (M)", y_label="time per key (us)")
    result.series.append(Series("bitonic sort", Ms, bit))
    result.series.append(Series("sample sort", Ms, plain))
    result.series.append(Series("sample sort (staggered)", Ms, stag))

    result.check("sample sort does not outperform bitonic sort",
                 float((plain / bit).min()) > 0.9,
                 f"min sample/bitonic = {float((plain / bit).min()):.2f}")
    big = [i for i, M in enumerate(Ms) if M >= 512]
    gain = float((plain[big] / stag[big]).mean())
    result.check("staggered packing improves by a factor ~2 (paper: ~2)",
                 1.3 < gain < 3.2, f"gain {gain:.2f}")
    result.notes.append(
        "The plain version pays the single-port restriction: the padded "
        "4 sqrt(P)-step routing costs ~16 sigma w M per node while whole "
        "bitonic runs in ~21 sigma w M plus merges (Section 6).")
    return result
