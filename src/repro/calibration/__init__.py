"""Parameter calibration — the reproduction of paper Section 3."""

from .fitting import LineFit, fit_line, fit_unbalanced, r_squared
from .microbench import (
    TimingSeries,
    block_permutation_experiment,
    full_h_relation_experiment,
    hh_permutation_experiment,
    multinode_scatter_experiment,
    one_h_relation_experiment,
    partial_permutation_experiment,
    time_phase,
)
from .table1 import (
    Calibration,
    calibrate,
    calibrate_all,
    calibration_for,
    calibration_memo_stats,
    clear_calibration_memo,
    render_table1,
)

__all__ = [
    "TimingSeries",
    "one_h_relation_experiment",
    "partial_permutation_experiment",
    "full_h_relation_experiment",
    "block_permutation_experiment",
    "hh_permutation_experiment",
    "multinode_scatter_experiment",
    "time_phase",
    "LineFit",
    "fit_line",
    "fit_unbalanced",
    "r_squared",
    "Calibration",
    "calibrate",
    "calibration_for",
    "calibrate_all",
    "calibration_memo_stats",
    "clear_calibration_memo",
    "render_table1",
]
