"""Re-derive Table 1 from simulated microbenchmarks.

This reproduces the paper's Section 3 end-to-end: the (MP-)BSP parameters
``(g, L)`` are fitted from 1-h relations (MasPar) or random full
h-relations (GCel, CM-5), the MP-BPRAM parameters ``(sigma, ell)`` from
full block permutations, the MasPar ``T_unb`` law from partial
permutations, and the GCel ``g_mscat`` from multinode scatters.  The
fitted values — not the published ones — are what the experiment modules
feed into the predictions, so the whole validation pipeline runs the way
the paper ran it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import CalibrationError
from ..core.params import ModelParams, UnbalancedCost, paper_params
from ..machines import make_machine
from ..machines.base import Machine
from .fitting import LineFit, fit_line, fit_unbalanced
from .microbench import (
    block_permutation_experiment,
    full_h_relation_experiment,
    multinode_scatter_experiment,
    one_h_relation_experiment,
    partial_permutation_experiment,
)

__all__ = [
    "Calibration",
    "calibrate",
    "calibration_for",
    "calibrate_all",
    "calibration_memo_stats",
    "clear_calibration_memo",
    "render_table1",
]


@dataclass
class Calibration:
    """Everything a machine calibration produced."""

    machine: str
    params: ModelParams           # fitted g, L, sigma, ell (alpha etc. nominal)
    g_fit: LineFit
    block_fit: LineFit
    unb: UnbalancedCost | None = None
    unb_r2: float | None = None
    g_scatter: float | None = None
    notes: dict = field(default_factory=dict)

    def summary_row(self) -> tuple:
        p = self.params
        return (self.machine, p.P, round(p.g, 1), round(p.L, 0),
                round(p.sigma, 2), round(p.ell, 0))


def _h_sweep(machine: Machine) -> np.ndarray:
    if machine.name == "maspar":
        return np.array([1, 2, 4, 8, 16, 32])
    return np.array([1, 2, 4, 8, 16, 32, 64])


def _block_sweep(machine: Machine) -> np.ndarray:
    # a moderate size range keeps the intercept (ell) well conditioned:
    # with multiplicative timing noise, one huge point would dominate the
    # unweighted fit and swing the intercept by far more than ell itself
    if machine.name == "cm5":
        return np.array([256, 512, 1024, 2048, 4096, 8192])
    if machine.name == "maspar":
        return np.array([192, 256, 384, 512, 768, 1024, 2048])
    return np.array([192, 256, 512, 1024, 2048, 4096])


def calibrate(machine: Machine, *, seed: int = 0,
              trials: int = 10) -> Calibration:
    """Run the Section 3 microbenchmarks on ``machine`` and fit Table 1."""
    rng = np.random.default_rng(seed)

    # (g, L): the MasPar is single-port, so the paper times 1-h relations
    # there; the MIMD machines get random full h-relations.
    if machine.simd:
        series_g = one_h_relation_experiment(machine, _h_sweep(machine),
                                             trials=trials, rng=rng)
    else:
        series_g = full_h_relation_experiment(machine, _h_sweep(machine),
                                              trials=max(3, trials // 2),
                                              rng=rng)
    g_fit = fit_line(series_g)

    # (sigma, ell): full block permutations.  On the MIMD machines a
    # pairwise block exchange synchronises through its matching receive,
    # so no barrier is timed (the paper's ell has no L component).
    series_b = block_permutation_experiment(machine, _block_sweep(machine),
                                            trials=max(3, trials // 2),
                                            rng=rng,
                                            barrier=machine.simd)
    block_fit = fit_line(series_b)

    nominal = machine.nominal
    params = nominal.with_updates(
        g=g_fit.slope, L=max(0.0, g_fit.intercept),
        sigma=block_fit.slope, ell=max(0.0, block_fit.intercept))

    cal = Calibration(machine=machine.name, params=params, g_fit=g_fit,
                      block_fit=block_fit)

    if machine.simd:
        actives = np.unique(np.geomspace(8, machine.P, 12).astype(int))
        series_u = partial_permutation_experiment(machine, actives,
                                                  trials=trials, rng=rng)
        try:
            cal.unb, cal.unb_r2 = fit_unbalanced(series_u)
        except CalibrationError:
            if not machine.disabled:
                raise
            # An ablated router can flatten T_unb(P') below fittability
            # (e.g. the partial-permutation law switched off makes every
            # step cost the full-permutation price, so the linear term
            # fits slightly negative).  E-BSP then simply has no
            # calibration on this configuration — the scoreboard drops
            # it, mirroring the machines where unb never fits.
            cal.notes["unb_fit"] = "unfittable on ablated machine"

    if machine.name == "gcel":
        hs = np.array([16, 32, 64, 128, 256])
        series_s = multinode_scatter_experiment(machine, hs, trials=5,
                                                rng=rng)
        cal.g_scatter = fit_line(series_s).slope

    cal.notes["g_r2"] = g_fit.r2
    cal.notes["block_r2"] = block_fit.r2
    return cal


# ----------------------------------------------------------------------
# Shared fit memoisation.  One whole-paper sweep asks for the same Table 1
# fits dozens of times (every figure calibrates its machine); the memo
# computes each (machine config, seeds, trials) combination once per
# process.  Keys carry the machine-construction seed separately from the
# calibration seed so call sites with different seeding conventions never
# alias.  Returned objects are shared: treat them as frozen.
# ----------------------------------------------------------------------

_MEMO: dict[tuple, Calibration] = {}
_MEMO_STATS = {"hits": 0, "misses": 0}


def calibration_for(name: str, *, P: int | None = None, machine_seed: int = 0,
                    seed: int = 0, trials: int = 10) -> Calibration:
    """Memoised calibration of a freshly constructed machine.

    Unlike :func:`calibrate` (which benchmarks a caller-owned machine and
    advances its RNG), this builds the machine itself, so a memo hit is
    observationally identical to a recomputation.
    """
    kwargs = {} if P is None else {"P": P}
    machine = make_machine(name, seed=machine_seed, **kwargs)
    key = (name, machine.P, machine_seed, seed, trials)
    cal = _MEMO.get(key)
    if cal is not None:
        _MEMO_STATS["hits"] += 1
        return cal
    _MEMO_STATS["misses"] += 1
    cal = calibrate(machine, seed=seed, trials=trials)
    _MEMO[key] = cal
    return cal


def calibration_memo_stats() -> dict[str, int]:
    """Copy of the process-wide memo hit/miss counters."""
    return dict(_MEMO_STATS)


def clear_calibration_memo() -> None:
    """Drop every memoised calibration and reset the counters."""
    _MEMO.clear()
    _MEMO_STATS["hits"] = _MEMO_STATS["misses"] = 0


def calibrate_all(*, seed: int = 0, trials: int = 10) -> dict[str, Calibration]:
    """Calibrate the three paper machines (memoised per process)."""
    return {name: calibration_for(name, machine_seed=seed + i, seed=seed,
                                  trials=trials)
            for i, name in enumerate(("maspar", "gcel", "cm5"))}


def render_table1(cals: dict[str, Calibration]) -> str:
    """Text rendering of Table 1: fitted vs published parameters."""
    header = (f"{'Architecture':<14}{'P':>6}{'g':>10}{'L':>10}"
              f"{'sigma':>10}{'ell':>10}")
    lines = ["Table 1 — (MP-)BSP and MP-BPRAM parameters (microseconds)",
             header, "-" * len(header)]
    for name, cal in cals.items():
        p = cal.params
        lines.append(f"{name:<14}{p.P:>6}{p.g:>10.1f}{p.L:>10.0f}"
                     f"{p.sigma:>10.2f}{p.ell:>10.0f}")
        pub = paper_params(name)
        lines.append(f"{'  (paper)':<14}{pub.P:>6}{pub.g:>10.1f}"
                     f"{pub.L:>10.0f}{pub.sigma:>10.2f}{pub.ell:>10.0f}")
    return "\n".join(lines)
