"""Microbenchmarks that determine the model parameters (paper Section 3).

Each experiment drives a synthetic communication pattern through a
machine model's timing path repeatedly (with a fresh random pattern per
trial) and reports mean/min/max virtual times — the data behind Fig. 1
(1-h relations), Fig. 2 (partial permutations), Fig. 7 (h-h permutations
vs. h-relations), Fig. 14 (multinode scatter) and Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import CalibrationError
from ..core.relations import CommPhase
from ..machines.base import Machine

__all__ = [
    "TimingSeries",
    "random_permutation",
    "random_partial_permutation",
    "random_h_relation",
    "one_h_relation",
    "multinode_scatter",
    "time_phase",
    "one_h_relation_experiment",
    "partial_permutation_experiment",
    "full_h_relation_experiment",
    "block_permutation_experiment",
    "hh_permutation_experiment",
    "multinode_scatter_experiment",
]


@dataclass
class TimingSeries:
    """Timings of one microbenchmark over a parameter sweep."""

    name: str
    xs: np.ndarray
    mean: np.ndarray
    lo: np.ndarray = field(default=None)  # type: ignore[assignment]
    hi: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.xs = np.asarray(self.xs, dtype=float)
        self.mean = np.asarray(self.mean, dtype=float)
        if self.lo is None:
            self.lo = self.mean.copy()
        if self.hi is None:
            self.hi = self.mean.copy()
        if not (self.xs.shape == self.mean.shape):
            raise CalibrationError("TimingSeries arrays must align")


# ----------------------------------------------------------------------
# Pattern generators
# ----------------------------------------------------------------------

def random_permutation(P: int, rng: np.random.Generator,
                       msg_bytes: int = 4) -> CommPhase:
    """A random full permutation without fixed points (all PEs active)."""
    perm = rng.permutation(P)
    fixed = np.nonzero(perm == np.arange(P))[0]
    if fixed.size == 1:
        other = (fixed[0] + 1) % P
        perm[fixed[0]], perm[other] = perm[other], perm[fixed[0]]
    elif fixed.size > 1:
        perm[fixed] = np.roll(perm[fixed], 1)
    return CommPhase.permutation(perm, msg_bytes)


def random_partial_permutation(P: int, active: int, rng: np.random.Generator,
                               msg_bytes: int = 4) -> CommPhase:
    """``active`` random senders paired with ``active`` random recipients."""
    if not 0 < active <= P:
        raise CalibrationError(f"active must be in (0, {P}], got {active}")
    senders = rng.choice(P, size=active, replace=False)
    recipients = rng.choice(P, size=active, replace=False)
    ones = np.ones(active, dtype=np.int64)
    return CommPhase(P=P, src=senders, dst=recipients, count=ones,
                     msg_bytes=np.full(active, msg_bytes, dtype=np.int64))


def random_h_relation(P: int, h: int, rng: np.random.Generator,
                      msg_bytes: int = 4) -> CommPhase:
    """A random full h-relation: ``h`` random permutations overlaid."""
    src = np.tile(np.arange(P), h)
    dst = np.concatenate([rng.permutation(P) for _ in range(h)])
    n = P * h
    return CommPhase(P=P, src=src, dst=dst,
                     count=np.ones(n, dtype=np.int64),
                     msg_bytes=np.full(n, msg_bytes, dtype=np.int64))


def one_h_relation(P: int, h: int, rng: np.random.Generator,
                   msg_bytes: int = 4) -> CommPhase:
    """The Fig. 1 pattern: every PE sends one message; ``ceil(P/h)``
    random destinations receive ``h`` (the last one possibly fewer)."""
    n_dest = -(-P // h)
    dests = rng.choice(P, size=n_dest, replace=False)
    dst = np.repeat(dests, h)[:P]
    return CommPhase(P=P, src=np.arange(P), dst=dst,
                     count=np.ones(P, dtype=np.int64),
                     msg_bytes=np.full(P, msg_bytes, dtype=np.int64))


def multinode_scatter(P: int, h: int, rng: np.random.Generator,
                      msg_bytes: int = 4) -> CommPhase:
    """The Fig. 14 pattern: ``sqrt(P)`` sources scatter ``h`` messages
    each over the remaining processors, receives balanced."""
    root = int(round(P ** 0.5))
    src = np.repeat(np.arange(root), h)
    receivers = np.arange(root, P)
    offset = int(rng.integers(0, receivers.size))
    dst = receivers[(np.arange(root * h) + offset) % receivers.size]
    n = src.size
    return CommPhase(P=P, src=src, dst=dst,
                     count=np.ones(n, dtype=np.int64),
                     msg_bytes=np.full(n, msg_bytes, dtype=np.int64))


# ----------------------------------------------------------------------
# Timing loop
# ----------------------------------------------------------------------

def time_phase(machine: Machine, phase: CommPhase, *,
               barrier: bool = True) -> float:
    """Virtual time of one communication phase incl. synchronisation."""
    clocks = np.zeros(phase.P)
    return float(machine.comm_time(phase, clocks, barrier=barrier).max())


def _sweep(machine, make_phase, xs, trials, rng, name, **kw) -> TimingSeries:
    # One batched pricer for the whole sweep: the pattern analysis is
    # hoisted across all xs*trials phases, while phase construction and
    # machine-noise draws happen in the exact scalar order (the two RNG
    # streams are separate, and CommPricer advances consume machine.rng
    # bit-identically to per-phase machine.comm_time calls).
    phases = [make_phase(int(x), rng) for x in xs for _ in range(trials)]
    pricer = machine.comm_time_batch(phases)
    flat = [float(pricer.comm_time(i, np.zeros(machine.P), **kw).max())
            for i in range(len(phases))]
    means, los, his = [], [], []
    for k in range(len(xs)):
        times = flat[k * trials:(k + 1) * trials]
        means.append(np.mean(times))
        los.append(np.min(times))
        his.append(np.max(times))
    return TimingSeries(name=name, xs=np.asarray(xs, dtype=float),
                        mean=np.array(means), lo=np.array(los),
                        hi=np.array(his))


def one_h_relation_experiment(machine: Machine, hs, *, trials: int = 20,
                              rng: np.random.Generator,
                              msg_bytes: int | None = None) -> TimingSeries:
    """Fig. 1: time of routing 1-h relations vs ``h``."""
    mb = msg_bytes or machine.nominal.w
    return _sweep(machine,
                  lambda h, r: one_h_relation(machine.P, h, r, mb),
                  hs, trials, rng, "1-h relations")


def partial_permutation_experiment(machine: Machine, actives, *,
                                   trials: int = 20,
                                   rng: np.random.Generator) -> TimingSeries:
    """Fig. 2: time of partial permutations vs active PEs."""
    mb = machine.nominal.w
    return _sweep(machine,
                  lambda a, r: random_partial_permutation(machine.P, a, r, mb),
                  actives, trials, rng, "partial permutations")


def full_h_relation_experiment(machine: Machine, hs, *, trials: int = 5,
                               rng: np.random.Generator) -> TimingSeries:
    """Random full h-relations — the (g, L) calibration run (§3.2/§3.3)."""
    mb = machine.nominal.w
    return _sweep(machine,
                  lambda h, r: random_h_relation(machine.P, h, r, mb),
                  hs, trials, rng, "full h-relations")


def block_permutation_experiment(machine: Machine, sizes, *, trials: int = 5,
                                 rng: np.random.Generator,
                                 barrier: bool = True) -> TimingSeries:
    """Full block permutations — the (sigma, ell) calibration run."""
    return _sweep(machine,
                  lambda s, r: random_permutation(machine.P, r, s),
                  sizes, trials, rng, "block permutations", barrier=barrier)


def hh_permutation_experiment(machine: Machine, hs, *,
                              rng: np.random.Generator,
                              sync_every: int | None = None,
                              trials: int = 3) -> TimingSeries:
    """Fig. 7: ``h`` repetitions of one permutation, with or without
    periodic barriers (``sync_every`` messages)."""
    P = machine.P
    means, los, his = [], [], []
    for h in hs:
        times = []
        for _ in range(trials):
            perm = rng.permutation(P)
            clocks = np.zeros(P)
            if sync_every is None:
                ph = CommPhase(P=P, src=np.arange(P), dst=perm,
                               count=np.full(P, int(h), dtype=np.int64),
                               msg_bytes=np.full(P, machine.nominal.w,
                                                 dtype=np.int64))
                clocks = machine.comm_time(ph, clocks, barrier=False)
            else:
                left = int(h)
                while left > 0:
                    c = min(sync_every, left)
                    ph = CommPhase(P=P, src=np.arange(P), dst=perm,
                                   count=np.full(P, c, dtype=np.int64),
                                   msg_bytes=np.full(P, machine.nominal.w,
                                                     dtype=np.int64))
                    clocks = machine.comm_time(ph, clocks, barrier=True)
                    left -= c
            times.append(float(clocks.max()))
        means.append(np.mean(times))
        los.append(np.min(times))
        his.append(np.max(times))
    label = "h-h permutations" if sync_every is None else \
        f"h-h permutations (barrier/{sync_every})"
    return TimingSeries(name=label, xs=np.asarray(hs, dtype=float),
                        mean=np.array(means), lo=np.array(los),
                        hi=np.array(his))


def multinode_scatter_experiment(machine: Machine, hs, *, trials: int = 5,
                                 rng: np.random.Generator) -> TimingSeries:
    """Fig. 14: multinode scatter times vs ``h``."""
    mb = machine.nominal.w
    return _sweep(machine,
                  lambda h, r: multinode_scatter(machine.P, h, r, mb),
                  hs, trials, rng, "multinode scatter")
