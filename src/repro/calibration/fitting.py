"""Least-squares fits that turn microbenchmark timings into parameters.

The paper fits straight lines to 1-h-relation / h-relation / block-
permutation timings (yielding ``g``, ``L``, ``sigma``, ``ell``) and a
second-order polynomial in ``sqrt(P')`` to the partial-permutation
timings (yielding ``T_unb``, §3.1).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from ..core.errors import CalibrationError
from ..core.params import UnbalancedCost
from .microbench import TimingSeries

__all__ = ["LineFit", "fit_line", "fit_unbalanced", "r_squared"]


@dataclass(frozen=True)
class LineFit:
    """A fitted straight line ``y = slope * x + intercept``.

    Frozen and JSON-serialisable so memoised calibrations can be shared
    (and, if persisted, round-tripped) without aliasing hazards.
    """

    slope: float
    intercept: float
    r2: float

    def __call__(self, x: float) -> float:
        return self.slope * x + self.intercept

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "LineFit":
        return cls(slope=data["slope"], intercept=data["intercept"],
                   r2=data["r2"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"LineFit(slope={self.slope:.4g}, "
                f"intercept={self.intercept:.4g}, r2={self.r2:.4f})")


def r_squared(ys: np.ndarray, fitted: np.ndarray) -> float:
    """Coefficient of determination of a fit."""
    ys = np.asarray(ys, dtype=float)
    fitted = np.asarray(fitted, dtype=float)
    ss_res = float(((ys - fitted) ** 2).sum())
    ss_tot = float(((ys - ys.mean()) ** 2).sum())
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_line(series: TimingSeries) -> LineFit:
    """Fit ``y = slope x + intercept`` to a timing series."""
    if series.xs.size < 2:
        raise CalibrationError("need at least two points for a line fit")
    A = np.column_stack([series.xs, np.ones_like(series.xs)])
    coef, *_ = np.linalg.lstsq(A, series.mean, rcond=None)
    slope, intercept = float(coef[0]), float(coef[1])
    if slope < 0:
        raise CalibrationError(
            f"non-physical negative slope {slope:.3g} fitting {series.name}")
    return LineFit(slope, intercept, r_squared(series.mean, A @ coef))


def fit_unbalanced(series: TimingSeries) -> tuple[UnbalancedCost, float]:
    """Fit ``T_unb(P') = a P' + b sqrt(P') + c`` (paper §3.1, Fig. 2).

    Returns the fitted law and its R^2.
    """
    if series.xs.size < 3:
        raise CalibrationError("need at least three points for the "
                               "second-order fit")
    A = np.column_stack([series.xs, np.sqrt(series.xs),
                         np.ones_like(series.xs)])
    coef, *_ = np.linalg.lstsq(A, series.mean, rcond=None)
    a, b, c = (float(v) for v in coef)
    if a < 0:
        raise CalibrationError(
            f"non-physical negative linear term a={a:.3g} in T_unb fit")
    return UnbalancedCost(a=a, b=b, c=c), r_squared(series.mean, A @ coef)
