"""The prediction oracle behind ``POST /predict`` and ``POST /compare``.

A request names a machine, a cost model, an algorithm and a problem size;
the oracle runs the workload on the simulated machine (``engine="auto"``,
so the vector fast path is taken whenever a port exists), prices the
resulting trace under the requested model with *calibrated* parameters,
and returns the measured/predicted times plus a comp/comm/sync breakdown.

Two evaluation paths exist on purpose:

* :func:`predict_offline` — the scalar reference: one request, priced via
  :meth:`CostModel.trace_cost`.  This is byte-for-byte the offline
  ``engine="auto"`` pipeline every experiment uses.
* :func:`evaluate_batch` — the serving path: the micro-batcher hands it a
  coalesced batch; requests sharing a ``(machine, model)`` pair are priced
  by **one** :meth:`CostModel.comm_cost_batch` call over the concatenated
  supersteps of all their traces, and simulations are deduplicated per
  ``(machine, algorithm, size, seed)``.

The equivalence tests assert the two paths are bit-identical — batching
must be a pure scheduling optimisation, never a numeric one.

Calibrations come from :func:`repro.experiments.common.calibrated`, i.e.
the process-wide ``calibration_for`` memo: the first request against a
machine configuration pays the Section 3 microbenchmark fit, every later
one hits the memo (the server pre-warms the three paper machines at
boot).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms import apsp, bitonic, lu, matmul, radix, samplesort, stencil
from ..calibration.table1 import Calibration
from ..core.base import CostModel
from ..core.bpram import MPBPRAM
from ..core.bsf import BSF
from ..core.bsp import BSP
from ..core.ebsp import EBSP
from ..core.errors import ReproError
from ..core.logp import LogGP, logp_from_table1
from ..core.mp_bsp import MPBSP
from ..core.pram import PRAM
from ..experiments.common import calibrated, machine_for
from ..machines import MACHINES
from ..machines.base import Machine
from ..simulator.result import RunResult
from ..validation.scoreboard import Cell

__all__ = ["PredictRequest", "ALGORITHMS", "MODELS", "default_size",
           "predict_offline", "compare_offline", "ablate_offline",
           "bounds_offline", "evaluate_batch", "OracleError"]


class OracleError(ReproError):
    """A request the oracle cannot serve (unknown name, bad size...)."""


# ----------------------------------------------------------------------
# Workload and model registries
# ----------------------------------------------------------------------

def _run_matmul(machine: Machine, size: int, seed: int,
                variant: str) -> RunResult:
    q = 4 if machine.P >= 64 else 2
    return matmul.run(machine, size, variant=variant, P=q ** 3, seed=seed)


#: algorithm name -> (default size, runner(machine, size, seed)).
#: Sizes mirror the ``repro attribute`` defaults.
ALGORITHMS: dict[str, tuple[int, object]] = {
    "matmul": (128, lambda m, n, s: _run_matmul(m, n, s, "bsp-staggered")),
    "matmul-naive": (128, lambda m, n, s: _run_matmul(m, n, s, "bsp")),
    "bitonic": (64, lambda m, n, s: bitonic.run(m, n, variant="bsp",
                                                seed=s)),
    "bitonic-blk": (512, lambda m, n, s: bitonic.run(m, n, variant="bpram",
                                                     seed=s)),
    "samplesort": (256, lambda m, n, s: samplesort.run(m, n,
                                                       variant="bpram",
                                                       seed=s)),
    "radix": (256, lambda m, n, s: radix.run(m, n, variant="bpram",
                                             seed=s)),
    "apsp": (64, lambda m, n, s: apsp.run(m, n, seed=s)),
    "lu": (64, lambda m, n, s: lu.run(m, n, seed=s)),
    "stencil": (64, lambda m, n, s: stencil.run(m, n, 8, seed=s)),
}


def _build_model(name: str, cal: Calibration) -> CostModel:
    params = cal.params
    if name == "bsp":
        return BSP(params)
    if name == "mp-bsp":
        return MPBSP(params)
    if name == "mp-bpram":
        return MPBPRAM(params)
    if name == "pram":
        return PRAM(params)
    if name == "loggp":
        return LogGP(params, logp_from_table1(params))
    if name == "bsf":
        return BSF(params)
    if name == "e-bsp":
        if cal.unb is None:
            raise OracleError(
                "model 'e-bsp' needs the unbalanced-cost calibration, "
                "which only the maspar provides")
        return EBSP(params, cal.unb)
    raise OracleError(f"unknown model {name!r}; known: {', '.join(MODELS)}")


#: model names ``POST /predict`` accepts (e-bsp is maspar-only).
MODELS = ("bsp", "mp-bsp", "mp-bpram", "pram", "loggp", "bsf", "e-bsp")


def default_size(algorithm: str) -> int:
    try:
        return ALGORITHMS[algorithm][0]
    except KeyError:
        raise OracleError(f"unknown algorithm {algorithm!r}; known: "
                          f"{', '.join(ALGORITHMS)}") from None


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PredictRequest:
    """One fully validated ``/predict`` (or ``/compare``) workload."""

    machine: str
    model: str          # ignored by /compare, which prices every model
    algorithm: str
    size: int
    seed: int = 0

    @classmethod
    def from_json(cls, doc: dict, *, need_model: bool = True
                  ) -> "PredictRequest":
        """Validate a JSON body; raise :class:`OracleError` with a
        client-presentable message on any problem."""
        if not isinstance(doc, dict):
            raise OracleError("request body must be a JSON object")
        machine = doc.get("machine")
        if machine not in MACHINES:
            raise OracleError(f"unknown machine {machine!r}; known: "
                              f"{', '.join(MACHINES)}")
        algorithm = doc.get("algorithm")
        if algorithm not in ALGORITHMS:
            raise OracleError(f"unknown algorithm {algorithm!r}; known: "
                              f"{', '.join(ALGORITHMS)}")
        model = doc.get("model", "bsp")
        if need_model and model not in MODELS:
            raise OracleError(f"unknown model {model!r}; known: "
                              f"{', '.join(MODELS)}")
        size = doc.get("size")
        if size is None:
            scale = doc.get("scale", 1.0)
            if not isinstance(scale, (int, float)) or not 0 < scale <= 1:
                raise OracleError(f"scale must be in (0, 1], got {scale!r}")
            size = max(1, int(round(default_size(algorithm) * scale)))
        if not isinstance(size, int) or isinstance(size, bool) \
                or not 0 < size <= 65536:
            raise OracleError(f"size must be an int in [1, 65536], "
                              f"got {size!r}")
        seed = doc.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool) \
                or not 0 <= seed < 2 ** 31:
            raise OracleError(f"seed must be a non-negative int, "
                              f"got {seed!r}")
        return cls(machine=machine, model=model, algorithm=algorithm,
                   size=size, seed=seed)

    @property
    def sim_key(self) -> tuple:
        """What determines the simulated trace (model excluded)."""
        return (self.machine, self.algorithm, self.size, self.seed)


def _simulate(req: PredictRequest) -> tuple[RunResult, Calibration]:
    """Run the workload on a fresh machine and calibrate it.

    Machine construction, seeding and calibration follow the exact
    conventions of the offline experiments (``machine_for`` +
    ``calibrated``), so predictions agree with ``repro attribute`` and
    the figures.
    """
    machine = machine_for(req.machine, seed=req.seed)
    cal = calibrated(machine, seed=req.seed)
    _, runner = ALGORITHMS[req.algorithm]
    try:
        res = runner(machine, req.size, req.seed)
    except ReproError as exc:
        raise OracleError(f"cannot run {req.algorithm} at size "
                          f"{req.size} on {req.machine}: {exc}") from exc
    return res, cal


def _response(req: PredictRequest, res: RunResult, model: CostModel,
              comp: list[float], comm: list[float]) -> dict:
    """Assemble one /predict response from per-superstep terms.

    ``predicted_us`` is accumulated left-to-right exactly like
    :meth:`CostModel.trace_cost` (``sum(work + comm)`` per superstep), so
    the batched path reproduces the scalar path bit-for-bit.
    """
    predicted = sum(w + c for w, c in zip(comp, comm))
    trace = res.trace
    n_sync = sum(1 for s in trace if not s.phase.is_empty)
    measured = res.time_us
    return {
        "machine": req.machine,
        "model": req.model,
        "algorithm": req.algorithm,
        "size": req.size,
        "seed": req.seed,
        "P": trace.P,
        "supersteps": len(trace),
        "syncs": n_sync,
        "messages": trace.total_messages,
        "bytes": trace.total_bytes,
        "measured_us": measured,
        "predicted_us": predicted,
        "relative_error": (predicted - measured) / measured
        if measured else 0.0,
        "breakdown": {
            # comp: the model's `c` term summed over supersteps; comm:
            # everything else (the model's communication charge,
            # latency included); sync_nominal: `L x syncs`, an
            # informational slice of comm for BSP-family models.
            "comp_us": sum(comp),
            "comm_us": sum(comm),
            "sync_nominal_us": model.params.L * n_sync,
        },
    }


# ----------------------------------------------------------------------
# Offline (scalar) path
# ----------------------------------------------------------------------

def predict_offline(doc_or_req) -> dict:
    """One request through the plain offline pipeline.

    This is the reference the batched path must match bit-for-bit: the
    trace is priced with :meth:`CostModel.trace_cost`, i.e. the same
    call the experiments and ``repro attribute`` make.
    """
    req = (doc_or_req if isinstance(doc_or_req, PredictRequest)
           else PredictRequest.from_json(doc_or_req))
    res, cal = _simulate(req)
    model = _build_model(req.model, cal)
    comp = [s.max_work_nominal_us(model.params) for s in res.trace]
    comm = model.comm_cost_batch([s.phase for s in res.trace])
    out = _response(req, res, model, comp, comm)
    # cross-check: the breakdown must reproduce trace_cost exactly
    assert out["predicted_us"] == model.trace_cost(res.trace)
    return out


def compare_offline(doc_or_req) -> dict:
    """Price one workload under every applicable model, ranked by |error|."""
    req = (doc_or_req if isinstance(doc_or_req, PredictRequest)
           else PredictRequest.from_json(doc_or_req, need_model=False))
    res, cal = _simulate(req)
    measured = res.time_us
    cells = []
    for name in MODELS:
        if name == "e-bsp" and cal.unb is None:
            continue
        model = _build_model(name, cal)
        cells.append(Cell(workload=req.algorithm, machine=req.machine,
                          model=name, measured_us=measured,
                          predicted_us=model.trace_cost(res.trace)))
    cells.sort(key=lambda c: abs(c.error))
    return {
        "machine": req.machine,
        "algorithm": req.algorithm,
        "size": req.size,
        "seed": req.seed,
        "measured_us": measured,
        "best_model": cells[0].model if cells else None,
        "ranking": [c.to_dict() for c in cells],
    }


def ablate_offline(doc_or_req) -> dict:
    """One ablation request through the plain offline pipeline.

    The reference for ``POST /ablate``: a served report must be
    byte-identical to this (the ablation evaluator is deterministic and
    its execution knobs — jobs, cache state — never change the bytes).
    Runs with ``jobs=1``: inside a batch worker the matrix is evaluated
    inline rather than fanning out a process pool per HTTP request.
    """
    from ..ablation import AblateRequest, ablate

    req = (doc_or_req if isinstance(doc_or_req, AblateRequest)
           else AblateRequest.from_json(doc_or_req))
    return ablate(req)


def bounds_offline(doc_or_req) -> dict:
    """One optimality-bounds request through the offline pipeline.

    The reference for ``POST /bounds``: a served report must be
    byte-identical to this (measurement is deterministic and the
    execution knobs — jobs, cache/IR-store state — never change the
    bytes).  Runs with ``jobs=1`` inside a batch worker.
    """
    from ..bounds import BoundsRequest, bounds

    req = (doc_or_req if isinstance(doc_or_req, BoundsRequest)
           else BoundsRequest.from_json(doc_or_req))
    return bounds(req)


# ----------------------------------------------------------------------
# Batched (serving) path
# ----------------------------------------------------------------------

def evaluate_batch(items: list[tuple[str, tuple, PredictRequest]]
                   ) -> dict[tuple, object]:
    """Evaluate one micro-batch of ``(kind, key, request)`` jobs.

    ``kind`` is ``"predict"``, ``"compare"``, ``"ablate"`` or
    ``"bounds"``.  Returns
    ``key -> response dict`` (or ``key -> Exception`` for per-job
    failures — one bad request never poisons its batch-mates).

    Coalescing, in order:

    1. simulations are deduplicated on ``req.sim_key`` — ten clients
       asking about the same workload trigger one simulator run;
    2. predict jobs sharing ``(machine, model, seed)`` — hence sharing
       one calibrated :class:`CostModel` — have the supersteps of *all*
       their traces priced by a single ``comm_cost_batch`` call, the
       columnar fast path of PR 3.
    """
    out: dict[tuple, object] = {}
    sims: dict[tuple, tuple[RunResult, Calibration] | Exception] = {}

    def sim(req: PredictRequest):
        got = sims.get(req.sim_key)
        if got is None:
            try:
                got = _simulate(req)
            except Exception as exc:  # noqa: BLE001 — reported per job
                got = exc
            sims[req.sim_key] = got
        if isinstance(got, Exception):
            raise got
        return got

    # group predict jobs per cost-model instance; run compare inline
    groups: dict[tuple, list[tuple[tuple, PredictRequest, RunResult,
                                   CostModel]]] = {}
    for kind, key, req in items:
        try:
            if kind == "compare":
                out[key] = compare_offline(req)
                continue
            if kind == "ablate":
                # heavyweight and self-caching (the result cache makes
                # repeats incremental); runs inline like compare
                out[key] = ablate_offline(req)
                continue
            if kind == "bounds":
                # same discipline: self-caching via the result cache
                # and the IR store, inline in the batch worker
                out[key] = bounds_offline(req)
                continue
            res, cal = sim(req)
            gkey = (req.machine, req.model, req.seed)
            group = groups.get(gkey)
            if group is None:
                model = _build_model(req.model, cal)  # may raise: e-bsp
                group = groups[gkey] = []
            else:
                model = group[0][3]
            group.append((key, req, res, model))
        except Exception as exc:  # noqa: BLE001
            out[key] = exc

    for group in groups.values():
        model = group[0][3]
        phases = [s.phase for _, _, res, _ in group for s in res.trace]
        try:
            comm_all = model.comm_cost_batch(phases)
        except Exception as exc:  # noqa: BLE001
            for key, *_ in group:
                out[key] = exc
            continue
        at = 0
        for key, req, res, _ in group:
            n = len(res.trace)
            comm = comm_all[at:at + n]
            at += n
            comp = [s.max_work_nominal_us(model.params) for s in res.trace]
            out[key] = _response(req, res, model, comp, comm)
    return out
