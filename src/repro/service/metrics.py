"""Hand-rolled Prometheus instrumentation (text exposition format 0.0.4).

No client library dependency: the service only needs counters, gauges
and histograms, all updated from the event-loop thread, so a few dozen
lines of dict bookkeeping suffice.  ``GET /metrics`` renders the
registry; the loadtest harness parses the same text back to report the
server-side batch-size distribution.

Catalogue (all prefixed ``repro_``):

========================================  =========  ======================
metric                                    type       labels
========================================  =========  ======================
``repro_requests_total``                  counter    ``endpoint, status``
``repro_request_duration_seconds``        histogram  ``endpoint``
``repro_batch_size``                      histogram  —
``repro_batches_total``                   counter    —
``repro_lru_hits_total``                  counter    ``kind``
``repro_lru_misses_total``                counter    ``kind``
``repro_lru_hit_ratio``                   gauge      —
``repro_inflight_requests``               gauge      —
``repro_service_info``                    gauge      ``version``
``repro_faults_injected_total``           counter    ``point``
``repro_retries_total``                   counter    ``site``
``repro_rejected_total``                  counter    ``reason``
``repro_arena_ops_total``                 counter    ``op``
========================================  =========  ======================

``repro_faults_injected_total`` / ``repro_retries_total`` /
``repro_rejected_total`` instrument the fault-injection/recovery layer
(:mod:`repro.faults`): how often each fault point fired, how many
bounded retries the dispatcher spent, and why requests were shed
(``breaker`` | ``saturated`` | ``deadline``).
``repro_arena_ops_total`` mirrors the shared-memory arena's counters
(``hit`` | ``miss`` | ``put`` | ``skip`` | ``quarantine`` |
``contended``) when the fleet arena is attached.

Fleet aggregation: every metric can dump a structural
:meth:`~_Metric.snapshot`; :func:`merge_snapshots` folds the snapshots
of N worker processes into fleet-wide totals (counters and histograms
sum, gauges follow per-metric rules) and :func:`render_snapshot` turns
a snapshot back into exposition text — for one worker's own snapshot,
byte-identical to its ``render()``.
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "ServiceMetrics", "parse_histogram", "merge_snapshots",
           "render_snapshot"]

#: default latency buckets, in seconds (1 ms ... 10 s).
LATENCY_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                   0.5, 1.0, 2.5, 5.0, 10.0)
#: batch-size buckets (powers of two up to the default max batch).
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def _escape(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r'\"')
            .replace("\n", r"\n"))


def _labelstr(names: tuple[str, ...], values: tuple) -> str:
    if not names:
        return ""
    inner = ",".join(f'{n}="{_escape(v)}"' for n, v in zip(names, values))
    return "{" + inner + "}"


def _fmt(v: float) -> str:
    """Prometheus float formatting: integers without the trailing .0."""
    f = float(v)
    return str(int(f)) if f.is_integer() else repr(f)


class _Metric:
    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)

    def header(self) -> list[str]:
        return [f"# HELP {self.name} {self.help}",
                f"# TYPE {self.name} {self.kind}"]

    def _snapshot_head(self) -> dict:
        return {"name": self.name, "kind": self.kind, "help": self.help,
                "labels": list(self.labelnames)}


class Counter(_Metric):
    kind = "counter"

    def __init__(self, name, help, labelnames=()):
        super().__init__(name, help, labelnames)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = tuple(str(labels[n]) for n in self.labelnames)
        self._values[key] = self._values.get(key, 0.0) + amount

    def set(self, value: float, **labels) -> None:
        """Absolute update — for mirroring an externally maintained
        monotonic count (e.g. the shared arena's own stats)."""
        key = tuple(str(labels[n]) for n in self.labelnames)
        self._values[key] = float(value)

    def value(self, **labels) -> float:
        key = tuple(str(labels[n]) for n in self.labelnames)
        return self._values.get(key, 0.0)

    def total(self) -> float:
        return sum(self._values.values())

    def render(self) -> list[str]:
        lines = self.header()
        for key in sorted(self._values):
            lines.append(f"{self.name}{_labelstr(self.labelnames, key)} "
                         f"{_fmt(self._values[key])}")
        if not self._values and not self.labelnames:
            lines.append(f"{self.name} 0")
        return lines

    def snapshot(self) -> dict:
        return {**self._snapshot_head(),
                "values": [[list(k), v] for k, v in self._values.items()]}


class Gauge(_Metric):
    kind = "gauge"

    def __init__(self, name, help, labelnames=()):
        super().__init__(name, help, labelnames)
        self._values: dict[tuple, float] = {}
        #: optional zero-arg callback rendered instead of stored values
        self.callback = None

    def set(self, value: float, **labels) -> None:
        key = tuple(str(labels[n]) for n in self.labelnames)
        self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = tuple(str(labels[n]) for n in self.labelnames)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        key = tuple(str(labels[n]) for n in self.labelnames)
        return self._values.get(key, 0.0)

    def render(self) -> list[str]:
        lines = self.header()
        values = self._values
        if self.callback is not None:
            values = {(): float(self.callback())}
        for key in sorted(values):
            lines.append(f"{self.name}{_labelstr(self.labelnames, key)} "
                         f"{_fmt(values[key])}")
        if not values and not self.labelnames:
            lines.append(f"{self.name} 0")
        return lines

    def snapshot(self) -> dict:
        values = self._values
        if self.callback is not None:
            values = {(): float(self.callback())}
        return {**self._snapshot_head(),
                "values": [[list(k), v] for k, v in values.items()]}


class Histogram(_Metric):
    kind = "histogram"

    def __init__(self, name, help, buckets, labelnames=()):
        super().__init__(name, help, labelnames)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        # per label-value tuple: (bucket counts, sum, count)
        self._series: dict[tuple, list] = {}

    def _row(self, labels: dict) -> list:
        key = tuple(str(labels[n]) for n in self.labelnames)
        row = self._series.get(key)
        if row is None:
            row = self._series[key] = [[0] * len(self.buckets), 0.0, 0]
        return row

    def observe(self, value: float, **labels) -> None:
        counts, _, _ = row = self._row(labels)
        for i, b in enumerate(self.buckets):
            if value <= b:
                counts[i] += 1
        row[1] += value
        row[2] += 1

    def count(self, **labels) -> int:
        key = tuple(str(labels[n]) for n in self.labelnames)
        return self._series.get(key, [[], 0.0, 0])[2]

    def mean(self, **labels) -> float:
        key = tuple(str(labels[n]) for n in self.labelnames)
        _, total, n = self._series.get(key, [[], 0.0, 0])
        return total / n if n else 0.0

    def render(self) -> list[str]:
        lines = self.header()
        series = self._series or ({(): [[0] * len(self.buckets), 0.0, 0]}
                                  if not self.labelnames else {})
        for key in sorted(series):
            counts, total, n = series[key]
            names = self.labelnames + ("le",)
            for i, b in enumerate(self.buckets):
                lines.append(
                    f"{self.name}_bucket"
                    f"{_labelstr(names, key + (_fmt(b),))} {counts[i]}")
            lines.append(f"{self.name}_bucket"
                         f"{_labelstr(names, key + ('+Inf',))} {n}")
            lines.append(f"{self.name}_sum{_labelstr(self.labelnames, key)} "
                         f"{_fmt(total)}")
            lines.append(f"{self.name}_count"
                         f"{_labelstr(self.labelnames, key)} {n}")
        return lines

    def snapshot(self) -> dict:
        return {**self._snapshot_head(), "buckets": list(self.buckets),
                "series": [[list(k), counts, total, n]
                           for k, (counts, total, n) in self._series.items()]}


class MetricsRegistry:
    """An ordered collection of metrics with one ``render()``."""

    def __init__(self):
        self._metrics: list[_Metric] = []

    def register(self, metric: _Metric) -> _Metric:
        self._metrics.append(metric)
        return metric

    def render(self) -> str:
        lines: list[str] = []
        for m in self._metrics:
            lines.extend(m.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> list[dict]:
        return [m.snapshot() for m in self._metrics]


class ServiceMetrics:
    """The service's full instrument panel (see module catalogue)."""

    def __init__(self, version: str = "0"):
        r = self.registry = MetricsRegistry()
        self.requests = r.register(Counter(
            "repro_requests_total", "HTTP requests served.",
            ("endpoint", "status")))
        self.latency = r.register(Histogram(
            "repro_request_duration_seconds",
            "Request handling latency.", LATENCY_BUCKETS, ("endpoint",)))
        self.batch_size = r.register(Histogram(
            "repro_batch_size",
            "Requests coalesced per micro-batch.", BATCH_BUCKETS))
        self.batches = r.register(Counter(
            "repro_batches_total", "Micro-batches dispatched."))
        self.lru_hits = r.register(Counter(
            "repro_lru_hits_total", "Prediction LRU hits.", ("kind",)))
        self.lru_misses = r.register(Counter(
            "repro_lru_misses_total", "Prediction LRU misses.", ("kind",)))
        ratio = r.register(Gauge(
            "repro_lru_hit_ratio",
            "Prediction LRU hit ratio since boot."))
        ratio.callback = self.hit_ratio
        self.inflight = r.register(Gauge(
            "repro_inflight_requests", "Requests currently being handled."))
        self.faults = r.register(Counter(
            "repro_faults_injected_total",
            "Deterministic fault-point fires.", ("point",)))
        self.retries = r.register(Counter(
            "repro_retries_total", "Bounded recovery retries.", ("site",)))
        self.rejected = r.register(Counter(
            "repro_rejected_total",
            "Requests shed for graceful degradation.", ("reason",)))
        self.arena_ops = r.register(Counter(
            "repro_arena_ops_total", "Shared-arena operations.", ("op",)))
        info = r.register(Gauge(
            "repro_service_info", "Service metadata.", ("version",)))
        info.set(1, version=version)

    def hit_ratio(self) -> float:
        hits = self.lru_hits.total()
        total = hits + self.lru_misses.total()
        return hits / total if total else 0.0

    def render(self) -> str:
        return self.registry.render()

    def snapshot(self) -> list[dict]:
        return self.registry.snapshot()


#: gauges merged by max rather than sum (identical on every worker).
_GAUGE_MAX = {"repro_service_info"}


def merge_snapshots(snaps: list[list[dict]]) -> list[dict]:
    """Fold per-worker registry snapshots into fleet-wide totals.

    Counters and histograms sum per label key; gauges sum too (inflight
    requests, etc.) except ``repro_service_info`` (max — every worker
    reports the same build) and ``repro_lru_hit_ratio``, which is
    recomputed from the merged hit/miss counters instead of averaging
    per-worker ratios.  Metric order follows first appearance, so a
    single-worker merge renders byte-identical to that worker.
    """
    order: list[str] = []
    merged: dict[str, dict] = {}
    for snap in snaps:
        for metric in snap:
            name = metric["name"]
            slot = merged.get(name)
            if slot is None:
                order.append(name)
                slot = merged[name] = {
                    "name": name, "kind": metric["kind"],
                    "help": metric["help"],
                    "labels": list(metric["labels"])}
                if metric["kind"] == "histogram":
                    slot["buckets"] = list(metric["buckets"])
                    slot["_series"] = {}
                else:
                    slot["_values"] = {}
            if metric["kind"] == "histogram":
                series = slot["_series"]
                for key, counts, total, n in metric["series"]:
                    k = tuple(key)
                    row = series.get(k)
                    if row is None:
                        series[k] = [list(counts), total, n]
                    else:
                        row[0] = [a + b for a, b in zip(row[0], counts)]
                        row[1] += total
                        row[2] += n
            else:
                values = slot["_values"]
                use_max = name in _GAUGE_MAX
                for key, value in metric["values"]:
                    k = tuple(key)
                    if use_max and k in values:
                        values[k] = max(values[k], value)
                    else:
                        values[k] = values.get(k, 0.0) + value

    def _total(name: str) -> float:
        slot = merged.get(name)
        return sum(slot["_values"].values()) if slot else 0.0

    if "repro_lru_hit_ratio" in merged:
        hits = _total("repro_lru_hits_total")
        total = hits + _total("repro_lru_misses_total")
        merged["repro_lru_hit_ratio"]["_values"] = {
            (): hits / total if total else 0.0}

    out: list[dict] = []
    for name in order:
        slot = merged[name]
        doc = {k: slot[k] for k in ("name", "kind", "help", "labels")}
        if slot["kind"] == "histogram":
            doc["buckets"] = slot["buckets"]
            doc["series"] = [[list(k), counts, total, n]
                             for k, (counts, total, n)
                             in slot["_series"].items()]
        else:
            doc["values"] = [[list(k), v]
                             for k, v in slot["_values"].items()]
        out.append(doc)
    return out


def render_snapshot(metrics: list[dict]) -> str:
    """Render a (merged) snapshot as Prometheus exposition text.

    Mirrors the per-metric ``render()`` methods exactly so that a
    single worker's snapshot renders byte-identical to its own
    ``/metrics`` output.
    """
    lines: list[str] = []
    for m in metrics:
        name, labelnames = m["name"], tuple(m["labels"])
        lines.append(f"# HELP {name} {m['help']}")
        lines.append(f"# TYPE {name} {m['kind']}")
        if m["kind"] == "histogram":
            buckets = m["buckets"]
            series = {tuple(k): (counts, total, n)
                      for k, counts, total, n in m["series"]}
            if not series and not labelnames:
                series = {(): ([0] * len(buckets), 0.0, 0)}
            names = labelnames + ("le",)
            for key in sorted(series):
                counts, total, n = series[key]
                for i, b in enumerate(buckets):
                    lines.append(f"{name}_bucket"
                                 f"{_labelstr(names, key + (_fmt(b),))} "
                                 f"{counts[i]}")
                lines.append(f"{name}_bucket"
                             f"{_labelstr(names, key + ('+Inf',))} {n}")
                lines.append(f"{name}_sum{_labelstr(labelnames, key)} "
                             f"{_fmt(total)}")
                lines.append(f"{name}_count{_labelstr(labelnames, key)} {n}")
        else:
            values = {tuple(k): v for k, v in m["values"]}
            for key in sorted(values):
                lines.append(f"{name}{_labelstr(labelnames, key)} "
                             f"{_fmt(values[key])}")
            if not values and not labelnames:
                lines.append(f"{name} 0")
    return "\n".join(lines) + "\n"


def parse_histogram(text: str, name: str) -> tuple[dict[str, int], float, int]:
    """Extract one unlabelled histogram from Prometheus text.

    Returns ``(bucket counts by le, sum, count)`` — what the loadtest
    needs to report the server's batch-size distribution.
    """
    buckets: dict[str, int] = {}
    total, count = 0.0, 0
    for line in text.splitlines():
        if line.startswith(f"{name}_bucket{{le="):
            le = line.split('le="', 1)[1].split('"', 1)[0]
            buckets[le] = int(float(line.rsplit(" ", 1)[1]))
        elif line.startswith(f"{name}_sum"):
            total = float(line.rsplit(" ", 1)[1])
        elif line.startswith(f"{name}_count"):
            count = int(float(line.rsplit(" ", 1)[1]))
    return buckets, total, count
