"""Closed-loop load-test harness: ``repro loadtest``.

``concurrency`` workers each hold one keep-alive connection and fire
requests back-to-back for ``duration`` seconds, drawing endpoints from a
weighted ``predict:compare:experiment`` mix over a fixed pool of small
workloads (so the server's LRU warms within the first second and the
steady state measures the cached serving path — the regime the
acceptance targets: >= 1k req/s, p95 < 50 ms, mean batch > 1).

The report combines client-side latency percentiles with the server's
own ``/metrics``: batch-size distribution and LRU hit ratio, so one run
shows whether the micro-batcher actually coalesced.  ``--out`` appends a
``kind: "service"`` record to the bench trajectory file
(``BENCH_sweep.json``), tracking serving throughput across PRs the same
way the sweep tracks cold experiment times.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from .metrics import parse_histogram

__all__ = ["LoadtestReport", "run_loadtest", "parse_mix",
           "append_service_record", "render_report"]

#: request pool per mix slot.  Small sizes: the point is serving
#: behaviour, not simulator heft — every body is answered from the LRU
#: after its first miss.
PREDICT_POOL = [
    {"machine": "gcel", "model": "bsp", "algorithm": "bitonic", "size": 64},
    {"machine": "gcel", "model": "mp-bsp", "algorithm": "bitonic",
     "size": 64},
    {"machine": "gcel", "model": "mp-bpram", "algorithm": "apsp",
     "size": 32},
    {"machine": "cm5", "model": "bsp", "algorithm": "bitonic", "size": 64},
    {"machine": "cm5", "model": "loggp", "algorithm": "apsp", "size": 32},
    {"machine": "cm5", "model": "mp-bsp", "algorithm": "stencil",
     "size": 32},
    {"machine": "gcel", "model": "bsp", "algorithm": "lu", "size": 32},
    {"machine": "maspar", "model": "e-bsp", "algorithm": "bitonic",
     "size": 16},
]
COMPARE_POOL = [
    {"machine": "gcel", "algorithm": "apsp", "size": 32},
    {"machine": "cm5", "algorithm": "bitonic", "size": 64},
]
EXPERIMENT_POOL = ["/experiments/fig14?scale=0.3", "/experiments?list=1"]

KINDS = ("predict", "compare", "experiment")


def parse_mix(spec: str) -> tuple[int, int, int]:
    """Parse ``"8:1:1"`` into per-kind weights (>= 0, not all zero)."""
    parts = spec.split(":")
    try:
        weights = tuple(int(p) for p in parts)
    except ValueError:
        weights = ()
    if len(weights) != 3 or any(w < 0 for w in weights) \
            or not any(weights):
        raise ValueError(
            f"bad mix {spec!r}; expected predict:compare:experiment "
            "weights like 8:1:1 (non-negative, not all zero)")
    return weights  # type: ignore[return-value]


@dataclass
class LoadtestReport:
    """Everything one loadtest run observed."""

    concurrency: int
    duration_s: float
    mix: tuple[int, int, int]
    #: wall-clock latencies in seconds, per kind
    latencies: dict[str, list[float]] = field(default_factory=dict)
    errors: int = 0
    error_detail: dict[str, int] = field(default_factory=dict)
    #: server-side numbers scraped from /metrics after the run
    mean_batch: float = 0.0
    batch_count: int = 0
    batch_buckets: dict[str, int] = field(default_factory=dict)
    lru_hit_ratio: float = 0.0
    #: server topology from the /healthz probe: worker *processes* and
    #: per-process batch threads — stamped into the trajectory record so
    #: `bench --compare --service` never diffs mismatched fleets.
    processes: int = 1
    server_workers: int = 0

    @property
    def total(self) -> int:
        return sum(len(v) for v in self.latencies.values())

    @property
    def rps(self) -> float:
        return self.total / self.duration_s if self.duration_s else 0.0

    def percentile_ms(self, q: float, kind: str | None = None) -> float:
        if kind is None:
            values = sorted(v for vs in self.latencies.values() for v in vs)
        else:
            values = sorted(self.latencies.get(kind, []))
        if not values:
            return 0.0
        idx = min(len(values) - 1, int(q * len(values)))
        return values[idx] * 1000.0

    def to_record(self, label: str = "") -> dict:
        """The trajectory entry (``kind: "service"`` so ``bench
        --compare`` skips it)."""
        import os
        import platform
        from datetime import datetime, timezone

        return {
            "kind": "service",
            "label": label or "service loadtest",
            "utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "python": platform.python_version(),
            "host": platform.node(),
            "cpus": os.cpu_count(),
            "concurrency": self.concurrency,
            "processes": self.processes,
            "workers": self.server_workers,
            "duration_s": round(self.duration_s, 3),
            "mix": ":".join(str(w) for w in self.mix),
            "requests": self.total,
            "errors": self.errors,
            "rps": round(self.rps, 1),
            "p50_ms": round(self.percentile_ms(0.50), 3),
            "p95_ms": round(self.percentile_ms(0.95), 3),
            "p99_ms": round(self.percentile_ms(0.99), 3),
            "mean_batch": round(self.mean_batch, 2),
            "lru_hit_ratio": round(self.lru_hit_ratio, 4),
        }


async def _request(reader, writer, method: str, target: str,
                   body: bytes = b"") -> tuple[int, bytes]:
    """One HTTP/1.1 exchange on an existing keep-alive connection."""
    head = (f"{method} {target} HTTP/1.1\r\nHost: loadtest\r\n"
            f"Content-Length: {len(body)}\r\nConnection: keep-alive\r\n"
            "\r\n")
    writer.write(head.encode() + body)
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed connection")
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    payload = await reader.readexactly(length) if length else b""
    return status, payload


async def _fetch_text(host: str, port: int, target: str) -> str:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        _, payload = await _request(reader, writer, "GET", target)
        return payload.decode()
    finally:
        writer.close()
        await writer.wait_closed()


async def _worker(host: str, port: int, schedule: list[tuple[str, str, str,
                                                             bytes]],
                  stop_at: float, report: LoadtestReport,
                  lock: asyncio.Lock) -> None:
    """One closed-loop client: request, record, repeat until the bell."""
    reader = writer = None
    i = 0
    loop = asyncio.get_running_loop()
    while loop.time() < stop_at:
        kind, method, target, body = schedule[i % len(schedule)]
        i += 1
        t0 = loop.time()
        try:
            if writer is None:
                reader, writer = await asyncio.open_connection(host, port)
            status, _ = await _request(reader, writer, method, target, body)
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            if writer is not None:
                writer.close()
                writer = None
            async with lock:
                report.errors += 1
                key = "connection"
                report.error_detail[key] = \
                    report.error_detail.get(key, 0) + 1
            continue
        elapsed = loop.time() - t0
        async with lock:
            if status == 200:
                report.latencies.setdefault(kind, []).append(elapsed)
            else:
                report.errors += 1
                key = f"http {status}"
                report.error_detail[key] = \
                    report.error_detail.get(key, 0) + 1
    if writer is not None:
        writer.close()


def _schedule_for(worker_idx: int, mix: tuple[int, int, int],
                  seed: int) -> list[tuple[str, str, str, bytes]]:
    """A deterministic weighted request schedule for one worker."""
    rng = random.Random(10_000 * seed + worker_idx)
    schedule = []
    for _ in range(64):
        kind = rng.choices(KINDS, weights=mix)[0]
        if kind == "predict":
            doc = rng.choice(PREDICT_POOL)
            schedule.append((kind, "POST", "/predict",
                             json.dumps(doc).encode()))
        elif kind == "compare":
            doc = rng.choice(COMPARE_POOL)
            schedule.append((kind, "POST", "/compare",
                             json.dumps(doc).encode()))
        else:
            target = rng.choice(EXPERIMENT_POOL)
            schedule.append((kind, "GET", target, b""))
    return schedule


async def run_loadtest(host: str, port: int, *, concurrency: int = 16,
                       duration_s: float = 10.0,
                       mix: tuple[int, int, int] = (8, 1, 1),
                       seed: int = 0) -> LoadtestReport:
    """Drive the server for ``duration_s`` seconds; scrape /metrics after."""
    report = LoadtestReport(concurrency=concurrency, duration_s=duration_s,
                            mix=mix)
    # sanity probe first: a connection error here is a clean failure
    # instead of `concurrency x duration` buried ones; its body also
    # carries the server's process topology for the trajectory record
    health = await _fetch_text(host, port, "/healthz")
    try:
        doc = json.loads(health)
        report.processes = int(doc.get("processes", 1) or 1)
        report.server_workers = int(doc.get("workers", 0) or 0)
    except (ValueError, TypeError):
        pass

    lock = asyncio.Lock()
    loop = asyncio.get_running_loop()
    stop_at = loop.time() + duration_s
    workers = [
        asyncio.create_task(_worker(host, port,
                                    _schedule_for(i, mix, seed),
                                    stop_at, report, lock))
        for i in range(concurrency)
    ]
    await asyncio.gather(*workers)

    metrics_text = await _fetch_text(host, port, "/metrics")
    buckets, total, count = parse_histogram(metrics_text, "repro_batch_size")
    report.batch_buckets = buckets
    report.batch_count = count
    report.mean_batch = total / count if count else 0.0
    for line in metrics_text.splitlines():
        if line.startswith("repro_lru_hit_ratio "):
            report.lru_hit_ratio = float(line.rsplit(" ", 1)[1])
    return report


def render_report(report: LoadtestReport) -> str:
    """Markdown-friendly summary table (also what CI posts)."""
    lines = [
        f"loadtest: {report.total} requests in {report.duration_s:.1f}s "
        f"at concurrency {report.concurrency} "
        f"against {report.processes} server process(es) "
        f"(mix predict:compare:experiment = "
        f"{':'.join(str(w) for w in report.mix)})",
        "",
        "| metric | value |",
        "|---|---:|",
        f"| throughput | {report.rps:,.0f} req/s |",
        f"| p50 latency | {report.percentile_ms(0.50):.2f} ms |",
        f"| p95 latency | {report.percentile_ms(0.95):.2f} ms |",
        f"| p99 latency | {report.percentile_ms(0.99):.2f} ms |",
        f"| errors | {report.errors} |",
        f"| mean batch size | {report.mean_batch:.2f} |",
        f"| batches dispatched | {report.batch_count} |",
        f"| LRU hit ratio | {report.lru_hit_ratio:.1%} |",
    ]
    for kind in KINDS:
        n = len(report.latencies.get(kind, []))
        if n:
            lines.append(f"| {kind} p95 ({n} reqs) "
                         f"| {report.percentile_ms(0.95, kind):.2f} ms |")
    if report.error_detail:
        detail = ", ".join(f"{k}: {v}"
                           for k, v in sorted(report.error_detail.items()))
        lines.append(f"| error detail | {detail} |")
    if report.batch_buckets:
        dist = " ".join(f"<= {le}: {n}" for le, n in
                        report.batch_buckets.items())
        lines += ["", f"batch-size distribution (cumulative): {dist}"]
    return "\n".join(lines)


def append_service_record(report: LoadtestReport, out: str | Path, *,
                          label: str = "") -> Path:
    """Append the run to the bench trajectory file (same doc shape)."""
    path = Path(out)
    doc = {"runs": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"),
                                                       list):
                doc = loaded
        except json.JSONDecodeError:
            pass
    doc["runs"].append(report.to_record(label))
    path.write_text(json.dumps(doc, indent=1) + "\n")
    return path
