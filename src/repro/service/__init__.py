"""repro.service — batched, cached prediction serving over HTTP/JSON.

The cost oracle as a subsystem: ``repro serve`` exposes predictions,
model comparisons and experiment results on an asyncio HTTP server whose
hot path micro-batches concurrent requests onto the vector engine's
batched pricers, with an LRU over the calibration memo.  ``repro
loadtest`` is the closed-loop client harness.  See docs/SERVICE.md.
"""

from .batcher import LRUCache, MicroBatcher
from .loadtest import (LoadtestReport, append_service_record, parse_mix,
                       render_report, run_loadtest)
from .metrics import MetricsRegistry, ServiceMetrics
from .oracle import (ALGORITHMS, MODELS, OracleError, PredictRequest,
                     compare_offline, evaluate_batch, predict_offline)
from .server import (ReproService, ServiceApp, ServiceConfig, ServiceThread,
                     run_service)

__all__ = [
    "LRUCache", "MicroBatcher",
    "LoadtestReport", "append_service_record", "parse_mix",
    "render_report", "run_loadtest",
    "MetricsRegistry", "ServiceMetrics",
    "ALGORITHMS", "MODELS", "OracleError", "PredictRequest",
    "compare_offline", "evaluate_batch", "predict_offline",
    "ReproService", "ServiceApp", "ServiceConfig", "ServiceThread",
    "run_service",
]
