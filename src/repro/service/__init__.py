"""repro.service — batched, cached prediction serving over HTTP/JSON.

The cost oracle as a subsystem: ``repro serve`` exposes predictions,
model comparisons and experiment results on an asyncio HTTP server whose
hot path micro-batches concurrent requests onto the vector engine's
batched pricers, with an LRU over the calibration memo.  ``repro serve
--processes N`` scales that out to a pre-fork fleet sharing one
result arena and metrics board (:mod:`.fleet`, :mod:`.shm`).  ``repro
loadtest`` is the closed-loop client harness.  See docs/SERVICE.md.
"""

from .batcher import LRUCache, MicroBatcher
from .fleet import run_fleet
from .loadtest import (LoadtestReport, append_service_record, parse_mix,
                       render_report, run_loadtest)
from .metrics import (MetricsRegistry, ServiceMetrics, merge_snapshots,
                      render_snapshot)
from .oracle import (ALGORITHMS, MODELS, OracleError, PredictRequest,
                     compare_offline, evaluate_batch, predict_offline)
from .server import (ReproService, ServiceApp, ServiceConfig, ServiceThread,
                     run_service)
from .shm import ArenaStats, MetricsBoard, SharedArena

__all__ = [
    "LRUCache", "MicroBatcher",
    "run_fleet",
    "LoadtestReport", "append_service_record", "parse_mix",
    "render_report", "run_loadtest",
    "MetricsRegistry", "ServiceMetrics", "merge_snapshots",
    "render_snapshot",
    "ALGORITHMS", "MODELS", "OracleError", "PredictRequest",
    "compare_offline", "evaluate_batch", "predict_offline",
    "ReproService", "ServiceApp", "ServiceConfig", "ServiceThread",
    "run_service",
    "ArenaStats", "MetricsBoard", "SharedArena",
]
