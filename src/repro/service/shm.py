"""Shared-memory primitives for the multi-process fleet.

Two fixed-layout segments make warm state fleet-wide:

* :class:`SharedArena` — a slot-based result cache over
  ``multiprocessing.shared_memory`` (or any writable buffer).  A result
  computed by one worker process is a hit for every other worker, which
  is what keeps the pre-fork fleet's LRU economics identical to the
  single-process server's.
* :class:`MetricsBoard` — one seqlock-guarded region per process into
  which each worker publishes a JSON snapshot of its metrics registry,
  so any worker can answer ``GET /metrics`` with fleet-wide totals.

Both are **lock-free by design**: Python cannot express atomic
compare-and-swap over shared memory, so correctness never depends on
mutual exclusion.  Every slot carries a *seqlock* (an even/odd version
counter bracketing each write) and a truncated SHA-256 checksum over
``key + value``.  A reader accepts a slot only if the sequence number is
even, unchanged across the copy, and the checksum verifies; anything
else — a torn write, two writers colliding, deliberate corruption from
the ``arena-poison`` fault point — is *quarantined* (the slot is
zeroed) and reported as a miss, so the caller recomputes and the next
put heals the slot.  Writers of the same key store byte-identical
payloads (the single-flight discipline upstream guarantees one logical
value per key), so even a write-write race over one slot produces a
valid entry.

The arena is an optimisation layer, never an authority: a miss —
spurious or real — only costs a recompute that is bit-identical by
construction.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import time
from dataclasses import dataclass

from ..faults import fault_flag

__all__ = ["SharedArena", "ArenaStats", "MetricsBoard", "arena_size"]

#: arena file header: magic, slot count, slot size, write ticket.
_HEADER = struct.Struct("<8sIIQ")
_MAGIC = b"RPRARN1\0"
#: per-slot header: seq, stamp, key hash, key len, value len, checksum.
_SLOT = struct.Struct("<QQQII16s")
#: open-addressing probe depth per key.
_PROBES = 8

#: metrics-board region header: seq, pid, publish time, payload length.
_REGION = struct.Struct("<QQdI")


def _hash64(key: bytes) -> int:
    """A 64-bit key hash stable across processes and interpreter runs
    (``hash()`` is salted by PYTHONHASHSEED; SHA-256 is not)."""
    return int.from_bytes(hashlib.sha256(key).digest()[:8], "little")


def _checksum(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()[:16]


def arena_size(slots: int, slot_bytes: int) -> int:
    """Total buffer size an arena of this geometry needs."""
    return _HEADER.size + slots * slot_bytes


@dataclass
class ArenaStats:
    """Per-process counters of one :class:`SharedArena` handle."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: puts skipped: value too large for a slot, or no stable victim.
    skips: int = 0
    #: slots zeroed after failing seqlock/checksum verification.
    quarantined: int = 0
    #: probes that found a write in progress (odd seq / seq moved).
    contended: int = 0

    def as_dict(self) -> dict:
        return {"hit": self.hits, "miss": self.misses, "put": self.puts,
                "skip": self.skips, "quarantine": self.quarantined,
                "contended": self.contended}


class SharedArena:
    """A fixed-geometry, checksum-verified result cache over a shared
    buffer.

    ``slots`` fixed-size slots are addressed by open probing on a
    64-bit key hash; each holds one ``key + value`` entry.  ``get``
    returns the exact bytes a ``put`` stored, or ``None`` — never torn
    or foreign data (see module docstring for the verification ladder).
    """

    def __init__(self, buf, *, shm=None, owner: bool = False):
        magic, slots, slot_bytes, _ = _HEADER.unpack_from(buf, 0)
        if magic != _MAGIC:
            raise ValueError("buffer does not hold a repro arena")
        self.buf = buf
        self.slots = slots
        self.slot_bytes = slot_bytes
        self.stats = ArenaStats()
        self._shm = shm
        self._owner = owner

    # -- construction --------------------------------------------------
    @staticmethod
    def format(buf, slots: int, slot_bytes: int) -> None:
        """Write an empty arena header into a zeroed buffer."""
        if slots < 1 or slot_bytes <= _SLOT.size:
            raise ValueError(
                f"bad arena geometry: {slots} slots x {slot_bytes} bytes")
        _HEADER.pack_into(buf, 0, _MAGIC, slots, slot_bytes, 0)

    @classmethod
    def create(cls, slots: int = 1024,
               slot_bytes: int = 32768) -> "SharedArena":
        """A new arena in OS shared memory (zero-filled by the kernel).

        The creating process *owns* the segment: only its
        :meth:`destroy` unlinks the backing file.  Forked children
        inherit the mapping and must not unlink it.
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(
            create=True, size=arena_size(slots, slot_bytes))
        cls.format(shm.buf, slots, slot_bytes)
        return cls(shm.buf, shm=shm, owner=True)

    @classmethod
    def attach(cls, name: str) -> "SharedArena":
        """Attach to an existing arena segment by name (debugging)."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        return cls(shm.buf, shm=shm)

    @classmethod
    def over(cls, slots: int, slot_bytes: int) -> "SharedArena":
        """An arena over a plain ``bytearray`` (unit tests)."""
        buf = bytearray(arena_size(slots, slot_bytes))
        cls.format(buf, slots, slot_bytes)
        return cls(buf)

    @property
    def name(self) -> str | None:
        return self._shm.name if self._shm is not None else None

    # -- internals -----------------------------------------------------
    def _off(self, index: int) -> int:
        return _HEADER.size + index * self.slot_bytes

    def _probe(self, key_hash: int):
        for i in range(min(_PROBES, self.slots)):
            yield (key_hash + i) % self.slots

    def _next_ticket(self) -> int:
        # non-atomic read-increment-write: the ticket only orders
        # approximate LRU eviction, so a lost increment is harmless
        ticket = _HEADER.unpack_from(self.buf, 0)[3] + 1
        _HEADER.pack_into(self.buf, 0, _MAGIC, self.slots, self.slot_bytes,
                          ticket)
        return ticket

    def _quarantine(self, off: int) -> None:
        """Zero a slot that failed verification (self-healing miss)."""
        _SLOT.pack_into(self.buf, off, 0, 0, 0, 0, 0, b"\0" * 16)
        self.stats.quarantined += 1

    # -- the cache interface -------------------------------------------
    def get(self, key: bytes) -> bytes | None:
        """The exact bytes stored under ``key``, or ``None``."""
        h = _hash64(key)
        for idx in self._probe(h):
            off = self._off(idx)
            seq1, _, khash, klen, vlen, digest = _SLOT.unpack_from(self.buf,
                                                                   off)
            if khash != h or klen != len(key) or klen == 0:
                continue
            if seq1 % 2:
                self.stats.contended += 1
                continue
            if _SLOT.size + klen + vlen > self.slot_bytes:
                self._quarantine(off)
                continue
            lo = off + _SLOT.size
            data = bytes(self.buf[lo:lo + klen + vlen])
            if _SLOT.unpack_from(self.buf, off)[0] != seq1:
                self.stats.contended += 1
                continue
            if data[:klen] != key:
                continue
            if _checksum(data) != digest:
                self._quarantine(off)
                continue
            self.stats.hits += 1
            return data[klen:]
        self.stats.misses += 1
        return None

    def put(self, key: bytes, value: bytes) -> bool:
        """Store ``key -> value``; best effort (False = skipped).

        Slot choice: the first probed slot that is empty or already
        holds this key, else the probed slot with the oldest write
        ticket.  A slot mid-write (odd seq) is never chosen.
        """
        need = _SLOT.size + len(key) + len(value)
        if need > self.slot_bytes or not key:
            self.stats.skips += 1
            return False
        h = _hash64(key)
        target = None
        oldest, oldest_stamp = None, None
        for idx in self._probe(h):
            off = self._off(idx)
            seq, stamp, khash, klen, _, _ = _SLOT.unpack_from(self.buf, off)
            if seq % 2:
                self.stats.contended += 1
                continue
            if klen == 0 or (khash == h and klen == len(key)):
                target = off
                break
            if oldest_stamp is None or stamp < oldest_stamp:
                oldest, oldest_stamp = off, stamp
        off = target if target is not None else oldest
        if off is None:
            self.stats.skips += 1
            return False
        seq = _SLOT.unpack_from(self.buf, off)[0]
        if seq % 2:
            self.stats.contended += 1
            return False
        data = key + value
        digest = _checksum(data)
        if value and fault_flag("arena-poison"):
            # the stored checksum stays honest, so every reader detects
            # the mangled payload and quarantines the slot
            data = data[:-1] + bytes([data[-1] ^ 0xFF])
        ticket = self._next_ticket()
        # seqlock write: header with odd seq, then data, then even seq
        _SLOT.pack_into(self.buf, off, seq + 1, ticket, h, len(key),
                        len(value), digest)
        lo = off + _SLOT.size
        self.buf[lo:lo + len(data)] = data
        struct.pack_into("<Q", self.buf, off, seq + 2)
        self.stats.puts += 1
        return True

    def invalidate(self, key: bytes) -> bool:
        """Drop ``key``'s slot if present (poisoned-entry eviction)."""
        h = _hash64(key)
        for idx in self._probe(h):
            off = self._off(idx)
            _, _, khash, klen, _, _ = _SLOT.unpack_from(self.buf, off)
            if khash == h and klen == len(key):
                self._quarantine(off)
                return True
        return False

    def entries(self) -> int:
        """Occupied slots (approximate under concurrent writes)."""
        count = 0
        for idx in range(self.slots):
            if _SLOT.unpack_from(self.buf, self._off(idx))[3]:
                count += 1
        return count

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Detach this handle's mapping (never unlinks)."""
        if self._shm is not None:
            self.buf = bytearray(_HEADER.size)  # drop buffer references
            try:
                self._shm.close()
            except (OSError, BufferError):
                pass

    def destroy(self) -> None:
        """Owner teardown: detach and unlink the backing segment."""
        shm = self._shm
        self.close()
        if shm is not None and self._owner:
            try:
                shm.unlink()
            except OSError:
                pass


class MetricsBoard:
    """Per-process metrics publication over shared memory.

    ``regions`` fixed-size regions, one per fleet member (workers 0..N-1
    plus the supervisor at index N).  :meth:`publish` seqlock-writes a
    JSON document stamped with the publisher's pid and wall clock;
    :meth:`read_all` returns every region whose publisher is still
    alive, which is exactly the set a fleet-wide ``/metrics`` answer
    aggregates.
    """

    def __init__(self, buf, regions: int, region_bytes: int, *,
                 shm=None, owner: bool = False):
        self.buf = buf
        self.regions = regions
        self.region_bytes = region_bytes
        self._shm = shm
        self._owner = owner

    @classmethod
    def create(cls, regions: int,
               region_bytes: int = 262144) -> "MetricsBoard":
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True,
                                         size=regions * region_bytes)
        return cls(shm.buf, regions, region_bytes, shm=shm, owner=True)

    @classmethod
    def over(cls, regions: int, region_bytes: int = 65536) -> "MetricsBoard":
        """A board over a plain ``bytearray`` (unit tests)."""
        return cls(bytearray(regions * region_bytes), regions, region_bytes)

    def _off(self, index: int) -> int:
        if not 0 <= index < self.regions:
            raise IndexError(f"region {index} of {self.regions}")
        return index * self.region_bytes

    def publish(self, index: int, doc: dict) -> bool:
        """Seqlock-write ``doc`` into region ``index`` (best effort)."""
        payload = json.dumps(doc, separators=(",", ":")).encode()
        off = self._off(index)
        if _REGION.size + len(payload) > self.region_bytes:
            return False
        seq = _REGION.unpack_from(self.buf, off)[0]
        _REGION.pack_into(self.buf, off, seq + 1, os.getpid(), time.time(),
                          len(payload))
        lo = off + _REGION.size
        self.buf[lo:lo + len(payload)] = payload
        struct.pack_into("<Q", self.buf, off, seq + 2)
        return True

    def read(self, index: int) -> dict | None:
        """Region ``index``'s last published document, or ``None``."""
        off = self._off(index)
        seq1, pid, stamp, length = _REGION.unpack_from(self.buf, off)
        if length == 0 or seq1 % 2:
            return None
        if _REGION.size + length > self.region_bytes:
            return None
        lo = off + _REGION.size
        payload = bytes(self.buf[lo:lo + length])
        if _REGION.unpack_from(self.buf, off)[0] != seq1:
            return None
        try:
            doc = json.loads(payload.decode())
        except (ValueError, UnicodeDecodeError):
            return None
        doc["_pid"] = pid
        doc["_age_s"] = max(0.0, time.time() - stamp)
        return doc

    def read_all(self, *, require_alive: bool = True) -> list[dict]:
        """Every region's document, publisher-alive ones only by default."""
        docs = []
        for index in range(self.regions):
            doc = self.read(index)
            if doc is None:
                continue
            if require_alive and not _pid_alive(doc["_pid"]):
                continue
            docs.append(doc)
        return docs

    def close(self) -> None:
        if self._shm is not None:
            self.buf = bytearray(_REGION.size)
            try:
                self._shm.close()
            except (OSError, BufferError):
                pass

    def destroy(self) -> None:
        shm = self._shm
        self.close()
        if shm is not None and self._owner:
            try:
                shm.unlink()
            except OSError:
                pass


def _pid_alive(pid: int) -> bool:
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True
