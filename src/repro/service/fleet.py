"""Pre-fork fleet supervisor: ``repro serve --processes N``.

One parent process resolves the port, warms the calibration memo,
creates the shared result arena and metrics board, then forks N
workers.  Each worker runs the unchanged asyncio server
(:class:`~repro.service.server.ReproService`) over the shared segments:

- **Socket strategy.**  Where the kernel supports ``SO_REUSEPORT`` the
  parent binds a *placeholder* socket (bound, never listening — it
  pins the resolved port without receiving connections) and every
  worker opens its own listening socket on that port; the kernel then
  load-balances accepts across workers.  Without ``SO_REUSEPORT`` the
  parent listens once and all workers accept on the inherited socket.
- **Crash supervision.**  The parent reaps children (``waitpid``) and
  respawns a crashed worker with a small deterministic backoff; a
  worker that crash-loops (more than ``_MAX_FAST_CRASHES`` consecutive
  exits within ~1 s of spawn) makes the supervisor give up rather than
  fork-bomb.  The ``worker-exit`` fault point drives this path in the
  chaos suite.
- **Graceful drain.**  SIGINT/SIGTERM on the parent forwards SIGTERM
  to every worker; each worker stops accepting, finishes in-flight
  responses and drains its batcher before exiting.  The parent waits
  up to ``drain_timeout_s``, SIGKILLs stragglers, reaps everything —
  no orphans, no zombie sockets — then unlinks the shared segments.
- **Fleet metrics.**  Workers publish registry snapshots into the
  board; the supervisor publishes its own region (live worker count,
  spawn/respawn totals) so any worker's ``/metrics`` answer covers the
  whole fleet.

Workers exit exclusively via ``os._exit`` so a forked child never runs
the parent's atexit hooks (which would unlink shared memory out from
under its siblings).
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import os
import signal
import socket
import sys
import time

from .. import __version__
from .server import ReproService, ServiceApp, ServiceConfig
from .shm import MetricsBoard, SharedArena

__all__ = ["run_fleet"]

#: consecutive exits within ``_FAST_CRASH_S`` of spawn before giving up.
_MAX_FAST_CRASHES = 5
_FAST_CRASH_S = 1.0


def _bind(config: ServiceConfig):
    """Resolve the fleet's port; returns ``(placeholder, shared, port)``.

    Exactly one of ``placeholder`` (SO_REUSEPORT path: bound, not
    listening) and ``shared`` (fallback: the one listening socket all
    workers inherit) is non-None.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    reuseport = hasattr(socket, "SO_REUSEPORT")
    if reuseport:
        try:
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        except OSError:
            reuseport = False
    sock.bind((config.host, config.port))
    port = sock.getsockname()[1]
    if reuseport:
        return sock, None, port
    sock.listen(1024)
    sock.setblocking(False)
    return None, sock, port


async def _worker_amain(config: ServiceConfig, listen_sock, arena,
                        board) -> None:
    if listen_sock is None:
        # REUSEPORT path: this worker joins the port's listener group
        listen_sock = socket.create_server(
            (config.host, config.port), reuse_port=True, backlog=1024)
    service = ReproService(config, arena=arena, board=board,
                           listen_sock=listen_sock)
    await service.start()
    service.install_signal_handlers()
    try:
        await service.serve_forever()
    finally:
        await service.stop()


def _worker_main(config: ServiceConfig, shared_sock, arena, board,
                 placeholder) -> int:
    # clear the supervisor's handlers inherited through fork; the
    # worker's event loop installs its own graceful-drain handlers
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    if placeholder is not None:
        placeholder.close()
    try:
        asyncio.run(_worker_amain(config, shared_sock, arena, board))
    except KeyboardInterrupt:
        pass
    except Exception:  # noqa: BLE001 — worker death is supervised
        import traceback

        traceback.print_exc()
        return 1
    return 0


def run_fleet(config: ServiceConfig) -> int:
    """Blocking supervisor loop for ``repro serve --processes N``."""
    n = config.processes
    if config.warm:
        # one fit, N workers: the memo is inherited through fork
        ServiceApp.warm()
    placeholder, shared, port = _bind(config)
    config = dataclasses.replace(config, port=port, warm=False)
    arena = SharedArena.create(slots=config.arena_slots,
                               slot_bytes=config.arena_slot_bytes)
    board = MetricsBoard.create(n + 1)  # region n is the supervisor's

    children: dict[int, int] = {}  # pid -> worker index
    crash_streak = [0] * n
    spawn_time = [0.0] * n
    counts = {"spawned": 0, "respawns": 0}

    def spawn(index: int, *, respawn: bool = False) -> None:
        cfg = dataclasses.replace(config, worker_index=index)
        pid = os.fork()
        if pid == 0:
            code = 1
            try:
                code = _worker_main(cfg, shared, arena, board, placeholder)
            finally:
                os._exit(code)
        children[pid] = index
        spawn_time[index] = time.monotonic()
        counts["spawned"] += 1
        if respawn:
            counts["respawns"] += 1
        print(f"fleet: worker {index} pid={pid}", flush=True)

    def publish_supervisor() -> None:
        def metric(name, help, value, kind="gauge"):
            return {"name": name, "kind": kind, "help": help,
                    "labels": [], "values": [[[], float(value)]]}

        board.publish(n, {"worker": "supervisor", "metrics": [
            metric("repro_fleet_workers",
                   "Live fleet worker processes.", len(children)),
            metric("repro_fleet_spawned_total",
                   "Worker processes forked since boot.",
                   counts["spawned"], "counter"),
            metric("repro_fleet_respawns_total",
                   "Workers respawned after a crash.",
                   counts["respawns"], "counter"),
        ]})

    stopping: dict = {"sig": None}

    def _on_signal(signum, frame):
        stopping["sig"] = signum

    previous = {sig: signal.signal(sig, _on_signal)
                for sig in (signal.SIGINT, signal.SIGTERM)}

    mode = "reuseport" if placeholder is not None else "shared-socket"
    print(f"repro.fleet {__version__} listening on "
          f"http://{config.host}:{port} (processes={n} mode={mode} "
          f"workers={config.workers} window={config.window_ms}ms "
          f"max-batch={config.max_batch} lru={config.lru_size} "
          f"arena={config.arena_slots}x{config.arena_slot_bytes})",
          flush=True)

    exit_code = 0
    try:
        for index in range(n):
            spawn(index)
        publish_supervisor()
        last_publish = time.monotonic()
        while stopping["sig"] is None:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                pid = 0
            if pid:
                index = children.pop(pid)
                fast = (time.monotonic() - spawn_time[index]
                        < _FAST_CRASH_S)
                crash_streak[index] = crash_streak[index] + 1 if fast else 1
                code = os.waitstatus_to_exitcode(status)
                how = (f"signal {-code}" if code < 0 else f"code {code}")
                print(f"fleet: worker {index} pid={pid} exited ({how}) "
                      "— respawning", flush=True)
                if crash_streak[index] > _MAX_FAST_CRASHES:
                    print(f"fleet: worker {index} is crash-looping; "
                          "giving up", file=sys.stderr, flush=True)
                    exit_code = 1
                    break
                # deterministic backoff, proportional to the streak
                time.sleep(0.05 * crash_streak[index])
                spawn(index, respawn=True)
                publish_supervisor()
                continue
            now = time.monotonic()
            if now - last_publish >= 0.5:
                publish_supervisor()
                last_publish = now
            time.sleep(0.05)
    finally:
        # drain: TERM every worker, wait, KILL stragglers, reap all
        for pid in list(children):
            with contextlib.suppress(ProcessLookupError):
                os.kill(pid, signal.SIGTERM)
        deadline = time.monotonic() + config.drain_timeout_s
        while children and time.monotonic() < deadline:
            try:
                pid, _ = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                break
            if pid:
                children.pop(pid, None)
            else:
                time.sleep(0.02)
        for pid in list(children):
            with contextlib.suppress(ProcessLookupError):
                os.kill(pid, signal.SIGKILL)
        while children:
            try:
                pid, _ = os.waitpid(-1, 0)
            except ChildProcessError:
                break
            children.pop(pid, None)
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        if placeholder is not None:
            placeholder.close()
        if shared is not None:
            shared.close()
        arena.destroy()
        board.destroy()
        print("fleet: drained and stopped", flush=True)
    return exit_code
