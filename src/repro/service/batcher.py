"""The micro-batching dispatcher — the serving hot path.

Concurrent ``/predict`` (and ``/compare``) requests are not evaluated
one by one: a collector task coalesces everything that arrives within a
small window (default 2 ms) or until ``max_batch`` requests are waiting,
then dispatches the whole batch at once — the serve-side analogue of the
master-worker batching in the BSF pipeline literature, pointed at the
cost oracle.

Per batch, in order:

1. an **LRU probe** on the event loop: previously answered keys resolve
   immediately (this is what makes the cached path sub-millisecond);
2. **dedup**: identical missed keys collapse into one job;
3. the surviving jobs go to one of ``workers`` sharded worker tasks,
   which runs the oracle's batched evaluator
   (:func:`repro.service.oracle.evaluate_batch`) inside a thread-pool
   executor so the event loop never blocks on a simulation.

Every request passes through the collector — cache hits included — so
``repro_batch_size`` measures true arrival coalescing, and a hit ratio
near 1.0 keeps batches cheap rather than bypassing them.

All bookkeeping (LRU, metrics, futures) happens on the event-loop
thread; executor threads only ever see immutable job lists.

Fleet mode adds a read-through layer: when a shared-memory arena
(:class:`repro.service.shm.SharedArena`) is attached, LRU misses probe
the arena before dispatching — a warm result computed by *any* worker
process resolves locally without re-simulation — and every computed
result is published back.  Arena payloads are the compact JSON dump of
the result, so a cross-process hit re-parses to the identical object
and the rendered response stays byte-identical to a local compute.
"""

from __future__ import annotations

import asyncio
import json
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor

from ..core.errors import FaultInjected
from ..faults import RetryPolicy, fault_flag

__all__ = ["LRUCache", "MicroBatcher"]


class LRUCache:
    """A plain ordered-dict LRU with hit/miss counters."""

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key):
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry (the ``lru-storm`` fault's eviction storm)."""
        self._data.clear()


class MicroBatcher:
    """Window-based request coalescing over a sharded worker pool.

    ``evaluate`` is a plain function ``list[(kind, key, payload)] ->
    {key: result | Exception}`` run inside the executor; per-key
    exceptions are re-raised from :meth:`submit` for that caller only.
    """

    def __init__(self, evaluate, *, window_s: float = 0.002,
                 max_batch: int = 256, workers: int = 2,
                 lru_size: int = 4096, metrics=None,
                 retry: RetryPolicy | None = None,
                 saturation_limit: int = 2048, sleep=None,
                 arena=None):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if saturation_limit < 1:
            raise ValueError(
                f"saturation_limit must be >= 1, got {saturation_limit}")
        self._evaluate = evaluate
        self.window_s = window_s
        self.max_batch = max_batch
        self.workers = workers
        self.cache = LRUCache(lru_size)
        self.metrics = metrics
        #: bounded backoff for transient (injected) evaluator failures.
        self.retry = retry or RetryPolicy(max_attempts=2, base_delay_s=0.01,
                                          max_delay_s=0.1)
        #: in-flight futures past this → the router sheds load with 503.
        self.saturation_limit = saturation_limit
        #: optional cross-process result arena (fleet mode).
        self.arena = arena
        self._sleep = sleep or asyncio.sleep
        self._in_q: asyncio.Queue = asyncio.Queue()
        self._job_q: asyncio.Queue = asyncio.Queue()
        self._tasks: list[asyncio.Task] = []
        self._pending: set[asyncio.Future] = set()
        self._executor: ThreadPoolExecutor | None = None
        self._started = False

    @property
    def saturated(self) -> bool:
        """True when the dispatcher holds more in-flight requests than
        ``saturation_limit`` — the graceful-degradation signal."""
        return len(self._pending) >= self.saturation_limit

    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-batch")
        self._tasks = [asyncio.create_task(self._collect(),
                                           name="batcher-collector")]
        self._tasks += [asyncio.create_task(self._work(),
                                            name=f"batcher-worker-{i}")
                        for i in range(self.workers)]

    async def stop(self) -> None:
        """Drain in-flight requests, then tear the tasks down."""
        if not self._started:
            return
        while self._pending:
            await asyncio.wait(list(self._pending))
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._started = False

    # ------------------------------------------------------------------
    async def submit(self, kind: str, key: tuple, payload):
        """Enqueue one request; resolves to its result (or raises)."""
        if not self._started:
            raise RuntimeError("MicroBatcher.submit() before start()")
        fut = asyncio.get_running_loop().create_future()
        self._pending.add(fut)
        fut.add_done_callback(self._pending.discard)
        await self._in_q.put((kind, key, payload, fut))
        return await fut

    # ------------------------------------------------------------------
    async def _collect(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._in_q.get()]
            deadline = loop.time() + self.window_s
            while len(batch) < self.max_batch:
                timeout = deadline - loop.time()
                if timeout <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(
                        self._in_q.get(), timeout))
                except asyncio.TimeoutError:
                    break
            self._dispatch(batch)

    def _dispatch(self, batch: list) -> None:
        if self.metrics is not None:
            self.metrics.batch_size.observe(len(batch))
            self.metrics.batches.inc()
        if fault_flag("lru-storm"):
            # simulated eviction storm: every cached answer vanishes at
            # once, so this whole batch recomputes (bit-identically)
            self.cache.clear()
        jobs: dict[tuple, list] = {}
        kinds: dict[tuple, str] = {}
        for kind, key, payload, fut in batch:
            if fut.cancelled():
                continue
            hit = self.cache.get(key)
            if self.metrics is not None:
                counter = (self.metrics.lru_hits if hit is not None
                           else self.metrics.lru_misses)
                counter.inc(kind=kind)
            if hit is None:
                hit = self._arena_probe(key)
            if hit is not None:
                fut.set_result(hit)
                continue
            jobs.setdefault(key, [None, []])[1].append(fut)
            jobs[key][0] = payload
            kinds[key] = kind
        if jobs:
            self._job_q.put_nowait((jobs, kinds))

    # ------------------------------------------------------------------
    @staticmethod
    def _arena_key(key: tuple) -> bytes:
        # keys are tuples of primitives, so repr() is deterministic
        # across worker processes (no hash-order dependence)
        return repr(key).encode()

    def _arena_probe(self, key: tuple):
        """Cross-process lookup: parse a sibling worker's result."""
        if self.arena is None:
            return None
        raw = self.arena.get(self._arena_key(key))
        if raw is None:
            return None
        try:
            value = json.loads(raw.decode())
        except (ValueError, UnicodeDecodeError):
            return None
        self.cache.put(key, value)
        return value

    def _arena_publish(self, key: tuple, value) -> None:
        if self.arena is None:
            return
        try:
            payload = json.dumps(value, separators=(",", ":")).encode()
        except (TypeError, ValueError):
            return
        self.arena.put(self._arena_key(key), payload)

    async def _work(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            jobs, kinds = await self._job_q.get()
            items = [(kinds[key], key, payload)
                     for key, (payload, _) in jobs.items()]
            results = await self._evaluate_resilient(loop, items)
            for key, (_, futs) in jobs.items():
                got = results.get(
                    key, KeyError(f"evaluator returned nothing for {key!r}"))
                if not isinstance(got, Exception):
                    self.cache.put(key, got)
                    self._arena_publish(key, got)
                for fut in futs:
                    if fut.cancelled():
                        continue
                    if isinstance(got, Exception):
                        fut.set_exception(got)
                    else:
                        fut.set_result(got)

    async def _evaluate_resilient(self, loop, items: list) -> dict:
        """Run the evaluator, retrying *transient* failures boundedly.

        Only injected faults (:class:`FaultInjected` — the chaos suite's
        stand-in for a died batch worker) are retried, under the
        batcher's :class:`~repro.faults.RetryPolicy` with backoff via
        the injectable ``sleep``; deterministic evaluator errors fail
        the whole batch at once, exactly as before.  Attempt counts are
        therefore bounded by construction — no retry storms.
        """
        delays = self.retry.delays()
        for attempt in range(self.retry.max_attempts):
            try:
                return await loop.run_in_executor(
                    self._executor, self._evaluate, items)
            except FaultInjected as exc:
                last: Exception = exc
                if attempt < len(delays):
                    if self.metrics is not None:
                        self.metrics.retries.inc(site="dispatch")
                    await self._sleep(delays[attempt])
            except Exception as exc:  # noqa: BLE001 — whole-batch failure
                return {key: exc for _, key, _ in items}
        return {key: last for _, key, _ in items}
