"""A tiny HTTP/1.1 layer over ``asyncio`` streams — no dependencies.

Just enough protocol for a JSON API: request-line + header parsing,
``Content-Length`` bodies (no chunked uploads), keep-alive with an idle
timeout, and explicit-length responses.  Anything malformed maps to an
:class:`HttpError` which the connection loop renders as a JSON error
body.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = ["HttpError", "Request", "Response", "read_request",
           "encode_response", "STATUS_PHRASES"]

MAX_BODY = 1 << 20          # 1 MiB request-body cap
MAX_HEADERS = 100

STATUS_PHRASES = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol- or client-level failure with an HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: dict[str, str]
    version: str
    headers: dict[str, str]
    body: bytes = b""

    def json(self):
        """The request body as JSON, or an :class:`HttpError` 400."""
        if not self.body:
            raise HttpError(400, "request body required (JSON)")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from exc

    @property
    def keep_alive(self) -> bool:
        conn = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return conn == "keep-alive"
        return conn != "close"


@dataclass
class Response:
    """One HTTP response (body already encoded)."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, obj, status: int = 200) -> "Response":
        return cls(status=status,
                   body=(json.dumps(obj) + "\n").encode())

    @classmethod
    def text(cls, text: str, status: int = 200,
             content_type: str = "text/plain; version=0.0.4") -> "Response":
        return cls(status=status, body=text.encode(),
                   content_type=content_type)

    @classmethod
    def error(cls, status: int, message: str,
              headers: dict[str, str] | None = None) -> "Response":
        resp = cls.json({"error": message, "status": status}, status=status)
        if headers:
            resp.headers.update(headers)
        return resp


async def read_request(reader) -> Request | None:
    """Parse one request; ``None`` on a clean EOF between requests."""
    try:
        line = await reader.readline()
    except (ConnectionError, ValueError) as exc:
        raise HttpError(400, f"unreadable request line: {exc}") from exc
    if not line:
        return None
    try:
        method, target, version = line.decode("latin-1").split()
    except ValueError:
        raise HttpError(400, "malformed request line") from None
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol {version}")

    headers: dict[str, str] = {}
    for _ in range(MAX_HEADERS + 1):
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header {raw!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise HttpError(400, "too many headers")

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "bad Content-Length") from None
        if length < 0:
            raise HttpError(400, "bad Content-Length")
        if length > MAX_BODY:
            raise HttpError(413, f"body exceeds {MAX_BODY} bytes")
        try:
            body = await reader.readexactly(length)
        except Exception as exc:  # IncompleteReadError, ConnectionError
            raise HttpError(400, f"truncated body: {exc}") from exc
    elif headers.get("transfer-encoding"):
        raise HttpError(400, "chunked request bodies are not supported")

    parts = urlsplit(target)
    query = {k: v for k, v in parse_qsl(parts.query, keep_blank_values=True)}
    return Request(method=method.upper(), path=unquote(parts.path),
                   query=query, version=version, headers=headers, body=body)


def encode_response(resp: Response, *, keep_alive: bool,
                    version: str = "HTTP/1.1") -> bytes:
    phrase = STATUS_PHRASES.get(resp.status, "Unknown")
    head = [f"{version} {resp.status} {phrase}",
            f"Content-Type: {resp.content_type}",
            f"Content-Length: {len(resp.body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
            "Server: repro.service"]
    for name, value in resp.headers.items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + resp.body
