"""Route table and endpoint handlers.

A route maps ``METHOD /path/{param}`` onto an async handler
``handler(app, request, **params) -> Response``; ``app`` is the
:class:`repro.service.server.ServiceApp` carrying the batcher, metrics,
result cache and registries.  Handlers never run simulations on the
event loop: predictions go through the micro-batcher, experiment runs
through an executor.
"""

from __future__ import annotations

import asyncio
import dataclasses
import math

from .. import __version__
from ..ablation import AblateRequest, COMPONENTS
from ..bounds import BoundsRequest, DEFAULT_CELLS, DEFAULT_THRESHOLD
from ..core.errors import AblationError, BoundsError, ExperimentError, \
    FaultInjected, ReproError
from ..machines import machine_catalog
from ..validation.scoreboard import CELL_SPECS
from .httpd import HttpError, Request, Response
from .oracle import ALGORITHMS, MODELS, OracleError, PredictRequest

__all__ = ["Router", "default_router"]


class Router:
    """Literal-and-``{param}`` path matching over a method table."""

    def __init__(self):
        self._routes: list[tuple[str, tuple[str, ...], object]] = []

    def add(self, method: str, pattern: str, handler) -> None:
        self._routes.append((method.upper(),
                             tuple(pattern.strip("/").split("/")), handler))

    def match(self, method: str, path: str):
        """Return ``(handler, params)`` or raise 404/405."""
        segments = tuple(path.strip("/").split("/"))
        seen_path = False
        for verb, pattern, handler in self._routes:
            if len(pattern) != len(segments):
                continue
            params = {}
            for pat, seg in zip(pattern, segments):
                if pat.startswith("{") and pat.endswith("}"):
                    params[pat[1:-1]] = seg
                elif pat != seg:
                    break
            else:
                seen_path = True
                if verb == method:
                    return handler, params
        if seen_path:
            raise HttpError(405, f"method {method} not allowed for {path}")
        raise HttpError(404, f"no route for {path}")

    def endpoint_of(self, method: str, path: str) -> str:
        """The *pattern* a path matched (metrics label, bounded
        cardinality) — ``/experiments/{id}``, not ``/experiments/fig12``."""
        try:
            handler, _ = self.match(method, path)
        except HttpError:
            return "(unmatched)"
        for verb, pattern, h in self._routes:
            if h is handler and verb == method.upper():
                return "/" + "/".join(pattern)
        return "(unmatched)"


# ----------------------------------------------------------------------
# Handlers
# ----------------------------------------------------------------------

async def healthz(app, request: Request) -> Response:
    return Response.json({
        "status": "ok",
        "version": __version__,
        "uptime_s": round(app.uptime_s, 3),
        "lru_entries": len(app.batcher.cache),
        "processes": app.config.processes,
        "workers": app.config.workers,
        "worker_index": app.config.worker_index,
        "arena": app.arena is not None,
    })


async def machines(app, request: Request) -> Response:
    return Response.json({"machines": machine_catalog()})


async def experiments_index(app, request: Request) -> Response:
    return Response.json({"experiments": [
        {"id": exp.id, "title": exp.title, "paper_ref": exp.paper_ref}
        for exp in app.experiments.values()
    ]})


async def capabilities(app, request: Request) -> Response:
    """What /predict accepts — lets clients build forms without docs."""
    from ..simulator.vector import ENGINES

    return Response.json({
        "machines": sorted(m["name"] for m in machine_catalog()),
        "models": list(MODELS),
        "algorithms": {name: {"default_size": size}
                       for name, (size, _) in ALGORITHMS.items()},
        "engines": list(ENGINES),
        "ablation": {
            "components": [c.to_dict() for c in COMPONENTS.values()],
            "cells": list(CELL_SPECS),
        },
        "bounds": {
            "cells": list(DEFAULT_CELLS),
            "default_threshold": DEFAULT_THRESHOLD,
        },
    })


def _float_param(request: Request, name: str, default: float) -> float:
    raw = request.query.get(name)
    if raw is None:
        return default
    try:
        return float(raw)
    except ValueError:
        raise HttpError(400, f"query parameter {name}={raw!r} is not a "
                        "number") from None


async def experiment_detail(app, request: Request, id: str) -> Response:
    """Run one registered experiment through the runner's result cache."""
    if id not in app.experiments:
        raise HttpError(404, f"unknown experiment {id!r}")
    scale = _float_param(request, "scale", 1.0)
    seed = int(_float_param(request, "seed", 0))
    if not 0 < scale <= 1:
        raise HttpError(400, f"scale must be in (0, 1], got {scale}")

    # single-flight per (id, scale, seed): concurrent identical requests
    # share one computation instead of stampeding the executor
    lock = app.experiment_locks.setdefault((id, scale, seed), asyncio.Lock())
    async with lock:
        try:
            outcome = await asyncio.get_running_loop().run_in_executor(
                app.executor, app.run_experiment, id, scale, seed)
        except ExperimentError as exc:
            raise HttpError(422, str(exc)) from exc
    return Response.json({
        "id": id,
        "scale": scale,
        "seed": seed,
        "cached": outcome.cached,
        "elapsed_s": round(outcome.elapsed_s, 6),
        "result": outcome.result.to_dict(),
    })


def _retry_later(reason: str, after_s: float) -> Response:
    """A 503 with ``Retry-After`` — the graceful-degradation answer."""
    return Response.error(
        503, reason,
        headers={"Retry-After": str(max(1, math.ceil(after_s)))})


async def _submit_guarded(app, kind: str, key: tuple, req) -> Response:
    """Dispatch one prediction with the full degradation ladder.

    1. the key's circuit breaker: an open circuit fails fast (503 +
       Retry-After sized to the remaining cool-down) without burning a
       batch worker on a key that keeps failing;
    2. dispatcher saturation: too many in-flight futures → shed load
       immediately rather than queue unboundedly;
    3. per-request deadline: a submit that outlives
       ``request_timeout_s`` is abandoned (its future is cancelled, so
       the batcher skips it) and answered 503 + Retry-After.

    Successes and failures feed the breaker, so repeated evaluator
    faults on one key trip it while other keys keep flowing.
    """
    cfg = app.config
    breaker = app.breaker_for(key)
    if not breaker.allow():
        app.metrics.rejected.inc(reason="breaker")
        return _retry_later(
            f"circuit open for this {kind} key", breaker.retry_after_s())
    if app.batcher.saturated:
        app.metrics.rejected.inc(reason="saturated")
        return _retry_later("dispatcher saturated", cfg.retry_after_s)
    try:
        result = await asyncio.wait_for(
            app.batcher.submit(kind, key, req), cfg.request_timeout_s)
    except asyncio.TimeoutError:
        breaker.record_failure()
        app.metrics.rejected.inc(reason="deadline")
        return _retry_later(
            f"deadline of {cfg.request_timeout_s:g}s exceeded",
            cfg.retry_after_s)
    except Exception:
        breaker.record_failure()
        raise
    breaker.record_success()
    return Response.json(result)


async def predict(app, request: Request) -> Response:
    try:
        req = PredictRequest.from_json(request.json())
    except OracleError as exc:
        raise HttpError(422, str(exc)) from exc
    key = ("predict",) + (req.machine, req.model, req.algorithm,
                          req.size, req.seed)
    return await _submit_guarded(app, "predict", key, req)


async def compare(app, request: Request) -> Response:
    try:
        req = PredictRequest.from_json(request.json(), need_model=False)
    except OracleError as exc:
        raise HttpError(422, str(exc)) from exc
    key = ("compare",) + req.sim_key
    return await _submit_guarded(app, "compare", key, req)


async def ablate(app, request: Request) -> Response:
    """Run a component ablation through the batching dispatcher.

    The LRU/batcher key excludes execution knobs (the cache directory
    below), so identical logical requests dedupe and repeat requests
    are LRU hits; the per-cell result cache additionally makes cold
    evaluations of overlapping matrices incremental.
    """
    try:
        req = AblateRequest.from_json(request.json())
    except AblationError as exc:
        raise HttpError(422, str(exc)) from exc
    req = dataclasses.replace(req, cache_dir=app.config.cache_dir)
    key = ("ablate",) + req.key
    return await _submit_guarded(app, "ablate", key, req)


async def bounds(app, request: Request) -> Response:
    """Run the optimality scoreboard through the batching dispatcher.

    Same key discipline as /ablate: execution knobs stay out of the
    LRU/batcher key, the threshold stays in (it changes the report's
    headroom flags), and the per-cell result cache makes cold
    measurements of overlapping matrices incremental.
    """
    try:
        req = BoundsRequest.from_json(request.json())
    except BoundsError as exc:
        raise HttpError(422, str(exc)) from exc
    req = dataclasses.replace(req, cache_dir=app.config.cache_dir)
    key = ("bounds",) + req.key
    return await _submit_guarded(app, "bounds", key, req)


async def metrics(app, request: Request) -> Response:
    """Prometheus exposition; fleet-aggregated when a board is shared.

    Under SO_REUSEPORT the scrape lands on *one* worker, so that worker
    publishes its own fresh snapshot, reads every live sibling's from
    the shared board (the supervisor's fleet gauges included), and
    renders the merged totals — any worker answers for the whole fleet.
    """
    app.sync_arena_metrics()
    if app.board is None:
        return Response.text(app.metrics.render())
    from .metrics import merge_snapshots, render_snapshot

    index = app.config.worker_index or 0
    app.board.publish(index, {"worker": index,
                              "metrics": app.metrics.snapshot()})
    snaps = [doc["metrics"] for doc in app.board.read_all()
             if isinstance(doc, dict) and "metrics" in doc]
    return Response.text(render_snapshot(merge_snapshots(snaps)))


def default_router() -> Router:
    router = Router()
    router.add("GET", "/healthz", healthz)
    router.add("GET", "/machines", machines)
    router.add("GET", "/experiments", experiments_index)
    router.add("GET", "/experiments/{id}", experiment_detail)
    router.add("GET", "/capabilities", capabilities)
    router.add("POST", "/predict", predict)
    router.add("POST", "/compare", compare)
    router.add("POST", "/ablate", ablate)
    router.add("POST", "/bounds", bounds)
    router.add("GET", "/metrics", metrics)
    return router


def service_error_response(exc: Exception) -> Response:
    """Map handler exceptions onto HTTP statuses."""
    if isinstance(exc, HttpError):
        return Response.error(exc.status, exc.message)
    if isinstance(exc, FaultInjected):
        # a transient injected failure that outlived the bounded retries:
        # tell the client to come back, not that its request was bad
        return _retry_later(f"transient failure: {exc}", 1.0)
    if isinstance(exc, (OracleError, ReproError, ValueError)):
        return Response.error(422, str(exc))
    return Response.error(500, f"{type(exc).__name__}: {exc}")
