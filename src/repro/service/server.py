"""Server assembly and lifecycle: ``repro serve``.

:class:`ReproService` owns the listening socket, the per-connection
keep-alive loops, the micro-batcher and the metrics registry.  Shutdown
is graceful: on SIGINT/SIGTERM the listener closes first, connection
loops finish the response they are writing, the batcher drains every
in-flight future, and only then does the process exit — a load balancer
doing a rolling restart never sees a dropped request.

:class:`ServiceThread` runs the same server on a private event loop in a
daemon thread — what the tests and the in-process loadtest fixture use.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from .. import __version__
from ..faults import (CircuitBreaker, FaultPlan, RetryPolicy, deactivate,
                      fault_flag, fault_point, install)
from .batcher import MicroBatcher
from .httpd import HttpError, Response, encode_response, read_request
from .metrics import ServiceMetrics
from .oracle import evaluate_batch
from .router import default_router, service_error_response

__all__ = ["ServiceConfig", "ServiceApp", "ReproService", "ServiceThread",
           "run_service"]

#: seconds an idle keep-alive connection may sit before we close it.
IDLE_TIMEOUT = 60.0


@dataclass
class ServiceConfig:
    """Everything ``repro serve`` exposes as flags."""

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 2
    window_ms: float = 2.0
    max_batch: int = 256
    lru_size: int = 4096
    cache_dir: str | None = None
    warm: bool = True
    drain_timeout_s: float = 10.0
    #: worker processes; > 1 boots the pre-fork fleet supervisor
    #: (:mod:`repro.service.fleet`) with a shared result arena.
    processes: int = 1
    #: shared-arena geometry (fleet mode only).
    arena_slots: int = 1024
    arena_slot_bytes: int = 32768
    #: set in fleet workers: this process's index in [0, processes).
    worker_index: int | None = None
    #: fault plan text (``repro serve --faults``), installed at boot.
    faults: str | None = None
    #: per-request deadline on /predict and /compare; past it the client
    #: gets 503 + Retry-After instead of waiting forever.
    request_timeout_s: float = 30.0
    #: in-flight requests past this → immediate 503 + Retry-After.
    saturation_limit: int = 2048
    #: Retry-After seconds suggested on saturation/deadline rejections.
    retry_after_s: float = 1.0
    #: per-key circuit breaker: consecutive failures to trip, seconds
    #: before a half-open probe.
    breaker_threshold: int = 5
    breaker_reset_s: float = 30.0
    #: simulation engine pinned for all evaluation in this process (and
    #: fleet workers, which re-read it from their own config copy);
    #: ``"auto"`` keeps the ambient default.
    engine: str = "auto"


class ServiceApp:
    """Shared handler state (what :mod:`.router` handlers see as ``app``)."""

    def __init__(self, config: ServiceConfig, *, arena=None, board=None):
        from ..simulator.vector import ENGINES

        self.config = config
        self.arena = arena
        self.board = board
        if config.engine not in ENGINES:
            raise ValueError(f"unknown engine {config.engine!r}; "
                             f"expected one of {ENGINES}")
        if config.engine != "auto":
            # process-wide pin: evaluation paths resolve engine="auto"
            # through $REPRO_ENGINE (fleet workers get their own copy of
            # the config and re-pin in their own process)
            os.environ["REPRO_ENGINE"] = config.engine
        self.metrics = ServiceMetrics(version=__version__)
        self._injector = None
        if config.faults:
            self._injector = install(FaultPlan.parse(config.faults))
            self._injector.on_fire = \
                lambda point: self.metrics.faults.inc(point=point)
        self.batcher = MicroBatcher(
            self._evaluate,
            window_s=config.window_ms / 1000.0,
            max_batch=config.max_batch,
            workers=config.workers,
            lru_size=config.lru_size,
            metrics=self.metrics,
            retry=RetryPolicy(max_attempts=3, base_delay_s=0.01,
                              max_delay_s=0.1),
            saturation_limit=config.saturation_limit,
            arena=arena)
        self.router = default_router()
        #: per-prediction-key circuit breakers (fault isolation: one
        #: poisoned key never takes down its neighbours).
        self.breakers: dict[tuple, CircuitBreaker] = {}
        # experiment runs are rarer and heavier than predictions: one
        # executor thread keeps them off both the loop and the batcher
        self.executor = ThreadPoolExecutor(
            max_workers=max(1, config.workers // 2),
            thread_name_prefix="repro-exp")
        self.experiment_locks: dict[tuple, asyncio.Lock] = {}
        self._started_at = time.monotonic()

        from ..experiments import all_experiments
        from ..runner import ResultCache
        self.experiments = all_experiments()
        self.result_cache = ResultCache(config.cache_dir, arena=arena)

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self._started_at

    def sync_arena_metrics(self) -> None:
        """Mirror the arena's own counters into ``repro_arena_ops_total``.

        The arena keeps its counts itself (hits from the batcher *and*
        the result cache land in one place), so the Prometheus counter
        is an absolute mirror taken at scrape/publish time.
        """
        if self.arena is None:
            return
        for op, n in self.arena.stats.as_dict().items():
            self.metrics.arena_ops.set(n, op=op)

    def metrics_snapshot(self) -> list[dict]:
        """This worker's registry snapshot (fleet aggregation unit)."""
        self.sync_arena_metrics()
        return self.metrics.snapshot()

    def _evaluate(self, items):
        """The batch evaluator, instrumented with dispatch fault points.

        Runs on an executor thread.  ``dispatch-slow`` sleeps (a stuck
        batch worker), ``dispatch-error`` raises (a died one); the
        batcher's bounded retry absorbs both.
        """
        fault_point("dispatch-slow")
        fault_point("dispatch-error")
        return evaluate_batch(items)

    def breaker_for(self, key: tuple) -> CircuitBreaker:
        """The circuit breaker isolating one prediction key.

        The map is pruned of healthy (closed, no-failure) breakers when
        it grows past 4096 entries, bounding memory under key churn.
        """
        breaker = self.breakers.get(key)
        if breaker is None:
            if len(self.breakers) >= 4096:
                self.breakers = {
                    k: b for k, b in self.breakers.items()
                    if b.state != "closed" or b.failures > 0}
            breaker = self.breakers[key] = CircuitBreaker(
                threshold=self.config.breaker_threshold,
                reset_s=self.config.breaker_reset_s)
        return breaker

    def close(self) -> None:
        """Release process-global state installed at boot."""
        if self._injector is not None:
            deactivate()
            self._injector = None

    def run_experiment(self, exp_id: str, scale: float, seed: int):
        """Blocking experiment run (executor thread), via the runner cache."""
        from ..runner import run_experiments

        return run_experiments([exp_id], scale=scale, seed=seed, jobs=1,
                               cache=self.result_cache)[0]

    @staticmethod
    def warm() -> None:
        """Pre-fit the three paper calibrations (blocking; boot time).

        A staticmethod so the fleet supervisor can warm the process-wide
        memo *before* forking — every worker inherits the fits for free.
        """
        from ..calibration.table1 import calibration_for

        for name, P in (("maspar", 1024), ("gcel", 64), ("cm5", 64)):
            calibration_for(name, P=P, machine_seed=1000, seed=0)


class ReproService:
    """The asyncio HTTP server around one :class:`ServiceApp`.

    In fleet mode each worker process runs one of these over a shared
    arena/metrics board (``arena=``/``board=``) and either its own
    SO_REUSEPORT socket or an inherited shared listener
    (``listen_sock=``).
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 arena=None, board=None, listen_sock=None):
        self.config = config or ServiceConfig()
        self.app = ServiceApp(self.config, arena=arena, board=board)
        self._listen_sock = listen_sock
        self._server: asyncio.base_events.Server | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._publish_task: asyncio.Task | None = None
        self._stopping = asyncio.Event()
        self.port: int | None = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self.config.warm:
            # calibrations are memoised process-wide; fitting them before
            # accepting traffic keeps first-request latency flat
            await asyncio.get_running_loop().run_in_executor(
                self.app.executor, self.app.warm)
        await self.app.batcher.start()
        if self._listen_sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=self._listen_sock)
        else:
            self._server = await asyncio.start_server(
                self._on_connection, self.config.host, self.config.port)
        self.port = self._server.sockets[0].getsockname()[1]
        if self.app.board is not None:
            self._publish_task = asyncio.create_task(
                self._publish_metrics(), name="metrics-publisher")

    async def _publish_metrics(self) -> None:
        """Periodically publish this worker's snapshot to the board."""
        index = self.config.worker_index or 0
        while True:
            self.app.board.publish(index, {
                "worker": index,
                "metrics": self.app.metrics_snapshot()})
            await asyncio.sleep(0.5)

    def request_stop(self) -> None:
        """Ask the serve loop to shut down (signal-handler safe)."""
        self._stopping.set()

    async def stop(self) -> None:
        """Graceful: stop accepting, drain in-flight, then tear down."""
        self._stopping.set()
        if self._publish_task is not None:
            self._publish_task.cancel()
            await asyncio.gather(self._publish_task, return_exceptions=True)
            self._publish_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                list(self._conn_tasks),
                timeout=self.config.drain_timeout_s)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        await self.app.batcher.stop()
        self.app.executor.shutdown(wait=True)
        self.app.close()

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` (usually via a signal handler)."""
        await self._stopping.wait()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                # only *request* the stop: the serve loop's finally
                # performs the one real teardown
                loop.add_signal_handler(sig, self.request_stop)

    # ------------------------------------------------------------------
    async def _on_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)
        try:
            if fault_flag("handoff-loss"):
                # the accepted connection is dropped before any request
                # is read — clients see a reset and retry elsewhere
                return
            await self._serve_connection(reader, writer)
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _serve_connection(self, reader, writer) -> None:
        while not self._stopping.is_set():
            try:
                request = await asyncio.wait_for(read_request(reader),
                                                 IDLE_TIMEOUT)
            except asyncio.TimeoutError:
                return
            except HttpError as exc:
                writer.write(encode_response(
                    Response.error(exc.status, exc.message),
                    keep_alive=False))
                await writer.drain()
                return
            except ConnectionError:
                return
            if request is None:  # clean EOF
                return

            if self.config.worker_index is not None \
                    and fault_flag("worker-exit"):
                # a fleet worker dying mid-request: the supervisor
                # respawns it, the client sees a reset and retries.
                # Guarded to fleet workers so in-process test servers
                # never take the test runner down with them.
                os._exit(23)

            endpoint = self.app.router.endpoint_of(request.method,
                                                   request.path)
            self.app.metrics.inflight.inc()
            t0 = time.perf_counter()
            try:
                handler, params = self.app.router.match(request.method,
                                                        request.path)
                response = await handler(self.app, request, **params)
            except Exception as exc:  # noqa: BLE001 — mapped to a status
                response = service_error_response(exc)
            finally:
                self.app.metrics.inflight.dec()
            self.app.metrics.latency.observe(time.perf_counter() - t0,
                                             endpoint=endpoint)
            self.app.metrics.requests.inc(endpoint=endpoint,
                                          status=str(response.status))

            keep = request.keep_alive and not self._stopping.is_set()
            try:
                writer.write(encode_response(response, keep_alive=keep,
                                             version=request.version))
                await writer.drain()
            except ConnectionError:
                return
            if not keep:
                return


async def _amain(config: ServiceConfig, *, ready=None) -> None:
    service = ReproService(config)
    await service.start()
    service.install_signal_handlers()
    banner = (f"repro.service {__version__} listening on "
              f"http://{config.host}:{service.port} "
              f"(workers={config.workers} window={config.window_ms}ms "
              f"max-batch={config.max_batch} lru={config.lru_size})")
    print(banner, flush=True)
    if ready is not None:
        ready(service)
    try:
        await service.serve_forever()
    finally:
        await service.stop()


def run_service(config: ServiceConfig | None = None) -> int:
    """Blocking entry point for ``repro serve``."""
    config = config or ServiceConfig()
    if config.processes > 1:
        from .fleet import run_fleet

        return run_fleet(config)
    try:
        asyncio.run(_amain(config))
    except KeyboardInterrupt:
        pass
    return 0


class ServiceThread:
    """A server on a daemon thread + private loop (tests, fixtures).

    Usage::

        with ServiceThread(ServiceConfig(port=0)) as svc:
            urllib.request.urlopen(f"http://127.0.0.1:{svc.port}/healthz")
    """

    def __init__(self, config: ServiceConfig | None = None, *,
                 arena=None, board=None):
        self.config = config or ServiceConfig(port=0)
        self.arena = arena
        self.board = board
        self.service: ReproService | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-service")

    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # noqa: BLE001 — surfaced in start()
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self.service = ReproService(self.config, arena=self.arena,
                                    board=self.board)
        await self.service.start()
        self._ready.set()
        try:
            await self.service.serve_forever()
        finally:
            await self.service.stop()

    # ------------------------------------------------------------------
    def start(self, timeout: float = 60.0) -> "ServiceThread":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise TimeoutError("service did not start in time")
        if self._error is not None:
            raise RuntimeError("service failed to start") from self._error
        return self

    def stop(self, timeout: float = 30.0) -> None:
        if self._loop is not None and self.service is not None \
                and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.service.request_stop)
        self._thread.join(timeout)

    @property
    def port(self) -> int:
        assert self.service is not None and self.service.port is not None
        return self.service.port

    def __enter__(self) -> "ServiceThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(run_service())
