"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands:

* ``list`` — every registered experiment (tables, figures, ablations,
  extensions);
* ``run <id> [...]`` — run experiments and print the data table, an ASCII
  plot and the paper-claim checks (``--json FILE`` dumps the results).
  ``--all`` sweeps the whole registry, ``--jobs N`` fans misses out over
  a process pool, and results are served from the content-addressed
  cache unless ``--no-cache``/``--force`` say otherwise;
* ``cache`` — inspect (``info``) or empty (``clear``) the result cache;
* ``table1`` — calibrate the three machines and print fitted-vs-paper
  parameters;
* ``scoreboard`` — price a workload matrix under six cost models and
  tabulate the signed errors;
* ``ablate`` — switch simulated machine phenomena off one by one,
  re-run the scoreboard per configuration and rank each component by
  how much modelling it buys in prediction accuracy (docs/ABLATION.md);
* ``bounds`` — compare measured communication volume against analytic
  lower bounds per matrix cell and rank the attained-vs-optimal
  ratios, flagging cells with algorithmic headroom (docs/BOUNDS.md);
* ``attribute`` — run one workload and attribute a model's error per
  superstep family (the paper's §5 diagnostics, mechanised);
* ``machines`` — the simulated platforms and their headline behaviours;
* ``serve`` — the prediction-serving HTTP subsystem (micro-batched
  ``/predict``, ``/compare``, experiment results, Prometheus
  ``/metrics``; see docs/SERVICE.md);
* ``loadtest`` — closed-loop client harness against a running server.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import __version__
from .calibration import calibrate_all, render_table1
from .experiments import all_experiments
from .machines import machine_catalog
from .simulator.vector import ENGINES, engine_scope
from .validation.textfig import render_result

__all__ = ["main", "build_parser"]


def _positive_int(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{raw!r} is not an integer") \
            from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(raw: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{raw!r} is not a number") \
            from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _nonneg_float(raw: str) -> float:
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{raw!r} is not a number") \
            from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _port(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{raw!r} is not a port number") \
            from None
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError(
            f"port must be in [0, 65535], got {value}")
    return value


def _mix(raw: str) -> tuple[int, int, int]:
    from .service.loadtest import parse_mix

    try:
        return parse_mix(raw)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'A Quantitative Comparison of "
                    "Parallel Computation Models' (SPAA'96)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list all experiments")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("ids", nargs="*",
                     help="experiment ids (e.g. fig12), or 'all'")
    run.add_argument("--all", action="store_true", dest="run_all",
                     help="run every registered experiment")
    run.add_argument("--scale", type=float, default=1.0,
                     help="problem-size scale in (0, 1] (default 1.0)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="worker processes for uncached experiments "
                          "(default: os.cpu_count())")
    run.add_argument("--no-cache", action="store_true",
                     help="neither read nor write the result cache")
    run.add_argument("--force", action="store_true",
                     help="recompute even on a cache hit (refreshes the "
                          "stored entry)")
    run.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="cache root (default: $REPRO_CACHE_DIR or "
                          "~/.cache/repro)")
    run.add_argument("--no-plot", action="store_true",
                     help="omit the ASCII plot")
    run.add_argument("--json", metavar="FILE", default=None,
                     help="also dump all results as JSON to FILE")
    run.add_argument("--profile", action="store_true",
                     help="run in-process under cProfile and dump one "
                          "pstats file per experiment under "
                          "<cache-dir>/profiles (implies --no-cache, "
                          "--jobs 1)")
    run.add_argument("--faults", default=None, metavar="PLAN",
                     help="deterministic fault-injection plan, e.g. "
                          "'worker-crash:p=0.2,seed=7' (default: "
                          "$REPRO_FAULTS; see docs/TESTING.md)")
    run.add_argument("--engine", choices=ENGINES, default=None,
                     help="simulation engine (default: $REPRO_ENGINE or "
                          "'auto'; see docs/DESIGN.md)")

    bench = sub.add_parser(
        "bench",
        help="cold-run experiments, record wall times to a trajectory file")
    bench.add_argument("ids", nargs="*",
                       help="experiment ids (default: the whole registry)")
    bench.add_argument("--quick", action="store_true",
                       help="representative subset for CI smoke runs")
    bench.add_argument("--scale", type=float, default=1.0)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--out", default="BENCH_sweep.json", metavar="FILE",
                       help="trajectory file to append to "
                            "(default BENCH_sweep.json)")
    bench.add_argument("--label", default="", metavar="TEXT",
                       help="free-form tag stored with this bench record")
    bench.add_argument("--top", type=int, default=5, metavar="N",
                       help="rows in the slowest-experiments table")
    bench.add_argument("--budget", action="append", default=[],
                       metavar="ID=SECONDS",
                       help="fail (exit 3) if experiment ID exceeds its "
                            "budget; repeatable")
    bench.add_argument("--profile", action="store_true",
                       help="also dump cProfile pstats per experiment "
                            "under <cache-dir>/profiles")
    bench.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="only used to locate the profiles directory")
    bench.add_argument("--compare", action="store_true",
                       help="do not run anything: diff the last two runs "
                            "of the trajectory file (--out), print a "
                            "per-experiment speedup table, exit 3 on "
                            "regressions past --tolerance")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       metavar="FRAC",
                       help="--compare regression threshold as a "
                            "fraction of the previous time (default "
                            "0.25 = 25%% slower)")
    bench.add_argument("--service", action="store_true",
                       help="with --compare: diff the last two "
                            "kind=service loadtest records with "
                            "matching process topology instead of "
                            "experiment sweeps")

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=["info", "clear"])
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache root (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro)")
    cache.add_argument("--json", action="store_true", dest="as_json",
                       help="machine-readable output (info only)")

    serve = sub.add_parser(
        "serve",
        help="serve predictions over HTTP (micro-batched; docs/SERVICE.md)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=_port, default=8080,
                       help="TCP port (0 picks an ephemeral port; "
                            "default 8080)")
    serve.add_argument("--workers", type=_positive_int, default=2,
                       metavar="N",
                       help="batch-evaluation worker shards (default 2)")
    serve.add_argument("--processes", type=_positive_int, default=1,
                       metavar="N",
                       help="worker processes; > 1 boots the pre-fork "
                            "fleet with a shared result arena "
                            "(default 1)")
    serve.add_argument("--arena-slots", type=_positive_int, default=1024,
                       metavar="N",
                       help="shared-arena result slots (fleet mode; "
                            "default 1024)")
    serve.add_argument("--arena-slot-kb", type=_positive_int, default=32,
                       metavar="KB",
                       help="bytes per shared-arena slot, in KiB (fleet "
                            "mode; default 32)")
    serve.add_argument("--window-ms", type=_nonneg_float, default=2.0,
                       metavar="MS",
                       help="micro-batching window (default 2.0 ms)")
    serve.add_argument("--max-batch", type=_positive_int, default=256,
                       metavar="N",
                       help="largest coalesced batch (default 256)")
    serve.add_argument("--lru-size", type=_positive_int, default=4096,
                       metavar="N",
                       help="prediction LRU entries (default 4096)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="experiment result cache root")
    serve.add_argument("--no-warm", action="store_true",
                       help="skip pre-fitting the paper calibrations at "
                            "boot")
    serve.add_argument("--faults", default=None, metavar="PLAN",
                       help="deterministic fault-injection plan, e.g. "
                            "'dispatch-error:p=0.1,seed=3' (default: "
                            "$REPRO_FAULTS; see docs/TESTING.md)")
    serve.add_argument("--request-timeout", type=_positive_float,
                       default=30.0, metavar="S",
                       help="per-request deadline on /predict and "
                            "/compare; past it the client gets 503 + "
                            "Retry-After (default 30 s)")
    serve.add_argument("--engine", choices=ENGINES, default="auto",
                       help="simulation engine for experiment evaluation "
                            "(default auto)")

    lt = sub.add_parser(
        "loadtest",
        help="closed-loop load test against a running `repro serve`")
    lt.add_argument("--host", default="127.0.0.1")
    lt.add_argument("--port", type=_port, default=8080)
    lt.add_argument("--concurrency", type=_positive_int, default=16,
                    metavar="C", help="concurrent client connections")
    lt.add_argument("--duration", type=_positive_float, default=10.0,
                    metavar="S", help="seconds to sustain load")
    lt.add_argument("--mix", type=_mix, default=(8, 1, 1),
                    metavar="P:C:E",
                    help="predict:compare:experiment weights "
                         "(default 8:1:1)")
    lt.add_argument("--seed", type=int, default=0)
    lt.add_argument("--label", default="", metavar="TEXT",
                    help="tag stored with the trajectory record")
    lt.add_argument("--out", default="BENCH_sweep.json", metavar="FILE",
                    help="trajectory file for the service record "
                         "(default BENCH_sweep.json)")
    lt.add_argument("--no-record", action="store_true",
                    help="do not append to the trajectory file")

    t1 = sub.add_parser("table1", help="calibrate machines, print Table 1")
    t1.add_argument("--seed", type=int, default=0)
    t1.add_argument("--trials", type=int, default=10)

    sb = sub.add_parser(
        "scoreboard",
        help="price a workload matrix under every model, tabulate errors")
    sb.add_argument("--scale", type=float, default=1.0)
    sb.add_argument("--seed", type=int, default=0)

    ab = sub.add_parser(
        "ablate",
        help="switch model components off one by one and rank how much "
             "each buys in prediction accuracy")
    ab.add_argument("--components", nargs="+", default=None, metavar="NAME",
                    help="components to ablate (default: all; see "
                         "`repro machines --json` for the per-machine "
                         "phenomena)")
    ab.add_argument("--cells", nargs="+", default=None, metavar="CELL",
                    help="scoreboard cells to re-run (default: all)")
    ab.add_argument("--scale", type=float, default=0.3,
                    help="problem-size scale in (0, 1] (default 0.3)")
    ab.add_argument("--seed", type=int, default=0)
    ab.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                    help="worker processes for uncached cell runs "
                         "(default 1)")
    ab.add_argument("--json", metavar="FILE", default=None, dest="json_path",
                    help="write the report as JSON ('-' = stdout)")
    ab.add_argument("--no-cache", action="store_true",
                    help="neither read nor write the result cache")
    ab.add_argument("--force", action="store_true",
                    help="recompute even on a cache hit (refreshes the "
                         "stored entries)")
    ab.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="cache root (default: $REPRO_CACHE_DIR or "
                         "~/.cache/repro)")
    ab.add_argument("--faults", default=None, metavar="PLAN",
                    help="fault plan for the run (also honours "
                         "$REPRO_FAULTS)")
    ab.add_argument("--engine", choices=ENGINES, default="auto",
                    help="simulation engine for cell evaluation "
                         "(default auto)")

    bo = sub.add_parser(
        "bounds",
        help="rank measured communication volume against analytic "
             "lower bounds and flag cells with headroom")
    bo.add_argument("--cells", nargs="+", default=None, metavar="CELL",
                    help="bound cells to measure (default: the full "
                         "matrix; e.g. matmul/cm5 bitonic/maspar)")
    bo.add_argument("--scale", type=float, default=0.3,
                    help="problem-size scale in (0, 1] (default 0.3)")
    bo.add_argument("--seed", type=int, default=0)
    bo.add_argument("--threshold", type=_positive_float, default=None,
                    metavar="X",
                    help="flag HEADROOM past this attained/optimal "
                         "ratio (default 8.0)")
    bo.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                    help="worker processes for uncached measurements "
                         "(default 1)")
    bo.add_argument("--json", metavar="FILE", default=None, dest="json_path",
                    help="write the report as JSON ('-' = stdout)")
    bo.add_argument("--no-cache", action="store_true",
                    help="neither read nor write the result cache")
    bo.add_argument("--force", action="store_true",
                    help="recompute even on a cache hit (refreshes the "
                         "stored entries)")
    bo.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="cache root (default: $REPRO_CACHE_DIR or "
                         "~/.cache/repro)")
    bo.add_argument("--engine", choices=ENGINES, default="auto",
                    help="simulation engine for live measurements "
                         "(default auto)")

    at = sub.add_parser(
        "attribute",
        help="run a workload and attribute a model's error per superstep")
    at.add_argument("--machine", default="gcel",
                    choices=["maspar", "gcel", "cm5", "t800", "modern"])
    at.add_argument("--workload", default="apsp",
                    choices=["matmul", "matmul-naive", "bitonic",
                             "bitonic-blk", "apsp", "lu", "stencil",
                             "radix"])
    at.add_argument("--model", default="bsp",
                    choices=["bsp", "mp-bsp", "mp-bpram", "loggp", "pram",
                             "bsf"])
    at.add_argument("--size", type=int, default=None,
                    help="problem size (default: workload-specific)")
    at.add_argument("--seed", type=int, default=0)

    mach = sub.add_parser("machines",
                          help="describe the simulated platforms")
    mach.add_argument("--json", action="store_true", dest="as_json",
                      help="machine-readable output")
    return parser


def _cmd_list() -> int:
    for exp in all_experiments().values():
        print(f"{exp.id:<16} {exp.title}  [{exp.paper_ref}]")
    return 0


def _cmd_run(ids: list[str], scale: float, seed: int, plot: bool,
             json_path: str | None = None, *, jobs: int | None = None,
             use_cache: bool = True, force: bool = False,
             cache_dir: str | None = None, profile: bool = False,
             timing_summary: bool = False,
             faults: str | None = None,
             engine: str | None = None) -> int:
    from .core.errors import ExperimentError, FaultError
    from .faults import FaultPlan, plan_from_env
    from .runner import ResultCache, run_experiments

    if not ids:
        print("error: no experiment ids given (or use --all)",
              file=sys.stderr)
        return 2
    if jobs is None:
        jobs = os.cpu_count() or 1
    cache = ResultCache(cache_dir) if use_cache and not profile else None
    try:
        plan = FaultPlan.parse(faults) if faults else plan_from_env()
        if profile:
            outcomes = _run_profiled(ids, scale=scale, seed=seed,
                                     cache_dir=cache_dir, engine=engine)
        else:
            outcomes = run_experiments(ids, scale=scale, seed=seed,
                                       jobs=jobs, cache=cache, force=force,
                                       faults=plan, engine=engine)
    except (ExperimentError, FaultError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    failed = 0
    dumped = []
    for out in outcomes:
        print(render_result(out.result, plot=plot))
        print()
        dumped.append(out.result.to_dict())
        if not out.result.passed:
            failed += 1
    if cache is not None:
        print(f"cache: {cache.stats.summary()} — {cache.root}")
    if timing_summary and outcomes:
        print(_timing_summary(outcomes))
    if json_path:
        import json

        with open(json_path, "w") as fh:
            json.dump({"scale": scale, "seed": seed, "results": dumped},
                      fh, indent=1)
        print(f"wrote {json_path}")
    if failed:
        print(f"{failed} experiment(s) had failing checks", file=sys.stderr)
    return 1 if failed else 0


def _timing_summary(outcomes, top: int = 5) -> str:
    """Top-``top`` slowest experiments of a batch, one line each."""
    ranked = sorted(outcomes, key=lambda o: -o.elapsed_s)[:top]
    total = sum(o.elapsed_s for o in outcomes) or 1.0
    lines = [f"timing: {len(outcomes)} experiment(s) in "
             f"{sum(o.elapsed_s for o in outcomes):.1f}s; slowest:"]
    for out in ranked:
        src = "cache" if out.cached else "fresh"
        lines.append(f"  {out.id:<16} {out.elapsed_s:>8.2f}s  "
                     f"{out.elapsed_s / total:>5.1%}  ({src})")
    return "\n".join(lines)


def _run_profiled(ids: list[str], *, scale: float, seed: int,
                  cache_dir: str | None, engine: str | None = None):
    """``repro run --profile``: in-process, cProfile dump per experiment."""
    import time

    from .runner import (RunOutcome, default_cache_root, profiled_run,
                         render_ir_phases, resolve_ids)

    profile_dir = os.path.join(str(cache_dir or default_cache_root()),
                               "profiles")
    outcomes = []
    with engine_scope(engine):
        for exp_id in resolve_ids(ids):
            t0 = time.perf_counter()
            result, path = profiled_run(exp_id, scale=scale, seed=seed,
                                        profile_dir=profile_dir)
            outcomes.append(RunOutcome(id=exp_id, result=result,
                                       cached=False,
                                       elapsed_s=time.perf_counter() - t0))
            print(f"profile: {path}", file=sys.stderr)
            print(render_ir_phases(path), file=sys.stderr)
    return outcomes


def _cmd_bench(ids: list[str], *, quick: bool, scale: float, seed: int,
               out: str, label: str, top: int, budgets: list[str],
               profile: bool, cache_dir: str | None, compare: bool = False,
               tolerance: float = 0.25, service: bool = False) -> int:
    from .core.errors import ExperimentError
    from .runner import (append_trajectory, check_budgets, compare_last_runs,
                         compare_last_service_runs, default_cache_root,
                         parse_budgets, render_bench, run_bench, QUICK_IDS)

    if service and not compare:
        print("error: --service only makes sense with --compare",
              file=sys.stderr)
        return 2
    if compare:
        differ = compare_last_service_runs if service else compare_last_runs
        try:
            table, regressions = differ(out, tolerance=tolerance)
        except ExperimentError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(table)
        for msg in regressions:
            print(msg, file=sys.stderr)
        return 3 if regressions else 0

    try:
        budget_map = parse_budgets(budgets)
        if quick and ids:
            raise ExperimentError("give either --quick or explicit ids")
        bench_ids = QUICK_IDS if quick else (ids or ["all"])
        profile_dir = None
        if profile:
            root = cache_dir or default_cache_root()
            profile_dir = os.path.join(str(root), "profiles")
        record = run_bench(bench_ids, scale=scale, seed=seed, label=label,
                           profile_dir=profile_dir,
                           progress=lambda msg: print(msg, file=sys.stderr))
    except ExperimentError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    path = append_trajectory(record, out)
    print(render_bench(record, top=top))
    print(f"wrote {path}")
    problems = check_budgets(record, budget_map)
    for problem in problems:
        print(problem, file=sys.stderr)
    if record.errors:
        return 1
    return 3 if problems else 0


def _cmd_cache(action: str, cache_dir: str | None,
               as_json: bool = False) -> int:
    from .runner import ResultCache
    from .simulator.ir import IRStore

    cache = ResultCache(cache_dir)
    if action == "clear":
        removed = cache.clear()
        programs = IRStore(cache.root / "ir").clear()
        print(f"removed {removed} cached result(s) and {programs} step "
              f"program(s) from {cache.root}")
        return 0
    entries = cache.entries()
    ir_count, ir_bytes = IRStore(cache.root / "ir").disk_stats()
    if as_json:
        import json

        print(json.dumps({"root": str(cache.root),
                          "count": len(entries),
                          "entries": entries,
                          "ir": {"count": ir_count,
                                 "bytes": ir_bytes}}, indent=1))
        return 0
    print(f"cache root: {cache.root}")
    print(f"{len(entries)} cached result(s)")
    for e in entries:
        exp = e.get("experiment", "?")
        print(f"  {exp:<16} scale={e.get('scale', '?'):<6} "
              f"seed={e.get('seed', '?'):<4} {e['bytes']:>8} bytes  "
              f"{e['key'][:12]}")
    print(f"{ir_count} recorded step program(s), {ir_bytes} bytes")
    return 0


def _cmd_table1(seed: int, trials: int) -> int:
    cals = calibrate_all(seed=seed, trials=trials)
    print(render_table1(cals))
    mp = cals["maspar"]
    if mp.unb is not None:
        print(f"\nMasPar T_unb(P') = {mp.unb.a:.2f} P' + {mp.unb.b:.1f} "
              f"sqrt(P') + {mp.unb.c:.1f} us   (paper: 0.84 / 11.8 / 73.3)")
    if cals["gcel"].g_scatter is not None:
        print(f"GCel g_mscat = {cals['gcel'].g_scatter:.0f} us "
              "(paper: 492)")
    return 0


def _cmd_ablate(args: argparse.Namespace) -> int:
    """Run the component-ablation matrix and print the ranking."""
    from .ablation import AblateRequest, ablate, render_report
    from .core.errors import AblationError, FaultError
    from .faults import FaultPlan, plan_from_env

    try:
        plan = (FaultPlan.parse(args.faults) if args.faults
                else plan_from_env())
        req = AblateRequest(
            components=tuple(args.components) if args.components else None,
            cells=tuple(args.cells) if args.cells else None,
            scale=args.scale, seed=args.seed, jobs=args.jobs,
            cache_dir=args.cache_dir, use_cache=not args.no_cache,
            force=args.force, engine=args.engine)
        report = ablate(req, faults=plan)
    except (AblationError, FaultError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json_path:
        import json

        text = json.dumps(report, indent=1, sort_keys=True)
        if args.json_path == "-":
            print(text)
        else:
            with open(args.json_path, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.json_path}")
    if args.json_path != "-":
        print(render_report(report))
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    """Measure the bound matrix and print the headroom ranking."""
    from .bounds import BoundsRequest, DEFAULT_THRESHOLD, bounds, \
        render_report
    from .core.errors import BoundsError

    try:
        req = BoundsRequest(
            cells=tuple(args.cells) if args.cells else None,
            scale=args.scale, seed=args.seed,
            threshold=(DEFAULT_THRESHOLD if args.threshold is None
                       else args.threshold),
            jobs=args.jobs, cache_dir=args.cache_dir,
            use_cache=not args.no_cache, force=args.force,
            engine=args.engine)
        report = bounds(req)
    except BoundsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json_path:
        import json

        text = json.dumps(report, indent=1, sort_keys=True)
        if args.json_path == "-":
            print(text)
        else:
            with open(args.json_path, "w") as fh:
                fh.write(text + "\n")
            print(f"wrote {args.json_path}")
    if args.json_path != "-":
        print(render_report(report))
    return 0


def _cmd_attribute(machine_name: str, workload: str, model_name: str,
                   size: int | None, seed: int) -> int:
    """Run a workload and print the per-superstep error attribution."""
    from .algorithms import apsp, bitonic, lu, matmul, radix, stencil
    from .calibration import calibrate
    from .core.bpram import MPBPRAM
    from .core.bsf import BSF
    from .core.bsp import BSP
    from .core.logp import LogGP, logp_from_table1
    from .core.mp_bsp import MPBSP
    from .core.pram import PRAM
    from .experiments.common import machine_for
    from .validation.attribution import attribute_error, render_attribution

    machine = machine_for(machine_name, seed=seed)
    cal = calibrate(machine, seed=seed)
    params = cal.params

    if workload in ("matmul", "matmul-naive"):
        # the largest q^3 that fits, sized to the machine
        q = 4 if machine.P >= 64 else 2
        N = size or 32 * q
        variant = "bsp" if workload == "matmul-naive" else "bsp-staggered"
        res = matmul.run(machine, N, variant=variant, P=q ** 3, seed=seed)
    elif workload == "bitonic":
        res = bitonic.run(machine, size or 64, variant="bsp", seed=seed)
    elif workload == "bitonic-blk":
        res = bitonic.run(machine, size or 512, variant="bpram", seed=seed)
    elif workload == "apsp":
        res = apsp.run(machine, size or 64, seed=seed)
    elif workload == "lu":
        res = lu.run(machine, size or 64, seed=seed)
    elif workload == "radix":
        res = radix.run(machine, size or 256, variant="bpram", seed=seed)
    else:  # stencil
        res = stencil.run(machine, size or 64, 8, seed=seed)

    models = {"bsp": lambda: BSP(params), "mp-bsp": lambda: MPBSP(params),
              "mp-bpram": lambda: MPBPRAM(params),
              "pram": lambda: PRAM(params),
              "loggp": lambda: LogGP(params, logp_from_table1(params)),
              "bsf": lambda: BSF(params)}
    model = models[model_name]()
    rows = attribute_error(res.trace, model)
    print(f"{workload} on {machine_name}, priced by {model_name} "
          f"(calibrated parameters)\n")
    print(render_attribution(rows))
    if isinstance(model, BSF):
        p_max = model.p_max(res.trace)
        print(f"\nBSF scalability bound: P_max = "
              f"sqrt(t_comp/t_interact) = {p_max:,.1f} "
              f"(trace farm size P = {res.trace.P}) — beyond P_max "
              f"workers, adding hardware slows the farm down")
    return 0


def _cmd_machines(as_json: bool = False) -> int:
    catalog = machine_catalog()
    if as_json:
        import json

        print(json.dumps({"machines": catalog}, indent=1))
        return 0
    for entry in catalog:
        print(f"{entry['name']:<8} {entry['class']:<12} {entry['summary']}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .core.errors import FaultError
    from .faults import FaultPlan, plan_from_env
    from .service import ServiceConfig, run_service

    try:
        plan = (FaultPlan.parse(args.faults) if args.faults
                else plan_from_env())
    except FaultError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return run_service(ServiceConfig(
        host=args.host, port=args.port, workers=args.workers,
        window_ms=args.window_ms, max_batch=args.max_batch,
        lru_size=args.lru_size, cache_dir=args.cache_dir,
        warm=not args.no_warm,
        faults=plan.render() if plan else None,
        request_timeout_s=args.request_timeout,
        processes=args.processes,
        arena_slots=args.arena_slots,
        arena_slot_bytes=args.arena_slot_kb * 1024,
        engine=args.engine))


def _cmd_loadtest(args: argparse.Namespace) -> int:
    import asyncio

    from .service import append_service_record, render_report, run_loadtest

    try:
        report = asyncio.run(run_loadtest(
            args.host, args.port, concurrency=args.concurrency,
            duration_s=args.duration, mix=args.mix, seed=args.seed))
    except (ConnectionError, OSError) as exc:
        print(f"error: cannot reach http://{args.host}:{args.port} — "
              f"{exc}\n(is `repro serve` running?)", file=sys.stderr)
        return 2
    print(render_report(report))
    if not args.no_record:
        path = append_service_record(report, args.out, label=args.label)
        print(f"wrote {path}")
    if report.total == 0:
        print("error: no request completed", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    try:
        return _dispatch(build_parser().parse_args(argv))
    except BrokenPipeError:
        # Reader of a `repro ... | head`-style pipe went away; exit with
        # the conventional SIGPIPE status instead of a traceback.  Point
        # stdout at devnull first so the interpreter's shutdown flush
        # does not raise again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 128 + 13


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        ids = ["all"] if args.run_all else args.ids
        return _cmd_run(ids, args.scale, args.seed, not args.no_plot,
                        args.json, jobs=args.jobs,
                        use_cache=not args.no_cache, force=args.force,
                        cache_dir=args.cache_dir, profile=args.profile,
                        timing_summary=args.run_all, faults=args.faults,
                        engine=args.engine)
    if args.command == "bench":
        return _cmd_bench(args.ids, quick=args.quick, scale=args.scale,
                          seed=args.seed, out=args.out, label=args.label,
                          top=args.top, budgets=args.budget,
                          profile=args.profile, cache_dir=args.cache_dir,
                          compare=args.compare, tolerance=args.tolerance,
                          service=args.service)
    if args.command == "cache":
        return _cmd_cache(args.action, args.cache_dir, args.as_json)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "loadtest":
        return _cmd_loadtest(args)
    if args.command == "table1":
        return _cmd_table1(args.seed, args.trials)
    if args.command == "scoreboard":
        from .validation.scoreboard import build_scoreboard, render_scoreboard
        print(render_scoreboard(build_scoreboard(scale=args.scale,
                                                 seed=args.seed)))
        return 0
    if args.command == "ablate":
        return _cmd_ablate(args)
    if args.command == "bounds":
        return _cmd_bounds(args)
    if args.command == "attribute":
        return _cmd_attribute(args.machine, args.workload, args.model,
                              args.size, args.seed)
    if args.command == "machines":
        return _cmd_machines(args.as_json)
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
