"""Performance model of the 64-node Parsytec GCel under HPVM (paper §3.2).

An 8 x 8 mesh of 30 MHz T805 transputers with store-and-forward routing,
programmed through "homogeneous PVM".  The dominant communication costs
are *software*: per fine-grain message the sender spends ``c_send ~= 450``
us and the receiver ``c_recv ~= 4030`` us, so

* a random full h-relation costs ``(c_send + c_recv) h ~= 4480 h`` plus a
  barrier of ~5100 us — Table 1's ``g = 4480, L = 5100``;
* a multinode scatter (``sqrt(P)`` senders, everyone receiving ``<= h /
  sqrt(P)``) is receive-bound at ``c_recv h / 8 ~= 500 h`` — the paper's
  ``g_mscat ~= 492``, a factor 9.1 cheaper than a full h-relation
  (Fig. 14), which plain BSP cannot express;
* block transfers amortise the software cost: ``sigma ~= 9.3`` us/byte
  with ``ell ~= 6900`` us startup, a bulk gain ``g/(w sigma) ~= 120``.

Without barriers the processors *drift out of sync* (§5.1, Fig. 7): h-h
permutations are linear in ``h`` until roughly ``h = 300``, after which
PVM's buffering collapses and times become noisy and super-linear.
Inserting a barrier every 256 messages restores linearity — the paper's
"synchronized" bitonic variant.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import SimulationError
from ..core.params import ModelParams, paper_params
from ..core.relations import CommPhase
from .base import CommPricer, Machine, unique_phases

__all__ = ["GCel"]


class GCel(Machine):
    """Simulated 64-node Parsytec GCel (8 x 8 transputer mesh) under HPVM."""

    name = "gcel"
    simd = False
    #: ablatable phenomena (see :mod:`repro.ablation.components`): the
    #: PVM buffering collapse of long unsynchronised message sequences
    #: (§5.1, Fig. 7).
    PHENOMENA = ("sync-loss",)

    def __init__(self, *, P: int = 64, seed: int = 0,
                 params: ModelParams | None = None,
                 disable: tuple[str, ...] = ()):
        nominal = params or paper_params("gcel").with_updates(P=P)
        if nominal.P != P:
            nominal = nominal.with_updates(P=P)
        super().__init__(nominal, seed=seed, disable=disable)
        #: drift collapse switch — ``_drift_extra`` is shared by the
        #: scalar path and the batched pricer, so gating it there keeps
        #: the two bit-identical (no RNG draws when ablated).
        self.sync_loss = self.models_phenomenon("sync-loss")
        side = int(round(P ** 0.5))
        self.side = side if side * side == P else 0  # 0 = not a square mesh
        #: per-message software overheads of fine-grain HPVM traffic.
        self.c_send = 450.0
        self.c_recv = 4030.0
        #: extra per-byte cost of fine messages beyond one word.
        self.fine_byte = 12.0
        #: block-transfer overheads (send + recv split of Table 1's ell/sigma).
        self.ell_send = 700.0
        self.ell_recv = 6200.0
        self.sigma_send = 2.3
        self.sigma_recv = 7.0
        #: messages at least this large go through the block path (below
        #: it, the per-byte fine-grain cost is cheaper anyway — the
        #: crossover of the two software paths).
        self.block_threshold = 160
        #: store-and-forward transit cost per word crossing the bisection.
        self.hop_word = 0.2
        #: barrier synchronisation (global exchange over the mesh).
        self.barrier_us = 5100.0
        #: drift: PVM buffering degrades beyond this many back-to-back
        #: messages per node without a barrier.
        self.drift_window = 300
        self.drift_rate = 1400.0
        self.compute_noise = 0.01

    # Local computation: MIMD, nominal coefficients with small per-item
    # timing jitter — the base class applies ``compute_noise``.

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def _per_proc_times(self, phase: CommPhase) -> np.ndarray:
        """Software + transit time each node spends in the phase."""
        blocky = phase.msg_bytes >= self.block_threshold
        fine = ~blocky
        send_cost = np.zeros(phase.n_groups)
        recv_cost = np.zeros(phase.n_groups)
        if fine.any():
            extra = np.maximum(0, phase.msg_bytes[fine] - self.nominal.w)
            per_msg_s = self.c_send + self.fine_byte * extra
            per_msg_r = self.c_recv + self.fine_byte * extra
            send_cost[fine] = phase.count[fine] * per_msg_s
            recv_cost[fine] = phase.count[fine] * per_msg_r
        if blocky.any():
            m = phase.msg_bytes[blocky]
            send_cost[blocky] = phase.count[blocky] * (self.ell_send + self.sigma_send * m)
            recv_cost[blocky] = phase.count[blocky] * (self.ell_recv + self.sigma_recv * m)
        t = np.bincount(phase.src, weights=send_cost, minlength=phase.P)
        t += np.bincount(phase.dst, weights=recv_cost, minlength=phase.P)
        # Mesh transit: words crossing the vertical bisection share 8 links.
        if self.side:
            crossing = ((phase.src % self.side < self.side // 2)
                        != (phase.dst % self.side < self.side // 2))
            words = phase.count * -(-phase.msg_bytes // self.nominal.w)
            cross_words = float(words[crossing].sum())
            t += self.hop_word * cross_words / self.side
        return t

    def _drift_extra(self, steps: int, participants: np.ndarray) -> np.ndarray:
        """Super-linear, noisy penalty once PVM buffering saturates."""
        if not self.sync_loss:
            return np.zeros(participants.size)
        window = self.drift_window * self.jitter(0.1)
        excess = steps - window
        if excess <= 0:
            return np.zeros(participants.size)
        noise = self.rng.lognormal(mean=0.0, sigma=0.7, size=participants.size)
        extra = np.zeros(participants.size)
        extra[participants] = excess * self.drift_rate * noise[participants]
        return extra

    def phase_cost(self, phase: CommPhase) -> float:
        return float(self._per_proc_times(phase).max(initial=0.0))

    def barrier_time(self) -> float:
        return self.barrier_us

    def comm_time(self, phase: CommPhase, clocks: np.ndarray, *,
                  barrier: bool = True) -> np.ndarray:
        if clocks.shape != (phase.P,):
            raise SimulationError("clock array does not match phase P")
        if phase.is_empty:
            if barrier:
                return np.full(phase.P, float(clocks.max()) + self.barrier_us)
            return clocks.copy()
        times = self._per_proc_times(phase)
        if barrier:
            total = float(clocks.max()) + float(times.max()) + self.barrier_us
            return np.full(phase.P, total)
        # No barrier: receivers wait for their senders, then proceed;
        # small per-node jitter makes the clocks spread, and long
        # unsynchronised message sequences trigger the drift collapse.
        wait = clocks.copy()
        np.maximum.at(wait, phase.dst, clocks[phase.src])
        new = wait + times * (1.0 + self.rng.normal(0.0, 0.01, size=phase.P))
        participants = (phase.sends_per_proc > 0) | (phase.recvs_per_proc > 0)
        steps = int(phase.sends_per_proc.max(initial=0))
        new += self._drift_extra(steps, participants)
        return np.maximum(new, clocks)

    def comm_time_batch(self, phases: list[CommPhase]) -> CommPricer:
        if len({ph.P for ph in phases}) > 1:
            return CommPricer(self, phases)  # mixed-P: scalar oracle
        return _GCelCommPricer(self, phases)


class _GCelCommPricer(CommPricer):
    """Batched GCel pricer.

    ``_per_proc_times`` is deterministic, so the per-node software +
    transit times of *every* phase are computed up front from one
    concatenation of all groups (per-group costs elementwise, per-node
    sums through combined-key bincounts, bisection words through exact
    integer segment sums).  The advance step mirrors ``GCel.comm_time``
    bit for bit, drawing its jitter/drift noise per phase in call order.
    """

    def __init__(self, machine: GCel, phases: list[CommPhase]):
        super().__init__(machine, phases)
        uniq, self._idx = unique_phases(phases)
        self._times = self._prep(uniq)

    def _prep(self, uniq: list[CommPhase]) -> np.ndarray:
        m: GCel = self.machine
        # the per-node times vectors are phase-P wide (a run may use a
        # sub-partition of the machine, like the scalar bincounts do)
        P = uniq[0].P if uniq else m.P
        n = len(uniq)
        srcs, dsts, counts, sizes, pids = [], [], [], [], []
        for i, ph in enumerate(uniq):
            if ph.n_groups:
                srcs.append(ph.src)
                dsts.append(ph.dst)
                counts.append(ph.count)
                sizes.append(ph.msg_bytes)
                pids.append(np.full(ph.src.size, i, dtype=np.int64))
        times = np.zeros((n, P))
        if not srcs:
            return times
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
        count = np.concatenate(counts)
        mb = np.concatenate(sizes)
        pid = np.concatenate(pids)

        blocky = mb >= m.block_threshold
        extra = np.maximum(0, mb - m.nominal.w)
        send_cost = np.where(blocky,
                             count * (m.ell_send + m.sigma_send * mb),
                             count * (m.c_send + m.fine_byte * extra))
        recv_cost = np.where(blocky,
                             count * (m.ell_recv + m.sigma_recv * mb),
                             count * (m.c_recv + m.fine_byte * extra))
        times = np.bincount(pid * P + src, weights=send_cost,
                            minlength=n * P).reshape(n, P)
        times += np.bincount(pid * P + dst, weights=recv_cost,
                             minlength=n * P).reshape(n, P)
        if m.side:
            crossing = ((src % m.side < m.side // 2)
                        != (dst % m.side < m.side // 2))
            words = count * -(-mb // m.nominal.w)
            wcross = words * crossing  # int64: segment sums are exact
            starts = np.nonzero(np.concatenate(([True], np.diff(pid) != 0)))[0]
            cross_words = np.add.reduceat(wcross, starts).astype(np.float64)
            times[pid[starts]] += (m.hop_word * cross_words / m.side)[:, None]
        return times

    def comm_time(self, i: int, clocks: np.ndarray, *,
                  barrier: bool = True) -> np.ndarray:
        m: GCel = self.machine
        phase = self.phases[i]
        if clocks.shape != (phase.P,):
            raise SimulationError("clock array does not match phase P")
        if phase.is_empty:
            if barrier:
                return np.full(phase.P, float(clocks.max()) + m.barrier_us)
            return clocks.copy()
        times = self._times[self._idx[i]]
        if barrier:
            total = float(clocks.max()) + float(times.max()) + m.barrier_us
            return np.full(phase.P, total)
        wait = clocks.copy()
        np.maximum.at(wait, phase.dst, clocks[phase.src])
        new = wait + times * (1.0 + m.rng.normal(0.0, 0.01, size=phase.P))
        participants = (phase.sends_per_proc > 0) | (phase.recvs_per_proc > 0)
        steps = int(phase.sends_per_proc.max(initial=0))
        new += m._drift_extra(steps, participants)
        return np.maximum(new, clocks)
