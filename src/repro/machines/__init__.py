"""Simulated experimental platforms (the paper's Section 3 machines)."""

from .base import Machine
from .cm5 import CM5
from .gcel import GCel
from .maspar import MasParMP1
from .modern import ModernCluster
from .t800 import T800Grid

__all__ = ["Machine", "MasParMP1", "GCel", "CM5", "T800Grid",
           "ModernCluster", "make_machine", "MACHINES", "machine_catalog"]

MACHINES = {
    "maspar": MasParMP1,
    "gcel": GCel,
    "cm5": CM5,
    "t800": T800Grid,
    "modern": ModernCluster,
}

#: default partition size of each platform (the paper's configurations).
DEFAULT_P = {"maspar": 1024, "gcel": 64, "cm5": 64, "t800": 64,
             "modern": 256}

#: one-line behavioural summary per platform (shared by ``repro
#: machines`` and the service's ``GET /machines``).
BLURBS = {
    "maspar": "1024-PE SIMD, circuit-switched delta router, one "
              "channel per 16-PE cluster; cheap cube permutations, "
              "strong partial-permutation discount",
    "gcel": "64-node T805 mesh under HPVM; per-message software "
            "costs dominate (g~4480), scatters ~9x cheaper, drifts "
            "out of sync without barriers",
    "cm5": "64-node fat tree (Split-C, no vector units); fine-grain "
           "messages ~9us, endpoint contention on unstaggered "
           "schedules, cache-sensitive local matmul",
    "t800": "64-node T800 grid under native Parix (the authors' "
            "earlier study [15]); store-and-forward per-hop costs "
            "make locality visible (extension)",
    "modern": "256-node fat-tree cluster, ~100 Gbit/s kernel-bypass "
              "links, wide-SIMD nodes; overhead-bound fine-grain "
              "traffic, incast collapse, adaptive-routing discount "
              "on permutations (extension)",
}


def machine_catalog() -> list[dict]:
    """Machine-readable platform descriptions (``repro machines --json``,
    ``GET /machines``)."""
    return [{
        "name": name,
        "class": cls.__name__,
        "default_P": DEFAULT_P[name],
        "simd": bool(cls.simd),
        "phenomena": list(cls.PHENOMENA),
        "summary": BLURBS[name],
    } for name, cls in MACHINES.items()]


def make_machine(name: str, *, seed: int = 0, **kwargs) -> Machine:
    """Instantiate a machine by name (``maspar``, ``gcel`` or ``cm5``)."""
    try:
        cls = MACHINES[name]
    except KeyError:
        known = ", ".join(sorted(MACHINES))
        raise ValueError(f"unknown machine {name!r}; known: {known}") from None
    return cls(seed=seed, **kwargs)
