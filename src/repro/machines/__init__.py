"""Simulated experimental platforms (the paper's Section 3 machines)."""

from .base import Machine
from .cm5 import CM5
from .gcel import GCel
from .maspar import MasParMP1
from .t800 import T800Grid

__all__ = ["Machine", "MasParMP1", "GCel", "CM5", "T800Grid",
           "make_machine", "MACHINES"]

MACHINES = {
    "maspar": MasParMP1,
    "gcel": GCel,
    "cm5": CM5,
    "t800": T800Grid,
}


def make_machine(name: str, *, seed: int = 0, **kwargs) -> Machine:
    """Instantiate a machine by name (``maspar``, ``gcel`` or ``cm5``)."""
    try:
        cls = MACHINES[name]
    except KeyError:
        known = ", ".join(sorted(MACHINES))
        raise ValueError(f"unknown machine {name!r}; known: {known}") from None
    return cls(seed=seed, **kwargs)
