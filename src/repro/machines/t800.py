"""Performance model of a T800 transputer grid under Parix (extension).

Paper §3: "In an earlier paper, we did a limited study for a T800
platform [15]."  We add that platform as a fourth machine because it
exposes the one E-BSP ingredient the paper's three testbeds do not
isolate: **general locality**.  Unlike the GCel (whose HPVM software
costs swamp everything), native Parix channel communication on a T800
grid is cheap enough that *store-and-forward transit per hop* is a
first-order cost:

* a message to a grid neighbour costs little more than the software
  overhead;
* a message across the machine pays per hop and per word — so a random
  permutation costs several times a neighbour permutation, and a cost
  model with one flat ``g`` (BSP, MP-BPRAM) cannot price both;
* the E-BSP companion report ("Incorporating Unbalanced Communication
  and *General Locality* into the BSP Model") is exactly about this —
  see :class:`repro.core.ebsp.LocalityAwareBSP`.

Constants are representative of a 20 MHz T800 with 4 x 20 Mbit/s links
and Parix's lightweight channel layer (~tens of microseconds per
message, ~1 us per word per store-and-forward hop).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import SimulationError
from ..core.params import ModelParams
from ..core.relations import CommPhase
from .base import Machine

__all__ = ["T800Grid"]


class T800Grid(Machine):
    """Simulated T800 transputer grid (native Parix channels)."""

    name = "t800"
    simd = False

    def __init__(self, *, P: int = 64, seed: int = 0,
                 params: ModelParams | None = None):
        side = int(round(P ** 0.5))
        if side * side != P:
            raise SimulationError(f"T800 grid needs a square P, got {P}")
        nominal = params or ModelParams(
            machine="t800", P=P,
            # flat-model reference values (what a BSP calibration of this
            # machine roughly lands on; re-fitted by experiments anyway)
            g=115.0, L=400.0, sigma=16.0, ell=500.0, w=4,
            alpha=1.4,        # 20 MHz T800 FPU, ~1.4 us per compound op
            beta_copy=0.25,
            sort_beta=1.4, sort_gamma=1.1, merge_alpha=1.0)
        if nominal.P != P:
            nominal = nominal.with_updates(P=P)
        super().__init__(nominal, seed=seed)
        self.side = side
        #: per-message software overhead (Parix channel setup, send+recv).
        self.o_send = 14.0
        self.o_recv = 16.0
        #: store-and-forward cost per word per hop.
        self.hop_word = 12.0
        #: serialisation per word on the most loaded grid link.
        self.link_word = 2.0
        self.barrier_us = 380.0
        self.compute_noise = 0.01
        self.noise = 0.006

    # ------------------------------------------------------------------
    def coords(self, rank: int) -> tuple[int, int]:
        return divmod(rank, self.side)

    def hops(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Manhattan distance between endpoints, elementwise."""
        sr, sc = np.divmod(src, self.side)
        dr, dc = np.divmod(dst, self.side)
        return np.abs(sr - dr) + np.abs(sc - dc)

    # local computation: nominal coefficients; the base class multiplies
    # in one ``compute_noise`` jitter factor per work item.

    def _link_contention(self, phase: CommPhase, words: np.ndarray) -> float:
        """Serialisation on the busiest mesh link (dimension-ordered
        routing approximated by row/column segment loads)."""
        sr, sc = np.divmod(phase.src, self.side)
        dr, dc = np.divmod(phase.dst, self.side)
        # messages crossing each vertical cut, weighted by words
        loads = np.zeros(2 * self.side)
        for cut in range(self.side - 1):
            crossing = ((sc <= cut) != (dc <= cut))
            loads[cut] = float(words[crossing].sum()) / self.side
        for cut in range(self.side - 1):
            crossing = ((sr <= cut) != (dr <= cut))
            loads[self.side + cut] = float(words[crossing].sum()) / self.side
        return self.link_word * float(loads.max(initial=0.0))

    def phase_cost(self, phase: CommPhase) -> float:
        if phase.is_empty:
            return 0.0
        words = -(-phase.msg_bytes // self.nominal.w)
        hops = self.hops(phase.src, phase.dst)
        # per-message: software overhead + store-and-forward transit
        send_cost = phase.count * (self.o_send + 0.0 * words)
        recv_cost = phase.count * self.o_recv
        transit = phase.count * words * hops * self.hop_word
        per_proc = np.bincount(phase.src, weights=send_cost + transit,
                               minlength=phase.P)
        per_proc += np.bincount(phase.dst, weights=recv_cost,
                                minlength=phase.P)
        t = float(per_proc.max(initial=0.0))
        t += self._link_contention(phase, phase.count * words)
        return t * self.jitter(self.noise)

    def barrier_time(self) -> float:
        return self.barrier_us
