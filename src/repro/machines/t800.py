"""Performance model of a T800 transputer grid under Parix (extension).

Paper §3: "In an earlier paper, we did a limited study for a T800
platform [15]."  We add that platform as a fourth machine because it
exposes the one E-BSP ingredient the paper's three testbeds do not
isolate: **general locality**.  Unlike the GCel (whose HPVM software
costs swamp everything), native Parix channel communication on a T800
grid is cheap enough that *store-and-forward transit per hop* is a
first-order cost:

* a message to a grid neighbour costs little more than the software
  overhead;
* a message across the machine pays per hop and per word — so a random
  permutation costs several times a neighbour permutation, and a cost
  model with one flat ``g`` (BSP, MP-BPRAM) cannot price both;
* the E-BSP companion report ("Incorporating Unbalanced Communication
  and *General Locality* into the BSP Model") is exactly about this —
  see :class:`repro.core.ebsp.LocalityAwareBSP`.

Constants are representative of a 20 MHz T800 with 4 x 20 Mbit/s links
and Parix's lightweight channel layer (~tens of microseconds per
message, ~1 us per word per store-and-forward hop).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import SimulationError
from ..core.params import ModelParams
from ..core.relations import CommPhase
from .base import CommPricer, Machine, unique_phases

__all__ = ["T800Grid"]


class T800Grid(Machine):
    """Simulated T800 transputer grid (native Parix channels)."""

    name = "t800"
    simd = False

    def __init__(self, *, P: int = 64, seed: int = 0,
                 params: ModelParams | None = None,
                 disable: tuple[str, ...] = ()):
        side = int(round(P ** 0.5))
        if side * side != P:
            raise SimulationError(f"T800 grid needs a square P, got {P}")
        nominal = params or ModelParams(
            machine="t800", P=P,
            # flat-model reference values (what a BSP calibration of this
            # machine roughly lands on; re-fitted by experiments anyway)
            g=115.0, L=400.0, sigma=16.0, ell=500.0, w=4,
            alpha=1.4,        # 20 MHz T800 FPU, ~1.4 us per compound op
            beta_copy=0.25,
            sort_beta=1.4, sort_gamma=1.1, merge_alpha=1.0)
        if nominal.P != P:
            nominal = nominal.with_updates(P=P)
        super().__init__(nominal, seed=seed, disable=disable)
        self.side = side
        #: per-message software overhead (Parix channel setup, send+recv).
        self.o_send = 14.0
        self.o_recv = 16.0
        #: store-and-forward cost per word per hop.
        self.hop_word = 12.0
        #: serialisation per word on the most loaded grid link.
        self.link_word = 2.0
        self.barrier_us = 380.0
        self.compute_noise = 0.01
        self.noise = 0.006

    # ------------------------------------------------------------------
    def coords(self, rank: int) -> tuple[int, int]:
        return divmod(rank, self.side)

    def hops(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Manhattan distance between endpoints, elementwise."""
        sr, sc = np.divmod(src, self.side)
        dr, dc = np.divmod(dst, self.side)
        return np.abs(sr - dr) + np.abs(sc - dc)

    # local computation: nominal coefficients; the base class multiplies
    # in one ``compute_noise`` jitter factor per work item.

    def _link_contention(self, phase: CommPhase, words: np.ndarray) -> float:
        """Serialisation on the busiest mesh link (dimension-ordered
        routing approximated by row/column segment loads)."""
        sr, sc = np.divmod(phase.src, self.side)
        dr, dc = np.divmod(phase.dst, self.side)
        # messages crossing each vertical cut, weighted by words
        loads = np.zeros(2 * self.side)
        for cut in range(self.side - 1):
            crossing = ((sc <= cut) != (dc <= cut))
            loads[cut] = float(words[crossing].sum()) / self.side
        for cut in range(self.side - 1):
            crossing = ((sr <= cut) != (dr <= cut))
            loads[self.side + cut] = float(words[crossing].sum()) / self.side
        return self.link_word * float(loads.max(initial=0.0))

    def phase_cost(self, phase: CommPhase) -> float:
        if phase.is_empty:
            return 0.0
        words = -(-phase.msg_bytes // self.nominal.w)
        hops = self.hops(phase.src, phase.dst)
        # per-message: software overhead + store-and-forward transit
        send_cost = phase.count * (self.o_send + 0.0 * words)
        recv_cost = phase.count * self.o_recv
        transit = phase.count * words * hops * self.hop_word
        per_proc = np.bincount(phase.src, weights=send_cost + transit,
                               minlength=phase.P)
        per_proc += np.bincount(phase.dst, weights=recv_cost,
                                minlength=phase.P)
        t = float(per_proc.max(initial=0.0))
        t += self._link_contention(phase, phase.count * words)
        return t * self.jitter(self.noise)

    def barrier_time(self) -> float:
        return self.barrier_us

    def comm_time_batch(self, phases: list[CommPhase]) -> CommPricer:
        return _T800CommPricer(self, phases)


class _T800CommPricer(CommPricer):
    """Batched T800 pricer.

    Hops, transit and per-node software costs are elementwise over the
    concatenated groups of all phases; link contention stays a loop over
    the ``2 (side - 1)`` mesh cuts, but each cut is one exact integer
    segment-sum over every phase at once (word counts are integers, so
    the sums are order-independent).  Jitter is drawn per phase at
    advance time, preserving the RNG stream.
    """

    def __init__(self, machine: T800Grid, phases: list[CommPhase]):
        super().__init__(machine, phases)
        uniq, self._idx = unique_phases(phases)
        self._det = self._prep(uniq)

    def _prep(self, uniq: list[CommPhase]) -> np.ndarray:
        m: T800Grid = self.machine
        P = m.P
        side = m.side
        n = len(uniq)
        det = np.zeros(n)
        srcs, dsts, counts, sizes, pids = [], [], [], [], []
        for i, ph in enumerate(uniq):
            if not ph.is_empty:
                srcs.append(ph.src)
                dsts.append(ph.dst)
                counts.append(ph.count)
                sizes.append(ph.msg_bytes)
                pids.append(np.full(ph.src.size, i, dtype=np.int64))
        if not srcs:
            return det
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
        count = np.concatenate(counts)
        mb = np.concatenate(sizes)
        pid = np.concatenate(pids)

        words = -(-mb // m.nominal.w)
        sr, sc = np.divmod(src, side)
        dr, dc = np.divmod(dst, side)
        hops = np.abs(sr - dr) + np.abs(sc - dc)
        send_cost = count * (m.o_send + 0.0 * words)
        recv_cost = count * m.o_recv
        transit = count * words * hops * m.hop_word
        per_proc = np.bincount(pid * P + src, weights=send_cost + transit,
                               minlength=n * P).reshape(n, P)
        per_proc += np.bincount(pid * P + dst, weights=recv_cost,
                                minlength=n * P).reshape(n, P)
        t = per_proc.max(axis=1)

        # Link contention: per-cut crossing word totals, every phase at
        # once.  Phases are contiguous runs of `pid`, so one reduceat per
        # cut gives exact int64 sums.
        starts = np.nonzero(np.concatenate(([True], np.diff(pid) != 0)))[0]
        rows = pid[starts]
        cwords = count * words  # int64
        loads = np.zeros((2 * side, rows.size))
        for cut in range(side - 1):
            crossing = (sc <= cut) != (dc <= cut)
            loads[cut] = np.add.reduceat(cwords * crossing, starts).astype(
                np.float64) / side
        for cut in range(side - 1):
            crossing = (sr <= cut) != (dr <= cut)
            loads[side + cut] = np.add.reduceat(cwords * crossing, starts).astype(
                np.float64) / side
        t[rows] = t[rows] + m.link_word * loads.max(axis=0)
        det[:] = t
        return det

    def comm_time(self, i: int, clocks: np.ndarray, *,
                  barrier: bool = True) -> np.ndarray:
        m: T800Grid = self.machine
        phase = self.phases[i]
        if clocks.shape != (phase.P,):
            raise SimulationError("clock array does not match phase P")
        total = float(clocks.max())
        if not phase.is_empty:
            total += float(self._det[self._idx[i]]) * m.jitter(m.noise)
        return m._advance(phase, clocks, total, barrier)
