"""Performance model of the 64-node CM-5 (paper §3.3).

32 MHz Sparc nodes (64 KB direct-mapped cache) on a fat-tree data network
plus a fast control network for barriers, programmed in Split-C without
the vector units.  Salient behaviours:

* fine-grain active-message traffic costs a few microseconds per message
  (``g ~= 9.1`` us per 8-byte message, ``L ~= 45`` us — Table 1); the fat
  tree has enough bisection bandwidth that partial patterns cost about the
  same per message as full h-relations (§5.3);
* **endpoint contention**: a node services one incoming message at a
  time, so an *unstaggered* schedule in which many nodes target the same
  destination stalls the senders — the +21% error of the initial
  matrix-multiplication implementation (§5.1, Fig. 4);
* block transfers: ``sigma ~= 0.27`` us/byte, ``ell ~= 75`` us;
* the local matrix multiply is cache-sensitive: 6.5-7.5 Mflops while the
  working set fits, dropping toward 5.2 Mflops for large blocks and
  suffering call overhead for tiny ones (§4.1.1) — the model-error source
  at small and large ``N`` in Figs. 4 and 9.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import SimulationError
from ..core.params import ModelParams, paper_params
from ..core.relations import CommPhase
from ..core.work import MatmulBlock, Work, nominal_time
from .base import CommPricer, Machine, unique_phases

__all__ = ["CM5"]


class CM5(Machine):
    """Simulated 64-node CM-5 (Split-C, no vector units)."""

    name = "cm5"
    simd = False
    #: ablatable phenomena (see :mod:`repro.ablation.components`):
    #: endpoint contention of unstaggered schedules (§5.1), the machine's
    #: sensitivity to schedule staggering, and the cache-dependent local
    #: matmul rate (§4.1.1).
    PHENOMENA = ("endpoint-contention", "comm-staggering", "cache-effects")

    def __init__(self, *, P: int = 64, seed: int = 0,
                 params: ModelParams | None = None,
                 disable: tuple[str, ...] = ()):
        nominal = params or paper_params("cm5").with_updates(P=P)
        if nominal.P != P:
            nominal = nominal.with_updates(P=P)
        super().__init__(nominal, seed=seed, disable=disable)
        #: per fine-grain message software overheads (active messages).
        #: Injection dominates (network-interface gap); the receive
        #: handler is cheap and largely overlapped — this is why a
        #: scatter costs almost as much per message as a full h-relation
        #: on this machine (§5.3: "only a minor difference").
        self.o_send = 8.0
        self.o_recv = 1.1
        #: per-message fat-tree transit at full machine load.
        self.net_msg = 0.3
        #: block-transfer overheads (send/recv split of Table 1).
        self.ell_send = 25.0
        self.ell_recv = 50.0
        self.sigma_send = 0.09
        self.sigma_recv = 0.18
        #: below this, messages go through the active-message path whose
        #: per-byte streaming cost makes the fine/block transition smooth.
        self.block_threshold = 256
        #: endpoint-contention penalty coefficient for unstaggered phases.
        #: A zero coefficient makes the penalty factor exactly 1.0, so
        #: ablating the phenomenon is an FP-exact no-op on every phase.
        self.hotspot_coef = (
            0.45 if self.models_phenomenon("endpoint-contention") else 0.0)
        #: when ablated the machine stops rewarding staggered schedules:
        #: the hot-spot penalty applies regardless of ``phase.stagger``.
        self.stagger_sensitive = self.models_phenomenon("comm-staggering")
        #: when ablated the local matmul runs at the nominal flat rate.
        self.cache_sensitive = self.models_phenomenon("cache-effects")
        #: barrier on the control network.
        self.barrier_us = 38.0
        self.noise = 0.005
        #: local matmul rate (Mflops) by working-set size (bytes); the
        #: nominal alpha corresponds to 2/alpha ~= 6.9 Mflops.
        self.cache_bytes = 64 * 1024
        self.compute_noise = 0.01

    # ------------------------------------------------------------------
    # Local computation with cache effects (§4.1.1)
    # ------------------------------------------------------------------
    def matmul_mflops(self, work: MatmulBlock) -> float:
        """Sustained Mflops of the assembly kernel on one block."""
        flops = work.flops
        if flops == 0:
            return 7.4
        if flops < 2048:
            return 3.8  # call / loop overhead dominates tiny blocks
        if flops < 8192:
            return 4.0  # short inner loops, little register reuse
        if flops < 32768:
            return 5.8
        ws = work.working_set_bytes
        if ws <= self.cache_bytes:
            return 7.4
        if ws <= 3 * self.cache_bytes:
            return 6.9
        if ws <= 12 * self.cache_bytes:
            return 6.2
        return 5.2

    def compute_time_base(self, work: Work, rank: int) -> float:
        if isinstance(work, MatmulBlock) and self.cache_sensitive:
            # time per compound op = 2 flops / rate
            alpha_eff = 2.0 / self.matmul_mflops(work)
            return alpha_eff * work.flops
        return nominal_time(work, self.nominal)

    def compute_time_batch(self, kind: type, params: dict, ranks) -> np.ndarray | None:
        if kind is MatmulBlock and self.cache_sensitive:
            m = np.asarray(params["m"], dtype=np.int64)
            k = np.asarray(params["k"], dtype=np.int64)
            n = np.asarray(params["n"], dtype=np.int64)
            flops = m * k * n
            ws = 8 * (m * k + k * n + m * n)
            # the matmul_mflops ladder, first-match-wins (np.select order)
            rate = np.select(
                [flops == 0, flops < 2048, flops < 8192, flops < 32768,
                 ws <= self.cache_bytes, ws <= 3 * self.cache_bytes,
                 ws <= 12 * self.cache_bytes],
                [7.4, 3.8, 4.0, 5.8, 7.4, 6.9, 6.2], default=5.2)
            return (2.0 / rate) * flops
        return super().compute_time_batch(kind, params, ranks)

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    def phase_cost(self, phase: CommPhase) -> float:
        blocky = phase.msg_bytes >= self.block_threshold
        fine = ~blocky
        send_cost = np.zeros(phase.n_groups)
        recv_cost = np.zeros(phase.n_groups)
        if fine.any():
            # per-message overhead plus streaming of any bytes beyond one
            # word — grouping a few words into one active message pays
            # the overhead once (the 16-byte-message observation of §8)
            extra = np.maximum(0, phase.msg_bytes[fine] - self.nominal.w)
            send_cost[fine] = phase.count[fine] * (
                self.o_send + self.sigma_send * extra)
            recv_cost[fine] = phase.count[fine] * (
                self.o_recv + self.sigma_recv * extra)
        if blocky.any():
            m = phase.msg_bytes[blocky]
            send_cost[blocky] = phase.count[blocky] * (self.ell_send + self.sigma_send * m)
            recv_cost[blocky] = phase.count[blocky] * (self.ell_recv + self.sigma_recv * m)
        # Send and receive handlers serialise on the node's processor:
        # a node spends o_send per outgoing plus o_recv per incoming message.
        per_send = np.bincount(phase.src, weights=send_cost, minlength=phase.P)
        per_recv = np.bincount(phase.dst, weights=recv_cost, minlength=phase.P)
        t = float((per_send + per_recv).max(initial=0.0))
        # fat-tree transit, scaled by how loaded the machine is
        load = phase.active_procs / self.P
        t += self.net_msg * load * float(
            np.bincount(phase.dst, weights=phase.count, minlength=phase.P).max(initial=0))
        if not phase.stagger or not self.stagger_sensitive:
            # Unstaggered schedules create transient many-to-one hot spots:
            # senders stall on the destination's service rate (§5.1).
            f = phase.max_fan_in
            if f > 1:
                t *= 1.0 + self.hotspot_coef * (1.0 - 1.0 / f)
        return t * self.jitter(self.noise)

    def barrier_time(self) -> float:
        return self.barrier_us

    def comm_time_batch(self, phases: list[CommPhase]) -> CommPricer:
        return _CM5CommPricer(self, phases)


class _CM5CommPricer(CommPricer):
    """Batched CM-5 pricer.

    ``phase_cost`` is deterministic up to its final jitter factor, so the
    endpoint-serialisation / fat-tree-transit analysis of every phase is
    computed up front from one concatenation of all groups; the jitter is
    drawn per phase at advance time, keeping the RNG stream identical to
    the scalar path.  The hot-spot factor needs ``max_fan_in`` only for
    unstaggered phases, which stay on the per-phase (cached) property.
    """

    def __init__(self, machine: CM5, phases: list[CommPhase]):
        super().__init__(machine, phases)
        uniq, self._idx = unique_phases(phases)
        self._det = self._prep(uniq)

    def _prep(self, uniq: list[CommPhase]) -> np.ndarray:
        m: CM5 = self.machine
        P = m.P
        n = len(uniq)
        det = np.zeros(n)
        srcs, dsts, counts, sizes, pids = [], [], [], [], []
        for i, ph in enumerate(uniq):
            if ph.n_groups:
                srcs.append(ph.src)
                dsts.append(ph.dst)
                counts.append(ph.count)
                sizes.append(ph.msg_bytes)
                pids.append(np.full(ph.src.size, i, dtype=np.int64))
        if not srcs:
            return det
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
        count = np.concatenate(counts)
        mb = np.concatenate(sizes)
        pid = np.concatenate(pids)

        blocky = mb >= m.block_threshold
        extra = np.maximum(0, mb - m.nominal.w)
        send_cost = np.where(blocky,
                             count * (m.ell_send + m.sigma_send * mb),
                             count * (m.o_send + m.sigma_send * extra))
        recv_cost = np.where(blocky,
                             count * (m.ell_recv + m.sigma_recv * mb),
                             count * (m.o_recv + m.sigma_recv * extra))
        per_send = np.bincount(pid * P + src, weights=send_cost,
                               minlength=n * P).reshape(n, P)
        per_recv = np.bincount(pid * P + dst, weights=recv_cost,
                               minlength=n * P).reshape(n, P)
        t = (per_send + per_recv).max(axis=1)

        sends = np.bincount(pid * P + src, weights=count,
                            minlength=n * P).reshape(n, P)
        recvs = np.bincount(pid * P + dst, weights=count,
                            minlength=n * P).reshape(n, P)
        active = ((sends > 0) | (recvs > 0)).sum(axis=1)
        t = t + m.net_msg * (active / m.P) * recvs.max(axis=1)

        for i, ph in enumerate(uniq):
            if ph.n_groups and (not ph.stagger or not m.stagger_sensitive):
                f = ph.max_fan_in
                if f > 1:
                    t[i] *= 1.0 + m.hotspot_coef * (1.0 - 1.0 / f)
        det[:] = t
        return det

    def comm_time(self, i: int, clocks: np.ndarray, *,
                  barrier: bool = True) -> np.ndarray:
        m: CM5 = self.machine
        phase = self.phases[i]
        if clocks.shape != (phase.P,):
            raise SimulationError("clock array does not match phase P")
        total = float(clocks.max())
        if not phase.is_empty:
            total += float(self._det[self._idx[i]]) * m.jitter(m.noise)
        return m._advance(phase, clocks, total, barrier)
