"""Machine model base class.

A :class:`Machine` is the simulator's substitute for real hardware: it
prices local work (:meth:`compute_time`) and communication phases
(:meth:`comm_time`), advancing per-processor virtual clocks.  Machine
models are deliberately *richer* than the cost models under test — they
know about endpoint contention, router cluster conflicts, partial-pattern
discounts, cache behaviour and loss of synchrony, which is exactly what
lets the reproduction show where the models' predictions break (paper §5).

All randomness flows through ``self.rng`` (a seeded
``numpy.random.Generator``), so every "measurement" is reproducible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core.errors import SimulationError
from ..core.params import ModelParams
from ..core.relations import CommPhase
from ..core.work import Work, nominal_time, nominal_time_batch

__all__ = ["Machine", "CommPricer", "unique_phases"]


def unique_phases(phases: "list[CommPhase]") -> "tuple[list[CommPhase], list[int]]":
    """Deduplicate a phase sequence by object identity.

    The vector engine *interns* repeated communication patterns — a
    superstep built from the same message-group arrays as an earlier one
    reuses the earlier :class:`CommPhase` object — so iterative
    algorithms (APSP's broadcasts, bitonic's merge schedule) hand the
    pricers long sequences with only a handful of distinct patterns.
    Deterministic per-phase analysis only needs to run once per distinct
    object; measurement noise is drawn at advance time regardless.

    Returns ``(uniq, index)`` with ``uniq[index[i]] is phases[i]``.
    Sound because the caller keeps ``phases`` (and hence every id) alive.
    """
    first: dict[int, int] = {}
    uniq: list[CommPhase] = []
    index: list[int] = []
    for ph in phases:
        j = first.get(id(ph))
        if j is None:
            j = len(uniq)
            first[id(ph)] = j
            uniq.append(ph)
        index.append(j)
    return uniq, index


class CommPricer:
    """Prices a fixed sequence of communication phases, one call per phase.

    Contract: for a fresh machine, calling ``pricer.comm_time(i, clocks,
    barrier=...)`` for ``i = 0 .. n-1`` *in order* must be bit-identical —
    returned clock arrays and machine RNG stream alike — to calling
    ``machine.comm_time(phases[i], clocks, barrier=...)`` in the same
    order.  This default implementation *is* that scalar loop, so it
    doubles as the equivalence oracle; machines override
    :meth:`Machine.comm_time_batch` to return subclasses that hoist the
    deterministic pattern analysis across the whole sequence as stacked
    arrays and only draw per-phase measurement noise at advance time
    (which keeps the stream order intact).
    """

    def __init__(self, machine: "Machine", phases: "list[CommPhase]"):
        self.machine = machine
        self.phases = phases

    def comm_time(self, i: int, clocks: np.ndarray, *,
                  barrier: bool = True) -> np.ndarray:
        return self.machine.comm_time(self.phases[i], clocks, barrier=barrier)

    def sequence_costs(self) -> "np.ndarray | None":
        """All per-phase costs in one fused draw, or ``None``.

        A pricer may return an array with entry ``i`` equal to the
        (noise-jittered) scalar cost its ``comm_time(i, ...)`` call would
        have added to the clocks' running maximum — computed for the
        *whole* sequence with vectorised noise draws that consume the
        machine RNG bit-identically to the per-phase calls.  Returning a
        non-``None`` array consumes that stream: the caller must then
        advance the clocks itself (the IR replay engine's fused scan)
        instead of calling :meth:`comm_time`.  Only sound for machines
        whose ``comm_time`` has the base bulk-synchronous shape (cost
        added to ``max(clocks)``); the default is no fused path.
        """
        return None


class Machine(ABC):
    """Base class for simulated parallel machines."""

    #: short identifier, e.g. ``"maspar"``.
    name: str = "abstract"
    #: lockstep SIMD machine (single instruction stream, no drift).
    simd: bool = False
    #: relative noise of one local-computation timing; 0 = deterministic
    #: compute (lockstep SIMD).  MIMD machines set this in ``__init__``.
    compute_noise: float = 0.0
    #: named phenomena this machine simulates beyond the flat cost
    #: models — each can be switched off at construction (``disable=``)
    #: by the ablation harness (:mod:`repro.ablation`).
    PHENOMENA: "tuple[str, ...]" = ()

    def __init__(self, nominal: ModelParams, *, seed: int = 0,
                 disable: "tuple[str, ...] | frozenset[str]" = ()):
        self.nominal = nominal
        self.P = nominal.P
        self.rng = np.random.default_rng(seed)
        self.disabled = frozenset(disable)
        unknown = self.disabled - set(self.PHENOMENA)
        if unknown:
            known = ", ".join(self.PHENOMENA) or "(none)"
            raise SimulationError(
                f"{self.name} has no phenomena {sorted(unknown)}; "
                f"known: {known}")

    def models_phenomenon(self, name: str) -> bool:
        """True while ``name`` (a :data:`PHENOMENA` entry) is switched on."""
        return name not in self.disabled

    # ------------------------------------------------------------------
    # Local computation
    # ------------------------------------------------------------------
    def compute_time_base(self, work: Work, rank: int) -> float:
        """Deterministic time one processor needs for ``work``, in us.

        The default prices work with the nominal model coefficients;
        machines override this to model cache effects etc.  Measurement
        noise is *not* applied here — :meth:`compute_time` multiplies in
        one jitter factor per item, and the batched path draws the same
        factors as one vector (bit-identical stream).
        """
        return nominal_time(work, self.nominal)

    def compute_time(self, work: Work, rank: int) -> float:
        """Time one processor needs for ``work``, in microseconds."""
        t = self.compute_time_base(work, rank)
        if self.compute_noise:
            t *= self.jitter(self.compute_noise)
        return t

    def compute_time_batch(self, kind: type, params: dict, ranks) -> "np.ndarray | None":
        """Deterministic prices of a batch of same-kind work items.

        ``params`` maps the kind's field names to equal-length arrays (one
        entry per item); ``ranks`` is the owning processor of each item.
        Returns per-item microseconds matching
        :meth:`compute_time_base` bit-for-bit, or ``None`` when the kind
        needs per-item (scalar) pricing.  Jitter is applied by the engine
        (in flat item order), never here.
        """
        return nominal_time_batch(kind, params, self.nominal)

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    @abstractmethod
    def phase_cost(self, phase: CommPhase) -> float:
        """Global time of a communication phase (excluding any barrier)."""

    def barrier_time(self) -> float:
        """Cost of one barrier synchronisation."""
        return 0.0

    def comm_time(self, phase: CommPhase, clocks: np.ndarray, *,
                  barrier: bool = True) -> np.ndarray:
        """Advance ``clocks`` across a communication phase.

        The default is bulk-synchronous: everybody waits for the slowest
        processor, the phase is routed, and a barrier (if requested)
        realigns the clocks.  Machines with drift behaviour (GCel)
        override this.
        """
        if clocks.shape != (phase.P,):
            raise SimulationError("clock array does not match phase P")
        total = float(clocks.max())
        if not phase.is_empty:
            total += self.phase_cost(phase)
        return self._advance(phase, clocks, total, barrier)

    def _advance(self, phase: CommPhase, clocks: np.ndarray, total: float,
                 barrier: bool) -> np.ndarray:
        """Shared clock-advance step of :meth:`comm_time`.

        ``total`` is start time plus (already jittered) phase cost; batched
        pricers reuse this after computing the cost their own way.
        """
        if barrier and not self.simd:
            total += self.barrier_time()
        if barrier or self.simd or phase.is_empty:
            return np.full(phase.P, total)
        # No barrier: only participants advance to the common finish time.
        new = clocks.copy()
        mask = (phase.sends_per_proc > 0) | (phase.recvs_per_proc > 0)
        new[mask] = total
        return new

    def comm_time_batch(self, phases: "list[CommPhase]") -> CommPricer:
        """A pricer for a whole run's communication phases.

        The default delegates to :meth:`comm_time` phase by phase (the
        scalar oracle).  Machines override this to precompute the
        deterministic pattern analysis for every phase at once; the
        returned pricer's calls remain bit-identical to the scalar path
        (see :class:`CommPricer`).
        """
        return CommPricer(self, phases)

    # ------------------------------------------------------------------
    def jitter(self, scale: float = 0.01) -> float:
        """A multiplicative measurement-noise factor around 1."""
        return float(1.0 + self.rng.normal(0.0, scale))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(P={self.P}, seed=...)"
