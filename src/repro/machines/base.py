"""Machine model base class.

A :class:`Machine` is the simulator's substitute for real hardware: it
prices local work (:meth:`compute_time`) and communication phases
(:meth:`comm_time`), advancing per-processor virtual clocks.  Machine
models are deliberately *richer* than the cost models under test — they
know about endpoint contention, router cluster conflicts, partial-pattern
discounts, cache behaviour and loss of synchrony, which is exactly what
lets the reproduction show where the models' predictions break (paper §5).

All randomness flows through ``self.rng`` (a seeded
``numpy.random.Generator``), so every "measurement" is reproducible.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..core.errors import SimulationError
from ..core.params import ModelParams
from ..core.relations import CommPhase
from ..core.work import Work, nominal_time

__all__ = ["Machine"]


class Machine(ABC):
    """Base class for simulated parallel machines."""

    #: short identifier, e.g. ``"maspar"``.
    name: str = "abstract"
    #: lockstep SIMD machine (single instruction stream, no drift).
    simd: bool = False

    def __init__(self, nominal: ModelParams, *, seed: int = 0):
        self.nominal = nominal
        self.P = nominal.P
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    # Local computation
    # ------------------------------------------------------------------
    def compute_time(self, work: Work, rank: int) -> float:
        """Time one processor needs for ``work``, in microseconds.

        The default prices work with the nominal model coefficients;
        machines override this to model cache effects etc.
        """
        return nominal_time(work, self.nominal)

    # ------------------------------------------------------------------
    # Communication
    # ------------------------------------------------------------------
    @abstractmethod
    def phase_cost(self, phase: CommPhase) -> float:
        """Global time of a communication phase (excluding any barrier)."""

    def barrier_time(self) -> float:
        """Cost of one barrier synchronisation."""
        return 0.0

    def comm_time(self, phase: CommPhase, clocks: np.ndarray, *,
                  barrier: bool = True) -> np.ndarray:
        """Advance ``clocks`` across a communication phase.

        The default is bulk-synchronous: everybody waits for the slowest
        processor, the phase is routed, and a barrier (if requested)
        realigns the clocks.  Machines with drift behaviour (GCel)
        override this.
        """
        if clocks.shape != (phase.P,):
            raise SimulationError("clock array does not match phase P")
        start = float(clocks.max())
        total = start
        if not phase.is_empty:
            total += self.phase_cost(phase)
        if barrier and not self.simd:
            total += self.barrier_time()
        if barrier or self.simd or phase.is_empty:
            return np.full(phase.P, total)
        # No barrier: only participants advance to the common finish time.
        new = clocks.copy()
        mask = (phase.sends_per_proc > 0) | (phase.recvs_per_proc > 0)
        new[mask] = total
        return new

    # ------------------------------------------------------------------
    def jitter(self, scale: float = 0.01) -> float:
        """A multiplicative measurement-noise factor around 1."""
        return float(1.0 + self.rng.normal(0.0, scale))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(P={self.P}, seed=...)"
