"""Performance model of a 2020s fat-tree cluster (scenario extension).

The paper's question — which cost-model ingredients matter — is asked of
1996 hardware.  This profile re-asks it under modern parameters: a
256-node cluster on a full-bisection fat tree with kernel-bypass NICs
and wide-SIMD nodes.  The *ratios* are what changed, not the physics:

* per-message software overhead fell from hundreds of microseconds
  (GCel/PVM) to well under a microsecond, but per-*word* cost fell even
  further — so fine-grain traffic is still overhead-bound and the
  paper's bulk-transfer advice survives, now at a finer message-size
  knee;
* local compute (wide SIMD + caches) is two to three orders of magnitude
  cheaper per key than a T805, pushing every workload toward the
  communication-bound regime — imbalances the 1996 machines hid behind
  slow arithmetic become first-order;
* the interesting *pattern* effects are no longer per-hop transit
  (adaptive routing on a non-blocking fat tree hides distance) but
  **incast** — many senders converging on one receiver collapse its
  ingress link — and the *discount* adaptive routing gives balanced
  permutation traffic.

Constants are representative of ~100 Gbit/s links (an 8-byte word
serialises in ~0.6 ns; we charge 0.0005 us/word end to end), ~0.4 us
kernel-bypass send overhead, and a ~5 us hardware-offloaded barrier.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import SimulationError
from ..core.params import ModelParams
from ..core.relations import CommPhase
from .base import CommPricer, Machine, unique_phases

__all__ = ["ModernCluster"]


class ModernCluster(Machine):
    """Simulated 256-node fat-tree cluster with wide-SIMD nodes."""

    name = "modern"
    simd = False
    PHENOMENA = ("incast-collapse", "adaptive-routing")

    def __init__(self, *, P: int = 256, seed: int = 0,
                 params: ModelParams | None = None,
                 disable: tuple[str, ...] = ()):
        nominal = params or ModelParams(
            machine="modern", P=P,
            # flat-model reference values (what a BSP calibration of this
            # machine roughly lands on; re-fitted by experiments anyway)
            g=1.2, L=6.0, sigma=0.0001, ell=1.2, w=8,
            alpha=0.0002,       # ~5 Gflop/s scalar-equivalent per node
            beta_copy=0.0001,
            sort_beta=0.002, sort_gamma=0.001, merge_alpha=0.0008)
        if nominal.P != P:
            nominal = nominal.with_updates(P=P)
        super().__init__(nominal, seed=seed, disable=disable)
        #: per-message software overhead (kernel-bypass send / recv).
        self.o_send = 0.4
        self.o_recv = 0.7
        #: end-to-end serialisation per 8-byte word (~100 Gbit/s links).
        self.word_us = 0.0005
        #: extra per-word cost on a receiver drawing more than its share
        #: (ingress-link collapse under incast).
        self.incast_word = 0.004
        #: factor adaptive routing shaves off balanced permutation
        #: traffic (no link is oversubscribed on a full-bisection tree).
        self.adaptive_gain = 0.7
        self.barrier_us = 5.0
        self.compute_noise = 0.002
        self.noise = 0.004

    def phase_cost(self, phase: CommPhase) -> float:
        if phase.is_empty:
            return 0.0
        words = -(-phase.msg_bytes // self.nominal.w)
        send_cost = phase.count * self.o_send + phase.count * words * self.word_us
        recv_cost = phase.count * self.o_recv + phase.count * words * self.word_us
        per_proc = np.bincount(phase.src, weights=send_cost,
                               minlength=phase.P)
        per_proc += np.bincount(phase.dst, weights=recv_cost,
                                minlength=phase.P)
        t = float(per_proc.max(initial=0.0))
        if self.models_phenomenon("incast-collapse"):
            recv_words = np.bincount(phase.dst, weights=phase.count * words,
                                     minlength=phase.P)
            hot = float(recv_words.max(initial=0.0))
            mean = float(recv_words.sum()) / phase.P
            if hot > mean:
                t += self.incast_word * (hot - mean)
        if self.models_phenomenon("adaptive-routing"):
            sends = np.bincount(phase.src, weights=phase.count,
                                minlength=phase.P)
            recvs = np.bincount(phase.dst, weights=phase.count,
                                minlength=phase.P)
            if sends.max(initial=0.0) <= 1 and recvs.max(initial=0.0) <= 1:
                t *= self.adaptive_gain
        return t * self.jitter(self.noise)

    def barrier_time(self) -> float:
        return self.barrier_us

    def comm_time_batch(self, phases: list[CommPhase]) -> CommPricer:
        return _ModernCommPricer(self, phases)


class _ModernCommPricer(CommPricer):
    """Batched fat-tree pricer.

    Per-endpoint totals, the incast surcharge and the permutation test
    are computed for every distinct phase at once with ``pid``-strided
    bincounts, in the same elementwise operation order as
    :meth:`ModernCluster.phase_cost`; jitter is drawn per phase at
    advance time, preserving the RNG stream bit for bit.
    """

    def __init__(self, machine: ModernCluster, phases: list[CommPhase]):
        super().__init__(machine, phases)
        uniq, self._idx = unique_phases(phases)
        self._det = self._prep(uniq)

    def _prep(self, uniq: list[CommPhase]) -> np.ndarray:
        m: ModernCluster = self.machine
        P = m.P
        n = len(uniq)
        det = np.zeros(n)
        srcs, dsts, counts, sizes, pids = [], [], [], [], []
        for i, ph in enumerate(uniq):
            if not ph.is_empty:
                srcs.append(ph.src)
                dsts.append(ph.dst)
                counts.append(ph.count)
                sizes.append(ph.msg_bytes)
                pids.append(np.full(ph.src.size, i, dtype=np.int64))
        if not srcs:
            return det
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
        count = np.concatenate(counts)
        mb = np.concatenate(sizes)
        pid = np.concatenate(pids)

        words = -(-mb // m.nominal.w)
        send_cost = count * m.o_send + count * words * m.word_us
        recv_cost = count * m.o_recv + count * words * m.word_us
        per_proc = np.bincount(pid * P + src, weights=send_cost,
                               minlength=n * P).reshape(n, P)
        per_proc += np.bincount(pid * P + dst, weights=recv_cost,
                                minlength=n * P).reshape(n, P)
        t = per_proc.max(axis=1)

        phase_p = np.array([ph.P for ph in uniq], dtype=np.float64)
        if m.models_phenomenon("incast-collapse"):
            recv_words = np.bincount(pid * P + dst, weights=count * words,
                                     minlength=n * P).reshape(n, P)
            hot = recv_words.max(axis=1)
            mean = recv_words.sum(axis=1) / phase_p
            t = np.where(hot > mean,
                         t + m.incast_word * (hot - mean), t)
        if m.models_phenomenon("adaptive-routing"):
            sends = np.bincount(pid * P + src, weights=count,
                                minlength=n * P).reshape(n, P)
            recvs = np.bincount(pid * P + dst, weights=count,
                                minlength=n * P).reshape(n, P)
            perm = (sends.max(axis=1) <= 1) & (recvs.max(axis=1) <= 1)
            t = np.where(perm, t * m.adaptive_gain, t)
        det[:] = t
        return det

    def comm_time(self, i: int, clocks: np.ndarray, *,
                  barrier: bool = True) -> np.ndarray:
        m: ModernCluster = self.machine
        phase = self.phases[i]
        if clocks.shape != (phase.P,):
            raise SimulationError("clock array does not match phase P")
        total = float(clocks.max())
        if not phase.is_empty:
            total += float(self._det[self._idx[i]]) * m.jitter(m.noise)
        return m._advance(phase, clocks, total, barrier)
