"""Performance model of the MasPar MP-1 (paper §3.1).

A massively parallel SIMD machine: up to 1024 processor elements (PEs)
driven in lockstep by an array control unit, communicating through a
circuit-switched expanded-delta *global router* with **one router channel
per cluster of 16 PEs**.

The model reproduces the phenomena the paper measures:

* a communication step in which ``P'`` PEs send one word each takes
  ``T_unb(P') = 0.84 P' + 11.8 sqrt(P') + 73.3`` microseconds (Fig. 2) —
  a full permutation costs about 1300 us, a 32-PE partial permutation
  about 13% of that;
* a 1-h relation adds a serialisation tail of ~31 us per extra message at
  the hottest destination, so fitting a line to 1-h relation times yields
  ``g ~= 32, L ~= 1400`` (Fig. 1 / Table 1) while an actual 1-relation
  costs only ~1300 us — the model-error source the paper identifies in
  §5.1;
* destinations that pile into the same 16-PE cluster serialise on the
  cluster channel — the error bars of Fig. 1;
* single-bit-XOR ("cube") permutations, the pattern of a bitonic merge
  step, route conflict-free in roughly 45% of the time of a random
  permutation (~590 us, §5.1);
* circuit-switched *block* transfers stream at ``sigma ~= 107`` us/byte
  with startup ``ell ~= 630`` us (Table 1) independent of how many PEs
  participate — circuits, once opened, do not contend the way word-level
  router cycles do.

Local computation is exactly the nominal model: the PEs are simple
lockstep ALUs with no caches, which is why the paper's MasPar compute
predictions are clean.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.errors import SimulationError
from ..core.params import ModelParams, UnbalancedCost, paper_params
from ..core.relations import CommPhase
from ..core.segsum import segment_sums
from .base import CommPricer, Machine, unique_phases

__all__ = ["MasParMP1"]


class MasParMP1(Machine):
    """Simulated 1024-PE (or smaller partition) MasPar MP-1."""

    name = "maspar"
    simd = True
    #: ablatable phenomena (see :mod:`repro.ablation.components`): the
    #: conflict-free routing of cube permutations (§5.1), the
    #: partial-permutation law of Fig. 2, the serialisation tail at hot
    #: destinations (§5.1), and the per-cluster router channels (Fig. 1).
    PHENOMENA = ("cube-discount", "partial-permutation",
                 "receiver-serialisation", "cluster-channels")

    #: PEs per router cluster (one router channel each).
    CLUSTER = 16

    def __init__(self, *, P: int = 1024, seed: int = 0,
                 params: ModelParams | None = None,
                 disable: tuple[str, ...] = ()):
        if P < self.CLUSTER or P & (P - 1):
            raise SimulationError(
                f"MasPar partitions must be powers of two >= 16, got {P}")
        nominal = params or paper_params("maspar").with_updates(P=P)
        if nominal.P != P:
            nominal = nominal.with_updates(P=P)
        super().__init__(nominal, seed=seed, disable=disable)
        #: cube permutations priced like random ones when ablated.  The
        #: discount is a *skip* flag, not a factor of 1.0: re-deriving
        #: ``base`` from ``factor*(base-c)+c`` would not be FP-exact.
        self.cube_aware = self.models_phenomenon("cube-discount")
        #: with the partial-permutation law ablated, every word-router
        #: step is priced as a full permutation (``active = P``).
        self.partial_law = self.models_phenomenon("partial-permutation")
        #: hot destinations serialise incoming messages (word and block).
        self.recv_serialises = self.models_phenomenon("receiver-serialisation")
        #: destinations sharing a 16-PE cluster contend for its channel.
        self.cluster_aware = self.models_phenomenon("cluster-channels")
        # Partial-permutation law (Fig. 2 of the paper).
        self.unb = UnbalancedCost(a=0.84, b=11.8, c=73.3)
        #: serialisation cost per extra message at the hottest destination.
        self.serial_recv = 29.5
        #: cube (single-bit-XOR) permutations route conflict-free.
        self.cube_factor = 0.42
        #: block transfers also benefit from conflict-free cube patterns,
        #: though less — the circuit stays open either way (§5.2: the
        #: router is "somewhat less sensitive to the actual communication
        #: pattern when long messages are being sent").
        self.block_cube_factor = 0.62
        #: penalty per excess message on the busiest cluster channel.
        self.cluster_coef = 2.2
        #: circuit-switched block-transfer parameters (full machine).
        self.sigma_block = 105.0
        self.ell_block = 620.0
        #: messages larger than this use the block-transfer circuit;
        #: smaller multi-word messages stream through the word router.
        self.block_threshold = 8 * nominal.w
        #: relative measurement noise of one router operation.
        self.noise = 0.008

    # ------------------------------------------------------------------
    def _cluster_penalty(self, dst: np.ndarray, counts: np.ndarray) -> float:
        """Serialisation on the busiest 16-PE cluster channel."""
        n_clusters = self.P // self.CLUSTER
        loads = np.bincount(dst // self.CLUSTER, weights=counts,
                            minlength=n_clusters)
        total = float(counts.sum())
        fair = math.ceil(total / n_clusters)
        excess = float(loads.max(initial=0)) - fair
        return self.cluster_coef * max(0.0, excess)

    def _is_cube(self, src: np.ndarray, dst: np.ndarray) -> bool:
        if src.size == 0:
            return False
        x = src ^ dst
        first = int(x[0])
        if first <= 0 or first & (first - 1):
            return False
        return bool(np.all(x == first))

    def _step_cost(self, src: np.ndarray, dst: np.ndarray,
                   msg_bytes: np.ndarray) -> float:
        """Router time of one communication step (each PE sends <= 1 msg)."""
        if src.size == 0:
            return 0.0
        ones = np.ones(src.size)
        m_max = int(msg_bytes.max(initial=0))
        if m_max > self.block_threshold:
            # Circuit-switched block transfer: bandwidth-bound, activity
            # independent (see module docstring).
            t = self.sigma_block * m_max + self.ell_block
            if self.cube_aware and self._is_cube(src, dst):
                t *= self.block_cube_factor
            recvs = np.bincount(dst, minlength=self.P)
            h_r = int(recvs.max(initial=0))
            if h_r > 1 and self.recv_serialises:
                # Block messages converging on one PE serialise entirely.
                t += (h_r - 1) * (self.sigma_block * m_max + 0.25 * self.ell_block)
            # circuit-switched streaming on a lockstep machine is nearly
            # deterministic; the word router's conflicts cause the noise
            return t * self.jitter(self.noise / 4)
        # The partial-permutation law is parameterised by the number of
        # simultaneously routed messages (= active sender PEs, Fig. 2).
        active = int(src.size) if self.partial_law else self.P
        base = self.unb(active)
        if self.cube_aware and self._is_cube(src, dst):
            t = self.cube_factor * (base - self.unb.c) + self.unb.c
        else:
            t = base
        recvs = np.bincount(dst, minlength=self.P)
        h_r = int(recvs.max(initial=0))
        if h_r > 1 and self.recv_serialises:
            t += self.serial_recv * (h_r - 1)
        if m_max > self.nominal.w:
            # multi-word short message: extra words stream through the
            # open circuit at the block rate (§8's 16-byte messages)
            t += self.sigma_block * (m_max - self.nominal.w)
        if self.cluster_aware:
            t += self._cluster_penalty(dst, ones)
        return t * self.jitter(self.noise)

    def _sequence_cost(self, sub: CommPhase) -> float:
        """Cost of a sub-phase, decomposed into single-port steps.

        A PE can have only one outstanding message, so its groups route
        back to back: group ``i`` from a PE occupies steps ``[start_i,
        start_i + count_i)`` where ``start_i`` is the total count of that
        PE's earlier groups.  The phase cost is the sum over step segments
        (delimited by the distinct start/end values) of the single-step
        router cost of the groups active in the segment.
        """
        counts = sub.count
        if counts.size == 0:
            return 0.0
        # Per-group start offsets: cumulative counts within each source.
        order = np.argsort(sub.src, kind="stable")
        sorted_counts = counts[order]
        cum = np.cumsum(sorted_counts) - sorted_counts
        src_sorted = sub.src[order]
        boundaries = np.nonzero(np.diff(src_sorted))[0] + 1
        base = np.zeros(order.size)
        if boundaries.size:
            base[boundaries] = cum[boundaries]
            np.maximum.accumulate(base, out=base)
        starts = np.empty(counts.size, dtype=np.int64)
        starts[order] = (cum - base).astype(np.int64)
        ends = starts + counts
        breakpoints = np.unique(np.concatenate([starts, ends]))
        total = 0.0
        for lo, hi in zip(breakpoints[:-1], breakpoints[1:]):
            mask = (starts <= lo) & (ends > lo)
            if not mask.any():
                continue
            reps = int(hi - lo)
            total += reps * self._step_cost(sub.src[mask], sub.dst[mask],
                                            sub.msg_bytes[mask])
        return total

    def phase_cost(self, phase: CommPhase) -> float:
        if phase.is_empty:
            return 0.0
        if phase.n_steps > 1 or (phase.n_steps == 1 and phase.step_ids[0] >= 0):
            return sum(self._sequence_cost(sub) for sub in phase.split_steps())
        return self._sequence_cost(phase)

    def barrier_time(self) -> float:
        # The ACU keeps PEs in lockstep; synchronisation is free.
        return 0.0

    def comm_time_batch(self, phases: list[CommPhase]) -> CommPricer:
        return _MasParCommPricer(self, phases)


class _MasParCommPricer(CommPricer):
    """Batched MasPar pricer: one columnar analysis for a whole run.

    Almost every sub-step the engines emit is *regular*: each PE sends at
    most one group and all groups carry the same count, so the single-port
    schedule of :meth:`MasParMP1._sequence_cost` degenerates to one step
    segment repeated ``count`` times.  For those sub-steps the router cost
    is a closed-form function of per-sub-step reductions (active senders,
    max message size, cube test, receive fan-in, cluster loads), all of
    which this pricer computes for *every* phase of the run in a handful
    of NumPy passes.  Irregular phases fall back to the scalar
    ``phase_cost``.  Measurement noise is drawn at advance time, one
    sub-step at a time in schedule order, so the RNG stream is consumed
    exactly as the scalar path consumes it.
    """

    def __init__(self, machine: MasParMP1, phases: list[CommPhase]):
        super().__init__(machine, phases)
        uniq, idx = unique_phases(phases)
        self._idx = np.asarray(idx, dtype=np.int64)
        n_uniq = len(uniq)
        # Columnar plan state: per unique phase a verdict code (0 empty,
        # 1 fast, 2 scalar) plus the [lo, hi) span of its sub-steps in
        # the schedule-ordered (reps, det, sigma) columns.  Per-phase
        # python plan lists are materialised lazily for the scalar
        # comm_time path only — the fused sequence_costs path reads the
        # columns directly and never builds them.
        self._code = np.zeros(n_uniq, dtype=np.int64)
        self._lo = np.zeros(n_uniq, dtype=np.int64)
        self._hi = np.zeros(n_uniq, dtype=np.int64)
        self._sub: tuple | None = None
        self._plans: list = [None] * n_uniq
        self._prep(uniq)

    def _prep(self, uniq: list[CommPhase]) -> None:
        m: MasParMP1 = self.machine
        P = m.P
        srcs, dsts, counts, sizes, steps, pids = [], [], [], [], [], []
        for i, ph in enumerate(uniq):
            if ph.is_empty:
                continue
            srcs.append(ph.src)
            dsts.append(ph.dst)
            counts.append(ph.count)
            sizes.append(ph.msg_bytes)
            steps.append(ph.step)
            pids.append(np.full(ph.src.size, i, dtype=np.int64))
        if not srcs:
            return
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
        count = np.concatenate(counts)
        msg_bytes = np.concatenate(sizes)
        step = np.concatenate(steps)
        pid = np.concatenate(pids)

        # Sort groups by (phase, step tag): sub-steps become contiguous
        # runs, in the same order the scalar split_steps() visits them.
        smin = int(step.min())
        srange = int(step.max()) - smin + 1
        key = pid * srange + (step - smin)
        order = np.argsort(key, kind="stable")
        skey = key[order]
        s = src[order]
        d = dst[order]
        c = count[order]
        mb = msg_bytes[order]
        spid = pid[order]

        new_seg = np.concatenate(([True], np.diff(skey) != 0))
        starts = np.nonzero(new_seg)[0]
        nseg = starts.size
        seg_pid = spid[starts]
        seg_sizes = np.diff(np.concatenate((starts, [skey.size])))
        seg_id = np.cumsum(new_seg) - 1

        # Per-sub-step reductions -------------------------------------
        m_max = np.maximum.reduceat(mb, starts)
        uniform = np.minimum.reduceat(c, starts) == np.maximum.reduceat(c, starts)
        x = s ^ d
        xfirst = np.minimum.reduceat(x, starts)
        cube = ((xfirst == np.maximum.reduceat(x, starts))
                & (xfirst > 0) & ((xfirst & (xfirst - 1)) == 0))
        if not m.cube_aware:
            cube = np.zeros_like(cube)

        # "Every source distinct" test: duplicates show up as equal
        # neighbours once group keys are sorted by (sub-step, src).
        k2 = np.sort(seg_id * P + s)
        distinct = np.ones(nseg, dtype=bool)
        eq = k2[1:] == k2[:-1]
        if eq.any():
            distinct[(k2[1:][eq]) // P] = False
        fast = uniform & distinct

        # Receive fan-in h_r: the max multiplicity of any destination
        # among a sub-step's groups (group-level, as in _step_cost).
        k3 = np.sort(seg_id * P + d)
        run_starts = np.nonzero(np.concatenate(([True], np.diff(k3) != 0)))[0]
        run_len = np.diff(np.concatenate((run_starts, [k3.size])))
        run_seg = k3[run_starts] // P
        seg_run_starts = np.nonzero(
            np.concatenate(([True], np.diff(run_seg) != 0)))[0]
        h_r = np.empty(nseg, dtype=np.int64)
        h_r[run_seg[seg_run_starts]] = np.maximum.reduceat(run_len, seg_run_starts)

        # Busiest cluster channel load (group-level, matching the `ones`
        # weights the scalar path passes to _cluster_penalty).
        n_clusters = P // m.CLUSTER
        loads = np.bincount(seg_id * n_clusters + d // m.CLUSTER,
                            minlength=nseg * n_clusters)
        loads = loads.reshape(nseg, n_clusters).max(axis=1)

        # Deterministic router times, replicating _step_cost op for op —
        # branchless variants only add exact zeros where the scalar path
        # skips the addition.
        active = (seg_sizes.astype(np.float64) if m.partial_law
                  else np.full(nseg, float(P)))
        w = m.nominal.w
        base = m.unb.a * active + m.unb.b * np.sqrt(active) + m.unb.c
        t_word = np.where(cube, m.cube_factor * (base - m.unb.c) + m.unb.c, base)
        if m.recv_serialises:
            t_word = t_word + m.serial_recv * (h_r - 1)
        t_word = t_word + np.where(m_max > w, m.sigma_block * (m_max - w), 0.0)
        if m.cluster_aware:
            fair = -(-seg_sizes // n_clusters)
            excess = loads.astype(np.float64) - fair.astype(np.float64)
            t_word = t_word + m.cluster_coef * np.maximum(0.0, excess)

        t_blk = m.sigma_block * m_max + m.ell_block
        t_blk = np.where(cube, t_blk * m.block_cube_factor, t_blk)
        if m.recv_serialises:
            t_blk = t_blk + (h_r - 1) * (m.sigma_block * m_max + 0.25 * m.ell_block)

        block = m_max > m.block_threshold
        det = np.where(block, t_blk, t_word)
        sigma = np.where(block, m.noise / 4, m.noise)
        reps = np.maximum.reduceat(c, starts)  # uniform on the fast path

        # Per-phase verdicts: a phase is fast only if every one of its
        # sub-steps is (whole-phase scalar fallback keeps the RNG draw
        # order trivially correct).
        phase_bounds = np.nonzero(
            np.concatenate(([True], np.diff(seg_pid) != 0)))[0]
        phase_fast = np.logical_and.reduceat(fast, phase_bounds)
        phase_ends = np.concatenate((phase_bounds[1:], [nseg]))
        pis = seg_pid[phase_bounds]
        self._code[pis] = np.where(phase_fast, 1, 2)
        self._lo[pis] = phase_bounds
        self._hi[pis] = phase_ends
        self._sub = (reps.astype(np.float64), det, sigma)

    def _plan(self, u: int):
        """Materialise the python plan list for unique phase ``u``."""
        plan = self._plans[u]
        if plan is None:
            code = int(self._code[u])
            if code == 0:
                plan = ("empty",)
            elif code == 2:
                plan = ("scalar",)
            else:
                lo, hi = int(self._lo[u]), int(self._hi[u])
                reps, det, sigma = self._sub
                plan = ("fast", list(zip(reps[lo:hi].tolist(),
                                         det[lo:hi].tolist(),
                                         sigma[lo:hi].tolist())))
            self._plans[u] = plan
        return plan

    def sequence_costs(self):
        """Whole-run phase costs in one vectorised noise draw.

        Available exactly when every non-empty phase has a fast plan: the
        scalar ``comm_time`` loop then reduces to ``cost_i = sum_k
        reps_k * (det_k * (1 + z_k))`` over phase ``i``'s sub-steps, with
        one noise draw per sub-step in schedule order.  Drawing all the
        ``z_k`` as a single ``rng.normal(0, sigma_vector)`` call consumes
        the RNG stream bit-identically to the sequential scalar draws,
        and :func:`segment_sums` keeps each phase's accumulation
        left-to-right.  Any scalar-fallback plan returns ``None`` before
        touching the RNG.
        """
        u = self._idx
        n = u.size
        if np.any(self._code[u] == 2):
            return None
        L = (self._hi - self._lo)[u]  # empty phases have lo == hi == 0
        ends = np.cumsum(L)
        total = int(ends[-1]) if n else 0
        if total == 0:
            return np.zeros(n)
        # Ragged gather of each phase's sub-step rows in schedule order.
        pos = np.arange(total)
        seg_of = np.searchsorted(ends, pos, side="right")
        offs = pos - (ends - L)[seg_of]
        ridx = self._lo[u][seg_of] + offs
        reps, det, sigma = self._sub
        z = self.machine.rng.normal(0.0, sigma[ridx])
        terms = reps[ridx] * (det[ridx] * (1.0 + z))
        starts = np.concatenate(([0], ends[:-1]))
        return segment_sums(terms, starts, L)

    def comm_time(self, i: int, clocks: np.ndarray, *,
                  barrier: bool = True) -> np.ndarray:
        m: MasParMP1 = self.machine
        phase = self.phases[i]
        if clocks.shape != (phase.P,):
            raise SimulationError("clock array does not match phase P")
        total = float(clocks.max())
        plan = self._plan(int(self._idx[i]))
        if plan[0] == "scalar":
            if not phase.is_empty:
                total += m.phase_cost(phase)
        elif plan[0] == "fast":
            cost = 0.0
            rng = m.rng
            for reps, det, sig in plan[1]:
                cost += reps * (det * float(1.0 + rng.normal(0.0, sig)))
            total += cost
        return m._advance(phase, clocks, total, barrier)
