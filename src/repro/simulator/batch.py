"""Batched work accounting shared by the generator and vector engines.

The inner loop the paper's big sweeps used to pay for —
``sum(machine.compute_time(w, rank) for w in items)`` per processor per
superstep — is replaced here by array pricing: items are grouped by work
kind, priced through :meth:`Machine.compute_time_batch` as parameter
vectors, jittered with *one* vectorised noise draw, and accumulated into
the clocks.

Bit-identity contract (the golden figures depend on it):

* per-item deterministic prices equal ``compute_time_base`` exactly
  (same IEEE operations elementwise);
* the noise stream is consumed in flat ``(rank, charge-order)`` item
  order — ``rng.normal(size=n)`` draws the same sequence as ``n``
  scalar ``rng.normal()`` calls;
* per-rank totals are summed left-to-right over a rank's items, then
  added to the clock once, exactly like the scalar
  ``clocks[rank] += sum(...)``.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..core.errors import SimulationError
from ..core.work import WORK_FIELDS, Work

__all__ = ["WorkBatch", "charge_work_dict", "charge_batches",
           "flat_rank_order", "price_batches", "materialize_work"]


class WorkBatch:
    """One homogeneous charge: ``kind`` items with vector parameters.

    ``params`` maps the kind's field names to equal-length sequences;
    ``ranks`` holds the owning processor of each item.  Emitted by
    vector programs via :meth:`VectorContext.charge_batch`.
    """

    __slots__ = ("kind", "params", "ranks")

    def __init__(self, kind: type, params: dict[str, Any], ranks: np.ndarray):
        self.kind = kind
        self.ranks = np.asarray(ranks, dtype=np.int64)
        fields = WORK_FIELDS.get(kind)
        if fields is None:
            raise SimulationError(
                f"work kind {kind.__name__} has no WORK_FIELDS entry; "
                "vector programs can only batch registered kinds")
        self.params = {
            f: np.broadcast_to(np.asarray(params[f]), self.ranks.shape)
            for f in fields}

    def __len__(self) -> int:
        return int(self.ranks.size)


def _price_flat(machine, items: Sequence[Work],
                ranks: np.ndarray) -> np.ndarray:
    """Deterministic per-item prices, preserving item order."""
    base = np.empty(len(items))
    by_kind: dict[type, list[int]] = {}
    for i, item in enumerate(items):
        by_kind.setdefault(type(item), []).append(i)
    for kind, positions in by_kind.items():
        idx = np.asarray(positions, dtype=np.intp)
        prices = None
        fields = WORK_FIELDS.get(kind)
        if fields is not None:
            params = {f: np.array([getattr(items[i], f) for i in positions])
                      for f in fields}
            prices = machine.compute_time_batch(kind, params, ranks[idx])
        if prices is None:  # exotic kind: per-item scalar fallback
            for i in positions:
                base[i] = machine.compute_time_base(items[i], int(ranks[i]))
        else:
            base[idx] = prices
    return base


def _accumulate(clocks: np.ndarray, ranks: np.ndarray,
                times: np.ndarray) -> None:
    """``clocks[r] += sum(times of r)`` with scalar-path float semantics.

    ``ranks`` must be rank-major (non-decreasing).  Totals are summed
    left-to-right per rank and added to the clock in one operation.
    """
    n = ranks.size
    if n == 0:
        return
    change = np.nonzero(np.diff(ranks))[0] + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [n]))
    lengths = ends - starts
    single = lengths == 1
    if single.all():
        clocks[ranks[starts]] += times[starts]
        return
    clocks[ranks[starts[single]]] += times[starts[single]]
    for s, e in zip(starts[~single], ends[~single]):
        clocks[ranks[s]] += sum(times[s:e])


def charge_work_dict(machine, work: dict[int, list[Work]],
                     clocks: np.ndarray) -> None:
    """Charge the generator engine's per-rank work lists, batched.

    ``work`` must iterate in ascending rank order (the engine drains
    contexts in rank order), with each rank's items in charge order.
    """
    if not work:
        return
    items: list[Work] = []
    rank_list: list[int] = []
    for rank, rank_items in work.items():
        items.extend(rank_items)
        rank_list.extend([rank] * len(rank_items))
    ranks = np.asarray(rank_list, dtype=np.int64)
    times = _price_flat(machine, items, ranks)
    if machine.compute_noise:
        times = times * (1.0 + machine.rng.normal(
            0.0, machine.compute_noise, size=times.size))
    _accumulate(clocks, ranks, times)


def flat_rank_order(batches: Sequence[WorkBatch],
                    ) -> tuple[np.ndarray, np.ndarray | None]:
    """Flatten non-empty batches into the generator path's item order.

    Returns ``(ranks, order)``: ``ranks`` is the rank-major rank of each
    flat item, ``order`` the stable argsort that produced it (``None``
    when the concatenation was already rank-major, so gathers can be
    skipped).
    """
    flat = np.concatenate([b.ranks for b in batches])
    if bool((np.diff(flat) >= 0).all()):
        return flat, None  # already rank-major: skip the sort and gathers
    order = np.argsort(flat, kind="stable")
    return flat[order], order


def price_batches(machine, batches: Sequence[WorkBatch]) -> np.ndarray:
    """Deterministic per-item prices in flat (batch emission) order."""
    base = np.empty(sum(len(b) for b in batches))
    pos = 0
    for b in batches:
        prices = machine.compute_time_batch(b.kind, b.params, b.ranks)
        if prices is None:
            prices = np.array([
                machine.compute_time_base(
                    b.kind(*(b.params[f][i] for f in b.params)), int(r))
                for i, r in enumerate(b.ranks)])
        base[pos:pos + len(b)] = prices
        pos += len(b)
    return base


def materialize_work(batches: Sequence[WorkBatch], rank_seq: list[int],
                     order: np.ndarray | None) -> dict[int, list[Work]]:
    """Materialise the trace's ``{rank: [Work, ...]}`` dict for batches.

    The dict is built in rank order with each rank's items in emission
    order — what the generator engine would have recorded.  Work items
    are frozen and compared by value, so a batch with uniform parameters
    (0-stride broadcast columns) shares one instance across its items.
    ``rank_seq``/``order`` come from :func:`flat_rank_order`
    (``rank_seq = ranks.tolist()``).
    """
    work: dict[int, list[Work]] = {}
    flat_objs: list[Work] = []
    for b in batches:
        cols = [b.params[f] for f in b.params]
        if all(not any(c.strides) for c in cols):
            one = b.kind(*(c.flat[0].item() for c in cols))
            flat_objs.extend([one] * len(b))
        else:
            flat_objs.extend(
                b.kind(*args) for args in zip(*(c.tolist() for c in cols)))
    if order is None:
        for j, obj in enumerate(flat_objs):
            work.setdefault(rank_seq[j], []).append(obj)
    else:
        for j, flat_i in enumerate(order.tolist()):
            work.setdefault(rank_seq[j], []).append(flat_objs[flat_i])
    return work


def charge_batches(machine, batches: Sequence[WorkBatch],
                   clocks: np.ndarray) -> dict[int, list[Work]]:
    """Charge a vector superstep's work batches; return the trace dict.

    Batches are flattened into the generator path's flat order — items
    sorted by rank, ties broken by batch emission order — so prices,
    noise draws and clock updates are bit-identical to running the
    equivalent per-rank program.  The returned ``{rank: [Work, ...]}``
    dict matches what the generator engine records in the trace.
    """
    batches = [b for b in batches if len(b)]
    if not batches:
        return {}
    ranks, order = flat_rank_order(batches)
    base = price_batches(machine, batches)
    times = base if order is None else base[order]
    if machine.compute_noise:
        times = times * (1.0 + machine.rng.normal(
            0.0, machine.compute_noise, size=times.size))
    _accumulate(clocks, ranks, times)
    return materialize_work(batches, ranks.tolist(), order)
