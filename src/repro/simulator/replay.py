"""Price a recorded :class:`~repro.simulator.ir.StepProgram` on a machine.

Replay is the "price-many" half of the IR engine: no generator ever
resumes, no ``put_group``/``charge_batch`` bookkeeping re-runs.  The
machine-independent prep (rank-major item order, trace work dicts) is
cached on the program; per replay only the machine-dependent pieces are
computed — one deterministic pricing pass per *distinct* batchlist, one
batched comm pricer for the phase sequence — and the per-superstep loop
reduces to RNG-ordered noise application plus clock advancement.

Two paths, both bit-identical to the generator and vector engines:

* **fused** — for lockstep SIMD machines with deterministic compute and
  base bulk-synchronous ``comm_time`` semantics (the MasPar), clocks are
  provably uniform after every superstep, so the whole run collapses to
  a scalar scan ``T = (T + wmax_i) + cost_i`` over Python floats.  The
  per-phase costs come from one vectorised
  :meth:`~repro.machines.base.CommPricer.sequence_costs` draw; the
  work maxima are exact because ``fl`` is monotone (``max_r fl(T + w_r)
  = fl(T + max_r w_r)`` for ``w_r >= 0``).  Zero per-superstep numpy
  calls, zero array traffic.
* **generic** — everything else (MIMD noise, drift machines, scalar
  pricing fallbacks): a per-step loop that consumes the machine RNG in
  exactly the order the vector engine's pricing pass would (work noise,
  then phase noise, per superstep).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import SimulationError
from ..core.trace import Superstep, Trace
from ..machines.base import Machine
from .batch import _accumulate, price_batches
from .ir import StepProgram
from .result import RunResult

__all__ = ["replay"]


class _Priced:
    """Machine-dependent pricing state of one distinct batchlist."""

    __slots__ = ("ranks", "work", "base", "wmax")

    def __init__(self, ranks, work, base):
        self.ranks = ranks
        self.work = work
        self.base = base      # deterministic prices, rank-major order
        self.wmax = 0.0       # max per-rank total (fused path only)


def _fused_ok(machine) -> bool:
    # The scalar scan assumes: clocks uniform after every superstep
    # (lockstep SIMD via the *base* ``_advance``: everyone lands on
    # ``total``, barriers free), cost added to ``max(clocks)`` (base
    # ``comm_time``), and deterministic work prices (no compute noise).
    return (machine.simd
            and not machine.compute_noise
            and type(machine).comm_time is Machine.comm_time
            and type(machine)._advance is Machine._advance)


def replay(machine, prog: StepProgram, *, label: str = "") -> RunResult:
    """Re-price ``prog`` on ``machine``; bit-identical to re-running it."""
    P = prog.P
    if not 0 < P <= machine.P:
        raise SimulationError(
            f"program recorded for P={P} exceeds machine P={machine.P}")
    if prog.word_bytes != machine.nominal.w or prog.simd != machine.simd:
        raise SimulationError(
            "step program was recorded for a different machine shape "
            f"(word_bytes={prog.word_bytes}, simd={prog.simd}); record one "
            "per machine shape")

    phases = [prog.phases[j] for j in prog.phase_idx]
    pricer = machine.comm_time_batch(phases)

    priced: list[_Priced] = []
    for j, batches in enumerate(prog.batchlists):
        ranks, order, work = prog.prep(j)
        base = price_batches(machine, batches)
        if order is not None:
            base = base[order]
        priced.append(_Priced(ranks, work, base))

    if _fused_ok(machine):
        costs = pricer.sequence_costs()
        if costs is not None:
            return _replay_fused(prog, phases, costs, priced, label)
    return _replay_generic(machine, prog, phases, pricer, priced, label)


def _replay_fused(prog: StepProgram, phases, costs: np.ndarray,
                  priced: list[_Priced], label: str) -> RunResult:
    P = prog.P
    for pb in priced:
        w = np.zeros(P)
        _accumulate(w, pb.ranks, pb.base)
        pb.wmax = float(w.max())
    trace = Trace(P=P, label=label)
    append = trace.append
    batch_idx = prog.batch_idx
    labels = prog.labels
    cost_list = costs.tolist()
    T = 0.0
    for i in range(prog.n_steps):
        j = batch_idx[i]
        if j >= 0:
            t1 = T + priced[j].wmax
            work = priced[j].work
        else:
            t1 = T
            work = {}
        t2 = t1 + cost_list[i]
        append(Superstep(phase=phases[i], work=work, label=labels[i],
                         measured_us=t2 - T))
        T = t2
    return RunResult(time_us=T, clocks=np.full(P, T), trace=trace,
                     returns=prog.returns)


def _replay_generic(machine, prog: StepProgram, phases, pricer,
                    priced: list[_Priced], label: str) -> RunResult:
    P = prog.P
    clocks = np.zeros(P)
    trace = Trace(P=P, label=label)
    append = trace.append
    batch_idx = prog.batch_idx
    barriers = prog.barriers
    labels = prog.labels
    noise = machine.compute_noise
    rng = machine.rng
    for i in range(prog.n_steps):
        start_max = float(clocks.max())
        j = batch_idx[i]
        if j >= 0:
            pb = priced[j]
            times = pb.base
            if noise:
                times = times * (1.0 + rng.normal(0.0, noise,
                                                  size=times.size))
            _accumulate(clocks, pb.ranks, times)
            work = pb.work
        else:
            work = {}
        clocks = pricer.comm_time(i, clocks, barrier=barriers[i])
        if clocks.shape != (P,):
            raise SimulationError(
                f"machine {machine.name} returned clocks of shape "
                f"{clocks.shape}, expected ({P},)")
        append(Superstep(phase=phases[i], work=work, label=labels[i],
                         measured_us=float(clocks.max()) - start_max))
    return RunResult(time_us=float(clocks.max()), clocks=clocks, trace=trace,
                     returns=prog.returns)
