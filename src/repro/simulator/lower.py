"""Record-once lowering: turn an (algorithm, config) run into IR replay.

:func:`run_lowered` is what an algorithm's ``run()`` calls for
``engine="ir"``.  It content-addresses the requested configuration
(:func:`~repro.simulator.ir.ir_key` over algorithm name, source
fingerprint, machine shape and structure parameters), consults the
process-wide :func:`~repro.simulator.ir.ir_store`, records the step
program on a miss (one pass-1 execution, identical to the vector
engine's collection pass) and replays it for pricing.

The source fingerprint hashes the module file that defines the vector
program, so editing an algorithm invalidates its recordings — the same
staleness discipline as the result cache's package fingerprint, but
per-algorithm so unrelated edits keep recordings warm.

On-disk IR blobs store structure only.  When a disk hit must also
produce per-rank *results* (the first run of a fresh process), the
program re-executes once against a :class:`_DataOnlyContext` — a
write-only :class:`~repro.simulator.vector.VectorContext` whose
``put_group``/``charge_batch`` are no-ops.  Vector programs move their
data through numpy themselves and never observe clocks, so this data
pass returns bit-identical results at none of the bookkeeping cost.
"""

from __future__ import annotations

import hashlib
import sys
from pathlib import Path
from typing import Any

from ..core.errors import SimulationError
from .ir import build_program, ir_key, ir_store
from .replay import replay
from .result import RunResult
from .vector import VectorContext, collect_steps

__all__ = ["run_lowered", "algorithm_fingerprint",
           "clear_algorithm_fingerprints"]

_FP_MEMO: dict[str, str] = {}


def algorithm_fingerprint(program) -> str:
    """SHA-256 of the source file defining ``program`` (memoised)."""
    mod = sys.modules.get(getattr(program, "__module__", None))
    path = getattr(mod, "__file__", None)
    if path is None:  # exec'd / frozen code: no file to hash
        return f"module:{getattr(program, '__module__', '?')}"
    fp = _FP_MEMO.get(path)
    if fp is None:
        fp = hashlib.sha256(Path(path).read_bytes()).hexdigest()
        _FP_MEMO[path] = fp
    return fp


def clear_algorithm_fingerprints() -> None:
    """Forget hashed sources (tests that rewrite algorithm files)."""
    _FP_MEMO.clear()


class _DataOnlyContext(VectorContext):
    """Runs the program's data movement without any recording."""

    def put_group(self, src, dst, *, nbytes, count=1, step=-1) -> None:
        return None

    def charge_batch(self, kind, ranks, **params) -> None:
        return None


def _execute(ctx: VectorContext, program, args, kwargs,
             max_supersteps: int):
    gen = program(ctx, *args, **kwargs)
    if not hasattr(gen, "__next__"):
        raise SimulationError(
            "vector program must be a generator function (got "
            f"{type(gen).__name__}); did you forget a 'yield ctx.sync()'?")
    steps, returns = collect_steps(ctx, gen, max_supersteps=max_supersteps)
    if returns is not None and not isinstance(returns, list):
        returns = list(returns)
    return steps, returns


def run_lowered(machine, program, *args: Any, algorithm: str,
                key_params: dict, P: int | None = None, label: str = "",
                max_supersteps: int = 1_000_000, **kwargs: Any) -> RunResult:
    """Run ``program`` through the IR store: record on miss, then replay.

    ``key_params`` must determine the program's structure *and* data —
    every ``run()`` keyword that reaches the program or its input
    generation (sizes, variant, structure seed, ...) belongs in it.
    Bit-identical to :func:`~repro.simulator.run_spmd_vector` with the
    same arguments.
    """
    P = machine.P if P is None else P
    if not 0 < P <= machine.P:
        raise SimulationError(
            f"requested P={P} processors on a {machine.P}-processor machine")
    word_bytes = machine.nominal.w
    simd = machine.simd
    store = ir_store()
    key = ir_key(algorithm=algorithm,
                 fingerprint=algorithm_fingerprint(program),
                 P=P, word_bytes=word_bytes, simd=simd, params=key_params)
    prog = store.get(key)
    if prog is None:
        ctx = VectorContext(P, word_bytes, simd=simd)
        steps, returns = _execute(ctx, program, args, kwargs, max_supersteps)
        prog = build_program(P=P, word_bytes=word_bytes, simd=simd,
                             steps=steps, returns=returns)
        store.put(key, prog)
    if not prog.has_returns:
        # Structure came from disk; per-rank results are regenerated
        # lazily — the thunk lands in RunResult.returns and runs the
        # data pass only if someone reads it (most experiments never
        # do), backfilling the cached program so it runs at most once.
        this = prog

        def data_pass(prog=this):
            if callable(prog.returns):  # not yet forced by a sibling
                ctx = _DataOnlyContext(P, word_bytes, simd=simd)
                _, returns = _execute(ctx, program, args, kwargs,
                                      max_supersteps)
                prog.returns = returns
            return prog.returns

        prog.returns = data_pass
        prog.has_returns = True
    return replay(machine, prog, label=label)
