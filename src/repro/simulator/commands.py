"""Tokens exchanged between SPMD programs and the engine.

Programs are generator functions; the only thing they ever *yield* is a
:class:`SyncToken` (obtained from :meth:`ProcContext.sync`), which marks a
superstep boundary.  Everything else — sends, receives, work charging — is
recorded imperatively on the processor context.
"""

from __future__ import annotations

__all__ = ["SyncToken"]


class SyncToken:
    """A superstep boundary request, yielded by a program.

    ``label`` names the superstep in the trace; ``stagger`` overrides the
    phase's staggering flag (``None`` = staggered unless the program says
    otherwise — see :class:`repro.core.relations.CommPhase`).  ``barrier``
    says whether the boundary is a true barrier synchronisation: BSP-style
    programs barrier every superstep, while message-passing programs (the
    paper's plain PVM bitonic sort on the GCel) only match sends with
    receives, letting processors drift out of sync (§5.1, Fig. 7).

    A plain ``__slots__`` class rather than a dataclass: one token is
    created per processor per superstep, squarely on the engine hot path.
    """

    __slots__ = ("label", "stagger", "barrier")

    def __init__(self, label: str = "", stagger: bool | None = None,
                 barrier: bool = True):
        self.label = label
        self.stagger = stagger
        self.barrier = barrier

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SyncToken(label={self.label!r}, stagger={self.stagger}, "
                f"barrier={self.barrier})")
