"""The SPMD discrete-event engine.

:func:`run_spmd` executes one program on all ``P`` virtual processors of a
machine model.  Programs are generator functions ``prog(ctx, *args)`` that
``yield ctx.sync()`` at superstep boundaries; between boundaries they do
real computation on real data (so results can be checked) while declaring
its *cost* symbolically through the context.

Per superstep the engine:

1. resumes every live processor until it yields a sync token (or returns);
2. charges each processor's declared work via the machine's compute model;
3. assembles all pending sends into one :class:`CommPhase`, asks the
   machine to price it (advancing the per-processor clocks, with or
   without a barrier), and delivers the payloads;
4. appends a :class:`Superstep` record to the trace.

The trace can afterwards be priced by any cost model — that is the
"predicted" time the paper compares against the machine's "measured" time.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

import numpy as np

from ..core.errors import DeadlockError, SimulationError
from ..core.relations import CommPhase
from ..core.trace import Superstep, Trace
from .batch import charge_work_dict
from .commands import SyncToken
from .context import ProcContext
from .result import RunResult

__all__ = ["run_spmd"]

Program = Callable[..., Iterator[SyncToken]]


def _resume(gen: Iterator[SyncToken], rank: int) -> tuple[SyncToken | None, Any]:
    """Advance one generator; return (token, return_value)."""
    try:
        token = next(gen)
    except StopIteration as stop:
        return None, stop.value
    if not isinstance(token, SyncToken):
        raise SimulationError(
            f"proc {rank} yielded {token!r}; programs may only yield "
            "ctx.sync() tokens")
    return token, None


def run_spmd(machine, program: Program, *args: Any, P: int | None = None,
             label: str = "", max_supersteps: int = 1_000_000,
             **kwargs: Any) -> RunResult:
    """Run ``program`` on ``P`` virtual processors of ``machine``.

    Parameters
    ----------
    machine:
        a :class:`repro.machines.base.Machine`.
    program:
        generator function ``program(ctx, *args, **kwargs)``.
    P:
        number of processors to use; defaults to the whole machine.  Using
        a subset is how e.g. the matrix multiplication runs on ``q^3 = 512``
        of the MasPar's 1024 PEs.
    """
    P = machine.P if P is None else P
    if not 0 < P <= machine.P:
        raise SimulationError(
            f"requested P={P} processors on a {machine.P}-processor machine")

    word = machine.nominal.w
    contexts = [ProcContext(rank, P, word, simd=machine.simd)
                for rank in range(P)]
    gens = [program(ctx, *args, **kwargs) for ctx in contexts]
    for rank, gen in enumerate(gens):
        if not hasattr(gen, "__next__"):
            raise SimulationError(
                f"program must be a generator function (proc {rank} got "
                f"{type(gen).__name__}); did you forget a 'yield ctx.sync()'?")

    clocks = np.zeros(P)
    trace = Trace(P=P, label=label)
    returns: list[Any] = [None] * P
    alive = np.ones(P, dtype=bool)

    for _ in range(max_supersteps):
        if not alive.any():
            break
        tokens: list[SyncToken | None] = [None] * P
        for rank in range(P):
            if not alive[rank]:
                continue
            token, value = _resume(gens[rank], rank)
            if token is None:
                alive[rank] = False
                returns[rank] = value
            else:
                tokens[rank] = token

        # ---- collect work and sends from every context ----
        # Contexts accumulate sends columnar (flat int list + parallel
        # tag/payload lists), so assembling the CommPhase arrays is one
        # list concatenation per context plus one C-speed np conversion
        # — no per-message Python tuple traffic.
        send_vals: list[int] = []  # flat: dst, count, msg_bytes, step per send
        send_tags: list[Any] = []
        send_payloads: list[Any] = []
        src_runs: list[int] = []   # rank of each contiguous run of sends
        run_lens: list[int] = []
        work: dict[int, list] = {}
        for rank, ctx in enumerate(contexts):
            vals, tags, payloads, items = ctx._drain()
            if items:
                work[rank] = items
            if tags:
                send_vals += vals
                send_tags += tags
                send_payloads += payloads
                src_runs.append(rank)
                run_lens.append(len(tags))

        live_tokens = [t for t in tokens if t is not None]
        if not live_tokens and not send_tags and not work:
            continue  # every processor returned without trailing activity

        stagger = True
        barrier = True
        step_label = ""
        for t in live_tokens:
            if t.stagger is False:
                stagger = False
            if not t.barrier:
                barrier = False
            if t.label and not step_label:
                step_label = t.label

        cols = np.asarray(send_vals, dtype=np.int64).reshape(-1, 4)
        src = np.repeat(np.asarray(src_runs, dtype=np.int64),
                        np.asarray(run_lens, dtype=np.int64))
        phase = CommPhase(
            P=P,
            src=src,
            dst=cols[:, 0].copy(),
            count=cols[:, 1].copy(),
            msg_bytes=cols[:, 2].copy(),
            step=cols[:, 3].copy(),
            stagger=stagger,
        )

        # ---- charge local computation (batched across all ranks) ----
        start_max = float(clocks.max())
        charge_work_dict(machine, work, clocks)

        # ---- price communication, advance clocks, deliver payloads ----
        clocks = machine.comm_time(phase, clocks, barrier=barrier)
        if clocks.shape != (P,):
            raise SimulationError(
                f"machine {machine.name} returned clocks of shape "
                f"{clocks.shape}, expected ({P},)")
        if send_tags:
            for dst, s, tag, payload in zip(phase.dst.tolist(), src.tolist(),
                                            send_tags, send_payloads):
                contexts[dst]._deliver(s, tag, payload)

        record = Superstep(phase=phase, work=work, label=step_label,
                           measured_us=float(clocks.max()) - start_max)
        trace.append(record)
    else:
        raise DeadlockError(
            f"program exceeded {max_supersteps} supersteps; "
            "suspected livelock")

    return RunResult(time_us=float(clocks.max()), clocks=clocks,
                     trace=trace, returns=returns)
