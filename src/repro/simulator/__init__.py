"""SPMD discrete-event simulator.

The simulator executes real SPMD programs (Python generators operating on
NumPy data) on virtual processors while a machine model charges virtual
time — the substitute for the paper's MasPar / GCel / CM-5 testbeds.
"""

from .commands import SyncToken
from .context import ProcContext
from .engine import run_spmd
from .result import RunResult

__all__ = ["run_spmd", "ProcContext", "SyncToken", "RunResult"]
