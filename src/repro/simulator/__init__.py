"""SPMD discrete-event simulator.

The simulator executes real SPMD programs (Python generators operating on
NumPy data) on virtual processors while a machine model charges virtual
time — the substitute for the paper's MasPar / GCel / CM-5 testbeds.
"""

from .batch import WorkBatch
from .commands import SyncToken
from .context import ProcContext
from .engine import run_spmd
from .ir import IRStore, StepProgram, ir_store
from .lower import run_lowered
from .replay import replay
from .result import RunResult
from .vector import ENGINES, VectorContext, run_spmd_vector

__all__ = ["run_spmd", "run_spmd_vector", "run_lowered", "replay",
           "ProcContext", "VectorContext", "WorkBatch", "SyncToken",
           "RunResult", "StepProgram", "IRStore", "ir_store", "ENGINES"]
