"""Lockstep vector fast path for SPMD programs.

:func:`run_spmd` resumes ``P`` Python generators per superstep — faithful,
but the interpreter pays for every rank separately even though the
programs are SPMD: at any superstep all ranks execute the *same* code on
different data.  :func:`run_spmd_vector` exploits that: ONE generator (a
"vector program") executes each superstep for all ``P`` ranks at once on
stacked arrays, emitting sends as whole message *groups*
(:meth:`VectorContext.put_group`) and work as homogeneous batches
(:class:`~repro.simulator.batch.WorkBatch`).

The contract is strict bit-identity with the generator engine: given the
same machine (same seed), a vector program and its per-rank counterpart
must produce identical clocks, traces and results.  The engine holds up
its half of the bargain by

* ordering each superstep's message groups rank-major (source ascending,
  emission order within a source) via a stable sort — the order in which
  the generator engine drains per-rank contexts;
* charging work through :func:`~repro.simulator.batch.charge_batches`,
  which prices, jitters and accumulates in the generator path's flat
  item order;
* mirroring the generator engine's superstep bookkeeping exactly: the
  stagger/barrier/label resolution, the empty-phase barrier, and the
  trailing superstep that drains work charged after the last ``sync``.

Vector programs must keep *their* half: emit groups and batches in the
same per-rank order as the per-rank program, and keep per-rank
floating-point operations in the same association order (e.g. loop over
partial sums rather than ``np.sum`` along an axis).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Iterator

import numpy as np

from ..core.errors import DeadlockError, SimulationError
from ..core.relations import CommPhase
from ..core.trace import Superstep, Trace
from ..core.work import Compare, Copy, Flops, Generic, MatmulBlock, Merge, RadixSort
from .batch import WorkBatch, charge_batches
from .commands import SyncToken
from .result import RunResult

__all__ = ["VectorContext", "run_spmd_vector", "resolve_engine",
           "collect_steps", "ENGINES", "engine_scope"]

#: every ``engine=`` argument and ``--engine`` flag accepts exactly these.
ENGINES = ("auto", "generator", "vector", "ir")


def default_engine() -> str:
    """The engine ``"auto"`` resolves to: ``$REPRO_ENGINE``, or ``"ir"``.

    The environment variable is how the CLI / service / ablation layers
    pin an engine process-wide (it survives into pool workers); an unset
    or ``"auto"`` value picks the IR record/replay fast path.
    """
    env = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if not env or env == "auto":
        return "ir"
    if env not in ENGINES:
        raise SimulationError(
            f"$REPRO_ENGINE={env!r} is not a known engine; "
            f"expected one of {ENGINES}")
    return env


def resolve_engine(engine: str, *, vector_ok: bool = True) -> str:
    """Pick the engine for an ``engine=`` algorithm argument.

    ``"auto"`` resolves through :func:`default_engine` (``$REPRO_ENGINE``
    or the IR record/replay engine) and silently degrades to the
    generator when the algorithm has no vector port for the requested
    configuration (``vector_ok``); requesting ``"vector"`` or ``"ir"``
    explicitly without one is an error.
    """
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")
    if engine == "auto":
        engine = default_engine()
        return engine if vector_ok or engine == "generator" else "generator"
    if engine != "generator" and not vector_ok:
        raise SimulationError(
            "no vector port for this configuration; use engine='generator'")
    return engine


@contextmanager
def engine_scope(engine: str | None):
    """Pin ``$REPRO_ENGINE`` for a block so ``engine="auto"`` resolves to
    ``engine`` in this process *and* in workers forked inside the block.

    ``None``/``"auto"`` leave the environment untouched; an unknown name
    raises :class:`SimulationError` before anything runs.
    """
    if engine is None or engine == "auto":
        yield
        return
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown engine {engine!r}; expected one of {ENGINES}")
    prior = os.environ.get("REPRO_ENGINE")
    os.environ["REPRO_ENGINE"] = engine
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop("REPRO_ENGINE", None)
        else:
            os.environ["REPRO_ENGINE"] = prior


VectorProgram = Callable[..., Iterator[SyncToken]]

_EMPTY = np.zeros(0, dtype=np.int64)


class VectorContext:
    """The view a vector program has of all ``P`` processors at once."""

    __slots__ = ("P", "word_bytes", "simd", "_groups", "_batches",
                 "_put_cache")

    def __init__(self, P: int, word_bytes: int, simd: bool = False):
        if P < 1:
            raise SimulationError(f"need at least one processor, got P={P}")
        self.P = P
        self.word_bytes = word_bytes
        self.simd = simd
        # per-superstep accumulators, drained by the engine at each sync:
        self._groups: list[tuple[np.ndarray, ...]] = []
        self._batches: list[WorkBatch] = []
        # memoised put_group results, keyed by argument identity: programs
        # that hoist their group arrays out of iteration loops (APSP's
        # broadcasts) re-emit the *same* objects every round, and the
        # cached tuple (same object too) lets the engine intern the whole
        # phase.  The cache pins its keys' arrays, so an id collision
        # implies identity; arrays passed to put_group are borrowed for
        # the run and must not be mutated afterwards.
        self._put_cache: dict = {}

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def ranks(self) -> np.ndarray:
        """``[0, 1, ..., P-1]`` — the all-ranks source vector."""
        return np.arange(self.P, dtype=np.int64)

    def put_group(self, src, dst, *, nbytes, count=1, step=-1) -> None:
        """Emit one message per ``src[i] -> dst[i]`` pair.

        The vector equivalent of every rank in ``src`` calling
        :meth:`ProcContext.put` once; arguments broadcast against
        ``src``.  Within one group a rank should appear at most once per
        logical send position — emit several groups (in per-rank program
        order) for multi-send supersteps, so the engine's stable
        rank-major sort reproduces the per-rank emission order.
        """
        key = (id(src), id(dst),
               count if type(count) is int else (id(count),),
               nbytes if type(nbytes) is int else (id(nbytes),),
               step if type(step) is int else (id(step),))
        cached = self._put_cache.get(key)
        if cached is not None:
            # the cache holds the keyed objects alive, so the ids in the
            # key cannot have been reused: this is the same call again.
            self._groups.append(cached[1])
            return
        pin = (src, dst, count, nbytes, step)
        src = np.atleast_1d(np.asarray(src, dtype=np.int64))
        if src.size == 0:
            return
        shape = src.shape
        if int(src.min()) < 0 or int(src.max()) >= self.P:
            raise SimulationError(f"source rank out of range (P={self.P})")
        dst = np.asarray(dst, dtype=np.int64)
        if dst.ndim == 0:
            if not 0 <= int(dst) < self.P:
                raise SimulationError(
                    f"destination out of range (P={self.P})")
            dst = np.broadcast_to(dst, shape)
        else:
            dst = np.broadcast_to(dst, shape)
            if int(dst.min()) < 0 or int(dst.max()) >= self.P:
                raise SimulationError(
                    f"destination out of range (P={self.P})")
        count_a = np.asarray(count, dtype=np.int64)
        total_a = np.asarray(nbytes, dtype=np.int64)
        if count_a.ndim == 0 and total_a.ndim == 0:
            # scalar fast path: one division instead of per-pair arrays
            c = int(count_a)
            t = int(total_a)
            if c < 1:
                raise SimulationError("count must be >= 1")
            if t < 0:
                raise SimulationError("nbytes must be >= 0")
            count_b = np.broadcast_to(count_a, shape)
            msg_bytes = np.broadcast_to(
                np.asarray(-(-t // c) if t else 0, dtype=np.int64), shape)
        else:
            count_b = np.broadcast_to(count_a, shape)
            total_b = np.broadcast_to(total_a, shape)
            if int(count_b.min()) < 1:
                raise SimulationError("count must be >= 1")
            if int(total_b.min()) < 0:
                raise SimulationError("nbytes must be >= 0")
            msg_bytes = np.where(total_b, -(-total_b // count_b), 0)
        step_b = np.broadcast_to(np.asarray(step, dtype=np.int64), shape)
        group = (src, dst, count_b, msg_bytes, step_b)
        self._put_cache[key] = (pin, group)
        self._groups.append(group)

    # ------------------------------------------------------------------
    # Synchronisation
    # ------------------------------------------------------------------
    def sync(self, label: str = "", *, stagger: bool | None = None,
             barrier: bool = True) -> SyncToken:
        """Superstep boundary token; the vector program must ``yield`` it."""
        return SyncToken(label=label, stagger=stagger, barrier=barrier)

    # ------------------------------------------------------------------
    # Local work
    # ------------------------------------------------------------------
    def charge_batch(self, kind: type, ranks, **params) -> None:
        """Charge one ``kind`` work item per rank in ``ranks``.

        ``params`` maps the kind's fields to scalars or per-item arrays.
        Like sends, batches must be emitted in per-rank charge order.
        """
        self._batches.append(WorkBatch(kind, params, np.asarray(ranks)))

    def charge_flops(self, ranks, n) -> None:
        self.charge_batch(Flops, ranks, n=n)

    def charge_matmul(self, ranks, m, k, n) -> None:
        self.charge_batch(MatmulBlock, ranks, m=m, k=k, n=n)

    def charge_sort(self, ranks, n, *, bits: int = 32,
                    radix_bits: int = 8) -> None:
        self.charge_batch(RadixSort, ranks, n=n, bits=bits,
                          radix_bits=radix_bits)

    def charge_merge(self, ranks, n) -> None:
        self.charge_batch(Merge, ranks, n=n)

    def charge_compare(self, ranks, n) -> None:
        self.charge_batch(Compare, ranks, n=n)

    def charge_copy(self, ranks, n_words) -> None:
        self.charge_batch(Copy, ranks, n=n_words)

    def charge_us(self, ranks, us) -> None:
        self.charge_batch(Generic, ranks, us=us)

    # ------------------------------------------------------------------
    # Engine-side hooks
    # ------------------------------------------------------------------
    def _drain(self) -> tuple[list[tuple[np.ndarray, ...]], list[WorkBatch]]:
        groups, batches = self._groups, self._batches
        self._groups, self._batches = [], []
        return groups, batches


def collect_steps(ctx: VectorContext, gen: Iterator[SyncToken], *,
                  max_supersteps: int = 1_000_000,
                  ) -> tuple[list[tuple[CommPhase, list[WorkBatch], bool, str]],
                             list[Any] | None]:
    """Pass 1 — drive a vector program to completion, collecting one
    ``(phase, batches, barrier, label)`` record per superstep.

    SPMD programs never observe the clocks, and nothing here touches the
    machine RNG, so execution is machine-independent: the same records
    feed :func:`run_spmd_vector`'s in-line pricing pass and the IR
    recorder (:mod:`repro.simulator.lower`).  Returns ``(steps,
    returns)`` with ``returns`` the program's return value (unconverted).
    """
    P = ctx.P
    steps: list[tuple[CommPhase, list[WorkBatch], bool, str]] = []
    returns: list[Any] | None = None
    done = False
    # Phase interning: a superstep assembled from the same group tuples
    # as an earlier one (put_group cache hits) reuses that superstep's
    # CommPhase object outright — iterative algorithms then hand the
    # pricers mostly-shared phases, which they deduplicate by identity.
    # Cache values pin the group tuples, so matching ids imply identity.
    phase_cache: dict[tuple, tuple[list, CommPhase]] = {}
    empty_cache: dict[bool, CommPhase] = {}

    for _ in range(max_supersteps):
        token: SyncToken | None = None
        if not done:
            try:
                token = next(gen)
            except StopIteration as stop:
                returns = stop.value
                done = True
            if token is not None and not isinstance(token, SyncToken):
                raise SimulationError(
                    f"vector program yielded {token!r}; programs may only "
                    "yield ctx.sync() tokens")

        groups, batches = ctx._drain()
        if done and not groups and not batches:
            break  # program returned without trailing activity

        # a lone vector token plays the role of all P live tokens
        stagger = not (token is not None and token.stagger is False)
        barrier = token.barrier if token is not None else True
        step_label = token.label if token is not None else ""

        if groups:
            cache_key = (tuple(map(id, groups)), stagger)
            cached = phase_cache.get(cache_key)
            if cached is not None:
                phase = cached[1]
            else:
                src = np.concatenate([g[0] for g in groups])
                # rank-major order, emission order within a rank — exactly
                # how the generator engine drains contexts rank by rank
                order = np.argsort(src, kind="stable")
                src = src[order]
                dst, count, msg_bytes, step = (
                    np.concatenate([g[i] for g in groups])[order]
                    for i in range(1, 5))
                # groups were validated at put_group time
                phase = CommPhase._trusted(P=P, src=src, dst=dst,
                                           count=count, msg_bytes=msg_bytes,
                                           step=step, stagger=stagger)
                phase_cache[cache_key] = (groups, phase)
        else:
            phase = empty_cache.get(stagger)
            if phase is None:
                phase = CommPhase(P=P, src=_EMPTY, dst=_EMPTY, count=_EMPTY,
                                  msg_bytes=_EMPTY, step=_EMPTY,
                                  stagger=stagger)
                empty_cache[stagger] = phase

        steps.append((phase, batches, barrier, step_label))
        if done:
            break
    else:
        raise DeadlockError(
            f"vector program exceeded {max_supersteps} supersteps; "
            "suspected livelock")
    return steps, returns


def run_spmd_vector(machine, program: VectorProgram, *args: Any,
                    P: int | None = None, label: str = "",
                    max_supersteps: int = 1_000_000,
                    **kwargs: Any) -> RunResult:
    """Run a vector program on ``P`` virtual processors of ``machine``.

    Drop-in replacement for :func:`run_spmd` given the vector port of a
    per-rank program: same :class:`RunResult` (``returns`` is the list
    the program returns, one entry per rank), bit-identical clocks and
    trace.
    """
    P = machine.P if P is None else P
    if not 0 < P <= machine.P:
        raise SimulationError(
            f"requested P={P} processors on a {machine.P}-processor machine")

    ctx = VectorContext(P, machine.nominal.w, simd=machine.simd)
    gen = program(ctx, *args, **kwargs)
    if not hasattr(gen, "__next__"):
        raise SimulationError(
            "vector program must be a generator function (got "
            f"{type(gen).__name__}); did you forget a 'yield ctx.sync()'?")

    steps, returns = collect_steps(ctx, gen, max_supersteps=max_supersteps)

    # Pass 2 — price every superstep in order: work first, then the
    # phase, exactly as the interleaved scalar loop would, so the machine
    # RNG stream is consumed identically.
    clocks = np.zeros(P)
    trace = Trace(P=P, label=label)
    pricer = machine.comm_time_batch([s[0] for s in steps])
    for i, (phase, batches, barrier, step_label) in enumerate(steps):
        start_max = float(clocks.max())
        work = charge_batches(machine, batches, clocks)

        clocks = pricer.comm_time(i, clocks, barrier=barrier)
        if clocks.shape != (P,):
            raise SimulationError(
                f"machine {machine.name} returned clocks of shape "
                f"{clocks.shape}, expected ({P},)")

        trace.append(Superstep(phase=phase, work=work, label=step_label,
                               measured_us=float(clocks.max()) - start_max))

    if returns is not None and not isinstance(returns, list):
        returns = list(returns)
    return RunResult(time_us=float(clocks.max()), clocks=clocks,
                     trace=trace, returns=returns)
