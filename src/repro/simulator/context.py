"""Per-processor execution context for SPMD programs.

Each virtual processor runs a Python generator that receives a
:class:`ProcContext`.  The context offers an mpi4py-flavoured API:

* :meth:`put` / :meth:`put_words` — one-sided sends (payload plus the
  message-group accounting the machine models price);
* :meth:`sync` — superstep boundary (the program must ``yield`` it);
* :meth:`get` / :meth:`collect` — retrieve payloads delivered by earlier
  supersteps;
* :meth:`charge` and friends — declare local work symbolically.

Payloads are copied on send by default, so a program may freely reuse its
buffers — matching real message-passing semantics.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.errors import MailboxError, SimulationError
from ..core.work import Compare, Copy, Flops, Generic, MatmulBlock, Merge, RadixSort, Work
from .commands import SyncToken

__all__ = ["ProcContext"]


def _payload_nbytes(payload: Any) -> int:
    """Best-effort wire size of a payload, in bytes."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(payload, (list, tuple)):
        # Homogeneous numeric sequences are the overwhelmingly common
        # case; sizing them as 8 bytes/element when both endpoints are
        # scalars avoids an O(n) per-element recursion on every send.
        # Sequences of containers (or mixed with a container endpoint)
        # take the recursive path; pass nbytes= for exotic mixtures.
        if payload and (
                isinstance(payload[0], (int, float, np.integer, np.floating))
                and isinstance(payload[-1],
                               (int, float, np.integer, np.floating))):
            return 8 * len(payload)
        return sum(_payload_nbytes(x) for x in payload)
    if isinstance(payload, dict):
        return sum(_payload_nbytes(v) for v in payload.values())
    raise SimulationError(
        f"cannot infer message size of {type(payload).__name__}; pass "
        "nbytes= explicitly (supported without it: ndarray, bytes, "
        "scalars, list/tuple/dict of those)")


class ProcContext:
    """The view one virtual processor has of the machine."""

    def __init__(self, rank: int, P: int, word_bytes: int,
                 simd: bool = False):
        if not 0 <= rank < P:
            raise SimulationError(f"rank {rank} out of range for P={P}")
        self.rank = rank
        self.P = P
        self.word_bytes = word_bytes
        #: running on a lockstep SIMD machine: every PE executes every
        #: router operation, so programs cannot elide self-messages.
        self.simd = simd
        # Filled by the engine between supersteps:
        self._inbox: dict[Any, list[tuple[int, Any]]] = {}
        # Sends accumulated during the current superstep, columnar: the
        # numeric accounting goes into one flat int list (4 entries per
        # send — dst, count, msg_bytes, step) that the engine reshapes
        # into the CommPhase arrays in a single C-speed conversion;
        # tags/payloads stay in parallel object lists.
        self._send_vals: list[int] = []
        self._send_tags: list[Any] = []
        self._send_payloads: list[Any] = []
        self._pending_work: list[Work] = []

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def put(self, dst: int, payload: Any, *, nbytes: int | None = None,
            count: int = 1, tag: Any = None, step: int = -1,
            copy: bool = True) -> None:
        """Send ``payload`` to ``dst`` as ``count`` messages.

        ``count > 1`` models a fine-grain transfer: the payload travels as
        ``count`` messages of ``nbytes/count`` bytes each (e.g. word-level
        BSP sends).  ``step`` tags the message group with a position in a
        staggered schedule.  Delivery happens at the next :meth:`sync`.
        """
        if not 0 <= dst < self.P:
            raise SimulationError(f"destination {dst} out of range (P={self.P})")
        if count < 1:
            raise SimulationError("count must be >= 1")
        total = _payload_nbytes(payload) if nbytes is None else int(nbytes)
        if total < 0:
            raise SimulationError("nbytes must be >= 0")
        msg_bytes = -(-total // count) if total else 0
        if copy and isinstance(payload, np.ndarray):
            payload = payload.copy()
        self._send_vals += (dst, count, msg_bytes, step)
        self._send_tags.append(tag)
        self._send_payloads.append(payload)

    def put_words(self, dst: int, n_words: int, payload: Any = None, *,
                  tag: Any = None, step: int = -1) -> None:
        """Send ``n_words`` machine words to ``dst`` as ``n_words`` messages.

        This is the BSP fine-grain idiom: each word is its own message.
        """
        if n_words < 1:
            raise SimulationError("put_words needs n_words >= 1")
        self.put(dst, payload, nbytes=n_words * self.word_bytes,
                 count=n_words, tag=tag, step=step)

    # ------------------------------------------------------------------
    # Synchronisation
    # ------------------------------------------------------------------
    def sync(self, label: str = "", *, stagger: bool | None = None,
             barrier: bool = True) -> SyncToken:
        """Return a superstep-boundary token; the program must ``yield`` it.

        ``barrier=False`` marks a send/receive matching point without a
        global barrier — processors may drift apart (GCel, paper §5.1).
        """
        return SyncToken(label=label, stagger=stagger, barrier=barrier)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def get(self, src: int | None = None, tag: Any = None) -> Any:
        """Pop one delivered payload (optionally matching ``src``), FIFO."""
        queue = self._inbox.get(tag)
        if queue:
            if src is None:
                _, payload = queue.pop(0)
                return payload
            for i, (s, payload) in enumerate(queue):
                if s == src:
                    queue.pop(i)
                    return payload
        raise MailboxError(
            f"proc {self.rank}: no message with tag={tag!r} from "
            f"{'any source' if src is None else src}")

    def collect(self, tag: Any = None) -> dict[int, Any]:
        """Pop all delivered payloads with ``tag``, keyed by source.

        If one source sent several messages with the tag, the *last* one
        wins (use distinct tags for multi-message protocols).
        """
        queue = self._inbox.pop(tag, [])
        return {src: payload for src, payload in queue}

    def collect_list(self, tag: Any = None) -> list[tuple[int, Any]]:
        """Pop all delivered payloads with ``tag`` in delivery order."""
        return self._inbox.pop(tag, [])

    def has_message(self, tag: Any = None) -> bool:
        return bool(self._inbox.get(tag))

    # ------------------------------------------------------------------
    # Local work
    # ------------------------------------------------------------------
    def charge(self, work: Work) -> None:
        """Declare local work (priced by the machine at the next sync)."""
        self._pending_work.append(work)

    def charge_flops(self, n: float) -> None:
        self.charge(Flops(n))

    def charge_matmul(self, m: int, k: int, n: int) -> None:
        self.charge(MatmulBlock(m, k, n))

    def charge_sort(self, n: int, *, bits: int = 32, radix_bits: int = 8) -> None:
        self.charge(RadixSort(n, bits=bits, radix_bits=radix_bits))

    def charge_merge(self, n: int) -> None:
        self.charge(Merge(n))

    def charge_compare(self, n: int) -> None:
        self.charge(Compare(n))

    def charge_copy(self, n_words: int) -> None:
        self.charge(Copy(n_words))

    def charge_us(self, us: float) -> None:
        self.charge(Generic(us))

    # ------------------------------------------------------------------
    # Engine-side hooks (not for program use)
    # ------------------------------------------------------------------
    def _drain(self) -> tuple[list[int], list[Any], list[Any], list[Work]]:
        """Return and reset ``(send_vals, tags, payloads, work)``.

        ``send_vals`` is the flat columnar accounting — 4 ints per send
        in emission order: ``dst, count, msg_bytes, step``.
        """
        vals, tags, payloads = (self._send_vals, self._send_tags,
                                self._send_payloads)
        work = self._pending_work
        self._send_vals, self._send_tags, self._send_payloads = [], [], []
        self._pending_work = []
        return vals, tags, payloads, work

    def _deliver(self, src: int, tag: Any, payload: Any) -> None:
        self._inbox.setdefault(tag, []).append((src, payload))
