"""Result of one SPMD simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.trace import Trace

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """What :func:`repro.simulator.run_spmd` returns.

    ``time_us`` is the virtual wall-clock of the run (maximum final
    processor clock); ``clocks`` the per-processor finish times;
    ``returns`` the per-processor return values of the SPMD program
    (used for end-to-end correctness checks); ``trace`` the superstep
    trace that cost models can re-price.
    """

    time_us: float
    clocks: np.ndarray
    trace: Trace
    returns: list[Any] = field(default_factory=list)

    @property
    def P(self) -> int:
        return self.trace.P

    @property
    def time_ms(self) -> float:
        return self.time_us / 1e3

    @property
    def time_s(self) -> float:
        return self.time_us / 1e6

    def profile(self) -> dict[str, float]:
        """Virtual time by superstep-label family (largest first).

        The guides' first rule — no optimisation without measuring —
        applied to virtual time; see
        :mod:`repro.validation.attribution` for the model-error variant.
        """
        from ..validation.attribution import time_by_label

        return time_by_label(self.trace)
