"""Result of one SPMD simulation run."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.trace import Trace

__all__ = ["RunResult"]


class RunResult:
    """What :func:`repro.simulator.run_spmd` returns.

    ``time_us`` is the virtual wall-clock of the run (maximum final
    processor clock); ``clocks`` the per-processor finish times;
    ``returns`` the per-processor return values of the SPMD program
    (used for end-to-end correctness checks); ``trace`` the superstep
    trace that cost models can re-price.

    ``returns`` may be constructed from a zero-argument callable: it is
    then materialised on first access.  The IR engine uses this so a
    replay from an on-disk step program only pays the (pricing-free)
    data-reconstruction pass when someone actually reads the returns —
    most experiments never do.  Program return values are per-rank data
    lists, never bare callables, so the two cases cannot collide.
    """

    def __init__(self, time_us: float, clocks: np.ndarray, trace: Trace,
                 returns: Any = None):
        self.time_us = time_us
        self.clocks = clocks
        self.trace = trace
        self._returns = [] if returns is None else returns

    @property
    def returns(self) -> list[Any]:
        if callable(self._returns):
            self._returns = self._returns()
        return self._returns

    @returns.setter
    def returns(self, value: Any) -> None:
        self._returns = value

    @property
    def P(self) -> int:
        return self.trace.P

    @property
    def time_ms(self) -> float:
        return self.time_us / 1e3

    @property
    def time_s(self) -> float:
        return self.time_us / 1e6

    def profile(self) -> dict[str, float]:
        """Virtual time by superstep-label family (largest first).

        The guides' first rule — no optimisation without measuring —
        applied to virtual time; see
        :mod:`repro.validation.attribution` for the model-error variant.
        """
        from ..validation.attribution import time_by_label

        return time_by_label(self.trace)
