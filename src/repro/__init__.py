"""repro — reproduction of *A Quantitative Comparison of Parallel
Computation Models* (Juurlink & Wijshoff, SPAA 1996).

The package validates the BSP, MP-BSP, MP-BPRAM and E-BSP cost models
against simulated MasPar MP-1, Parsytec GCel and CM-5 machines, running
real SPMD implementations of matrix multiplication, bitonic sort, sample
sort and all-pairs shortest path.

Quickstart::

    from repro import make_machine
    from repro.algorithms import bitonic
    from repro.core import MPBPRAM, paper_params

    machine = make_machine("gcel", seed=1)
    result = bitonic.run(machine, M=1024, variant="bpram", seed=1)
    predicted = MPBPRAM(paper_params("gcel")).trace_cost(result.trace)
    print(result.time_us, predicted)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
per-figure reproduction record.
"""

from .core import (
    BSP,
    EBSP,
    MPBPRAM,
    MPBSP,
    PAPER_PARAMS,
    CommPhase,
    CostModel,
    ModelParams,
    ReproError,
    ScatterAwareBSP,
    Trace,
    UnbalancedCost,
    paper_params,
)
from .machines import CM5, MACHINES, GCel, Machine, MasParMP1, make_machine
from .simulator import ProcContext, RunResult, run_spmd

# Resolved from the installed package metadata so one bump in
# pyproject.toml is enough; the fallback covers PYTHONPATH=src usage
# and must stay in sync with pyproject.toml (test_cli asserts this).
try:
    from importlib.metadata import version as _dist_version

    __version__ = _dist_version("repro")
except Exception:  # not installed: source checkout / PYTHONPATH=src
    __version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "CostModel", "BSP", "MPBSP", "MPBPRAM", "EBSP", "ScatterAwareBSP",
    "ModelParams", "UnbalancedCost", "PAPER_PARAMS", "paper_params",
    "CommPhase", "Trace", "ReproError",
    # machines
    "Machine", "MasParMP1", "GCel", "CM5", "make_machine", "MACHINES",
    # simulator
    "run_spmd", "ProcContext", "RunResult",
]
