"""Parallel integer radix sort (scenario extension, after PAPERS.md's
"Multithreaded Fine-Grained Asynchronous BSP for Integer Sorting").

``N = P * M`` unsigned integer keys, ``M`` per processor.  Unlike sample
sort there is no sampling phase: the destination bucket of a key is its
top ``log2 P`` bits, so the counting phase is deterministic and the
routed key volume per processor depends only on the key *values*, not on
a sample draw.  Three supersteps:

1. **count** — every processor radix-sorts its keys locally (so the keys
   headed for each bucket are one contiguous slice) and counts keys per
   destination digit;
2. **scan** — the counts go through the multi-scan of §4.3 (two
   all-to-alls) to produce write offsets and per-bucket totals;
3. **scatter** — the key slices are routed to their buckets, and each
   bucket is finished with a *short* local radix sort over the remaining
   ``key_bits - log2 P`` low bits — the radix trick: the route itself
   sorted the top digit.

Variants:

``"bsp"``
    fine-grain routing: every key travels as one word straight to its
    bucket (the plain BSP cost ``g * M_max + L``), scans as fine-grain
    supersteps;
``"bpram"``
    single-port routing through the two-phase padded grid scheme of
    §4.3.1 (shared with sample sort), scans via grid transposes.

Both variants need a power-of-two ``P`` (the digit is a bit field);
``"bpram"`` additionally needs a square ``P`` for the grid.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ExperimentError
from ..machines.base import Machine
from ..simulator import RunResult, run_spmd, run_spmd_vector
from ..simulator.context import ProcContext
from ..simulator.lower import run_lowered
from ..simulator.vector import VectorContext, resolve_engine
from .bitonic import _radix_sort_rows
from .local import radix_sort
from .primitives import multiscan, multiscan_vector
from .samplesort import _drain_keys, _grid_route, _grid_route_vector

__all__ = ["run", "radix_sort_program", "radix_sort_vector_program",
           "VARIANTS"]

VARIANTS = ("bsp", "bpram")


def _digit_bits(P: int, key_bits: int) -> int:
    """``log2 P``, validated: the top digit must fit inside the key."""
    log_p = P.bit_length() - 1
    if P <= 0 or P & (P - 1):
        raise ExperimentError(f"radix sort needs a power-of-two P, got {P}")
    if log_p >= key_bits:
        raise ExperimentError(
            f"radix sort needs log2(P)={log_p} < key_bits={key_bits}")
    return log_p


def radix_sort_program(ctx: ProcContext, keys: np.ndarray, variant: str,
                       key_bits: int = 32):
    """SPMD radix sort; returns this processor's sorted bucket."""
    if variant not in VARIANTS:
        raise ExperimentError(f"unknown radix sort variant {variant!r}")
    P, rank = ctx.P, ctx.rank
    M = keys.size
    w = ctx.word_bytes
    log_p = _digit_bits(P, key_bits)
    shift = key_bits - log_p
    mode = "bsp" if variant == "bsp" else "bpram"

    # ---- Phase 1: count ----
    mine = radix_sort(ctx, keys, bits=key_bits,
                      radix_bits=min(8, key_bits))
    ctx.charge_compare(M)  # top-digit extraction per key
    bucket_of = (mine >> np.uint64(shift)).astype(np.int64)
    counts = np.bincount(bucket_of, minlength=P).astype(np.int64)

    # ---- Phase 2: scan ----
    offsets, my_total = yield from multiscan(ctx, counts, "scan", mode)

    # ---- Phase 3: scatter ----
    bounds = np.concatenate(([0], np.cumsum(counts)))
    per_dest = [mine[bounds[j]:bounds[j + 1]] for j in range(P)]

    if variant == "bsp":
        for s in range(1, P):
            j = (rank + s) % P
            if per_dest[j].size:
                ctx.put(j, per_dest[j], nbytes=per_dest[j].size * w,
                        count=per_dest[j].size, tag=("keys", rank), step=s)
        yield ctx.sync("route-keys")
        received = [p for _, p in _drain_keys(ctx, P)]
        received.append(per_dest[rank])
    else:  # bpram: two-phase padded grid routing
        received = yield from _grid_route(ctx, per_dest, bucket_of, mine)

    bucket = np.concatenate([np.asarray(b, dtype=np.uint64) for b in received]
                            ) if received else np.empty(0, dtype=np.uint64)

    # The routed keys all share their top digit: only the low
    # ``key_bits - log2 P`` bits are unsorted, so the finishing sort is a
    # digit shorter than a full-key sort — the radix win over sample sort.
    result = radix_sort(ctx, bucket, bits=shift, radix_bits=min(8, shift))
    return result


def radix_sort_vector_program(ctx: VectorContext, all_keys: np.ndarray,
                              variant: str, key_bits: int = 32):
    """Lockstep vector port of :func:`radix_sort_program`.

    Keys live in a ``(P, M)`` stack; counts become a ``(P, P)`` matrix
    through the vector multi-scan, routing is per-step message groups,
    and — because bucket ``p`` holds exactly the keys whose top digit is
    ``p``, a contiguous value range — one global key sort split at the
    per-bucket totals reproduces every rank's sorted bucket bit for bit.
    """
    if variant not in VARIANTS:
        raise ExperimentError(f"unknown radix sort variant {variant!r}")
    P = ctx.P
    M = all_keys.shape[1]
    w = ctx.word_bytes
    log_p = _digit_bits(P, key_bits)
    shift = key_bits - log_p
    mode = "bsp" if variant == "bsp" else "bpram"
    ranks = ctx.ranks()
    cache: dict = {"ranks": ranks}  # hoisted group arrays (shared objects)

    # ---- Phase 1: count ----
    mine = _radix_sort_rows(ctx, all_keys, bits=key_bits,
                            radix_bits=min(8, key_bits))
    ctx.charge_compare(ranks, M)
    bucket_of = (mine >> np.uint64(shift)).astype(np.int64)
    counts = np.bincount((ranks[:, None] * P + bucket_of).ravel(),
                         minlength=P * P).reshape(P, P).astype(np.int64)

    # ---- Phase 2: scan ----
    offsets, totals = yield from multiscan_vector(ctx, counts, "scan",
                                                 mode, cache)

    # ---- Phase 3: scatter ----
    if variant == "bsp":
        for s in range(1, P):
            dst = (ranks + s) % P
            sizes = counts[ranks, dst]
            m = sizes > 0
            if m.any():
                ctx.put_group(ranks[m], dst[m], nbytes=sizes[m] * w,
                              count=sizes[m], step=s)
        yield ctx.sync("route-keys")
    else:  # bpram: two-phase padded grid routing
        yield from _grid_route_vector(ctx, M, cache)

    ctx.charge_sort(ranks, totals, bits=shift, radix_bits=min(8, shift))
    # Buckets are contiguous value ranges [p << shift, (p+1) << shift):
    # one global sort split at the totals equals each rank's sorted bucket.
    srt = np.sort(mine.ravel())
    bounds = np.concatenate(([0], np.cumsum(totals)))
    return [srt[bounds[p]:bounds[p + 1]] for p in range(P)]


def run(machine: Machine, M: int, *, variant: str = "bpram",
        P: int | None = None, seed: int = 0, key_bits: int = 32,
        engine: str = "auto") -> RunResult:
    """Radix-sort ``P * M`` random keys on ``machine``."""
    P = P or machine.P
    rng = np.random.default_rng(seed)
    all_keys = rng.integers(0, 1 << key_bits, size=(P, M), dtype=np.uint64)

    eng = resolve_engine(engine)
    if eng == "ir":
        result = run_lowered(machine, radix_sort_vector_program,
                             all_keys, variant, key_bits=key_bits, P=P,
                             label=f"radix-{variant}-M{M}",
                             algorithm="radix",
                             key_params={"M": M, "variant": variant,
                                         "seed": seed,
                                         "key_bits": key_bits})
    elif eng == "vector":
        result = run_spmd_vector(machine, radix_sort_vector_program,
                                 all_keys, variant, key_bits=key_bits, P=P,
                                 label=f"radix-{variant}-M{M}")
    else:
        def program(ctx: ProcContext):
            return radix_sort_program(ctx, all_keys[ctx.rank], variant,
                                      key_bits=key_bits)

        result = run_spmd(machine, program, P=P,
                          label=f"radix-{variant}-M{M}")
    result.inputs = all_keys  # type: ignore[attr-defined]
    return result
