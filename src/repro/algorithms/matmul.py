"""The 3D (``P = q^3``) matrix-multiplication algorithm of paper §4.1.

Processor ``<i,j,k>`` initially holds the subblocks ``A_ij^k`` and
``B_ij^k`` (rows ``k*N/q^2 .. (k+1)*N/q^2`` of the ``N/q x N/q``
submatrices ``A_ij``/``B_ij``) and finally holds ``C_ij^k``.

Supersteps:

1. replicate: ``A_ij^k`` to ``<i,j,*>`` and ``B_ij^k`` to ``<*,i,j>``,
   so that ``<i,j,k>`` assembles ``A_ij`` and ``B_jk``;
2. compute ``Chat_ijk = A_ij @ B_jk`` locally;
3. split ``Chat_ijk`` into ``q`` row blocks ``Chat_ijk^l`` and send each
   to ``<i,k,l>``;
4. sum the ``q`` received partial blocks into ``C_ik^l``.

Variants:

``"bsp"``
    fine-grain word-level messages, *unstaggered*: every processor walks
    its destination list in the same order, creating the transient
    many-to-one hot spots that cost 21% on the CM-5 (§5.1);
``"bsp-staggered"``
    fine-grain, destinations rotated by the sender's own coordinate —
    the paper's fix;
``"bpram"``
    one block message per destination (the MP-BPRAM version, §4.1),
    staggered.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import ExperimentError
from ..core.predictions import cube_root_procs
from ..machines.base import Machine
from ..simulator import RunResult, run_spmd, run_spmd_vector
from ..simulator.context import ProcContext
from ..simulator.lower import run_lowered
from ..simulator.vector import VectorContext, resolve_engine
from .local import local_matmul

__all__ = ["run", "matmul_program", "matmul_vector_program", "MatmulSetup",
           "VARIANTS"]

VARIANTS = ("bsp", "bsp-staggered", "bpram")

#: variants starting from a row-strip ("2d") initial distribution —
#: paper §4.1: "the ability to use blocks of this size depends on the
#: initial distribution of the matrices. If the initial distribution is
#: different, an extra communication phase bringing the data in the
#: desired layout is required.  In the BSP model this is not an issue."
LAYOUT_VARIANTS = ("bsp-2d", "bpram-2d")


@dataclass(frozen=True)
class MatmulSetup:
    """Problem geometry shared by the driver and the SPMD program."""

    N: int
    P: int
    q: int

    @classmethod
    def create(cls, N: int, P: int) -> "MatmulSetup":
        q = cube_root_procs(P)
        if N % (q * q):
            raise ExperimentError(
                f"matrix size N={N} must be a multiple of q^2={q * q}")
        return cls(N=N, P=P, q=q)

    def coords(self, rank: int) -> tuple[int, int, int]:
        q = self.q
        return rank // (q * q), (rank // q) % q, rank % q

    def rank_of(self, i: int, j: int, k: int) -> int:
        return (i * self.q + j) * self.q + k

    @property
    def sub(self) -> int:
        """Side of a submatrix ``A_ij``."""
        return self.N // self.q

    @property
    def rows(self) -> int:
        """Rows of a subblock ``A_ij^k``."""
        return self.N // (self.q * self.q)


def matmul_program(ctx: ProcContext, setup: MatmulSetup, A: np.ndarray,
                   B: np.ndarray, variant: str):
    """SPMD matmul; returns this processor's ``C_ij^k`` block."""
    if variant not in VARIANTS + LAYOUT_VARIANTS:
        raise ExperimentError(f"unknown matmul variant {variant!r}")
    layout_2d = variant in LAYOUT_VARIANTS
    if layout_2d:
        variant = "bpram" if variant == "bpram-2d" else "bsp-staggered"
    fine = variant != "bpram"
    staggered = variant != "bsp"
    q, sub, rows = setup.q, setup.sub, setup.rows
    w = ctx.word_bytes
    i, j, k = setup.coords(ctx.rank)

    if layout_2d and setup.N % setup.P:
        raise ExperimentError(
            f"2d layout needs P | N (N={setup.N}, P={setup.P})")

    def my_a_block() -> np.ndarray:
        r0, c0 = i * sub + k * rows, j * sub
        return A[r0:r0 + rows, c0:c0 + sub]

    def my_b_block() -> np.ndarray:
        r0, c0 = i * sub + k * rows, j * sub
        return B[r0:r0 + rows, c0:c0 + sub]

    local_blocks: dict = {}

    def send_block(dst: int, block: np.ndarray, tag, step: int) -> None:
        if dst == ctx.rank and not ctx.simd:
            # MIMD: keep own block locally; SIMD PEs execute the router
            # operation anyway, so the self-message is real there.
            local_blocks[tag] = block.copy()
            return
        n_words = block.size
        if fine:
            ctx.put(dst, block, nbytes=n_words * w, count=n_words,
                    tag=tag, step=step)
        else:
            ctx.put(dst, block, nbytes=n_words * w, count=1,
                    tag=tag, step=step)

    def recv_block(src: int, tag):
        if src == ctx.rank and not ctx.simd:
            return local_blocks[tag]
        return ctx.get(src=src, tag=tag)

    # ---- optional: start from a row-strip ("2d") distribution ----
    if layout_2d:
        # this processor's strip: rows [rank*N/P, (rank+1)*N/P) of A and
        # B; the strip lies inside the (i_s, k_s) row band of subblocks.
        strip_h = setup.N // setup.P
        p = ctx.rank
        i_s, k_s, s_s = p // (q * q), (p % (q * q)) // q, p % q
        r0 = p * strip_h
        if fine:
            # BSP: ship every strip chunk straight to its final
            # consumers inside the normal replicate superstep — same h,
            # no extra superstep ("in the BSP model this is not an
            # issue", §4.1).
            for jj in range(q):
                a_chunk = A[r0:r0 + strip_h, jj * sub:(jj + 1) * sub]
                b_chunk = B[r0:r0 + strip_h, jj * sub:(jj + 1) * sub]
                for m in range(q):
                    mm = (s_s + m) % q
                    ctx.put(setup.rank_of(i_s, jj, mm), a_chunk,
                            nbytes=a_chunk.size * w, count=a_chunk.size,
                            tag=("A2", k_s, s_s), step=m * q + jj)
                    ctx.put(setup.rank_of(mm, i_s, jj), b_chunk,
                            nbytes=b_chunk.size * w, count=b_chunk.size,
                            tag=("B2", k_s, s_s), step=m * q + jj)
            yield ctx.sync("replicate-2d", stagger=staggered)
            A_ij = np.vstack([ctx.get(src=i * q * q + kk * q + ss,
                                      tag=("A2", kk, ss))
                              for kk in range(q) for ss in range(q)])
            B_jk = np.vstack([ctx.get(src=j * q * q + kk * q + ss,
                                      tag=("B2", kk, ss))
                              for kk in range(q) for ss in range(q)])
            # jump to the compute/exchange supersteps below
            Chat = local_matmul(ctx, A_ij, B_jk)
            for s in range(q):
                l = (j + s) % q if staggered else s
                block = Chat[l * rows:(l + 1) * rows, :]
                send_block(setup.rank_of(i, k, l), block, tag=("C", j),
                           step=s)
            yield ctx.sync("exchange-partials", stagger=staggered)
            total = np.zeros((rows, sub))
            for jj in range(q):
                total += recv_block(setup.rank_of(i, jj, j), ("C", jj))
            ctx.charge_copy((q - 1) * rows * sub)
            return total
        # MP-BPRAM: an *extra* block-transfer superstep first rebuilds
        # the 3D layout — the §4.1 price of a mismatched distribution.
        for jj in range(q):
            j_eff = (s_s + jj) % q
            a_chunk = A[r0:r0 + strip_h, j_eff * sub:(j_eff + 1) * sub]
            b_chunk = B[r0:r0 + strip_h, j_eff * sub:(j_eff + 1) * sub]
            dst = setup.rank_of(i_s, j_eff, k_s)
            ctx.put(dst, a_chunk, nbytes=a_chunk.size * w, count=1,
                    tag=("RA", s_s), step=jj)
            ctx.put(dst, b_chunk, nbytes=b_chunk.size * w, count=1,
                    tag=("RB", s_s), step=q + jj)
        yield ctx.sync("redistribute")
        a_blk = np.vstack([ctx.get(src=i * q * q + k * q + ss,
                                   tag=("RA", ss)) for ss in range(q)])
        b_blk = np.vstack([ctx.get(src=i * q * q + k * q + ss,
                                   tag=("RB", ss)) for ss in range(q)])
    else:
        a_blk, b_blk = my_a_block(), my_b_block()

    # ---- superstep 1: replicate A along k, B along i ----
    for s in range(q):
        # staggered: start at own coordinate; unstaggered: everyone at 0.
        m = (k + s) % q if staggered else s
        send_block(setup.rank_of(i, j, m), a_blk, tag=("A", k), step=s)
        m2 = (k + s) % q if staggered else s
        send_block(setup.rank_of(m2, i, j), b_blk, tag=("B", k), step=s)
    yield ctx.sync("replicate", stagger=staggered)

    # assemble A_ij (from <i,j,*>) and B_jk (from <j,k,*>)
    A_ij = np.vstack([recv_block(setup.rank_of(i, j, l), ("A", l))
                      for l in range(q)])
    B_jk = np.vstack([recv_block(setup.rank_of(j, k, l), ("B", l))
                      for l in range(q)])

    # ---- superstep 2: local product + send partial result blocks ----
    Chat = local_matmul(ctx, A_ij, B_jk)
    for s in range(q):
        # destination <i,k,l> is contended across senders with different j,
        # so the stagger offset must be j (not k)
        l = (j + s) % q if staggered else s
        block = Chat[l * rows:(l + 1) * rows, :]
        send_block(setup.rank_of(i, k, l), block, tag=("C", j), step=s)
    yield ctx.sync("exchange-partials", stagger=staggered)

    # ---- superstep 4: sum the q partial blocks ----
    # <i,j,k> receives Chat_i,jj,j's block k from <i,jj,j> for every jj
    # (the sender's third coordinate equals this processor's j).
    total = np.zeros((rows, sub))
    for jj in range(q):
        total += recv_block(setup.rank_of(i, jj, j), ("C", jj))
    # q-1 additions over rows*sub entries, folded into the beta term
    ctx.charge_copy((q - 1) * rows * sub)
    return total


def matmul_vector_program(ctx: VectorContext, setup: MatmulSetup,
                          A: np.ndarray, B: np.ndarray, variant: str):
    """Lockstep vector port of :func:`matmul_program` (3D-native layouts).

    One message group per replicate/exchange step (with MIMD self-sends
    masked out, as the per-rank program elides them); the local products
    run per rank on contiguous blocks so the floating-point results stay
    bit-identical to the per-rank path.  The row-strip
    :data:`LAYOUT_VARIANTS` are not ported — use the generator engine.
    """
    if variant not in VARIANTS:
        raise ExperimentError(
            f"vector matmul supports {VARIANTS}, got {variant!r}")
    fine = variant != "bpram"
    staggered = variant != "bsp"
    q, sub, rows = setup.q, setup.sub, setup.rows
    w = ctx.word_bytes
    P = ctx.P
    ranks = ctx.ranks()
    i_arr = ranks // (q * q)
    j_arr = (ranks // q) % q
    k_arr = ranks % q

    blk_words = rows * sub
    count = blk_words if fine else 1

    def rank_of(i, j, k):
        return (i * q + j) * q + k

    def emit(dst: np.ndarray, step: int) -> None:
        if ctx.simd:
            ctx.put_group(ranks, dst, nbytes=blk_words * w, count=count,
                          step=step)
        else:  # MIMD: own block stays local, exactly like send_block
            m = dst != ranks
            ctx.put_group(ranks[m], dst[m], nbytes=blk_words * w,
                          count=count, step=step)

    # ---- superstep 1: replicate A along k, B along i ----
    for s in range(q):
        m = (k_arr + s) % q if staggered else np.full(P, s, dtype=np.int64)
        emit(rank_of(i_arr, j_arr, m), s)
        emit(rank_of(m, i_arr, j_arr), s)
    yield ctx.sync("replicate", stagger=staggered)

    # every rank now holds A_ij and B_jk — contiguous copies so the
    # per-rank GEMMs see the same operands as the vstack'ed per-rank path
    ctx.charge_matmul(ranks, sub, sub, sub)
    Chat = np.empty((P, sub, sub))
    for p in range(P):
        i, j, k = int(i_arr[p]), int(j_arr[p]), int(k_arr[p])
        A_ij = A[i * sub:(i + 1) * sub, j * sub:(j + 1) * sub].copy()
        B_jk = B[j * sub:(j + 1) * sub, k * sub:(k + 1) * sub].copy()
        Chat[p] = A_ij @ B_jk

    # ---- superstep 2: exchange partial result blocks ----
    for s in range(q):
        l = (j_arr + s) % q if staggered else np.full(P, s, dtype=np.int64)
        emit(rank_of(i_arr, k_arr, l), s)
    yield ctx.sync("exchange-partials", stagger=staggered)

    # ---- sum the q partial blocks (jj ascending, like the per-rank sum)
    Chat4 = Chat.reshape(P, q, rows, sub)
    total = np.zeros((P, rows, sub))
    for jj in range(q):
        senders = rank_of(i_arr, jj, j_arr)
        total += Chat4[senders, k_arr]
    ctx.charge_copy(ranks, (q - 1) * rows * sub)
    return [total[p] for p in range(P)]


def run(machine: Machine, N: int, *, variant: str = "bsp-staggered",
        P: int | None = None, seed: int = 0,
        engine: str = "auto") -> RunResult:
    """Multiply two random ``N x N`` matrices on ``machine``.

    ``variant`` is one of :data:`VARIANTS` (3D-native initial layout) or
    :data:`LAYOUT_VARIANTS` (row-strip start — the §4.1 initial-
    distribution study).  Returns the :class:`RunResult`; ``returns[r]``
    holds processor ``r``'s ``C`` block.  Use :func:`assemble` to rebuild
    and verify the product.
    """
    P = P or machine.P
    setup = MatmulSetup.create(N, P)
    rng = np.random.default_rng(seed)
    A = rng.standard_normal((N, N))
    B = rng.standard_normal((N, N))
    eng = resolve_engine(engine, vector_ok=variant in VARIANTS)
    if eng == "ir":
        result = run_lowered(machine, matmul_vector_program, setup, A, B,
                             variant, P=P, label=f"matmul-{variant}-N{N}",
                             algorithm="matmul",
                             key_params={"N": N, "variant": variant,
                                         "seed": seed})
    elif eng == "vector":
        result = run_spmd_vector(machine, matmul_vector_program, setup, A, B,
                                 variant, P=P, label=f"matmul-{variant}-N{N}")
    else:
        result = run_spmd(machine, matmul_program, setup, A, B, variant,
                          P=P, label=f"matmul-{variant}-N{N}")
    result.inputs = (A, B)  # type: ignore[attr-defined]
    result.setup = setup  # type: ignore[attr-defined]
    return result


def assemble(setup: MatmulSetup, returns: list[np.ndarray]) -> np.ndarray:
    """Rebuild the full ``C`` matrix from the per-processor blocks."""
    N, q, sub, rows = setup.N, setup.q, setup.sub, setup.rows
    C = np.empty((N, N))
    for rank, block in enumerate(returns):
        i, j, k = setup.coords(rank)
        r0, c0 = i * sub + k * rows, j * sub
        C[r0:r0 + rows, c0:c0 + sub] = block
    return C
