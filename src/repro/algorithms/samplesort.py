"""Sample sort (paper §4.3 / §4.3.1).

Three phases:

1. **splitter** — every processor draws ``S`` random samples
   (oversampling ratio), the ``P * S`` samples are sorted with bitonic
   sort, the samples with global ranks ``S, 2S, ..., (P-1)S`` become the
   splitters and are broadcast to everyone;
2. **send** — keys are sorted locally, classified against the splitters,
   write offsets are obtained with the multi-scan, and the keys are
   routed to their buckets;
3. **sort buckets** — each bucket is radix-sorted locally.

Variants (all deliver a correct global sort):

``"bsp"``
    fine-grain routing: every key travels as one word straight to its
    bucket (cost ``g * M_max + L``), splitters/scan as fine-grain
    supersteps;
``"bpram"``
    the paper's MP-BPRAM algorithm: a processor may receive only one
    message per step, so keys are routed through the two-phase grid
    scheme with *fixed-size padded* block messages — ``4 sqrt(P)`` step
    startups and ``16 sigma w M`` bytes per processor, the
    ``T_send-to-buckets = 4 sqrt(P)(4 sigma w N / P^1.5 + ell)`` of
    §4.3.1.  This padding is why measured sample sort does *not* beat
    bitonic sort on the GCel (Fig. 18);
``"bpram-staggered"``
    the paper's "Staggered" curve: pack the keys per destination bucket
    and send each packet directly (staggered).  May violate the
    single-port restriction, but is about twice as fast.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ExperimentError
from ..machines.base import Machine
from ..simulator import RunResult, run_spmd, run_spmd_vector
from ..simulator.context import ProcContext
from ..simulator.lower import run_lowered
from ..simulator.vector import VectorContext, resolve_engine
from .bitonic import _radix_sort_rows, bitonic_program, bitonic_sort_vector
from .local import classify_keys, radix_sort
from .primitives import (alltoall_words, alltoall_words_vector, grid_side,
                         multiscan, multiscan_vector)

__all__ = ["run", "sample_sort_program", "sample_sort_vector_program",
           "VARIANTS"]

VARIANTS = ("bsp", "bpram", "bpram-staggered")

#: padding factor of the grid routing: each block message is padded to
#: ``PAD * M / sqrt(P)`` keys, and sent as two sub-messages, matching the
#: constants of the paper's send-to-buckets bound.
PAD = 4


def sample_sort_program(ctx: ProcContext, keys: np.ndarray, variant: str,
                        oversample: int, key_bits: int = 32,
                        sample_seed: int = 0):
    if variant not in VARIANTS:
        raise ExperimentError(f"unknown sample sort variant {variant!r}")
    P, rank = ctx.P, ctx.rank
    M = keys.size
    w = ctx.word_bytes
    S = oversample
    if not 1 <= S <= M:
        raise ExperimentError(
            f"oversampling ratio S={S} must be in [1, M={M}]")
    mode = "bsp" if variant == "bsp" else "bpram"
    bitonic_variant = "bsp" if variant == "bsp" else "bpram"

    # ---- Phase 1: splitters ----
    rng = np.random.default_rng(sample_seed + 7919 * rank)
    samples = rng.choice(keys, size=S, replace=False).astype(np.uint64)
    ctx.charge_us(0.2 * S)  # sample selection
    sorted_samples = yield from bitonic_program(ctx, samples, bitonic_variant,
                                                key_bits=key_bits)
    # After bitonic, this processor holds the samples of global ranks
    # [rank*S, (rank+1)*S); the splitter it owns is its first sample.
    my_splitter = int(sorted_samples[0])  # rank * S
    splitters = yield from alltoall_words(
        ctx, np.full(P, my_splitter, dtype=np.int64), "splitters", mode)
    splitters = splitters[1:].astype(np.uint64)  # drop rank-0 sentinel

    # ---- Phase 2: send ----
    mine = radix_sort(ctx, keys, bits=key_bits)
    bucket_of = classify_keys(ctx, mine, splitters)
    counts = np.bincount(bucket_of, minlength=P).astype(np.int64)
    offsets, my_total = yield from multiscan(ctx, counts, "scan", mode)

    bounds = np.concatenate(([0], np.cumsum(counts)))
    per_dest = [mine[bounds[j]:bounds[j + 1]] for j in range(P)]

    if variant == "bsp":
        for s in range(1, P):
            j = (rank + s) % P
            if per_dest[j].size:
                ctx.put(j, per_dest[j], nbytes=per_dest[j].size * w,
                        count=per_dest[j].size, tag=("keys", rank), step=s)
        yield ctx.sync("route-keys")
        received = [p for _, p in _drain_keys(ctx, P)]
        received.append(per_dest[rank])
    elif variant == "bpram-staggered":
        for s in range(1, P):
            j = (rank + s) % P
            blk = per_dest[j]
            if blk.size:
                ctx.put(j, blk, nbytes=blk.size * w, count=1,
                        tag=("keys", rank), step=s)
        ctx.charge_copy(M)  # pack keys per destination
        yield ctx.sync("route-keys-staggered", barrier=False)
        received = [p for _, p in _drain_keys(ctx, P)]
        received.append(per_dest[rank])
    else:  # bpram: two-phase padded grid routing
        received = yield from _grid_route(ctx, per_dest, bucket_of, mine)

    bucket = np.concatenate([np.asarray(b, dtype=np.uint64) for b in received]
                            ) if received else np.empty(0, dtype=np.uint64)

    # ---- Phase 3: sort buckets locally ----
    result = radix_sort(ctx, bucket, bits=key_bits)
    return result


def _drain_keys(ctx: ProcContext, P: int):
    """Collect all ("keys", src) messages delivered to this processor."""
    out = []
    for src in range(P):
        while ctx.has_message(("keys", src)):
            out.append((src, ctx.get(src=src, tag=("keys", src))))
    return out


def _grid_route(ctx: ProcContext, per_dest: list[np.ndarray],
                bucket_of: np.ndarray, mine: np.ndarray):
    """Two-phase padded block routing (the §4.3.1 scheme).

    Each phase is ``sqrt(P)`` staggered steps; every step sends one
    padded block of capacity ``PAD * M / sqrt(P)`` keys as *two*
    messages, so a processor pays ``4 sqrt(P)`` startups and
    ``16 sigma w M`` bytes — the paper's constants.
    """
    P, rank = ctx.P, ctx.rank
    M = mine.size
    w = ctx.word_bytes
    side = grid_side(P)
    r, c = divmod(rank, side)
    # Each step sends *two* padded messages of 4wM/sqrt(P) bytes (the
    # paper's message size), so a processor pays 4 sqrt(P) startups and
    # 16 sigma w M bytes over the two phases — exactly T_send-to-buckets.
    half_bytes = max(w, -(-PAD * M * w // side))
    #: buffer slots handled per pack/unpack (charged at half the merge
    #: rate: packing is a copy, merging compares too).
    cap = max(1, -(-PAD * M // side))

    # Packing/unpacking the *padded* buffers is charged per buffer slot at
    # the platform's per-key message-handling rate (the same empirical
    # constant as the bitonic merge, which on the GCel is dominated by
    # PVM pack/unpack).  This overhead — paid on capacity, not on actual
    # keys — is what makes the measured plain sample sort "somewhat
    # disappointing" (Fig. 18); the §4.3.1 prediction does not include it.

    # Phase A: route by destination column
    for s in range(side):
        cj = (c + s) % side
        cols = [per_dest[rj * side + cj] for rj in range(side)]
        block = (np.concatenate(cols) if cols else
                 np.empty(0, dtype=np.uint64))
        lengths = np.array([b.size for b in cols], dtype=np.int64)
        ctx.charge_merge(cap)  # pack one padded buffer
        ctx.put(r * side + cj, (lengths, block),
                nbytes=half_bytes, count=1, tag=("gr-A", c, "h1"), step=s)
        ctx.put(r * side + cj, None,
                nbytes=half_bytes, count=1, tag=("gr-A", c, "h2"), step=s)
    yield ctx.sync("route-A", barrier=False)

    # Intermediate <r, c>: regroup by destination row
    for_row: list[list[np.ndarray]] = [[] for _ in range(side)]
    for src_col in range(side):
        lengths, block = ctx.get(src=r * side + src_col,
                                 tag=("gr-A", src_col, "h1"))
        ctx.charge_merge(cap)  # unpack one padded buffer
        pos = 0
        for rj in range(side):
            n = int(lengths[rj])
            for_row[rj].append(block[pos:pos + n])
            pos += n
    # Phase B: route by destination row within the column
    for s in range(side):
        rj = (r + s) % side
        block = (np.concatenate(for_row[rj]) if for_row[rj] else
                 np.empty(0, dtype=np.uint64))
        ctx.charge_merge(cap)  # repack
        ctx.put(rj * side + c, block, nbytes=half_bytes, count=1,
                tag=("gr-B", r, "h1"), step=s)
        ctx.put(rj * side + c, None, nbytes=half_bytes, count=1,
                tag=("gr-B", r, "h2"), step=s)
    yield ctx.sync("route-B", barrier=False)

    received = []
    for src_row in range(side):
        received.append(ctx.get(src=src_row * side + c,
                                tag=("gr-B", src_row, "h1")))
        ctx.charge_merge(cap)  # final unpack
    return received


def sample_sort_vector_program(ctx: VectorContext, all_keys: np.ndarray,
                               variant: str, oversample: int,
                               key_bits: int = 32, sample_seed: int = 0):
    """Lockstep vector port of :func:`sample_sort_program`.

    Keys live in a ``(P, M)`` stack.  Each rank's sample draw still uses
    its own seeded generator (P small draws — identical streams), but
    everything else is columnar: one stacked bitonic sort, ``(P, P)``
    count/offset matrices through the vector all-to-alls, and routing as
    per-step message groups.  The final buckets are value ranges split by
    the (globally sorted) splitters, so one global key sort split at the
    per-bucket totals reproduces every rank's radix-sorted bucket —
    bit-identical supersteps, work and results.
    """
    if variant not in VARIANTS:
        raise ExperimentError(f"unknown sample sort variant {variant!r}")
    P = ctx.P
    M = all_keys.shape[1]
    w = ctx.word_bytes
    S = oversample
    if not 1 <= S <= M:
        raise ExperimentError(
            f"oversampling ratio S={S} must be in [1, M={M}]")
    mode = "bsp" if variant == "bsp" else "bpram"
    bitonic_variant = "bsp" if variant == "bsp" else "bpram"
    ranks = ctx.ranks()
    cache: dict = {}  # hoisted group arrays, shared by every all-to-all

    # ---- Phase 1: splitters ----
    samples = np.empty((P, S), dtype=np.uint64)
    for p in range(P):
        rng = np.random.default_rng(sample_seed + 7919 * p)
        samples[p] = rng.choice(all_keys[p], size=S,
                                replace=False).astype(np.uint64)
    ctx.charge_us(ranks, 0.2 * S)  # sample selection
    sorted_samples = yield from bitonic_sort_vector(ctx, samples,
                                                    bitonic_variant,
                                                    key_bits=key_bits)
    # Rank p now holds the samples of global ranks [p*S, (p+1)*S); its
    # first sample is the splitter it owns, so the splitter vector is
    # ascending in p and identical on every rank after the all-to-all.
    my_splitters = sorted_samples[:, 0].astype(np.int64)
    spl = yield from alltoall_words_vector(
        ctx, np.broadcast_to(my_splitters[:, None], (P, P)), "splitters",
        mode, cache)
    splitters = spl[0, 1:].astype(np.uint64)  # drop rank-0 sentinel

    # ---- Phase 2: send ----
    mine = _radix_sort_rows(ctx, all_keys, bits=key_bits)
    ctx.charge_compare(ranks, mine.shape[1] + splitters.size + 1)
    bucket_of = np.searchsorted(splitters, mine.ravel(),
                                side="right").reshape(P, M)
    counts = np.bincount((ranks[:, None] * P + bucket_of).ravel(),
                         minlength=P * P).reshape(P, P).astype(np.int64)
    offsets, totals = yield from multiscan_vector(ctx, counts, "scan",
                                                 mode, cache)

    if variant == "bsp":
        for s in range(1, P):
            dst = (ranks + s) % P
            sizes = counts[ranks, dst]
            m = sizes > 0
            if m.any():
                ctx.put_group(ranks[m], dst[m], nbytes=sizes[m] * w,
                              count=sizes[m], step=s)
        yield ctx.sync("route-keys")
    elif variant == "bpram-staggered":
        for s in range(1, P):
            dst = (ranks + s) % P
            sizes = counts[ranks, dst]
            m = sizes > 0
            if m.any():
                ctx.put_group(ranks[m], dst[m], nbytes=sizes[m] * w,
                              count=1, step=s)
        ctx.charge_copy(ranks, M)  # pack keys per destination
        yield ctx.sync("route-keys-staggered", barrier=False)
    else:  # bpram: two-phase padded grid routing
        yield from _grid_route_vector(ctx, M, cache)

    # ---- Phase 3: sort buckets locally ----
    bucket_sizes = totals  # keys headed for each rank's bucket
    ctx.charge_sort(ranks, bucket_sizes, bits=key_bits)
    # Buckets are contiguous value ranges (ties broken consistently by
    # value), so one global sort split at the totals equals each rank's
    # radix-sorted bucket.
    srt = np.sort(mine.ravel())
    bounds = np.concatenate(([0], np.cumsum(bucket_sizes)))
    return [srt[bounds[p]:bounds[p + 1]] for p in range(P)]


def _grid_route_vector(ctx: VectorContext, M: int, cache: dict):
    """All-ranks twin of :func:`_grid_route` (supersteps and work only —
    the final buckets are reconstructed by value in the caller)."""
    P = ctx.P
    w = ctx.word_bytes
    side = grid_side(P)
    ranks = cache["ranks"]
    half_bytes = max(w, -(-PAD * M * w // side))
    cap = max(1, -(-PAD * M // side))

    # Phase A: route by destination column (two padded halves per step);
    # the dst arrays are the transpose-A/B patterns already in the cache.
    for s in range(side):
        ctx.charge_merge(ranks, cap)  # pack one padded buffer
        dst = cache[("A", s)]
        ctx.put_group(ranks, dst, nbytes=half_bytes, count=1, step=s)
        ctx.put_group(ranks, dst, nbytes=half_bytes, count=1, step=s)
    yield ctx.sync("route-A", barrier=False)

    # Intermediate: unpack one buffer per source column, then repack and
    # forward by destination row.
    for _ in range(side):
        ctx.charge_merge(ranks, cap)
    for s in range(side):
        ctx.charge_merge(ranks, cap)  # repack
        dst = cache[("B", s)]
        ctx.put_group(ranks, dst, nbytes=half_bytes, count=1, step=s)
        ctx.put_group(ranks, dst, nbytes=half_bytes, count=1, step=s)
    yield ctx.sync("route-B", barrier=False)

    for _ in range(side):
        ctx.charge_merge(ranks, cap)  # final unpack


def run(machine: Machine, M: int, *, variant: str = "bpram",
        oversample: int = 32, P: int | None = None, seed: int = 0,
        key_bits: int = 32, engine: str = "auto") -> RunResult:
    """Sample-sort ``P * M`` random keys on ``machine``."""
    P = P or machine.P
    rng = np.random.default_rng(seed)
    all_keys = rng.integers(0, 1 << key_bits, size=(P, M), dtype=np.uint64)

    eng = resolve_engine(engine)
    if eng == "ir":
        result = run_lowered(machine, sample_sort_vector_program,
                             all_keys, variant, oversample,
                             key_bits=key_bits, sample_seed=seed, P=P,
                             label=f"samplesort-{variant}-M{M}",
                             algorithm="samplesort",
                             key_params={"M": M, "variant": variant,
                                         "oversample": oversample,
                                         "seed": seed,
                                         "key_bits": key_bits})
    elif eng == "vector":
        result = run_spmd_vector(machine, sample_sort_vector_program,
                                 all_keys, variant, oversample,
                                 key_bits=key_bits, sample_seed=seed, P=P,
                                 label=f"samplesort-{variant}-M{M}")
    else:
        def program(ctx: ProcContext):
            return sample_sort_program(ctx, all_keys[ctx.rank], variant,
                                       oversample, key_bits=key_bits,
                                       sample_seed=seed)

        result = run_spmd(machine, program, P=P,
                          label=f"samplesort-{variant}-M{M}")
    result.inputs = all_keys  # type: ignore[attr-defined]
    return result
