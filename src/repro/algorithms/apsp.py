"""All pairs shortest path — parallel Floyd's algorithm (paper §4.4).

The ``N x N`` distance matrix is partitioned into ``P`` square blocks of
size ``M x M`` (``M = N / sqrt(P)``) on a ``sqrt(P) x sqrt(P)`` processor
grid.  Iteration ``k`` broadcasts the "active" column ``D[*, k]`` along
rows and the active row ``D[k, *]`` along columns, then every processor
relaxes its block: ``D[i,j] = min(D[i,j], X[i] + Y[j])``.

The broadcast is the interesting part (and the E-BSP case study, §4.4.1):

* if ``M >= sqrt(P)``: the owner *scatters* its ``M``-element segment
  over its row — an unbalanced ``(N, N/sqrt(P), N/P)``-relation in which
  only ``sqrt(P)`` of the ``P`` processors send — then everyone
  *allgathers* the subsegments (a full relation);
* if ``M < sqrt(P)``: the owner hands one element to each of ``M``
  row-mates, ``log2(sqrt(P)/M)`` doubling steps replicate the elements,
  and the allgather runs within aligned blocks of ``M`` processors.

Plain BSP charges the scatter like a full h-relation and overestimates
badly on the MasPar (78% at N = 512) and the GCel (the scatter is ~9x
cheaper than a full h-relation there); E-BSP / the ``g_mscat`` correction
repair the prediction (§5.3).  Communication is fine-grain (one word per
distance value) and step-tagged so single-port machines serialise it
correctly.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.errors import ExperimentError
from ..machines.base import Machine
from ..simulator import RunResult, run_spmd, run_spmd_vector
from ..simulator.context import ProcContext
from ..simulator.lower import run_lowered
from ..simulator.vector import VectorContext, resolve_engine

__all__ = ["run", "apsp_program", "apsp_vector_program", "assemble",
           "random_digraph", "reference_apsp", "INF"]

#: "infinite" distance; finite so min-plus arithmetic stays exact.
INF = np.float64(1e30)


def random_digraph(N: int, density: float, rng: np.random.Generator) -> np.ndarray:
    """A random weighted digraph as a dense distance matrix."""
    D = np.where(rng.random((N, N)) < density,
                 rng.uniform(1.0, 100.0, (N, N)), INF)
    np.fill_diagonal(D, 0.0)
    return D


def reference_apsp(D: np.ndarray) -> np.ndarray:
    """Sequential Floyd — the correctness oracle."""
    out = D.copy()
    for k in range(out.shape[0]):
        np.minimum(out, out[:, k:k + 1] + out[k:k + 1, :], out=out)
    return out


def _segment_bounds(side: int, M: int) -> list[tuple[int, int]]:
    """Even split of an M-vector into ``side`` contiguous pieces."""
    base = M // side
    bounds = []
    lo = 0
    for idx in range(side):
        hi = M if idx == side - 1 else lo + base
        bounds.append((lo, hi))
        lo = hi
    return bounds


def _broadcast_line(ctx: ProcContext, seg, owner_line: int, line: int,
                    addr, side: int, M: int, tag: str):
    """Broadcast the owner's ``M``-vector to every processor on the line.

    ``seg`` is the vector on the owner (``line == owner_line``), ``None``
    elsewhere.  ``addr(l)`` maps a line coordinate to a rank.  Implements
    both regimes of §4.4 (scatter+allgather, or scatter+doubling+block
    allgather).  Returns the full vector.  Generator — ``yield from`` it.
    """
    w = ctx.word_bytes

    if M >= side:
        bounds = _segment_bounds(side, M)
        # superstep 1: owner scatters subsegments over the line
        if line == owner_line:
            for s in range(1, side):
                ll = (line + s) % side
                lo, hi = bounds[ll]
                ctx.put(addr(ll), seg[lo:hi], nbytes=(hi - lo) * w,
                        count=hi - lo, tag=(tag, "scat"), step=s)
        yield ctx.sync(f"{tag}-scatter")
        lo, hi = bounds[line]
        if line == owner_line:
            mine = np.asarray(seg[lo:hi]).copy()
        else:
            mine = np.asarray(ctx.get(src=addr(owner_line), tag=(tag, "scat")))
        # superstep 2: allgather the subsegments along the line
        for s in range(1, side):
            ll = (line + s) % side
            ctx.put(addr(ll), mine, nbytes=mine.size * w, count=mine.size,
                    tag=(tag, "ag", line), step=s)
        yield ctx.sync(f"{tag}-allgather")
        out = np.empty(M)
        for ll in range(side):
            lo, hi = bounds[ll]
            piece = mine if ll == line else np.asarray(
                ctx.get(src=addr(ll), tag=(tag, "ag", ll)))
            out[lo:hi] = piece
        return out

    # ---- M < sqrt(P): element-wise scatter, doubling, block allgather ----
    doublings = int(round(math.log2(side / M)))
    if (M << doublings) != side:
        raise ExperimentError(
            f"M={M} must divide sqrt(P)={side} by a power of two")
    # superstep 1: owner hands element i to line processor i
    if line == owner_line:
        for s in range(1, side):
            ll = (line + s) % side
            if ll < M:
                ctx.put(addr(ll), float(seg[ll]), nbytes=w, count=1,
                        tag=(tag, "scat"), step=s)
    yield ctx.sync(f"{tag}-scatter")
    val = None
    if line < M:
        if line == owner_line:
            val = float(seg[line])
        else:
            val = float(ctx.get(src=addr(owner_line), tag=(tag, "scat")))
    elif line == owner_line:
        # owner outside the first M holds its own element only if aligned
        val = None
    # doubling phase: active processors double each step
    holders = M
    for t in range(doublings):
        if line < holders and val is not None:
            ctx.put(addr(line + holders), val, nbytes=w, count=1,
                    tag=(tag, "dbl", t), step=0)
        yield ctx.sync(f"{tag}-double-{t}")
        if holders <= line < 2 * holders:
            val = float(ctx.get(src=addr(line - holders), tag=(tag, "dbl", t)))
        holders *= 2
    # now processor `line` holds element `line % M`;
    # allgather within the aligned block of M consecutive processors
    block_base = line - (line % M)
    for s in range(1, M):
        ll = block_base + (line - block_base + s) % M
        ctx.put(addr(ll), val, nbytes=w, count=1, tag=(tag, "ag", line),
                step=s)
    yield ctx.sync(f"{tag}-allgather")
    out = np.empty(M)
    for i in range(M):
        ll = block_base + i
        out[i] = val if ll == line else float(
            ctx.get(src=addr(ll), tag=(tag, "ag", ll)))
    return out


def apsp_program(ctx: ProcContext, D: np.ndarray):
    """SPMD Floyd; returns this processor's final ``M x M`` block."""
    P, rank = ctx.P, ctx.rank
    N = D.shape[0]
    side = math.isqrt(P)
    if side * side != P:
        raise ExperimentError(f"APSP needs a square grid, got P={P}")
    if N % side:
        raise ExperimentError(f"APSP needs sqrt(P) | N (N={N}, sqrt(P)={side})")
    M = N // side
    r, c = divmod(rank, side)
    block = D[r * M:(r + 1) * M, c * M:(c + 1) * M].copy()

    for k in range(N):
        kb, ki = divmod(k, M)  # owning grid line and offset of index k

        # active column D[*, k]: owners are <*, kb>, broadcast along rows
        seg = block[:, ki].copy() if c == kb else None
        X = yield from _broadcast_line(
            ctx, seg, owner_line=kb, line=c,
            addr=lambda ll: r * side + ll, side=side, M=M, tag=f"c{k}")

        # active row D[k, *]: owners are <kb, *>, broadcast along columns
        seg = block[ki, :].copy() if r == kb else None
        Y = yield from _broadcast_line(
            ctx, seg, owner_line=kb, line=r,
            addr=lambda ll: ll * side + c, side=side, M=M, tag=f"r{k}")

        np.minimum(block, X[:, None] + Y[None, :], out=block)
        ctx.charge_flops(M * M)  # one addition + one min per entry

    return block


def _emit_broadcast_vector(ctx: VectorContext, line: np.ndarray, addr_v,
                           owner_line: int, side: int, M: int, tag: str,
                           cache: dict):
    """Vector twin of :func:`_broadcast_line`: emit its message groups.

    ``line`` is every rank's line coordinate, ``addr_v(ll)`` maps
    per-rank target line coordinates (array or scalar) to ranks.  Emits
    the identical superstep sequence — same counts, sizes, steps and
    labels — but no payloads: vector programs move the data themselves.
    Generator — ``yield from`` it.

    ``cache`` (one dict per broadcast orientation) hoists the group
    arrays across ``k`` iterations: the doubling and allgather patterns
    do not depend on the owner line at all, and the scatter only through
    ``owner_line``, so after the first few rounds every superstep
    re-emits previously built arrays and the engine interns the phase.
    """
    w = ctx.word_bytes

    if M >= side:
        scat = cache.get(("scat", owner_line))
        if scat is None:
            owner_mask = line == owner_line
            owners = ctx.ranks()[owner_mask]
            bounds = _segment_bounds(side, M)
            widths = np.array([hi - lo for lo, hi in bounds])
            scat = []
            for s in range(1, side):
                ll = (owner_line + s) % side
                n = int(widths[ll])
                scat.append((owners, addr_v(ll)[owner_mask], n * w, n, s))
            cache[("scat", owner_line)] = scat
        # superstep 1: owners scatter subsegments over their line
        for owners, dsts, nb, cnt, s in scat:
            ctx.put_group(owners, dsts, nbytes=nb, count=cnt, step=s)
        yield ctx.sync(f"{tag}-scatter")
        ag = cache.get("ag")
        if ag is None:
            ranks_all = ctx.ranks()
            bounds = _segment_bounds(side, M)
            widths = np.array([hi - lo for lo, hi in bounds])
            mine_n = widths[line]
            nbytes_a = mine_n * w
            ag = []
            for s in range(1, side):
                ll = (line + s) % side
                ag.append((ranks_all, addr_v(ll), nbytes_a, mine_n, s))
            cache["ag"] = ag
        # superstep 2: everyone allgathers its subsegment along the line
        for srcs, dsts, nb, cnt, s in ag:
            ctx.put_group(srcs, dsts, nbytes=nb, count=cnt, step=s)
        yield ctx.sync(f"{tag}-allgather")
        return

    # ---- M < sqrt(P): element-wise scatter, doubling, block allgather ----
    doublings = int(round(math.log2(side / M)))
    if (M << doublings) != side:
        raise ExperimentError(
            f"M={M} must divide sqrt(P)={side} by a power of two")
    scat = cache.get(("scat", owner_line))
    if scat is None:
        owner_mask = line == owner_line
        owners = ctx.ranks()[owner_mask]
        scat = []
        for s in range(1, side):
            ll = (owner_line + s) % side
            if ll < M:
                scat.append((owners, addr_v(ll)[owner_mask], s))
        cache[("scat", owner_line)] = scat
    for owners, dsts, s in scat:
        ctx.put_group(owners, dsts, nbytes=w, count=1, step=s)
    yield ctx.sync(f"{tag}-scatter")
    dbl = cache.get("dbl")
    if dbl is None:
        ranks_all = ctx.ranks()
        dbl = []
        holders = M
        for _ in range(doublings):
            senders = line < holders
            dbl.append((ranks_all[senders], addr_v(line + holders)[senders]))
            holders *= 2
        cache["dbl"] = dbl
    for t, (srcs, dsts) in enumerate(dbl):
        ctx.put_group(srcs, dsts, nbytes=w, count=1, step=0)
        yield ctx.sync(f"{tag}-double-{t}")
    ag = cache.get("ag")
    if ag is None:
        ranks_all = ctx.ranks()
        block_base = line - (line % M)
        ag = []
        for s in range(1, M):
            ll = block_base + (line - block_base + s) % M
            ag.append((ranks_all, addr_v(ll), s))
        cache["ag"] = ag
    for srcs, dsts, s in ag:
        ctx.put_group(srcs, dsts, nbytes=w, count=1, step=s)
    yield ctx.sync(f"{tag}-allgather")


def apsp_vector_program(ctx: VectorContext, D: np.ndarray):
    """Lockstep vector port of :func:`apsp_program` (all ranks at once).

    Blocks live in one ``(P, M, M)`` stack; each ``k`` iteration emits
    the two broadcasts' message groups and relaxes every block with one
    elementwise ``np.minimum`` — bit-identical supersteps and results.
    """
    P = ctx.P
    N = D.shape[0]
    side = math.isqrt(P)
    if side * side != P:
        raise ExperimentError(f"APSP needs a square grid, got P={P}")
    if N % side:
        raise ExperimentError(f"APSP needs sqrt(P) | N (N={N}, sqrt(P)={side})")
    M = N // side
    ranks_all = ctx.ranks()
    r_arr, c_arr = np.divmod(ranks_all, side)
    lines = np.arange(side, dtype=np.int64)
    # blocks[rank] == D[r*M:(r+1)*M, c*M:(c+1)*M]
    blocks = np.ascontiguousarray(
        D.reshape(side, M, side, M).transpose(0, 2, 1, 3).reshape(P, M, M))
    col_cache: dict = {}
    row_cache: dict = {}

    for k in range(N):
        kb, ki = divmod(k, M)

        # active column D[*, k]: owners <*, kb>, broadcast along rows
        yield from _emit_broadcast_vector(
            ctx, c_arr, lambda ll: r_arr * side + ll, kb, side, M, f"c{k}",
            col_cache)
        X = blocks[lines * side + kb, :, ki][r_arr]  # (P, M)

        # active row D[k, *]: owners <kb, *>, broadcast along columns
        yield from _emit_broadcast_vector(
            ctx, r_arr, lambda ll: ll * side + c_arr, kb, side, M, f"r{k}",
            row_cache)
        Y = blocks[kb * side + lines, ki, :][c_arr]  # (P, M)

        np.minimum(blocks, X[:, :, None] + Y[:, None, :], out=blocks)
        ctx.charge_flops(ranks_all, M * M)

    return [blocks[p] for p in range(P)]


def run(machine: Machine, N: int, *, P: int | None = None, seed: int = 0,
        density: float = 0.3, engine: str = "auto") -> RunResult:
    """Solve APSP for a random digraph of ``N`` vertices on ``machine``."""
    P = P or machine.P
    rng = np.random.default_rng(seed)
    D = random_digraph(N, density, rng)

    eng = resolve_engine(engine)
    if eng == "ir":
        result = run_lowered(machine, apsp_vector_program, D, P=P,
                             label=f"apsp-N{N}", algorithm="apsp",
                             key_params={"N": N, "seed": seed,
                                         "density": density})
    elif eng == "vector":
        result = run_spmd_vector(machine, apsp_vector_program, D, P=P,
                                 label=f"apsp-N{N}")
    else:
        def program(ctx: ProcContext):
            return apsp_program(ctx, D)

        result = run_spmd(machine, program, P=P, label=f"apsp-N{N}")
    result.inputs = D  # type: ignore[attr-defined]
    return result


def assemble(P: int, N: int, returns: list[np.ndarray]) -> np.ndarray:
    """Rebuild the full distance matrix from per-processor blocks."""
    side = math.isqrt(P)
    M = N // side
    out = np.empty((N, N))
    for rank, blk in enumerate(returns):
        r, c = divmod(rank, side)
        out[r * M:(r + 1) * M, c * M:(c + 1) * M] = blk
    return out
