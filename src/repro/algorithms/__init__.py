"""The paper's benchmark algorithms (Section 4), as SPMD programs.

* :mod:`~repro.algorithms.matmul` — 3D matrix multiplication (§4.1);
* :mod:`~repro.algorithms.bitonic` — Batcher's bitonic sort (§4.2);
* :mod:`~repro.algorithms.samplesort` — sample sort (§4.3);
* :mod:`~repro.algorithms.radix` — parallel integer radix sort
  (extension);
* :mod:`~repro.algorithms.apsp` — Floyd all-pairs shortest path (§4.4);
* :mod:`~repro.algorithms.local` — local kernels (radix sort, merges,
  blocked matmul);
* :mod:`~repro.algorithms.primitives` — grid all-to-all and multi-scan.
"""

from . import (apsp, bitonic, collectives, local, lu, matmul, primitives,
               radix, samplesort, stencil)

__all__ = ["matmul", "bitonic", "samplesort", "radix", "apsp", "lu",
           "local", "primitives", "collectives", "stencil"]
