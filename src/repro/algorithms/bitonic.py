"""Batcher's bitonic sort on blocks (paper §4.2).

``N = P * M`` keys, ``M`` per processor.  Every processor radix-sorts its
keys locally, then ``log P`` merge stages run; stage ``d`` has ``d`` merge
steps.  In step ``j`` of stage ``d`` each processor exchanges its whole
sorted run with the partner whose rank differs in bit ``d - j`` and keeps
the lower or upper half of the merge — the classic compare-split block
bitonic network.  The exchange pattern of every step is a single-bit-XOR
("cube") permutation, which is why the MasPar router runs it almost twice
as fast as the models predict (§5.1).

Variants:

``"bsp"``
    fine-grain word-at-a-time exchange, one barrier per merge step — the
    plain (MP-)BSP implementation;
``"bsp-nosync"``
    same messages but *no barriers* — the paper's first GCel/PVM
    implementation, whose processors drift out of sync beyond ~300
    back-to-back messages (Fig. 7);
``"bsp-sync"``
    fine-grain with an extra barrier after every ``sync_every`` (default
    256) messages — the paper's fix;
``"bpram"``
    one block message per merge step (the MP-BPRAM version).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import ExperimentError
from ..machines.base import Machine
from ..simulator import RunResult, run_spmd, run_spmd_vector
from ..simulator.context import ProcContext
from ..simulator.lower import run_lowered
from ..simulator.vector import VectorContext, resolve_engine
from .local import merge_keep, radix_sort

__all__ = ["run", "bitonic_program", "bitonic_vector_program",
           "bitonic_sort_vector", "VARIANTS"]

VARIANTS = ("bsp", "bsp-nosync", "bsp-sync", "bpram")


def _ilog2(n: int) -> int:
    if n <= 0 or n & (n - 1):
        raise ExperimentError(f"bitonic sort needs a power-of-two P, got {n}")
    return n.bit_length() - 1


def bitonic_program(ctx: ProcContext, keys: np.ndarray, variant: str,
                    sync_every: int = 256, key_bits: int = 32,
                    group_words: int = 1):
    """SPMD block bitonic sort; returns this processor's sorted run.

    ``group_words > 1`` makes the fine-grain variants pack that many keys
    into each message — the "fixed size short messages, but larger than
    one computational word" of the paper's conclusions (§8).
    """
    if variant not in VARIANTS:
        raise ExperimentError(f"unknown bitonic variant {variant!r}")
    if group_words < 1:
        raise ExperimentError("group_words must be >= 1")
    P, rank = ctx.P, ctx.rank
    log_p = _ilog2(P)
    M = keys.size
    w = ctx.word_bytes

    mine = radix_sort(ctx, keys, bits=key_bits)

    step_no = 0
    for d in range(1, log_p + 1):
        for j in range(d - 1, -1, -1):
            bit = 1 << j
            partner = rank ^ bit
            # ascending region if bit d of rank is 0 (top stage: all asc.)
            ascending = (rank >> d) & 1 == 0 if d < log_p else True
            keep_min = (rank < partner) == ascending

            tag = ("x", step_no)
            if variant == "bpram":
                # pairwise block exchange; the matching receive is the
                # synchronisation point (no global barrier needed)
                ctx.put(partner, mine, nbytes=M * w, count=1, tag=tag)
                yield ctx.sync(f"merge-{d}.{j}", barrier=False)
            elif variant == "bsp":
                ctx.put(partner, mine, nbytes=M * w,
                        count=max(1, -(-M // group_words)), tag=tag)
                yield ctx.sync(f"merge-{d}.{j}")
            elif variant == "bsp-nosync":
                ctx.put(partner, mine, nbytes=M * w,
                        count=max(1, -(-M // group_words)), tag=tag)
                yield ctx.sync(f"merge-{d}.{j}", barrier=False)
            else:  # bsp-sync: barrier after every `sync_every` messages
                sent = 0
                chunk_no = 0
                while sent < M:
                    n = min(sync_every, M - sent)
                    chunk = mine[sent:sent + n]
                    ctx.put(partner, chunk, nbytes=n * w, count=n,
                            tag=(tag, chunk_no))
                    sent += n
                    chunk_no += 1
                    yield ctx.sync(f"merge-{d}.{j}.{chunk_no}")
                theirs = np.concatenate(
                    [ctx.get(src=partner, tag=(tag, c)) for c in range(chunk_no)])
                mine = merge_keep(ctx, mine, theirs, keep_min=keep_min)
                step_no += 1
                continue

            theirs = ctx.get(src=partner, tag=tag)
            mine = merge_keep(ctx, mine, theirs, keep_min=keep_min)
            step_no += 1
    return mine


def _radix_sort_rows(ctx: VectorContext, keys: np.ndarray, *,
                     bits: int = 32, radix_bits: int = 8) -> np.ndarray:
    """All-ranks twin of :func:`repro.algorithms.local.radix_sort`.

    A stable per-digit argsort along axis 1 sorts every rank's row with
    the identical pass structure (and identical results) as the per-rank
    counting sort, in one call per digit.
    """
    ctx.charge_sort(ctx.ranks(), keys.shape[1], bits=bits,
                    radix_bits=radix_bits)
    out = keys.copy()
    mask = (1 << radix_bits) - 1
    for shift in range(0, bits, radix_bits):
        digits = (out >> shift) & mask
        order = np.argsort(digits, axis=1, kind="stable")
        out = np.take_along_axis(out, order, axis=1)
    return out


def _merge_keep_rows(ctx: VectorContext, mine: np.ndarray,
                     theirs: np.ndarray,
                     keep_min: np.ndarray) -> np.ndarray:
    """All-ranks twin of :func:`repro.algorithms.local.merge_keep`."""
    M = mine.shape[1]
    ctx.charge_merge(ctx.ranks(), M)
    both = np.concatenate([mine, theirs], axis=1)
    both.sort(axis=1, kind="stable")
    return np.where(keep_min[:, None], both[:, :M], both[:, M:])


def bitonic_sort_vector(ctx: VectorContext, all_keys: np.ndarray,
                        variant: str, sync_every: int = 256,
                        key_bits: int = 32, group_words: int = 1):
    """Lockstep vector core of :func:`bitonic_program` (all ranks at once).

    Keys live in one ``(P, M)`` stack; every merge step is one message
    group (the cube permutation ``rank ^ bit``) plus one axis-1 sort —
    bit-identical supersteps and results.  Returns the sorted stack, so
    callers (sample sort's splitter phase) can keep working on it; use
    :func:`bitonic_vector_program` for the per-rank-list form.
    """
    if variant not in VARIANTS:
        raise ExperimentError(f"unknown bitonic variant {variant!r}")
    if group_words < 1:
        raise ExperimentError("group_words must be >= 1")
    P = ctx.P
    log_p = _ilog2(P)
    M = all_keys.shape[1]
    w = ctx.word_bytes
    ranks = ctx.ranks()

    mine = _radix_sort_rows(ctx, all_keys, bits=key_bits)

    for d in range(1, log_p + 1):
        for j in range(d - 1, -1, -1):
            bit = 1 << j
            partner = ranks ^ bit
            if d < log_p:
                ascending = (ranks >> d) & 1 == 0
            else:
                ascending = np.ones(P, dtype=bool)
            keep_min = (ranks < partner) == ascending

            if variant == "bpram":
                ctx.put_group(ranks, partner, nbytes=M * w, count=1)
                yield ctx.sync(f"merge-{d}.{j}", barrier=False)
            elif variant == "bsp":
                ctx.put_group(ranks, partner, nbytes=M * w,
                              count=max(1, -(-M // group_words)))
                yield ctx.sync(f"merge-{d}.{j}")
            elif variant == "bsp-nosync":
                ctx.put_group(ranks, partner, nbytes=M * w,
                              count=max(1, -(-M // group_words)))
                yield ctx.sync(f"merge-{d}.{j}", barrier=False)
            else:  # bsp-sync: barrier after every `sync_every` messages
                sent = 0
                chunk_no = 0
                while sent < M:
                    n = min(sync_every, M - sent)
                    ctx.put_group(ranks, partner, nbytes=n * w, count=n)
                    sent += n
                    chunk_no += 1
                    yield ctx.sync(f"merge-{d}.{j}.{chunk_no}")

            theirs = mine[partner]
            mine = _merge_keep_rows(ctx, mine, theirs, keep_min)
    return mine


def bitonic_vector_program(ctx: VectorContext, all_keys: np.ndarray,
                           variant: str, sync_every: int = 256,
                           key_bits: int = 32, group_words: int = 1):
    """Vector port of :func:`bitonic_program`; returns per-rank runs."""
    mine = yield from bitonic_sort_vector(ctx, all_keys, variant,
                                           sync_every=sync_every,
                                           key_bits=key_bits,
                                           group_words=group_words)
    return [mine[p] for p in range(ctx.P)]


def run(machine: Machine, M: int, *, variant: str = "bsp",
        P: int | None = None, seed: int = 0, sync_every: int = 256,
        key_bits: int = 32, group_words: int = 1,
        engine: str = "auto") -> RunResult:
    """Sort ``P * M`` random keys on ``machine``; ``M`` keys per processor."""
    P = P or machine.P
    rng = np.random.default_rng(seed)
    all_keys = rng.integers(0, 1 << key_bits, size=(P, M), dtype=np.uint64)

    eng = resolve_engine(engine)
    if eng == "ir":
        result = run_lowered(machine, bitonic_vector_program, all_keys,
                             variant, sync_every=sync_every,
                             key_bits=key_bits, group_words=group_words,
                             P=P, label=f"bitonic-{variant}-M{M}",
                             algorithm="bitonic",
                             key_params={"M": M, "variant": variant,
                                         "seed": seed,
                                         "sync_every": sync_every,
                                         "key_bits": key_bits,
                                         "group_words": group_words})
    elif eng == "vector":
        result = run_spmd_vector(machine, bitonic_vector_program, all_keys,
                                 variant, sync_every=sync_every,
                                 key_bits=key_bits, group_words=group_words,
                                 P=P, label=f"bitonic-{variant}-M{M}")
    else:
        def program(ctx: ProcContext):
            return bitonic_program(ctx, all_keys[ctx.rank], variant,
                                   sync_every=sync_every, key_bits=key_bits,
                                   group_words=group_words)

        result = run_spmd(machine, program, P=P,
                          label=f"bitonic-{variant}-M{M}")
    result.inputs = all_keys  # type: ignore[attr-defined]
    return result


def is_globally_sorted(returns: list[np.ndarray]) -> bool:
    """Check the concatenation of the per-processor runs is sorted."""
    flat = np.concatenate(returns)
    return bool(np.all(flat[:-1] <= flat[1:]))
