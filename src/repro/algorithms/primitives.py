"""Communication primitives used by sample sort (paper §4.3/§4.3.1).

The MP-BPRAM variants route everything through the two-phase *grid*
scheme of the paper (after JáJá & Ryu's Block Distributed Memory model):
processors form a ``sqrt(P) x sqrt(P)`` grid, every transfer goes via the
intermediate processor that shares the sender's row and the receiver's
column, and each phase is ``sqrt(P)`` staggered single-port block steps.

* an all-to-all of one word per destination costs
  ``2 sqrt(P) (sigma w sqrt(P) + ell)`` — the paper's splitter-broadcast
  "transpose" cost;
* the multi-scan (exclusive prefix sums per bucket) is two such
  all-to-alls: ``4 sqrt(P) (sigma w sqrt(P) + ell)``;
* the BSP versions are single fine-grain supersteps costing ``g P + L``
  each (the optimal BSP scan of [Juurlink & Wijshoff, IPL '95]).
"""

from __future__ import annotations

import math

import numpy as np

from ..core.errors import ExperimentError
from ..simulator.context import ProcContext
from ..simulator.vector import VectorContext

__all__ = ["grid_side", "alltoall_words", "multiscan",
           "alltoall_words_vector", "multiscan_vector"]


def grid_side(P: int) -> int:
    """``sqrt(P)`` for a square processor grid, validated."""
    side = math.isqrt(P)
    if side * side != P:
        raise ExperimentError(f"grid primitives need a square P, got {P}")
    return side


def alltoall_words(ctx: ProcContext, words: np.ndarray, tag: str,
                   mode: str = "bpram"):
    """All-to-all of one word per destination; returns ``out[src]``.

    ``words[j]`` is this processor's word for processor ``j``; the result
    array holds, for each source ``p``, the word ``p`` had for us.
    A generator — drive it with ``out = yield from alltoall_words(...)``.
    """
    P, rank = ctx.P, ctx.rank
    w = ctx.word_bytes
    words = np.asarray(words, dtype=np.int64)
    if words.shape != (P,):
        raise ExperimentError(f"alltoall needs one word per processor, "
                              f"got shape {words.shape}")

    if mode == "bsp":
        # one fine-grain superstep: P words, h = P (cost g*P + L)
        for j in range(P):
            dst = (rank + j) % P
            ctx.put(dst, int(words[dst]), nbytes=w, count=1,
                    tag=(tag, rank), step=j)
        yield ctx.sync(f"{tag}-alltoall")
        out = np.empty(P, dtype=np.int64)
        for src in range(P):
            out[src] = ctx.get(src=src, tag=(tag, src))
        return out

    if mode != "bpram":
        raise ExperimentError(f"unknown alltoall mode {mode!r}")

    side = grid_side(P)
    r, c = divmod(rank, side)

    # Phase A: send, for each column block cj, my words for that column
    # to the intermediate <r, cj> (sqrt(P) words per block message).
    for s in range(side):
        cj = (c + s) % side
        block = words[cj::side].copy()  # words for procs (*, cj), ordered by row
        ctx.put(r * side + cj, block, nbytes=side * w, count=1,
                tag=(tag, "A", c), step=s)
    yield ctx.sync(f"{tag}-transpose-A", barrier=False)

    # Intermediate <r, c>: received[src_col][rj] = word of <r, src_col>
    # for <rj, c>.
    recv_a = {src_col: ctx.get(src=r * side + src_col, tag=(tag, "A", src_col))
              for src_col in range(side)}

    # Phase B: forward to each <rj, c> the sqrt(P) words destined there
    # (one from each column-mate of the sender's row).
    for s in range(side):
        rj = (r + s) % side
        block = np.array([recv_a[src_col][rj] for src_col in range(side)],
                         dtype=np.int64)
        ctx.put(rj * side + c, block, nbytes=side * w, count=1,
                tag=(tag, "B", r), step=s)
    yield ctx.sync(f"{tag}-transpose-B", barrier=False)

    out = np.empty(P, dtype=np.int64)
    for src_row in range(side):
        block = ctx.get(src=src_row * side + c, tag=(tag, "B", src_row))
        # block[src_col] = word of <src_row, src_col> for me
        out[src_row * side:(src_row + 1) * side] = block
    return out


def alltoall_words_vector(ctx: VectorContext, words: np.ndarray, tag: str,
                          mode: str = "bpram", cache: dict | None = None):
    """All-ranks twin of :func:`alltoall_words`.

    ``words[p, j]`` is rank ``p``'s word for rank ``j``; returns the
    ``(P, P)`` stack ``out`` with ``out[p, src] = words[src, p]`` — the
    transpose the scalar routing delivers, with bit-identical supersteps
    (the word values travel unchanged through the grid intermediates, so
    the result can be formed directly).  ``cache`` (one dict per program
    run) holds the hoisted group arrays so every all-to-all of the run
    re-emits the *same* objects and the engine interns the phases.
    """
    P = ctx.P
    w = ctx.word_bytes
    words = np.asarray(words, dtype=np.int64)
    if words.shape != (P, P):
        raise ExperimentError(f"vector alltoall needs a (P, P) word stack, "
                              f"got shape {words.shape}")
    cache = cache if cache is not None else {}
    ranks = cache.get("ranks")
    if ranks is None:
        ranks = cache["ranks"] = ctx.ranks()

    if mode == "bsp":
        for j in range(P):
            dst = cache.get(("a2a", j))
            if dst is None:
                dst = cache[("a2a", j)] = (ranks + j) % P
            ctx.put_group(ranks, dst, nbytes=w, count=1, step=j)
        yield ctx.sync(f"{tag}-alltoall")
        return words.T.copy()

    if mode != "bpram":
        raise ExperimentError(f"unknown alltoall mode {mode!r}")

    side = grid_side(P)
    r, c = np.divmod(ranks, side)
    for s in range(side):
        dst = cache.get(("A", s))
        if dst is None:
            dst = cache[("A", s)] = r * side + (c + s) % side
        ctx.put_group(ranks, dst, nbytes=side * w, count=1, step=s)
    yield ctx.sync(f"{tag}-transpose-A", barrier=False)

    for s in range(side):
        dst = cache.get(("B", s))
        if dst is None:
            dst = cache[("B", s)] = ((r + s) % side) * side + c
        ctx.put_group(ranks, dst, nbytes=side * w, count=1, step=s)
    yield ctx.sync(f"{tag}-transpose-B", barrier=False)
    return words.T.copy()


def multiscan_vector(ctx: VectorContext, counts: np.ndarray, tag: str,
                     mode: str = "bpram", cache: dict | None = None):
    """All-ranks twin of :func:`multiscan`.

    ``counts[p, j]`` = keys rank ``p`` sends to bucket ``j``; returns
    ``(offsets, totals)`` stacks: ``offsets[p, j]`` is rank ``p``'s write
    offset within bucket ``j`` and ``totals[p]`` the size of the bucket
    rank ``p`` owns.
    """
    P = ctx.P
    per_src = yield from alltoall_words_vector(ctx, counts, f"{tag}-counts",
                                               mode, cache)
    ctx.charge_us(ctx.ranks(), 0.05 * P)
    prefix = np.concatenate(
        [np.zeros((P, 1), dtype=np.int64), np.cumsum(per_src, axis=1)[:, :-1]],
        axis=1)
    totals = per_src.sum(axis=1)
    my_offsets = yield from alltoall_words_vector(ctx, prefix,
                                                  f"{tag}-offsets", mode,
                                                  cache)
    return my_offsets, totals


def multiscan(ctx: ProcContext, counts: np.ndarray, tag: str,
              mode: str = "bpram"):
    """The multi-scan of §4.3: per-bucket exclusive prefix sums.

    ``counts[j]`` = number of keys this processor sends to bucket ``j``.
    Returns ``(offsets, my_bucket_total)``: ``offsets[j]`` is this
    processor's write offset within bucket ``j``, and ``my_bucket_total``
    the total number of keys headed for the bucket this processor owns.
    Exactly two all-to-alls — the paper's ``T_scan = 2 (g P + L)`` (BSP)
    or ``4 sqrt(P)(sigma w sqrt(P) + ell)`` (MP-BPRAM).
    """
    P, rank = ctx.P, ctx.rank
    # round 1: bucket owner j learns counts[p][j] for every p
    per_src = yield from alltoall_words(ctx, counts, f"{tag}-counts", mode)
    # owner computes exclusive prefix sums and the bucket total
    ctx.charge_us(0.05 * P)  # prefix over P counts
    prefix = np.concatenate(([0], np.cumsum(per_src)[:-1]))
    total = int(per_src.sum())
    # round 2: send each source its write offset within my bucket
    my_offsets = yield from alltoall_words(ctx, prefix,
                                           f"{tag}-offsets", mode)
    return my_offsets, total
