"""2-D Jacobi stencil with halo exchange (extension workload).

The canonical *neighbour-structured* computation: the global grid is
block-partitioned over a ``sqrt(P) x sqrt(P)`` processor grid; each
iteration every processor exchanges its boundary rows/columns with its
four grid neighbours (non-periodic), then applies the five-point
update.  On a store-and-forward machine each halo message travels one
hop, so the flat-``g`` BSP charge (calibrated on random patterns)
systematically *overestimates* it — the "general locality" error that
:class:`~repro.core.ebsp.LocalityAwareBSP` fixes and the ext-t800
experiment measures.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.errors import ExperimentError
from ..machines.base import Machine
from ..simulator import RunResult, run_spmd
from ..simulator.context import ProcContext

__all__ = ["run", "stencil_program", "assemble", "reference_jacobi"]


def reference_jacobi(grid: np.ndarray, iters: int) -> np.ndarray:
    """Sequential Jacobi with fixed (Dirichlet) boundary — the oracle."""
    a = grid.astype(float).copy()
    for _ in range(iters):
        b = a.copy()
        b[1:-1, 1:-1] = 0.25 * (a[:-2, 1:-1] + a[2:, 1:-1]
                                + a[1:-1, :-2] + a[1:-1, 2:])
        a = b
    return a


def stencil_program(ctx: ProcContext, grid: np.ndarray, iters: int):
    """SPMD Jacobi; returns this processor's final ``M x M`` block."""
    P, rank = ctx.P, ctx.rank
    N = grid.shape[0]
    side = math.isqrt(P)
    if side * side != P:
        raise ExperimentError(f"stencil needs a square grid, got P={P}")
    if N % side:
        raise ExperimentError(f"stencil needs sqrt(P) | N (N={N})")
    M = N // side
    w = ctx.word_bytes
    r, c = divmod(rank, side)
    block = grid[r * M:(r + 1) * M, c * M:(c + 1) * M].astype(float).copy()

    north = (r - 1) * side + c if r > 0 else -1
    south = (r + 1) * side + c if r < side - 1 else -1
    west = rank - 1 if c > 0 else -1
    east = rank + 1 if c < side - 1 else -1

    for it in range(iters):
        # halo exchange: one message per existing neighbour
        if north >= 0:
            ctx.put(north, block[0, :], nbytes=M * w, count=M,
                    tag=("halo", it, "n"), step=0)
        if south >= 0:
            ctx.put(south, block[-1, :], nbytes=M * w, count=M,
                    tag=("halo", it, "s"), step=1)
        if west >= 0:
            ctx.put(west, block[:, 0].copy(), nbytes=M * w, count=M,
                    tag=("halo", it, "w"), step=2)
        if east >= 0:
            ctx.put(east, block[:, -1].copy(), nbytes=M * w, count=M,
                    tag=("halo", it, "e"), step=3)
        yield ctx.sync(f"halo-{it}")

        padded = np.zeros((M + 2, M + 2))
        padded[1:-1, 1:-1] = block
        if north >= 0:
            padded[0, 1:-1] = np.asarray(ctx.get(src=north,
                                                 tag=("halo", it, "s")))
        if south >= 0:
            padded[-1, 1:-1] = np.asarray(ctx.get(src=south,
                                                  tag=("halo", it, "n")))
        if west >= 0:
            padded[1:-1, 0] = np.asarray(ctx.get(src=west,
                                                 tag=("halo", it, "e")))
        if east >= 0:
            padded[1:-1, -1] = np.asarray(ctx.get(src=east,
                                                  tag=("halo", it, "w")))

        new = 0.25 * (padded[:-2, 1:-1] + padded[2:, 1:-1]
                      + padded[1:-1, :-2] + padded[1:-1, 2:])
        # interior points only; global boundary rows/cols stay fixed
        lo_r = 1 if r == 0 else 0
        hi_r = M - 1 if r == side - 1 else M
        lo_c = 1 if c == 0 else 0
        hi_c = M - 1 if c == side - 1 else M
        block[lo_r:hi_r, lo_c:hi_c] = new[lo_r:hi_r, lo_c:hi_c]
        ctx.charge_flops(2 * M * M)  # 3 adds + 1 mul ~ 2 compound ops/pt

    return block


def run(machine: Machine, N: int, iters: int, *, P: int | None = None,
        seed: int = 0) -> RunResult:
    """Run ``iters`` Jacobi sweeps on a random ``N x N`` grid."""
    P = P or machine.P
    rng = np.random.default_rng(seed)
    grid = rng.random((N, N))

    def program(ctx: ProcContext):
        return stencil_program(ctx, grid, iters)

    result = run_spmd(machine, program, P=P,
                      label=f"stencil-N{N}-it{iters}")
    result.inputs = grid  # type: ignore[attr-defined]
    return result


def assemble(P: int, N: int, returns: list[np.ndarray]) -> np.ndarray:
    side = math.isqrt(P)
    M = N // side
    out = np.empty((N, N))
    for rank, blk in enumerate(returns):
        r, c = divmod(rank, side)
        out[r * M:(r + 1) * M, c * M:(c + 1) * M] = blk
    return out
