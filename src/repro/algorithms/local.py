"""Local (per-processor) computation kernels.

These operate on real NumPy data *and* charge their cost symbolically on
the processor context, so that (a) the simulation produces verifiably
correct results and (b) machines/cost models price the work the paper's
way (radix-sort law, linear merges, ``alpha`` per compound flop).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import SimulationError
from ..simulator.context import ProcContext

__all__ = ["radix_sort", "merge_keep", "local_matmul", "classify_keys"]


def radix_sort(ctx: ProcContext, keys: np.ndarray, *, bits: int = 32,
               radix_bits: int = 8) -> np.ndarray:
    """LSD radix sort of unsigned integer keys (paper §4.2.1).

    A genuine counting-sort pass per ``radix_bits`` digit — not a call to
    ``np.sort`` — so the charged cost law matches what actually runs.
    """
    keys = np.asarray(keys)
    if keys.ndim != 1:
        raise SimulationError("radix_sort expects a 1-D key array")
    ctx.charge_sort(keys.size, bits=bits, radix_bits=radix_bits)
    if keys.size == 0:
        return keys.copy()
    if np.issubdtype(keys.dtype, np.signedinteger) and keys.min() < 0:
        raise SimulationError("radix_sort requires non-negative keys")
    out = keys.copy()
    mask = (1 << radix_bits) - 1
    for shift in range(0, bits, radix_bits):
        digits = (out >> shift) & mask
        # Stable counting-sort pass on this digit (a stable grouping by
        # digit value is exactly what counting sort produces).
        out = out[np.argsort(digits, kind="stable")]
    return out


def merge_keep(ctx: ProcContext, mine: np.ndarray, theirs: np.ndarray, *,
               keep_min: bool) -> np.ndarray:
    """Merge two sorted runs and keep the lower or upper half.

    This is the compare-split of block bitonic sort: each partner ends up
    with ``len(mine)`` keys.  Charged as a linear merge over both inputs.
    """
    if mine.size != theirs.size:
        raise SimulationError("merge_keep expects equal-length runs")
    # The paper's merge term is alpha * M with M the *output* run length
    # ("outputs N/P keys in each merge step", §4.2): merge_alpha is an
    # empirical per-output-key constant, like the radix-sort coefficients.
    ctx.charge_merge(mine.size)
    merged = np.concatenate([mine, theirs])
    # both inputs are sorted: a single mergesort pass; np.sort on nearly
    # structured input is fine host-side, the cost is charged above.
    merged.sort(kind="stable")
    return merged[: mine.size] if keep_min else merged[mine.size:]


def local_matmul(ctx: ProcContext, A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Local dense product, charged with its block shape (cache modelling)."""
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[0]:
        raise SimulationError(
            f"local_matmul shape mismatch: {A.shape} @ {B.shape}")
    ctx.charge_matmul(A.shape[0], A.shape[1], B.shape[1])
    return A @ B


def classify_keys(ctx: ProcContext, sorted_keys: np.ndarray,
                  splitters: np.ndarray) -> np.ndarray:
    """Bucket index of each key given sorted splitters (sample sort §4.3).

    With keys and splitters both sorted this is a linear sweep, charged as
    ``Theta(M + P)`` comparisons as in the paper.
    """
    ctx.charge_compare(sorted_keys.size + splitters.size + 1)
    return np.searchsorted(splitters, sorted_keys, side="right")
