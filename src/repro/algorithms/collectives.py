"""BSP communication primitives (after the paper's reference [16]).

Sample sort's multi-scan cites "Communication Primitives for BSP
Computers" (Juurlink & Wijshoff, IPL '95) — the companion paper in which
the authors derive optimal BSP collectives.  This module implements the
classic strategy pairs so their crossovers can be measured on the
simulated machines:

* **vector broadcast** — ``naive`` (the root sends the whole vector to
  everybody: ``g n (P-1) + L``) vs ``two-phase`` (scatter the vector,
  then allgather the pieces: ``~ 2 (g n + L)``), the textbook optimal
  BSP broadcast for large vectors;
* **vector reduction** — ``naive`` (everyone sends to the root, which
  combines: ``g n (P-1) + L``) vs ``two-phase`` (reduce-scatter by
  pieces, then gather: ``~ 2 (g n + L)``);
* **prefix sums** — ``tree`` (pointer-doubling, ``log P`` supersteps of
  one word: ``(g + L) log P``) vs ``direct`` (every processor sends its
  value to all higher-ranked ones: ``g (P-1) + L``) — the trade the
  multi-scan of §4.3 navigates.

All are generator subroutines (``yield from`` them inside an SPMD
program) operating on real data, so tests verify both the costs and the
answers.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.errors import ExperimentError
from ..simulator.context import ProcContext

__all__ = ["broadcast", "reduce_vector", "prefix_sum"]


def _check_vec(vec, P: int) -> np.ndarray:
    v = np.asarray(vec, dtype=np.float64)
    if v.ndim != 1 or v.size == 0 or v.size % P:
        raise ExperimentError(
            f"collectives need a 1-D vector with P | n, got shape {v.shape}")
    return v


def broadcast(ctx: ProcContext, vec, root: int, tag: str,
              strategy: str = "two-phase"):
    """Broadcast ``vec`` (held by ``root``) to every processor."""
    P, rank = ctx.P, ctx.rank
    w = ctx.word_bytes
    if strategy == "naive":
        if rank == root:
            v = _check_vec(vec, P)
            for s in range(1, P):
                dst = (root + s) % P
                ctx.put(dst, v, nbytes=v.size * w, count=v.size,
                        tag=(tag, "b"), step=s)
        yield ctx.sync(f"{tag}-bcast-naive")
        if rank == root:
            return _check_vec(vec, P)
        return np.asarray(ctx.get(src=root, tag=(tag, "b")))

    if strategy != "two-phase":
        raise ExperimentError(f"unknown broadcast strategy {strategy!r}")

    # phase 1: root scatters piece j to processor j
    piece_of = None
    n = None
    if rank == root:
        v = _check_vec(vec, P)
        n = v.size
        piece = n // P
        for s in range(1, P):
            dst = (root + s) % P
            ctx.put(dst, v[dst * piece:(dst + 1) * piece],
                    nbytes=piece * w, count=piece, tag=(tag, "s"), step=s)
    yield ctx.sync(f"{tag}-bcast-scatter")
    if rank == root:
        v = _check_vec(vec, P)
        piece_of = v[rank * (v.size // P):(rank + 1) * (v.size // P)].copy()
    else:
        piece_of = np.asarray(ctx.get(src=root, tag=(tag, "s")))
    piece = piece_of.size
    # phase 2: allgather the pieces
    for s in range(1, P):
        dst = (rank + s) % P
        ctx.put(dst, piece_of, nbytes=piece * w, count=piece,
                tag=(tag, "g", rank), step=s)
    yield ctx.sync(f"{tag}-bcast-allgather")
    out = np.empty(piece * P)
    for src in range(P):
        part = piece_of if src == rank else np.asarray(
            ctx.get(src=src, tag=(tag, "g", src)))
        out[src * piece:(src + 1) * piece] = part
    return out


def reduce_vector(ctx: ProcContext, vec, root: int, tag: str,
                  strategy: str = "two-phase"):
    """Element-wise sum of every processor's ``vec``, result at ``root``.

    Returns the reduced vector on ``root`` and ``None`` elsewhere.
    """
    P, rank = ctx.P, ctx.rank
    w = ctx.word_bytes
    v = _check_vec(vec, P)
    n = v.size
    if strategy == "naive":
        if rank != root:
            ctx.put(root, v, nbytes=n * w, count=n, tag=(tag, "r", rank),
                    step=(rank - root) % P)
        yield ctx.sync(f"{tag}-reduce-naive")
        if rank != root:
            return None
        total = v.copy()
        for src in range(P):
            if src != root:
                total += np.asarray(ctx.get(src=src, tag=(tag, "r", src)))
        ctx.charge_flops((P - 1) * n)
        return total

    if strategy != "two-phase":
        raise ExperimentError(f"unknown reduce strategy {strategy!r}")

    piece = n // P
    # phase 1: reduce-scatter — processor j combines piece j
    for s in range(1, P):
        dst = (rank + s) % P
        ctx.put(dst, v[dst * piece:(dst + 1) * piece], nbytes=piece * w,
                count=piece, tag=(tag, "rs", rank), step=s)
    yield ctx.sync(f"{tag}-reduce-scatter")
    mine = v[rank * piece:(rank + 1) * piece].copy()
    for src in range(P):
        if src != rank:
            mine += np.asarray(ctx.get(src=src, tag=(tag, "rs", src)))
    ctx.charge_flops((P - 1) * piece)
    # phase 2: gather the combined pieces at the root
    if rank != root:
        ctx.put(root, mine, nbytes=piece * w, count=piece,
                tag=(tag, "gt", rank), step=(rank - root) % P)
    yield ctx.sync(f"{tag}-reduce-gather")
    if rank != root:
        return None
    total = np.empty(n)
    for src in range(P):
        part = mine if src == rank else np.asarray(
            ctx.get(src=src, tag=(tag, "gt", src)))
        total[src * piece:(src + 1) * piece] = part
    return total


def prefix_sum(ctx: ProcContext, value: float, tag: str,
               strategy: str = "tree"):
    """Exclusive prefix sum of one value per processor.

    Returns ``sum of values on ranks < rank``.
    """
    P, rank = ctx.P, ctx.rank
    w = ctx.word_bytes
    if strategy == "direct":
        for s in range(1, P - rank):
            ctx.put(rank + s, float(value), nbytes=w, count=1,
                    tag=(tag, rank), step=s)
        yield ctx.sync(f"{tag}-scan-direct")
        total = 0.0
        for src in range(rank):
            total += float(ctx.get(src=src, tag=(tag, src)))
        ctx.charge_us(0.05 * max(1, rank))
        return total

    if strategy != "tree":
        raise ExperimentError(f"unknown scan strategy {strategy!r}")
    if P & (P - 1):
        raise ExperimentError("tree scan needs a power-of-two P")
    # pointer doubling: after round t, each processor holds the sum of
    # the 2^(t+1) values ending at its own (inclusive), tracked so the
    # exclusive result is total_inclusive - own value.
    inclusive = float(value)
    for t in range(int(math.log2(P))):
        stride = 1 << t
        if rank + stride < P:
            ctx.put(rank + stride, inclusive, nbytes=w, count=1,
                    tag=(tag, "t", t), step=0)
        yield ctx.sync(f"{tag}-scan-{t}")
        if rank - stride >= 0:
            inclusive += float(ctx.get(src=rank - stride, tag=(tag, "t", t)))
        ctx.charge_us(0.1)
    return inclusive - float(value)
