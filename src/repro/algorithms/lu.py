"""Blocked LU decomposition (extension).

The paper motivates APSP by its communication structure being "similar
to many other important algorithms such as LU decomposition" (§4.4), and
closes by asking "whether acceptable performance can also be achieved
for problems that are harder to parallelize" (§8).  This module answers
with the canonical such problem: right-looking LU (no pivoting) on the
same ``sqrt(P) x sqrt(P)`` block grid as APSP.

Per elimination step ``k``:

1. the processors owning column ``k`` compute the multipliers
   ``l_ik = a_ik / a_kk`` and broadcast their below-``k`` segment along
   their processor row;
2. the processors owning row ``k`` broadcast their right-of-``k``
   segment along their processor column;
3. every processor updates its part of the trailing submatrix:
   ``a_ij -= l_ik * u_kj``.

Two properties make LU "harder" than APSP and exercise the models
differently:

* the broadcasts shrink as elimination proceeds and originate from a
  *single* processor per row/column — even more unbalanced than APSP's
  scatter, so plain BSP's full-h-relation charge overestimates badly on
  low-bandwidth machines;
* the trailing submatrix shrinks onto the bottom-right of the block
  grid, so the *computation* is imbalanced too: the critical processor
  does up to ``P``-times the average work near the end.  No cost model
  with a single ``c`` term distinguishes "balanced" from "imbalanced"
  computation — but pricing the trace takes the *maximum*, so the
  predictions remain honest while parallel efficiency collapses (this is
  the quantitative answer to §8's closing question).

Pivoting is deliberately omitted (runs use diagonally dominant
matrices): partial pivoting adds a max-reduction per step but no new
communication structure.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.errors import ExperimentError
from ..machines.base import Machine
from ..simulator import RunResult, run_spmd, run_spmd_vector
from ..simulator.context import ProcContext
from ..simulator.lower import run_lowered
from ..simulator.vector import VectorContext, resolve_engine

__all__ = ["run", "lu_program", "lu_vector_program", "assemble",
           "reference_lu", "random_dd_matrix"]


def random_dd_matrix(N: int, rng: np.random.Generator) -> np.ndarray:
    """A random diagonally dominant matrix (stable without pivoting)."""
    A = rng.standard_normal((N, N))
    A[np.arange(N), np.arange(N)] = np.abs(A).sum(axis=1) + 1.0
    return A


def reference_lu(A: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sequential right-looking LU without pivoting — the oracle."""
    N = A.shape[0]
    LU = A.astype(float).copy()
    for k in range(N - 1):
        LU[k + 1:, k] /= LU[k, k]
        LU[k + 1:, k + 1:] -= np.outer(LU[k + 1:, k], LU[k, k + 1:])
    L = np.tril(LU, -1) + np.eye(N)
    U = np.triu(LU)
    return L, U


def lu_program(ctx: ProcContext, A: np.ndarray):
    """SPMD LU; returns this processor's final ``M x M`` block of L\\U."""
    P, rank = ctx.P, ctx.rank
    N = A.shape[0]
    side = math.isqrt(P)
    if side * side != P:
        raise ExperimentError(f"LU needs a square grid, got P={P}")
    if N % side:
        raise ExperimentError(f"LU needs sqrt(P) | N (N={N}, sqrt(P)={side})")
    M = N // side
    w = ctx.word_bytes
    r, c = divmod(rank, side)
    block = A[r * M:(r + 1) * M, c * M:(c + 1) * M].astype(float).copy()

    row_lo, col_lo = r * M, c * M  # global offsets of this block

    for k in range(N - 1):
        kb, ki = divmod(k, M)

        # ---- multipliers + column broadcast along rows ----
        # owner <r, kb> holds column k rows [row_lo, row_lo + M).
        my_rows_below = max(0, min(N, row_lo + M) - max(k + 1, row_lo))
        col_seg = None
        if c == kb and r == kb:
            # the diagonal owner sends the pivot a_kk down its processor
            # column (one word to each column-mate)
            pivot = float(block[ki, ki])
            for s in range(1, side):
                rr = (r + s) % side
                ctx.put(rr * side + c, pivot, nbytes=w, count=1,
                        tag=("piv", k), step=s)
        yield ctx.sync(f"pivot-{k}")
        if c == kb:
            if r == kb:
                piv = float(block[ki, ki])
            else:
                piv = float(ctx.get(src=kb * side + c, tag=("piv", k)))
            lo = max(k + 1, row_lo) - row_lo
            if my_rows_below > 0:
                block[lo:lo + my_rows_below, ki] /= piv
                ctx.charge_flops(my_rows_below)
                seg = block[lo:lo + my_rows_below, ki].copy()
            else:
                seg = np.empty(0)
            col_seg = seg
            # broadcast along my processor row (single unbalanced sender)
            if seg.size:
                for s in range(1, side):
                    cc = (c + s) % side
                    ctx.put(r * side + cc, seg, nbytes=seg.size * w,
                            count=seg.size, tag=("col", k), step=s)
        yield ctx.sync(f"col-bcast-{k}")
        if c != kb:
            if my_rows_below > 0:
                col_seg = np.asarray(ctx.get(src=r * side + kb,
                                             tag=("col", k)))
            else:
                col_seg = np.empty(0)

        # ---- row broadcast along columns ----
        my_cols_right = max(0, min(N, col_lo + M) - max(k + 1, col_lo))
        row_seg = None
        if r == kb:
            lo = max(k + 1, col_lo) - col_lo
            seg = block[ki, lo:lo + my_cols_right].copy() \
                if my_cols_right > 0 else np.empty(0)
            row_seg = seg
            if seg.size:
                for s in range(1, side):
                    rr = (r + s) % side
                    ctx.put(rr * side + c, seg, nbytes=seg.size * w,
                            count=seg.size, tag=("row", k), step=s)
        yield ctx.sync(f"row-bcast-{k}")
        if r != kb:
            if my_cols_right > 0:
                row_seg = np.asarray(ctx.get(src=kb * side + c,
                                             tag=("row", k)))
            else:
                row_seg = np.empty(0)

        # ---- trailing update of my block ----
        if col_seg is not None and col_seg.size and row_seg is not None \
                and row_seg.size:
            rlo = max(k + 1, row_lo) - row_lo
            clo = max(k + 1, col_lo) - col_lo
            block[rlo:rlo + col_seg.size, clo:clo + row_seg.size] -= \
                np.outer(col_seg, row_seg)
            ctx.charge_flops(col_seg.size * row_seg.size)

    return block


def lu_vector_program(ctx: VectorContext, A: np.ndarray):
    """Lockstep vector port of :func:`lu_program`.

    All blocks live in one ``(P, M, M)`` stack.  The per-``k`` ranks fall
    into a handful of classes (above/on/below the pivot block row and
    column), each updated with one uniform slice operation; every element
    still sees the identical divide / multiply-subtract as the per-rank
    program, so results, supersteps and work batches are bit-identical.
    """
    P = ctx.P
    N = A.shape[0]
    side = math.isqrt(P)
    if side * side != P:
        raise ExperimentError(f"LU needs a square grid, got P={P}")
    if N % side:
        raise ExperimentError(f"LU needs sqrt(P) | N (N={N}, sqrt(P)={side})")
    M = N // side
    w = ctx.word_bytes
    ranks = ctx.ranks()
    r, c = np.divmod(ranks, side)
    blocks = (A.astype(float).reshape(side, M, side, M)
              .transpose(0, 2, 1, 3).reshape(P, M, M).copy())
    rows = np.arange(side)
    piv_cache: dict[int, tuple] = {}  # pivot fan-out depends on kb only

    for k in range(N - 1):
        kb, ki = divmod(k, M)
        diag = kb * side + kb
        t = ki + 1

        # ---- pivot word down the processor column of the diagonal ----
        if side > 1:
            grp = piv_cache.get(kb)
            if grp is None:
                steps = np.arange(1, side)
                grp = (np.full(side - 1, diag),
                       ((kb + steps) % side) * side + kb, steps)
                piv_cache[kb] = grp
            ctx.put_group(grp[0], grp[1], nbytes=w, count=1, step=grp[2])
        yield ctx.sync(f"pivot-{k}")

        # ---- multipliers + column broadcast along rows ----
        # rows below k held by processor row rr: M for rr > kb, M-ki-1
        # for rr == kb, none above.
        nr = np.where(rows > kb, M, np.where(rows == kb, M - t, 0))
        piv = float(blocks[diag, ki, ki])
        below = rows[nr > 0]
        if below.size:
            own = below * side + kb
            if t < M:
                blocks[diag, t:, ki] /= piv
            gt = (rows[rows > kb]) * side + kb
            blocks[gt, :, ki] /= piv
            ctx.charge_flops(own, nr[below])
            if side > 1:
                for s in range(1, side):
                    ctx.put_group(own, below * side + (kb + s) % side,
                                  nbytes=nr[below] * w, count=nr[below],
                                  step=s)
        yield ctx.sync(f"col-bcast-{k}")

        # ---- row broadcast along columns ----
        nc = np.where(rows > kb, M, np.where(rows == kb, M - t, 0))
        right = rows[nc > 0]  # columns with entries right of k
        if right.size and side > 1:
            own = kb * side + right
            for s in range(1, side):
                ctx.put_group(own, ((kb + s) % side) * side + right,
                              nbytes=nc[right] * w, count=nc[right],
                              step=s)
        yield ctx.sync(f"row-bcast-{k}")

        # ---- trailing update of every block ----
        col_all = blocks[r * side + kb][:, :, ki]  # (P, M) multipliers
        row_all = blocks[kb * side + c][:, ki, :]  # (P, M) pivot row
        m_full = (r > kb) & (c > kb)
        if m_full.any():
            blocks[m_full] -= (col_all[m_full][:, :, None]
                               * row_all[m_full][:, None, :])
        if t < M:
            m_prow = (r == kb) & (c > kb)
            blocks[m_prow, t:, :] -= (col_all[m_prow][:, t:, None]
                                      * row_all[m_prow][:, None, :])
            m_pcol = (r > kb) & (c == kb)
            blocks[m_pcol, :, t:] -= (col_all[m_pcol][:, :, None]
                                      * row_all[m_pcol][:, None, t:])
            blocks[diag, t:, t:] -= np.outer(col_all[diag, t:],
                                             row_all[diag, t:])
        nr_p = nr[r]
        nc_p = nc[c]
        upd = (nr_p > 0) & (nc_p > 0)
        if upd.any():
            ctx.charge_flops(ranks[upd], (nr_p * nc_p)[upd])

    return [blocks[p] for p in range(P)]


def run(machine: Machine, N: int, *, P: int | None = None,
        seed: int = 0, engine: str = "auto") -> RunResult:
    """Factor a random diagonally dominant ``N x N`` matrix."""
    P = P or machine.P
    rng = np.random.default_rng(seed)
    A = random_dd_matrix(N, rng)

    eng = resolve_engine(engine)
    if eng == "ir":
        result = run_lowered(machine, lu_vector_program, A, P=P,
                             label=f"lu-N{N}", algorithm="lu",
                             key_params={"N": N, "seed": seed})
    elif eng == "vector":
        result = run_spmd_vector(machine, lu_vector_program, A, P=P,
                                 label=f"lu-N{N}")
    else:
        def program(ctx: ProcContext):
            return lu_program(ctx, A)

        result = run_spmd(machine, program, P=P, label=f"lu-N{N}")
    result.inputs = A  # type: ignore[attr-defined]
    return result


def assemble(P: int, N: int, returns: list[np.ndarray]) -> np.ndarray:
    """Rebuild the packed L\\U factor matrix from the blocks."""
    side = math.isqrt(P)
    M = N // side
    out = np.empty((N, N))
    for rank, blk in enumerate(returns):
        r, c = divmod(rank, side)
        out[r * M:(r + 1) * M, c * M:(c + 1) * M] = blk
    return out
