"""Injectable time sources for retry, breaker and fault-delay logic.

Everything in the recovery stack that waits or measures elapsed time
does so through a :class:`Clock`, so the chaos tests can substitute a
:class:`FakeClock` and assert *exact* backoff schedules — bounded
attempt counts and total sleep — without ever actually sleeping.
"""

from __future__ import annotations

import time

__all__ = ["Clock", "MonotonicClock", "FakeClock", "SYSTEM_CLOCK"]


class Clock:
    """Minimal time interface: a monotonic ``time()`` and a ``sleep()``."""

    def time(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class MonotonicClock(Clock):
    """The real thing: ``time.monotonic`` + ``time.sleep``."""

    def time(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock(Clock):
    """A virtual clock: ``sleep`` advances time instantly and is recorded.

    ``sleeps`` is the exact sequence of requested delays — what the chaos
    suite inspects to prove retries are bounded and backoffs grow.
    """

    def __init__(self, start: float = 0.0):
        self.now = float(start)
        self.sleeps: list[float] = []

    def time(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(float(seconds))
        self.now += max(0.0, float(seconds))

    @property
    def total_slept(self) -> float:
        return sum(self.sleeps)

    def advance(self, seconds: float) -> None:
        """Move time forward without recording a sleep (breaker tests)."""
        self.now += float(seconds)


#: the process-wide default clock.
SYSTEM_CLOCK = MonotonicClock()
