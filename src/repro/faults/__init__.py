"""Deterministic, seedable fault injection + the recovery primitives.

The chaos-testing subsystem (see docs/TESTING.md):

* :mod:`.plan` — ``FaultPlan``/``FaultSpec`` and the
  ``point:p=…,count=…,seed=…,delay=…`` plan syntax;
* :mod:`.injector` — the process-global injector behind every
  ``fault_point``/``fault_flag`` call site;
* :mod:`.clock` — injectable time (``FakeClock`` for tests);
* :mod:`.retry` — bounded exponential backoff with deterministic jitter;
* :mod:`.breaker` — the per-key circuit breaker used by the service.

Activation: ``repro run --faults PLAN``, ``repro serve --faults PLAN``
or ``$REPRO_FAULTS``.  Every recovery path preserves bit-identical
results versus the fault-free run — experiments are pure functions of
``(id, scale, seed)``, so a respawned worker, an in-process fallback or
a cache recompute all land on the same bytes.
"""

from ..core.errors import FaultError, FaultInjected
from .breaker import CircuitBreaker
from .clock import Clock, FakeClock, MonotonicClock, SYSTEM_CLOCK
from .injector import (
    ENV_VAR,
    FaultInjector,
    active,
    corrupt_text,
    deactivate,
    fault_flag,
    fault_point,
    faults_active,
    install,
    plan_from_env,
)
from .plan import KNOWN_POINTS, FaultPlan, FaultSpec
from .retry import RetryExhausted, RetryPolicy, retry_call

__all__ = [
    "FaultError",
    "FaultInjected",
    "CircuitBreaker",
    "Clock",
    "FakeClock",
    "MonotonicClock",
    "SYSTEM_CLOCK",
    "ENV_VAR",
    "FaultInjector",
    "active",
    "corrupt_text",
    "deactivate",
    "fault_flag",
    "fault_point",
    "faults_active",
    "install",
    "plan_from_env",
    "KNOWN_POINTS",
    "FaultPlan",
    "FaultSpec",
    "RetryExhausted",
    "RetryPolicy",
    "retry_call",
]
