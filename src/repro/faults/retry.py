"""Bounded exponential backoff with deterministic jitter.

The recovery side of the fault framework: pool-worker respawns, cache
recomputes and service dispatch retries all run under a
:class:`RetryPolicy`, so attempt counts are *provably* bounded (no retry
storms) and the backoff schedule is a pure function of the seed — the
chaos tests replay it through a :class:`~repro.faults.clock.FakeClock`
and assert the exact delays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .clock import Clock, SYSTEM_CLOCK

__all__ = ["RetryPolicy", "RetryExhausted", "retry_call"]


class RetryExhausted(Exception):
    """All attempts failed; ``__cause__`` is the last failure."""

    def __init__(self, attempts: int):
        super().__init__(f"retry gave up after {attempts} attempt(s)")
        self.attempts = attempts


@dataclass(frozen=True)
class RetryPolicy:
    """``max_attempts`` tries, delays ``base * 2^i`` capped + jittered.

    Jitter is *deterministic*: drawn from ``random.Random`` seeded by
    ``seed``, so two runs with the same policy sleep identically.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")

    def delays(self) -> list[float]:
        """The full backoff schedule (``max_attempts - 1`` sleeps)."""
        rng = random.Random(f"retry:{self.seed}")
        out = []
        for i in range(self.max_attempts - 1):
            base = min(self.base_delay_s * (2 ** i), self.max_delay_s)
            out.append(base * (1.0 + self.jitter * rng.random()))
        return out


def retry_call(fn, *, policy: RetryPolicy, clock: Clock | None = None,
               retry_on: tuple = (Exception,), on_retry=None):
    """Run ``fn(attempt)`` until it returns, under ``policy``.

    Only ``retry_on`` exceptions are retried — anything else propagates
    immediately (deterministic failures must not burn attempts).  After
    the last attempt a :class:`RetryExhausted` chains the final error.
    ``on_retry(attempt, exc)`` fires before each backoff sleep.
    """
    clock = clock or SYSTEM_CLOCK
    delays = policy.delays()
    last: BaseException | None = None
    for attempt in range(policy.max_attempts):
        try:
            return fn(attempt)
        except retry_on as exc:
            last = exc
            if attempt < len(delays):
                if on_retry is not None:
                    on_retry(attempt, exc)
                clock.sleep(delays[attempt])
    raise RetryExhausted(policy.max_attempts) from last
