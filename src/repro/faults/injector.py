"""The process-global fault injector behind every fault point.

Call sites are instrumented with two one-liners:

* :func:`fault_point` — raises :class:`~repro.core.errors.FaultInjected`
  (or sleeps, for ``delay`` specs) when the active plan says so;
* :func:`fault_flag` — returns True when the point fires, for sites
  whose fault is an *action* (corrupt these bytes, evict this LRU)
  rather than an exception.

With no plan installed both are a single global-is-None check, so the
instrumented hot paths pay nothing in production.

Determinism: each point owns a ``random.Random`` seeded by the string
``"{seed}:{point}"`` (string seeding is hashed with SHA-512 by CPython,
so it is stable across processes and runs, unlike ``hash()``).  The
decision sequence per point is therefore a pure function of the plan.
Forked pool workers inherit the installed plan; each process replays
its own per-point schedule.

State is guarded by a lock — the service fires points from executor
threads while the event loop consults flags.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager

from ..core.errors import FaultInjected
from .clock import Clock, SYSTEM_CLOCK
from .plan import FaultPlan, FaultSpec

__all__ = ["FaultInjector", "install", "deactivate", "active",
           "faults_active", "fault_point", "fault_flag", "plan_from_env",
           "corrupt_text"]

#: environment variable holding a fault plan (``repro run``/``serve``
#: read it when ``--faults`` is not given).
ENV_VAR = "REPRO_FAULTS"


class FaultInjector:
    """Evaluates one :class:`FaultPlan`, keeping per-point statistics."""

    def __init__(self, plan: FaultPlan, clock: Clock | None = None):
        self.plan = plan
        self.clock = clock or SYSTEM_CLOCK
        self._lock = threading.Lock()
        self._rngs = {point: random.Random(f"{spec.seed}:{point}")
                      for point, spec in plan.specs.items()}
        #: per-point counters: visits to the point vs. actual fires.
        self.visits: dict[str, int] = {p: 0 for p in plan.specs}
        self.fired: dict[str, int] = {p: 0 for p in plan.specs}
        #: optional callback ``(point) -> None`` on every fire (metrics).
        self.on_fire = None

    # ------------------------------------------------------------------
    def _decide(self, point: str) -> FaultSpec | None:
        """One deterministic draw; returns the spec when the point fires."""
        spec = self.plan.get(point)
        if spec is None:
            return None
        with self._lock:
            self.visits[point] += 1
            if spec.count is not None and self.fired[point] >= spec.count:
                return None
            if spec.probability < 1.0 \
                    and self._rngs[point].random() >= spec.probability:
                return None
            self.fired[point] += 1
            hit = self.fired[point]
        if self.on_fire is not None:
            self.on_fire(point)
        return spec.__class__(point=spec.point, probability=spec.probability,
                              count=hit, seed=spec.seed,
                              delay_s=spec.delay_s)

    def hit(self, point: str) -> None:
        """Fire the point: sleep for ``delay`` specs, raise otherwise."""
        spec = self._decide(point)
        if spec is None:
            return
        if spec.delay_s > 0:
            self.clock.sleep(spec.delay_s)
            return
        raise FaultInjected(point, spec.count or 0)

    def flag(self, point: str) -> bool:
        """Fire the point as a boolean (call-site-defined action)."""
        return self._decide(point) is not None

    def stats(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {p: {"visits": self.visits[p], "fired": self.fired[p]}
                    for p in self.plan.specs}


# ----------------------------------------------------------------------
# Process-global plumbing
# ----------------------------------------------------------------------
_active: FaultInjector | None = None


def install(plan: FaultPlan | str, clock: Clock | None = None) \
        -> FaultInjector:
    """Activate ``plan`` process-wide; returns the live injector."""
    global _active
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    _active = FaultInjector(plan, clock=clock)
    return _active


def deactivate() -> None:
    """Remove the active plan (all fault points become no-ops)."""
    global _active
    _active = None


def active() -> FaultInjector | None:
    """The live injector, or None."""
    return _active


@contextmanager
def faults_active(plan: FaultPlan | str | None, clock: Clock | None = None):
    """Scope a plan to a ``with`` block, restoring the previous one.

    ``plan=None`` is a no-op passthrough (keeps call sites branch-free).
    """
    global _active
    if plan is None:
        yield _active
        return
    previous = _active
    injector = install(plan, clock=clock)
    try:
        yield injector
    finally:
        _active = previous


def fault_point(point: str) -> None:
    """Raise/sleep at an instrumented site if the active plan says so."""
    if _active is not None:
        _active.hit(point)


def fault_flag(point: str) -> bool:
    """True when the site should apply its own fault action."""
    return _active is not None and _active.flag(point)


def plan_from_env() -> FaultPlan | None:
    """The plan in ``$REPRO_FAULTS``, or None when unset/empty."""
    text = os.environ.get(ENV_VAR, "").strip()
    return FaultPlan.parse(text) if text else None


def corrupt_text(payload: str, *, seed: int = 0) -> str:
    """Deterministically flip a slice in the middle of ``payload``.

    Used by the cache-write fault action: the result is valid ASCII but
    fails both JSON parsing *or* checksum verification — exactly the
    kind of torn write the self-healing read path must survive.
    """
    if len(payload) < 8:
        return "#corrupt#"
    rng = random.Random(f"corrupt:{seed}")
    lo = rng.randrange(2, max(3, len(payload) // 2))
    return payload[:lo] + "\x00garbage\x00" + payload[lo + 1:]
