"""Fault plans: which named fault points fire, how often, and how.

A *fault point* is a named hook compiled into the runner and service
layers (worker spawn/exec, cache read/write, service dispatch).  A
:class:`FaultPlan` maps point names onto :class:`FaultSpec` activation
rules; with no plan installed every hook is a no-op costing one global
load.

Plan syntax (the ``--faults`` flag and ``$REPRO_FAULTS``)::

    point[:key=value[,key=value...]][;point2[:...]]

    worker-crash:p=0.2,seed=7
    cache-corrupt:count=1;dispatch-slow:p=0.5,delay=0.05

Keys: ``p`` (fire probability per visit, default 1), ``count`` (max
fires, default unlimited), ``seed`` (per-point RNG seed, default 0) and
``delay`` (seconds — the point sleeps instead of raising).  Decisions
are drawn from a per-point ``random.Random`` seeded by ``(seed,
point)``, so a plan replays the same schedule on every run: reproducing
a chaos failure needs only its plan string.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import FaultError

__all__ = ["FaultSpec", "FaultPlan", "KNOWN_POINTS"]

#: every compiled-in fault point, with where it bites.
KNOWN_POINTS: dict[str, str] = {
    "worker-crash": "pool worker raises before running its experiment",
    "worker-hang": "pool worker sleeps `delay` seconds before running",
    "spawn-crash": "pool worker initializer raises (pool comes up broken)",
    "spawn-slow": "pool worker initializer sleeps `delay` seconds",
    "cache-corrupt": "result-cache write flips bytes in the stored payload",
    "cache-truncate": "result-cache write truncates the stored entry",
    "cache-stale": "result-cache write records a bogus checksum",
    "dispatch-error": "service batch evaluation raises",
    "dispatch-slow": "service batch evaluation sleeps `delay` seconds",
    "lru-storm": "service prediction LRU fully evicted before the probe",
    "worker-exit": "fleet worker process dies (os._exit) mid-request",
    "arena-poison": "shared-arena write corrupts the stored payload",
    "handoff-loss": "accepted connection dropped before reading a request",
}


@dataclass(frozen=True)
class FaultSpec:
    """Activation rule for one fault point."""

    point: str
    probability: float = 1.0
    count: int | None = None
    seed: int = 0
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.point not in KNOWN_POINTS:
            known = ", ".join(sorted(KNOWN_POINTS))
            raise FaultError(
                f"unknown fault point {self.point!r}; known points: {known}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultError(
                f"{self.point}: p must be in [0, 1], got {self.probability}")
        if self.count is not None and self.count < 0:
            raise FaultError(
                f"{self.point}: count must be >= 0, got {self.count}")
        if self.delay_s < 0:
            raise FaultError(
                f"{self.point}: delay must be >= 0, got {self.delay_s}")


class FaultPlan:
    """An immutable set of :class:`FaultSpec`, one per point."""

    def __init__(self, specs: "list[FaultSpec] | tuple[FaultSpec, ...]" = ()):
        self.specs: dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.point in self.specs:
                raise FaultError(f"duplicate fault point {spec.point!r}")
            self.specs[spec.point] = spec

    def __bool__(self) -> bool:
        return bool(self.specs)

    def __contains__(self, point: str) -> bool:
        return point in self.specs

    def get(self, point: str) -> FaultSpec | None:
        return self.specs.get(point)

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``point:k=v,...;point2:...`` plan syntax."""
        specs: list[FaultSpec] = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            name, _, args = chunk.partition(":")
            name = name.strip()
            kwargs: dict = {}
            if args.strip():
                for pair in args.split(","):
                    key, sep, raw = pair.partition("=")
                    key, raw = key.strip(), raw.strip()
                    if not sep or not raw:
                        raise FaultError(
                            f"{name}: malformed parameter {pair.strip()!r} "
                            "(want key=value)")
                    try:
                        if key == "p":
                            kwargs["probability"] = float(raw)
                        elif key == "count":
                            kwargs["count"] = int(raw)
                        elif key == "seed":
                            kwargs["seed"] = int(raw)
                        elif key == "delay":
                            kwargs["delay_s"] = float(raw)
                        else:
                            raise FaultError(
                                f"{name}: unknown parameter {key!r} "
                                "(want p, count, seed or delay)")
                    except ValueError:
                        raise FaultError(
                            f"{name}: {key}={raw!r} is not a number") \
                            from None
            specs.append(FaultSpec(point=name, **kwargs))
        if not specs:
            raise FaultError(f"empty fault plan {text!r}")
        return cls(specs)

    def render(self) -> str:
        """The canonical plan string (parse/render round-trips)."""
        parts = []
        for spec in self.specs.values():
            args = [f"p={spec.probability:g}"]
            if spec.count is not None:
                args.append(f"count={spec.count}")
            args.append(f"seed={spec.seed}")
            if spec.delay_s:
                args.append(f"delay={spec.delay_s:g}")
            parts.append(f"{spec.point}:{','.join(args)}")
        return ";".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({self.render()!r})"
