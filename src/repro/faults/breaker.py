"""A per-key circuit breaker for the serving layer.

Classic three-state machine (closed → open → half-open), driven by an
injectable clock.  The service keeps one breaker per prediction key: a
key whose evaluations keep failing is isolated — its requests are
rejected fast with 503 + ``Retry-After`` instead of re-burning a batch
worker — while every other key keeps being served.  After ``reset_s``
one probe request is let through; success closes the breaker, failure
re-opens it.
"""

from __future__ import annotations

from .clock import Clock, SYSTEM_CLOCK

__all__ = ["CircuitBreaker"]

CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


class CircuitBreaker:
    """Trips after ``threshold`` consecutive failures; probes after
    ``reset_s`` seconds."""

    def __init__(self, threshold: int = 5, reset_s: float = 30.0,
                 clock: Clock | None = None):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if reset_s < 0:
            raise ValueError(f"reset_s must be >= 0, got {reset_s}")
        self.threshold = threshold
        self.reset_s = reset_s
        self.clock = clock or SYSTEM_CLOCK
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May a request proceed right now?

        An open breaker past its reset window moves to half-open and
        admits the caller as the probe.
        """
        if self.state == OPEN:
            if self.clock.time() - self.opened_at >= self.reset_s:
                self.state = HALF_OPEN
                return True
            return False
        return True

    def record_success(self) -> None:
        self.state = CLOSED
        self.failures = 0

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == HALF_OPEN or self.failures >= self.threshold:
            self.state = OPEN
            self.opened_at = self.clock.time()
            self.failures = 0

    def retry_after_s(self) -> float:
        """Seconds a client should wait before retrying this key."""
        if self.state != OPEN:
            return 0.0
        return max(0.0, self.reset_s - (self.clock.time() - self.opened_at))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failures={self.failures})")
