"""Validated entry point shared by ``repro ablate`` and ``POST /ablate``.

:func:`ablate` is the one function both front-ends call: resolve the
component/cell selection, generate the pruned run matrix, evaluate it
(cache-aware, optionally parallel, optionally under a fault plan) and
assemble the importance report.  The served path runs it with
``jobs=1`` inside a batch worker; the CLI may fan the matrix out over
the persistent pool.  Both produce byte-identical reports — the
acceptance oracle of the service tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import AblationError
from ..faults import Clock, FaultPlan, RetryPolicy
from ..runner.cache import ResultCache
from ..runner.fingerprint import source_fingerprint
from ..simulator.vector import ENGINES, engine_scope
from .components import resolve_cells, resolve_components
from .evaluate import evaluate_matrix
from .report import build_report
from .runs import run_matrix

__all__ = ["AblateRequest", "ablate"]


@dataclass(frozen=True)
class AblateRequest:
    """One fully validated ablation request.

    ``components``/``cells`` of ``None`` select everything.  The
    execution knobs (``jobs`` and the cache fields) never influence the
    report's bytes — they are excluded from :attr:`key`, the service's
    LRU identity.
    """

    components: tuple[str, ...] | None = None
    cells: tuple[str, ...] | None = None
    scale: float = 0.3
    seed: int = 0
    # execution knobs (not part of the request identity; engines are
    # observationally identical, so engine is one too)
    jobs: int = 1
    cache_dir: str | None = None
    use_cache: bool = True
    force: bool = False
    engine: str = "auto"

    @classmethod
    def from_json(cls, doc: dict) -> "AblateRequest":
        """Validate a JSON body; raise :class:`AblationError` with a
        client-presentable message on any problem."""
        if not isinstance(doc, dict):
            raise AblationError("request body must be a JSON object")

        def names(field: str):
            raw = doc.get(field)
            if raw is None:
                return None
            if not isinstance(raw, list) or not raw \
                    or not all(isinstance(n, str) for n in raw):
                raise AblationError(
                    f"{field} must be a non-empty list of names")
            return tuple(raw)

        components = names("components")
        cells = names("cells")
        # resolve eagerly so unknown names fail at validation time
        resolve_components(components)
        resolve_cells(cells)
        scale = doc.get("scale", 0.3)
        if not isinstance(scale, (int, float)) or isinstance(scale, bool) \
                or not 0 < scale <= 1:
            raise AblationError(f"scale must be in (0, 1], got {scale!r}")
        seed = doc.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool) \
                or not 0 <= seed < 2 ** 31:
            raise AblationError(f"seed must be a non-negative int, "
                                f"got {seed!r}")
        engine = doc.get("engine", "auto")
        if not isinstance(engine, str) or engine not in ENGINES:
            raise AblationError(f"engine must be one of {list(ENGINES)}, "
                                f"got {engine!r}")
        return cls(components=components, cells=cells, scale=float(scale),
                   seed=seed, engine=engine)

    @property
    def key(self) -> tuple:
        """What determines the report bytes (execution knobs excluded)."""
        comps = ("*",) if self.components is None \
            else tuple(sorted(set(self.components)))
        cells = ("*",) if self.cells is None \
            else tuple(sorted(set(self.cells)))
        return (comps, cells, self.scale, self.seed)


def ablate(req: AblateRequest, *, faults: FaultPlan | str | None = None,
           retry: RetryPolicy | None = None,
           exec_timeout_s: float | None = None,
           clock: Clock | None = None) -> dict:
    """Run the ablation described by ``req``; returns the report dict."""
    if req.engine not in ENGINES:
        raise AblationError(f"unknown engine {req.engine!r}; "
                            f"expected one of {ENGINES}")
    components = resolve_components(req.components)
    cells = resolve_cells(req.cells)
    if not cells:
        raise AblationError("no scoreboard cells selected")
    runs = run_matrix(components, cells, scale=req.scale, seed=req.seed,
                      fingerprint=source_fingerprint())
    cache = ResultCache(req.cache_dir) if req.use_cache else None
    with engine_scope(req.engine):
        docs = evaluate_matrix(runs, scale=req.scale, seed=req.seed,
                               jobs=req.jobs, cache=cache, force=req.force,
                               faults=faults, retry=retry,
                               exec_timeout_s=exec_timeout_s, clock=clock)
    return build_report(runs, docs, components=components, cells=cells,
                        scale=req.scale, seed=req.seed)
