"""Model-component ablation harness (paper §4-5, quantified).

The paper's verdict — "the models mispredict because of endpoint
contention, the cube discount, sync loss, cache effects..." — is prose.
This package produces the quantitative version: every machine
phenomenon the simulator models can be switched off
(``Machine.PHENOMENA`` + the ``disable=`` constructor switch), the
validation scoreboard is re-run per configuration over a pruned,
content-addressed run matrix, and the per-component *importance* (how
much modelling the phenomenon improves prediction accuracy) is ranked,
with components whose removal improves accuracy flagged harmful.

Front-ends: ``repro ablate`` and the service's ``POST /ablate``.  See
``docs/ABLATION.md`` for the component catalog and the run-ID scheme.
"""

from .api import AblateRequest, ablate
from .components import COMPONENTS, Component, resolve_cells, \
    resolve_components
from .evaluate import evaluate_matrix
from .report import SCHEMA, build_report, render_report
from .runs import CellRun, canonical_disabled, cell_run_id, run_matrix

__all__ = [
    "AblateRequest",
    "COMPONENTS",
    "CellRun",
    "Component",
    "SCHEMA",
    "ablate",
    "build_report",
    "canonical_disabled",
    "cell_run_id",
    "evaluate_matrix",
    "render_report",
    "resolve_cells",
    "resolve_components",
    "run_matrix",
]
