"""Evaluator: run an ablation matrix, incrementally and in parallel.

Mirrors :func:`repro.runner.pool.run_experiments`: probe the result
cache for every cell run, execute the misses (inline for ``jobs == 1``,
else on the persistent worker pool with the same retry/fallback
recovery), and store fresh results.  A cell run is a pure function of
its run ID — all randomness is seeded — so cache hits, pool workers,
in-process fallbacks and serial execution are all bit-identical.

Fresh documents are round-tripped through JSON before use, so a report
assembled from fresh results is byte-identical to one assembled from
cache hits (floats survive the trip exactly; see
:mod:`repro.runner.cache`).
"""

from __future__ import annotations

import json
import time

from ..core.errors import ExperimentError
from ..faults import (
    Clock,
    FaultPlan,
    RetryPolicy,
    SYSTEM_CLOCK,
    fault_point,
    faults_active,
)
from ..runner.cache import ResultCache
from ..runner.fingerprint import source_fingerprint
from ..runner.pool import collect_resilient, shutdown_pool, warm_pool
from ..validation.scoreboard import run_cell
from .runs import CellRun

__all__ = ["evaluate_matrix"]


def _cell_doc(cell: str, disable: tuple[str, ...], scale: float,
              seed: int) -> dict:
    """Run one ablated scoreboard cell; JSON-safe document."""
    cells = run_cell(cell, scale=scale, seed=seed, disable=disable)
    return {"cell": cell, "disable": list(disable),
            "models": [c.to_dict() for c in cells]}


def _ablation_worker(cell: str, disable: tuple[str, ...], scale: float,
                     seed: int) -> tuple[dict, float]:
    """Pool-side cell run (same fault points as the experiment worker)."""
    fault_point("worker-hang")
    fault_point("worker-crash")
    t0 = time.perf_counter()
    doc = _cell_doc(cell, disable, scale, seed)
    return doc, time.perf_counter() - t0


def evaluate_matrix(runs: list[CellRun], *, scale: float, seed: int,
                    jobs: int = 1, cache: ResultCache | None = None,
                    force: bool = False,
                    faults: FaultPlan | str | None = None,
                    retry: RetryPolicy | None = None,
                    exec_timeout_s: float | None = None,
                    clock: Clock | None = None) -> dict[str, dict]:
    """Evaluate every cell run; returns ``run_id -> cell document``.

    ``cache=None`` disables caching; ``force=True`` recomputes even on
    a hit (refreshing the entry).  ``faults``/``retry``/
    ``exec_timeout_s``/``clock`` tune the same fault-injection and
    recovery machinery :func:`~repro.runner.pool.run_experiments` uses.
    """
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    if isinstance(faults, str):
        faults = FaultPlan.parse(faults)
    clock = clock or SYSTEM_CLOCK
    policy = retry or RetryPolicy(max_attempts=3, base_delay_s=0.05,
                                  max_delay_s=1.0, seed=seed)
    # distinct runs only (baseline rows are shared across components)
    uniq: dict[str, CellRun] = {}
    for run in runs:
        uniq.setdefault(run.run_id, run)

    docs: dict[str, dict] = {}
    with faults_active(faults):
        misses: list[CellRun] = []
        for run in uniq.values():
            label = f"ablate:{run.cell}"
            if cache is not None and not force:
                hit = cache.get_doc(run.run_id, label)
                if hit is not None:
                    docs[run.run_id] = hit
                    continue
            misses.append(run)

        if misses:
            if jobs == 1 or len(misses) == 1:
                fresh = {run.run_id: _cell_doc(run.cell, run.disable,
                                               scale, seed)
                         for run in misses}
            else:
                fresh = {}
                ex = warm_pool(jobs, seed=seed)
                futures = {run.run_id: ex.submit(
                    _ablation_worker, run.cell, run.disable, scale, seed)
                    for run in misses}
                by_id = {run.run_id: run for run in misses}
                try:
                    for run_id, fut in futures.items():
                        run = by_id[run_id]

                        def fallback(run=run):
                            t0 = time.perf_counter()
                            doc = _cell_doc(run.cell, run.disable, scale,
                                            seed)
                            return doc, time.perf_counter() - t0

                        doc, _ = collect_resilient(
                            _ablation_worker,
                            (run.cell, run.disable, scale, seed), fut,
                            fallback=fallback, jobs=jobs, seed=seed,
                            policy=policy, clock=clock,
                            timeout_s=exec_timeout_s)
                        fresh[run_id] = doc
                except BaseException:
                    for pending in futures.values():
                        pending.cancel()
                    shutdown_pool()
                    raise
            fingerprint = source_fingerprint()
            for run_id, doc in fresh.items():
                # round-trip so fresh == cached byte for byte downstream
                doc = json.loads(json.dumps(doc))
                if cache is not None:
                    run = uniq[run_id]
                    if force:
                        cache.stats.record(f"ablate:{run.cell}", hit=False)
                    cache.put_doc(run_id, doc, meta={
                        "experiment": f"ablate:{run.cell}",
                        "disable": list(run.disable),
                        "scale": scale, "seed": seed, "code": fingerprint})
                docs[run_id] = doc

    return docs
