"""Catalog of ablatable model components.

A *component* is one machine phenomenon the simulator models beyond the
flat cost coefficients — exactly the behaviours the paper's §4–5 blame
for the models' prediction errors.  Every component maps to a
``Machine.PHENOMENA`` entry, so the catalog is *derived* from the
machine classes at import time: a phenomenon added to a machine without
a catalog entry (or vice versa) fails loudly, and the consistency is
also asserted by the test suite.

Component names are globally unique (each machine uses distinct
phenomenon names), so a component is addressed by its bare name on the
CLI and in ``POST /ablate`` bodies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import AblationError
from ..machines import MACHINES
from ..validation.scoreboard import CELL_SPECS

__all__ = ["Component", "COMPONENTS", "resolve_cells", "resolve_components"]


@dataclass(frozen=True)
class Component:
    """One toggleable machine phenomenon."""

    #: globally unique name (== the machine's ``PHENOMENA`` entry).
    name: str
    #: machine whose behaviour the component describes.
    machine: str
    #: paper section that measures the phenomenon.
    paper: str
    #: one-line description (CLI/doc rendering).
    summary: str

    def to_dict(self) -> dict:
        return {"name": self.name, "machine": self.machine,
                "paper": self.paper, "summary": self.summary}


#: prose per phenomenon; the machine association comes from the classes.
_DETAILS = {
    "endpoint-contention": (
        "§5.1, Fig. 4",
        "a CM-5 node services one incoming message at a time, so "
        "unstaggered schedules stall senders at hot destinations"),
    "comm-staggering": (
        "§5.1",
        "staggered schedules avoid the CM-5's endpoint hot spots; "
        "ablated, staggering buys nothing"),
    "cache-effects": (
        "§4.1.1, Fig. 4/9",
        "the CM-5 local matmul rate depends on whether the working set "
        "fits the 64 KB cache (3.8-7.4 Mflops)"),
    "cube-discount": (
        "§5.1",
        "single-bit-XOR permutations route conflict-free through the "
        "MasPar router at ~45% of the random-permutation cost"),
    "partial-permutation": (
        "§3.1, Fig. 2",
        "a MasPar step with P' active PEs costs T_unb(P') = 0.84 P' + "
        "11.8 sqrt(P') + 73.3 us, not the full-permutation price"),
    "receiver-serialisation": (
        "§5.1, Fig. 1",
        "messages converging on one MasPar PE serialise at the "
        "destination (~30 us per extra message)"),
    "cluster-channels": (
        "§3.1, Fig. 1",
        "16 MasPar PEs share one router channel, so destinations piling "
        "into a cluster contend for it"),
    "sync-loss": (
        "§5.1, Fig. 7",
        "GCel processors drift out of sync without barriers; past ~300 "
        "back-to-back messages PVM buffering collapses super-linearly"),
    "incast-collapse": (
        "§8 extension (modern profile)",
        "many senders converging on one fat-tree receiver collapse its "
        "ingress link: the hot node pays extra per word above the "
        "machine-wide average"),
    "adaptive-routing": (
        "§8 extension (modern profile)",
        "adaptive routing on a full-bisection fat tree spreads balanced "
        "permutation traffic over redundant paths (~30% discount)"),
}


def _build_catalog() -> dict[str, Component]:
    catalog: dict[str, Component] = {}
    for machine_name, cls in MACHINES.items():
        for phenomenon in cls.PHENOMENA:
            if phenomenon in catalog:
                raise AblationError(
                    f"phenomenon name {phenomenon!r} reused by "
                    f"{machine_name!r} and {catalog[phenomenon].machine!r}")
            try:
                paper, summary = _DETAILS[phenomenon]
            except KeyError:
                raise AblationError(
                    f"phenomenon {phenomenon!r} of machine "
                    f"{machine_name!r} has no catalog entry") from None
            catalog[phenomenon] = Component(
                name=phenomenon, machine=machine_name,
                paper=paper, summary=summary)
    return catalog


#: name -> component, in machine-registry then ``PHENOMENA`` order.
COMPONENTS: dict[str, Component] = _build_catalog()


def resolve_components(names=None) -> list[Component]:
    """Validate component ``names`` (None = all), catalog order kept.

    Duplicates collapse; unknown names raise :class:`AblationError`
    listing the catalog.
    """
    if names is None:
        return list(COMPONENTS.values())
    wanted = set()
    for name in names:
        if name not in COMPONENTS:
            known = ", ".join(COMPONENTS)
            raise AblationError(
                f"unknown component {name!r}; known: {known}")
        wanted.add(name)
    return [c for c in COMPONENTS.values() if c.name in wanted]


def resolve_cells(names=None) -> list[str]:
    """Validate scoreboard cell ``names`` (None = all), spec order kept."""
    if names is None:
        return list(CELL_SPECS)
    wanted = set()
    for name in names:
        if name not in CELL_SPECS:
            known = ", ".join(CELL_SPECS)
            raise AblationError(f"unknown cell {name!r}; known: {known}")
        wanted.add(name)
    return [c for c in CELL_SPECS if c in wanted]
