"""Run-matrix generation with content-addressed run IDs.

One *cell run* re-executes a single scoreboard cell with a set of
phenomena disabled.  Its ID is the SHA-256 of a canonical JSON document
naming everything the result depends on — cell, disabled-phenomenon
set, scale, seed and the source fingerprint — so the result cache
(:class:`repro.runner.cache.ResultCache`) makes re-runs incremental and
a code change invalidates every entry at once.

The disabled set is canonicalised (sorted, de-duplicated) before
hashing, so run IDs are invariant under the order in which components
were named on the command line — a property the hypothesis suite pins.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..validation.scoreboard import CELL_SPECS
from .components import Component

__all__ = ["CellRun", "canonical_disabled", "cell_run_id", "run_matrix"]

#: configuration name of the nothing-disabled runs.
BASELINE = "baseline"


def canonical_disabled(disable) -> tuple[str, ...]:
    """Sorted, de-duplicated form of a disabled-phenomenon set."""
    return tuple(sorted(set(disable)))


def cell_run_id(cell: str, disable, *, scale: float, seed: int,
                fingerprint: str) -> str:
    """Stable content-addressed ID of one ablated cell run."""
    doc = {
        "kind": "ablate-cell",
        "cell": cell,
        "disable": list(canonical_disabled(disable)),
        "scale": scale,
        "seed": seed,
        "code": fingerprint,
    }
    text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


@dataclass(frozen=True)
class CellRun:
    """One entry of the run matrix."""

    #: configuration this run belongs to (``baseline`` or a component name).
    config: str
    cell: str
    #: phenomena switched off (canonical order).
    disable: tuple[str, ...]
    run_id: str


def run_matrix(components: list[Component], cells: list[str], *,
               scale: float, seed: int, fingerprint: str) -> list[CellRun]:
    """The cell runs an ablation over ``components`` x ``cells`` needs.

    The matrix is pruned by construction: every scoreboard cell builds
    its own machine, so disabling a phenomenon of machine M can only
    change cells that run on M — ablated runs are generated for those
    cells alone, and the evaluator reuses the baseline result for the
    rest.  (The non-touch property is asserted bit-for-bit by the
    hypothesis suite, not just assumed.)
    """
    runs = [CellRun(config=BASELINE, cell=cell, disable=(),
                    run_id=cell_run_id(cell, (), scale=scale, seed=seed,
                                       fingerprint=fingerprint))
            for cell in cells]
    for comp in components:
        disable = canonical_disabled([comp.name])
        for cell in cells:
            if CELL_SPECS[cell].machine != comp.machine:
                continue
            runs.append(CellRun(
                config=comp.name, cell=cell, disable=disable,
                run_id=cell_run_id(cell, disable, scale=scale, seed=seed,
                                   fingerprint=fingerprint)))
    return runs
