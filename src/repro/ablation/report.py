"""Importance ranking: what each modelled phenomenon buys in accuracy.

For every component the report compares the scoreboard's prediction
error with the phenomenon modelled (baseline) against the error with it
switched off, pooled over every (cell, model) pair the component can
touch::

    importance = mean|error| ablated  -  mean|error| baseline

Positive importance means removing the component *hurts* accuracy — the
phenomenon carries real predictive weight.  Negative importance means
the scoreboard predicts *better* without it; such components are
flagged ``harmful``.  Components are ranked by ``|importance|``
(name-tiebroken), so both strongly helpful and strongly harmful
phenomena surface at the top.

Everything here is pure arithmetic over the JSON cell documents of
:mod:`repro.ablation.evaluate` in a deterministic order, so the report
— and its rendered table — is byte-identical across runs, job counts
and cache states.
"""

from __future__ import annotations

from .components import Component
from .runs import BASELINE, CellRun

__all__ = ["SCHEMA", "build_report", "render_report"]

SCHEMA = "repro-ablation-report/1"


def _cell_stats(doc: dict) -> dict:
    """Per-cell summary of one cell document."""
    errors = {row["model"]: row["error"] for row in doc["models"]}
    vals = [row["error"] for row in doc["models"]]
    return {
        "measured_us": doc["models"][0]["measured_us"] if vals else 0.0,
        "errors": errors,
        "mean_error": sum(vals) / len(vals) if vals else 0.0,
        "mean_abs_error": sum(abs(v) for v in vals) / len(vals)
        if vals else 0.0,
    }


def _pooled_abs(docs: list[dict]) -> float:
    """Mean |error| over every (cell, model) pair of ``docs``."""
    vals = [abs(row["error"]) for doc in docs for row in doc["models"]]
    return sum(vals) / len(vals) if vals else 0.0


def build_report(runs: list[CellRun], docs: dict[str, dict], *,
                 components: list[Component], cells: list[str],
                 scale: float, seed: int) -> dict:
    """Assemble the ablation report from evaluated cell documents."""
    by_config: dict[str, dict[str, dict]] = {}
    for run in runs:
        by_config.setdefault(run.config, {})[run.cell] = docs[run.run_id]

    base = by_config.get(BASELINE, {})
    baseline = {
        "mean_abs_error": _pooled_abs([base[c] for c in cells]),
        "per_cell": {c: _cell_stats(base[c]) for c in cells},
    }

    entries = []
    skipped = []
    for comp in components:
        touched = [c for c in cells if c in by_config.get(comp.name, {})]
        if not touched:
            skipped.append({
                "component": comp.name, "machine": comp.machine,
                "reason": f"no selected cell runs on {comp.machine!r}"})
            continue
        base_abs = _pooled_abs([base[c] for c in touched])
        abl_abs = _pooled_abs([by_config[comp.name][c] for c in touched])
        per_cell = {}
        for c in touched:
            stats = _cell_stats(by_config[comp.name][c])
            stats["baseline_mean_abs_error"] = \
                baseline["per_cell"][c]["mean_abs_error"]
            stats["delta_abs_error"] = (stats["mean_abs_error"]
                                        - stats["baseline_mean_abs_error"])
            per_cell[c] = stats
        importance = abl_abs - base_abs
        entries.append({
            "component": comp.name,
            "machine": comp.machine,
            "paper": comp.paper,
            "summary": comp.summary,
            "cells": touched,
            "baseline_mean_abs_error": base_abs,
            "ablated_mean_abs_error": abl_abs,
            "importance": importance,
            "harmful": importance < 0,
            "per_cell": per_cell,
        })
    entries.sort(key=lambda e: (-abs(e["importance"]), e["component"]))

    return {
        "schema": SCHEMA,
        "scale": scale,
        "seed": seed,
        "cells": list(cells),
        "components": [c.name for c in components],
        "baseline": baseline,
        "ranking": entries,
        "skipped": skipped,
    }


def render_report(report: dict) -> str:
    """Text table of the ranking (largest |importance| first)."""
    head = (f"{'#':<3}{'component':<24}{'machine':<9}"
            f"{'baseline':>10}{'ablated':>10}{'importance':>12}  note")
    lines = [
        "Component importance: mean |prediction error| over the cells the",
        "component touches, with the phenomenon modelled (baseline) vs",
        "switched off (ablated).  Positive importance = removal hurts.",
        "",
        head,
        "-" * len(head),
    ]
    for i, e in enumerate(report["ranking"], 1):
        note = "HARMFUL: removal improves accuracy" if e["harmful"] else ""
        lines.append(
            f"{i:<3}{e['component']:<24}{e['machine']:<9}"
            f"{e['baseline_mean_abs_error']:>9.1%}"
            f"{e['ablated_mean_abs_error']:>10.1%}"
            f"{e['importance']:>+11.1%}  {note}".rstrip())
    for s in report["skipped"]:
        lines.append(f"-  {s['component']:<24}{s['machine']:<9}"
                     f"   skipped: {s['reason']}")
    lines.append("")
    lines.append(
        f"cells: {', '.join(report['cells'])}  "
        f"(scale={report['scale']}, seed={report['seed']}; "
        f"baseline mean |error| "
        f"{report['baseline']['mean_abs_error']:.1%})")
    return "\n".join(lines)
