"""Validated entry point shared by ``repro bounds`` and ``POST /bounds``.

:func:`bounds` is the one function both front-ends call: resolve the
cell selection, measure every cell (IR-store warm path, cache-aware,
optionally parallel) and assemble the ranked headroom report.  The
served path runs it with ``jobs=1`` inside a batch worker; the CLI may
fan cells out over the persistent pool.  Both produce byte-identical
reports — the acceptance oracle of the service tests.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from dataclasses import dataclass

from ..core.errors import BoundsError
from ..faults import RetryPolicy, SYSTEM_CLOCK
from ..runner.cache import ResultCache
from ..runner.fingerprint import source_fingerprint
from ..runner.pool import collect_resilient, shutdown_pool, warm_pool
from ..simulator.vector import ENGINES, engine_scope
from .analytic import cell_bound
from .cells import (
    BOUND_CELLS,
    BoundCell,
    SCOREBOARD_BOUND_CELLS,
    resolve_bound_cells,
)
from .measure import measure_cell
from .report import build_report

__all__ = ["DEFAULT_THRESHOLD", "BoundsRequest", "bound_run_id", "bounds",
           "scoreboard_optimality"]

#: Default attained/optimal ratio above which a cell is flagged
#: HEADROOM.  Chosen between the matmul family (constant-factor, <= ~6x
#: at every matrix size) and the sorting cells (40x+): flags genuine
#: algorithmic headroom, not the unavoidable constant of a dense port.
DEFAULT_THRESHOLD = 8.0


@dataclass(frozen=True)
class BoundsRequest:
    """One fully validated optimality-bounds request.

    ``cells`` of ``None`` selects the full default matrix.  The
    execution knobs (``jobs`` and the cache fields) never influence the
    report's bytes — they are excluded from :attr:`key`, the service's
    LRU identity.  ``threshold`` *is* part of the identity: it changes
    the headroom flags in the report.
    """

    cells: tuple[str, ...] | None = None
    scale: float = 0.3
    seed: int = 0
    threshold: float = DEFAULT_THRESHOLD
    # execution knobs (not part of the request identity; engines are
    # observationally identical, so engine is one too)
    jobs: int = 1
    cache_dir: str | None = None
    use_cache: bool = True
    force: bool = False
    engine: str = "auto"

    @classmethod
    def from_json(cls, doc: dict) -> "BoundsRequest":
        """Validate a JSON body; raise :class:`BoundsError` with a
        client-presentable message on any problem."""
        if not isinstance(doc, dict):
            raise BoundsError("request body must be a JSON object")
        cells = doc.get("cells")
        if cells is not None:
            if not isinstance(cells, list) or not cells \
                    or not all(isinstance(n, str) for n in cells):
                raise BoundsError("cells must be a non-empty list of names")
            cells = tuple(cells)
        # resolve eagerly so unknown names fail at validation time
        resolve_bound_cells(cells)
        scale = doc.get("scale", 0.3)
        if not isinstance(scale, (int, float)) or isinstance(scale, bool) \
                or not 0 < scale <= 1:
            raise BoundsError(f"scale must be in (0, 1], got {scale!r}")
        seed = doc.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool) \
                or not 0 <= seed < 2 ** 31:
            raise BoundsError(f"seed must be a non-negative int, "
                              f"got {seed!r}")
        threshold = doc.get("threshold", DEFAULT_THRESHOLD)
        if not isinstance(threshold, (int, float)) \
                or isinstance(threshold, bool) \
                or not math.isfinite(threshold) or threshold <= 0:
            raise BoundsError(f"threshold must be a positive finite "
                              f"number, got {threshold!r}")
        engine = doc.get("engine", "auto")
        if not isinstance(engine, str) or engine not in ENGINES:
            raise BoundsError(f"engine must be one of {list(ENGINES)}, "
                              f"got {engine!r}")
        return cls(cells=cells, scale=float(scale), seed=seed,
                   threshold=float(threshold), engine=engine)

    @property
    def key(self) -> tuple:
        """What determines the report bytes (execution knobs excluded)."""
        cells = ("*",) if self.cells is None \
            else tuple(sorted(set(self.cells)))
        return (cells, self.scale, self.seed, self.threshold)


def bound_run_id(cell: str, *, scale: float, seed: int,
                 fingerprint: str) -> str:
    """Stable content-addressed ID of one cell measurement."""
    doc = {
        "kind": "bounds-cell",
        "cell": cell,
        "scale": scale,
        "seed": seed,
        "code": fingerprint,
    }
    text = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


def _bounds_worker(name: str, scale: float, seed: int) -> tuple[dict, float]:
    """Pool-side cell measurement."""
    t0 = time.perf_counter()
    doc = measure_cell(BOUND_CELLS[name], scale=scale, seed=seed)
    return doc, time.perf_counter() - t0


def evaluate_cells(cells: tuple[BoundCell, ...], *, scale: float, seed: int,
                   jobs: int = 1, cache: ResultCache | None = None,
                   force: bool = False) -> dict[str, dict]:
    """Measure every cell; returns ``cell name -> measurement doc``.

    Mirrors the ablation evaluator: probe the result cache, measure the
    misses (inline for ``jobs == 1``, else on the persistent pool with
    in-process fallback), round-trip fresh docs through JSON so fresh
    and cached reports are byte-identical, store them.
    """
    if jobs < 1:
        raise BoundsError(f"jobs must be >= 1, got {jobs}")
    fingerprint = source_fingerprint()
    docs: dict[str, dict] = {}
    misses: list[tuple[BoundCell, str]] = []
    for cell in cells:
        run_id = bound_run_id(cell.name, scale=scale, seed=seed,
                              fingerprint=fingerprint)
        label = f"bounds:{cell.name}"
        if cache is not None and not force:
            hit = cache.get_doc(run_id, label)
            if hit is not None:
                docs[cell.name] = hit
                continue
        misses.append((cell, run_id))

    if misses:
        if jobs == 1 or len(misses) == 1:
            fresh = {cell.name: measure_cell(cell, scale=scale, seed=seed)
                     for cell, _ in misses}
        else:
            fresh = {}
            policy = RetryPolicy(max_attempts=3, base_delay_s=0.05,
                                 max_delay_s=1.0, seed=seed)
            ex = warm_pool(jobs, seed=seed)
            futures = {cell.name: ex.submit(_bounds_worker, cell.name,
                                            scale, seed)
                       for cell, _ in misses}
            by_name = {cell.name: cell for cell, _ in misses}
            try:
                for name, fut in futures.items():
                    cell = by_name[name]

                    def fallback(cell=cell):
                        t0 = time.perf_counter()
                        doc = measure_cell(cell, scale=scale, seed=seed)
                        return doc, time.perf_counter() - t0

                    doc, _ = collect_resilient(
                        _bounds_worker, (name, scale, seed), fut,
                        fallback=fallback, jobs=jobs, seed=seed,
                        policy=policy, clock=SYSTEM_CLOCK, timeout_s=None)
                    fresh[name] = doc
            except BaseException:
                for pending in futures.values():
                    pending.cancel()
                shutdown_pool()
                raise
        for (cell, run_id) in misses:
            # round-trip so fresh == cached byte for byte downstream
            doc = json.loads(json.dumps(fresh[cell.name]))
            if cache is not None:
                if force:
                    cache.stats.record(f"bounds:{cell.name}", hit=False)
                cache.put_doc(run_id, doc, meta={
                    "experiment": f"bounds:{cell.name}",
                    "scale": scale, "seed": seed, "code": fingerprint})
            docs[cell.name] = doc

    return docs


def bounds(req: BoundsRequest) -> dict:
    """Run the optimality scoreboard described by ``req``."""
    if req.engine not in ENGINES:
        raise BoundsError(f"unknown engine {req.engine!r}; "
                          f"expected one of {ENGINES}")
    cells = resolve_bound_cells(req.cells)
    cache = ResultCache(req.cache_dir) if req.use_cache else None
    with engine_scope(req.engine):
        docs = evaluate_cells(cells, scale=req.scale, seed=req.seed,
                              jobs=req.jobs, cache=cache, force=req.force)
    return build_report(cells, docs, scale=req.scale, seed=req.seed,
                        threshold=req.threshold)


def scoreboard_optimality(*, scale: float, seed: int,
                          workloads=None) -> dict[str, dict]:
    """Attained-vs-optimal column for the validation scoreboard.

    Maps each scoreboard workload to its bound cell (same machine and
    size schedule) and measures it directly — no result cache, because
    the scoreboard's own cell runs have just warmed the in-memory IR
    store, so the measurement is a pure structure extraction.
    """
    out: dict[str, dict] = {}
    for workload, name in SCOREBOARD_BOUND_CELLS.items():
        if workloads is not None and workload not in workloads:
            continue
        cell = BOUND_CELLS[name]
        doc = measure_cell(cell, scale=scale, seed=seed)
        bound = cell_bound(cell, doc["n"], doc["volume"]["P"])
        measured = doc["volume"]["max_traffic_words"]
        out[workload] = {
            "cell": name,
            "family": bound["family"],
            "n": doc["n"],
            "bound_words": bound["bound_words"],
            "measured_words": measured,
            "ratio": measured / bound["bound_words"],
        }
    return out
