"""Optimality scoreboard: communication lower bounds vs. measured volume.

The validation scoreboard asks whether the cost models *predict* the
implementations; this package asks whether the implementations are
*near-optimal at all*.  For every cell of the comparison matrix it
computes the analytic per-processor bandwidth lower bound (the
Loomis-Whitney matmul-family bound for matmul/LU/Floyd-APSP, the
counting bound for the sorts — after Scquizzato & Silvestri, see
PAPERS.md), extracts the measured communication volume from recorded
step programs (no re-simulation on a warm IR store), and ranks the
attained-vs-optimal ratios, flagging cells with HEADROOM — candidates
for the next algorithmic improvement.

Front-ends: ``repro bounds`` and the service's ``POST /bounds``.  See
``docs/BOUNDS.md`` for the bound derivations and the extraction scheme.
"""

from .analytic import FAMILIES, cell_bound, counting_bound, \
    matmul_family_bound
from .api import BoundsRequest, DEFAULT_THRESHOLD, bound_run_id, bounds, \
    scoreboard_optimality
from .cells import BOUND_CELLS, BoundCell, DEFAULT_CELLS, \
    SCOREBOARD_BOUND_CELLS, resolve_bound_cells
from .measure import cell_ir_key, measure_cell, trace_comm_volume
from .report import SCHEMA, build_report, render_report

__all__ = [
    "BOUND_CELLS",
    "BoundCell",
    "BoundsRequest",
    "DEFAULT_CELLS",
    "DEFAULT_THRESHOLD",
    "FAMILIES",
    "SCHEMA",
    "SCOREBOARD_BOUND_CELLS",
    "bound_run_id",
    "bounds",
    "build_report",
    "cell_bound",
    "cell_ir_key",
    "counting_bound",
    "matmul_family_bound",
    "measure_cell",
    "render_report",
    "resolve_bound_cells",
    "scoreboard_optimality",
    "trace_comm_volume",
]
