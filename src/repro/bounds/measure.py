"""Measured communication volumes for bound cells.

The warm path reads recorded step programs straight out of the IR
store — phase byte vectors times superstep multiplicity, zero replay,
zero simulation (:func:`repro.simulator.ir.program_comm_volume`).  Only
when no recording exists does :func:`measure_cell` fall back to a live
run (which, under the default ``ir`` engine, records the program as a
side effect, so the next measurement is warm).

The reported ``max_traffic_words`` is the largest per-processor
sent-plus-received volume.  The analytic bounds constrain words
*received* by the busiest processor, and traffic >= received on every
processor, so comparing the two keeps the soundness invariant
``measured >= bound``.
"""

from __future__ import annotations

import numpy as np

from ..experiments.common import machine_for
from ..simulator.ir import ir_key, ir_store, program_comm_volume
from ..simulator.lower import algorithm_fingerprint
from .cells import BoundCell, cell_key_params, cell_program, cell_run

__all__ = ["cell_ir_key", "measure_cell", "trace_comm_volume"]


def cell_ir_key(cell: BoundCell, machine, n: int, seed: int) -> str:
    """The IR-store key the cell's ``run()`` records under."""
    return ir_key(algorithm=cell.algorithm,
                  fingerprint=algorithm_fingerprint(cell_program(cell)),
                  P=machine.P, word_bytes=machine.nominal.w,
                  simd=machine.simd,
                  params=cell_key_params(cell, n, seed))


def _volume_doc(P: int, word_bytes: int, sent_bytes: np.ndarray,
                recv_bytes: np.ndarray, messages: int,
                supersteps: int) -> dict:
    w = float(word_bytes)
    traffic = (np.asarray(sent_bytes, dtype=np.float64)
               + np.asarray(recv_bytes, dtype=np.float64))
    return {
        "P": int(P),
        "word_bytes": int(word_bytes),
        "max_sent_words": float(np.max(sent_bytes, initial=0.0) / w),
        "max_recv_words": float(np.max(recv_bytes, initial=0.0) / w),
        "max_traffic_words": float(traffic.max(initial=0.0) / w),
        "total_words": float(np.sum(sent_bytes) / w),
        "messages": int(messages),
        "supersteps": int(supersteps),
    }


def trace_comm_volume(trace, word_bytes: int) -> dict:
    """Volume doc from a live superstep trace (the fallback path)."""
    sent = np.zeros(trace.P, dtype=np.float64)
    recv = np.zeros(trace.P, dtype=np.float64)
    messages = 0
    for step in trace:
        sent += step.phase.bytes_sent_per_proc
        recv += step.phase.bytes_recv_per_proc
        messages += step.phase.total_messages
    return _volume_doc(trace.P, word_bytes, sent, recv, messages, len(trace))


def _live_volume(cell: BoundCell, machine, n: int, seed: int) -> dict:
    """Run the cell and extract the volume from its trace.

    Module-level on purpose: the warm-path tests monkeypatch this as a
    run-counter spy to prove a warm matrix never re-simulates.
    """
    res = cell_run(cell, machine, n, seed)
    return trace_comm_volume(res.trace, machine.nominal.w)


def measure_cell(cell: BoundCell, *, scale: float, seed: int) -> dict:
    """Measured volume doc for one cell: ``{"cell", "n", "volume"}``.

    IR-store hit -> structure-only extraction; miss -> live run.  Both
    paths report identical numbers (the recorded phases *are* the trace
    phases), so the doc carries no provenance marker — cached, warm and
    live reports stay byte-identical.
    """
    n = cell.size(scale)
    machine = machine_for(cell.machine, seed=seed)
    prog = ir_store().get(cell_ir_key(cell, machine, n, seed))
    if prog is not None:
        vol = program_comm_volume(prog)
        doc = _volume_doc(prog.P, prog.word_bytes,
                          vol["bytes_sent_per_proc"],
                          vol["bytes_recv_per_proc"],
                          vol["messages"], vol["supersteps"])
    else:
        doc = _live_volume(cell, machine, n, seed)
    return {"cell": cell.name, "n": n, "volume": doc}
