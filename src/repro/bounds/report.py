"""The optimality report: ranked attained-vs-optimal ratios.

``build_report`` is deterministic given its inputs — entries are sorted
by descending ratio (name-tiebroken) and every number derives from the
cell docs and the pure analytic bounds — so the report JSON is stable
across cache states, engines and process boundaries.
"""

from __future__ import annotations

from .analytic import cell_bound
from .cells import BoundCell

__all__ = ["SCHEMA", "build_report", "render_report"]

SCHEMA = "repro-bounds/1"


def build_report(cells: tuple[BoundCell, ...], docs: dict[str, dict], *,
                 scale: float, seed: int, threshold: float) -> dict:
    """Assemble the report from per-cell measurement docs.

    ``docs`` maps cell name to the :func:`~repro.bounds.measure
    .measure_cell` doc.  Cells whose doc is missing (a skipped pool
    worker) are listed under ``"skipped"`` rather than silently dropped.
    """
    entries = []
    skipped = []
    for cell in cells:
        doc = docs.get(cell.name)
        if doc is None:
            skipped.append(cell.name)
            continue
        vol = doc["volume"]
        n = doc["n"]
        bound = cell_bound(cell, n, vol["P"])
        measured = vol["max_traffic_words"]
        ratio = measured / bound["bound_words"]
        entries.append({
            "cell": cell.name,
            "algorithm": cell.algorithm,
            "variant": cell.variant,
            "machine": cell.machine,
            "family": bound["family"],
            "P": vol["P"],
            "n": n,
            "word_bytes": vol["word_bytes"],
            "bound_words": bound["bound_words"],
            "measured_words": measured,
            "measured_total_words": vol["total_words"],
            "messages": vol["messages"],
            "supersteps": vol["supersteps"],
            "ratio": ratio,
            "headroom": ratio > threshold,
            "detail": bound["detail"],
        })
    entries.sort(key=lambda e: (-e["ratio"], e["cell"]))
    flagged = [e["cell"] for e in entries if e["headroom"]]
    return {
        "schema": SCHEMA,
        "scale": scale,
        "seed": seed,
        "threshold": threshold,
        "cells": [c.name for c in cells],
        "ranking": entries,
        "skipped": skipped,
        "summary": {
            "flagged": flagged,
            "max_ratio": entries[0]["ratio"] if entries else 0.0,
            "min_ratio": entries[-1]["ratio"] if entries else 0.0,
        },
    }


def render_report(report: dict) -> str:
    """The ranked headroom table the CLI prints."""
    lines = [
        "Attained vs optimal: max per-processor communication volume "
        "(words)",
        f"against the analytic lower bound; ratio > "
        f"{report['threshold']:g}x flags HEADROOM.",
        "",
    ]
    header = (f"{'#':>2}  {'cell':<18} {'family':<14} {'P':>5} {'n':>6} "
              f"{'bound':>10} {'measured':>10} {'ratio':>9}  note")
    lines.append(header)
    lines.append("-" * len(header))
    for i, e in enumerate(report["ranking"], start=1):
        note = "HEADROOM" if e["headroom"] else ""
        lines.append(
            f"{i:>2}  {e['cell']:<18} {e['family']:<14} {e['P']:>5} "
            f"{e['n']:>6} {e['bound_words']:>10.1f} "
            f"{e['measured_words']:>10.1f} {e['ratio']:>8.2f}x  {note}")
    for name in report["skipped"]:
        lines.append(f" -  {name:<18} (skipped: no measurement)")
    flagged = report["summary"]["flagged"]
    lines.append("")
    lines.append(
        f"cells: {', '.join(report['cells'])} "
        f"(scale={report['scale']:g}, seed={report['seed']}; "
        f"{len(flagged)} of {len(report['ranking'])} flagged)")
    return "\n".join(lines)
