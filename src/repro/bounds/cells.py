"""The default bound-cell matrix and its algorithm glue.

A :class:`BoundCell` names one (algorithm, variant, machine) point of
the comparison matrix together with its problem-size schedule and
bound family.  The glue functions below duplicate — deliberately and
verbatim — the ``key_params`` dictionaries the algorithm ``run()``
bodies pass to :func:`repro.simulator.lower.run_lowered`, so the warm
measurement path can look step programs up in the IR store without
running anything.  The warm-path spy test pins this duplication: if a
``run()`` signature drifts, the lookup misses, the measurement falls
back to a live run, and the spy fails.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms import apsp, bitonic, lu, matmul, radix, samplesort
from ..core.errors import BoundsError

__all__ = [
    "BoundCell",
    "BOUND_CELLS",
    "DEFAULT_CELLS",
    "SCOREBOARD_BOUND_CELLS",
    "resolve_bound_cells",
    "cell_key_params",
    "cell_program",
    "cell_run",
]


@dataclass(frozen=True)
class BoundCell:
    """One cell of the optimality matrix."""

    name: str           #: "<algorithm[-variant]>/<machine>"
    algorithm: str      #: registry name ("matmul", "lu", ...)
    variant: str | None  #: algorithm variant, None where run() has none
    machine: str        #: machine name for experiments.machine_for
    family: str         #: bound family (see analytic.FAMILIES)
    base: int           #: nominal size at scale 1.0
    multiple: int       #: sizes are rounded down to this multiple
    minimum: int        #: floor so every scale still runs

    def size(self, scale: float) -> int:
        """Problem size (n for dense algorithms, M keys/proc for sorts)."""
        return max(self.minimum, int(self.base * scale)
                   // self.multiple * self.multiple)


#: The default matrix, in render order.  Sizes mirror the validation
#: scoreboard where the same workload appears there.
_CELLS = (
    BoundCell("matmul/cm5", "matmul", "bsp-staggered", "cm5",
              "matmul-family", base=256, multiple=16, minimum=64),
    BoundCell("matmul-blk/cm5", "matmul", "bpram", "cm5",
              "matmul-family", base=256, multiple=16, minimum=64),
    BoundCell("lu/gcel", "lu", None, "gcel",
              "matmul-family", base=128, multiple=32, minimum=32),
    BoundCell("apsp/gcel", "apsp", None, "gcel",
              "matmul-family", base=128, multiple=32, minimum=32),
    BoundCell("bitonic/maspar", "bitonic", "bsp", "maspar",
              "counting", base=32, multiple=8, minimum=8),
    BoundCell("bitonic-blk/gcel", "bitonic", "bpram", "gcel",
              "counting", base=1024, multiple=256, minimum=256),
    BoundCell("samplesort/gcel", "samplesort", "bpram", "gcel",
              "counting", base=256, multiple=64, minimum=64),
    BoundCell("radix/gcel", "radix", "bpram", "gcel",
              "counting", base=256, multiple=64, minimum=64),
    BoundCell("radix/modern", "radix", "bpram", "modern",
              "counting", base=1024, multiple=256, minimum=256),
)

BOUND_CELLS: dict[str, BoundCell] = {c.name: c for c in _CELLS}

#: Default cell names, in render order.
DEFAULT_CELLS: tuple[str, ...] = tuple(c.name for c in _CELLS)

#: Validation-scoreboard workload -> bound cell carrying its
#: attained-vs-optimal column (scoreboard sizes match these cells).
SCOREBOARD_BOUND_CELLS: dict[str, str] = {
    "matmul": "matmul/cm5",
    "matmul-blk": "matmul-blk/cm5",
    "bitonic": "bitonic/maspar",
    "bitonic-blk": "bitonic-blk/gcel",
    "apsp": "apsp/gcel",
    "radix": "radix/modern",
}


def resolve_bound_cells(names=None) -> tuple[BoundCell, ...]:
    """Map cell names to :class:`BoundCell` rows, in matrix order.

    ``None`` (or an empty selection) means the full default matrix.
    Unknown names raise :class:`BoundsError` listing the valid ones.
    """
    if not names:
        return _CELLS
    unknown = sorted(set(names) - set(BOUND_CELLS))
    if unknown:
        raise BoundsError(
            f"unknown bound cell(s) {unknown}; "
            f"valid cells: {sorted(BOUND_CELLS)}")
    wanted = set(names)
    return tuple(c for c in _CELLS if c.name in wanted)


def cell_key_params(cell: BoundCell, n: int, seed: int) -> dict:
    """The exact ``key_params`` the algorithm's run() records under."""
    alg = cell.algorithm
    if alg == "matmul":
        return {"N": n, "variant": cell.variant, "seed": seed}
    if alg == "lu":
        return {"N": n, "seed": seed}
    if alg == "apsp":
        return {"N": n, "seed": seed, "density": 0.3}
    if alg == "bitonic":
        return {"M": n, "variant": cell.variant, "seed": seed,
                "sync_every": 256, "key_bits": 32, "group_words": 1}
    if alg == "samplesort":
        return {"M": n, "variant": cell.variant, "oversample": 32,
                "seed": seed, "key_bits": 32}
    if alg == "radix":
        return {"M": n, "variant": cell.variant, "seed": seed,
                "key_bits": 32}
    raise BoundsError(f"unknown algorithm {alg!r}")


def cell_program(cell: BoundCell):
    """The vector program whose source fingerprint keys the IR store."""
    return {
        "matmul": matmul.matmul_vector_program,
        "lu": lu.lu_vector_program,
        "apsp": apsp.apsp_vector_program,
        "bitonic": bitonic.bitonic_vector_program,
        "samplesort": samplesort.sample_sort_vector_program,
        "radix": radix.radix_sort_vector_program,
    }[cell.algorithm]


def cell_run(cell: BoundCell, machine, n: int, seed: int):
    """Run the cell's algorithm live (records IR under the ir engine)."""
    alg = cell.algorithm
    if alg == "matmul":
        return matmul.run(machine, n, variant=cell.variant, seed=seed)
    if alg == "lu":
        return lu.run(machine, n, seed=seed)
    if alg == "apsp":
        return apsp.run(machine, n, seed=seed)
    if alg == "bitonic":
        return bitonic.run(machine, n, variant=cell.variant, seed=seed)
    if alg == "samplesort":
        return samplesort.run(machine, n, variant=cell.variant, seed=seed)
    if alg == "radix":
        return radix.run(machine, n, variant=cell.variant, seed=seed)
    raise BoundsError(f"unknown algorithm {alg!r}")
