"""Analytic per-processor communication lower bounds.

Two bound families cover every algorithm in the comparison matrix,
following "Communication Lower Bounds for Distributed-Memory
Computations" (Scquizzato & Silvestri; see PAPERS.md).  Both bound the
number of *words* some processor must receive over the whole run, so
they are safe to compare against the measured per-processor traffic
(sent + received), which is never smaller than received alone.

**Matmul family** (matmul, LU, Floyd APSP).  The computation performs
``F`` elementary multiply-accumulate products over an iteration cube.
Some processor performs at least ``F / P`` of them.  By the
Loomis-Whitney inequality, a processor touching ``a`` words of the
first operand, ``b`` of the second and ``c`` of the output completes at
most ``sqrt(a * b * c)`` products; by AM-GM the cheapest way to afford
``F / P`` products is ``a = b = c = (F / P)**(2/3)``, so the busiest
processor accesses at least ``3 * (F / P)**(2/3)`` distinct words.  At
most its balanced resident share ``R`` of the input/output arrays is
local at the start, hence it must *receive* at least
``3 * (F / P)**(2/3) - R`` words.  The per-algorithm ``F`` and ``R``
are documented in docs/BOUNDS.md and encoded in :func:`cell_bound`.

**Counting bound** (bitonic sort, sample sort, radix sort).  Every
processor starts
and ends with ``M`` of the ``P * M`` keys.  For uniform random inputs
a ``1 / P`` fraction of a processor's final keys originate locally in
expectation, so some processor receives at least ``M - ceil(M / P)``
keys — one word each, since the 32-bit keys occupy a single machine
word on every modelled machine (w ∈ {4, 8} bytes).

Both bounds are floored at one word: a parallel run in this matrix
always moves *something* (P >= 2), and the floor keeps ratios finite
at degenerate sizes.
"""

from __future__ import annotations

import math

from ..core.errors import BoundsError

__all__ = [
    "FAMILIES",
    "matmul_family_bound",
    "counting_bound",
    "cell_bound",
]

#: The two bound families; every bound cell declares one.
FAMILIES = ("matmul-family", "counting")

#: Never report a bound below one word — see module docstring.
_FLOOR_WORDS = 1.0


def matmul_family_bound(*, flops: float, resident_words: float,
                        P: int) -> dict:
    """Loomis-Whitney bound on words received by the busiest processor.

    ``flops`` counts elementary products in the iteration cube,
    ``resident_words`` is the balanced per-processor share of the
    operand/output arrays (the words a processor holds *before* any
    communication).
    """
    if P < 1:
        raise BoundsError(f"P must be >= 1, got {P}")
    accessed = 3.0 * (flops / P) ** (2.0 / 3.0)
    raw = accessed - resident_words
    return {
        "family": "matmul-family",
        "bound_words": max(_FLOOR_WORDS, raw),
        "detail": {
            "flops": float(flops),
            "accessed_words": accessed,
            "resident_words": float(resident_words),
            "raw_bound_words": raw,
        },
    }


def counting_bound(*, keys_per_proc: int, P: int) -> dict:
    """Counting bound on key-words received by some processor.

    Each processor ends with ``keys_per_proc`` keys of which only
    ``ceil(keys_per_proc / P)`` are expected to originate locally.
    """
    if P < 1:
        raise BoundsError(f"P must be >= 1, got {P}")
    local = math.ceil(keys_per_proc / P)
    raw = float(keys_per_proc - local)
    return {
        "family": "counting",
        "bound_words": max(_FLOOR_WORDS, raw),
        "detail": {
            "keys_per_proc": int(keys_per_proc),
            "expected_local_keys": int(local),
            "raw_bound_words": raw,
        },
    }


def cell_bound(cell, n: int, P: int) -> dict:
    """The lower bound for one matrix cell at problem size ``n``.

    Dispatches on ``cell.algorithm``:

    - ``matmul``: F = n^3 products; the q^3 block layout keeps
      balanced shares of A, B and C resident, R = 3 n^2 / P.
    - ``lu``: F = n^3 / 3 products (the triangular update cube); the
      factorisation is in place, R = 2 n^2 / P (matrix + result share).
    - ``apsp`` (Floyd): F = n^3 min-plus products over one in-place
      distance matrix read and written, R = 2 n^2 / P.
    - ``bitonic`` / ``samplesort`` / ``radix``: counting bound with
      M = n keys per processor.
    """
    alg = cell.algorithm
    if alg == "matmul":
        return matmul_family_bound(flops=float(n) ** 3,
                                   resident_words=3.0 * n * n / P, P=P)
    if alg == "lu":
        return matmul_family_bound(flops=float(n) ** 3 / 3.0,
                                   resident_words=2.0 * n * n / P, P=P)
    if alg == "apsp":
        return matmul_family_bound(flops=float(n) ** 3,
                                   resident_words=2.0 * n * n / P, P=P)
    if alg in ("bitonic", "samplesort", "radix"):
        return counting_bound(keys_per_proc=n, P=P)
    raise BoundsError(f"no lower bound known for algorithm {alg!r}")
