"""Measured-vs-predicted error statistics (the evaluation currency of §5)."""

from __future__ import annotations

import numpy as np

from ..core.errors import ExperimentError
from .series import Series

__all__ = ["relative_errors", "max_abs_relative_error",
           "mean_relative_error", "overestimation_factor"]


def relative_errors(measured: Series, predicted: Series) -> np.ndarray:
    """``(predicted - measured) / measured`` pointwise (positive =
    the model overestimates)."""
    if not np.array_equal(measured.xs, predicted.xs):
        raise ExperimentError(
            f"series {measured.name!r} and {predicted.name!r} sample "
            "different x grids")
    if np.any(measured.ys <= 0):
        raise ExperimentError("measured times must be positive")
    return (predicted.ys - measured.ys) / measured.ys


def max_abs_relative_error(measured: Series, predicted: Series) -> float:
    return float(np.abs(relative_errors(measured, predicted)).max())


def mean_relative_error(measured: Series, predicted: Series) -> float:
    """Signed mean relative error (positive = overestimate)."""
    return float(relative_errors(measured, predicted).mean())


def overestimation_factor(measured: Series, predicted: Series) -> float:
    """Mean of ``predicted / measured`` — e.g. the ~2.0 of Fig. 5."""
    if not np.array_equal(measured.xs, predicted.xs):
        raise ExperimentError("series sample different x grids")
    return float((predicted.ys / measured.ys).mean())
