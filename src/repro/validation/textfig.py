"""Text rendering of figures: data tables and ASCII plots for the CLI."""

from __future__ import annotations

import numpy as np

from .series import ExperimentResult

__all__ = ["render_table", "render_ascii_plot", "render_result"]


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 1e5 or abs(v) < 1e-2:
        return f"{v:.3g}"
    return f"{v:,.1f}" if abs(v) < 1e3 else f"{v:,.0f}"


def render_table(result: ExperimentResult) -> str:
    """The figure as a data table: one row per x, one column per series."""
    if not result.series:
        return "(no series)"
    xs = result.series[0].xs
    names = [s.name for s in result.series]
    widths = [max(len(result.x_label), 10)] + \
        [max(len(n), 12) for n in names]
    header = f"{result.x_label:>{widths[0]}}" + "".join(
        f"{n:>{w + 2}}" for n, w in zip(names, widths[1:]))
    lines = [header, "-" * len(header)]
    for i, x in enumerate(xs):
        row = f"{_fmt(float(x)):>{widths[0]}}"
        for s, w in zip(result.series, widths[1:]):
            val = s.ys[i] if i < s.ys.size and np.array_equal(s.xs, xs) \
                else s.ys[np.nonzero(s.xs == x)[0][0]] \
                if (s.xs == x).any() else float("nan")
            row += f"{_fmt(float(val)):>{w + 2}}"
        lines.append(row)
    return "\n".join(lines)


def render_ascii_plot(result: ExperimentResult, *, width: int = 64,
                      height: int = 16, logy: bool = False) -> str:
    """A rough ASCII plot of all series (good enough to eyeball shape)."""
    if not result.series:
        return "(no series)"
    markers = "*+ox#@%&"
    all_x = np.concatenate([s.xs for s in result.series])
    all_y = np.concatenate([s.ys for s in result.series])
    if logy:
        all_y = np.log10(np.maximum(all_y, 1e-12))
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1
    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(result.series):
        ys = np.log10(np.maximum(s.ys, 1e-12)) if logy else s.ys
        for x, y in zip(s.xs, ys):
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = markers[si % len(markers)]
    lines = [f"{result.title}  (y: {result.y_label}"
             f"{', log10' if logy else ''})"]
    lines += ["|" + "".join(r) for r in grid]
    lines.append("+" + "-" * width)
    lines.append(f" x: {result.x_label} in [{_fmt(x_lo)}, {_fmt(x_hi)}]")
    for si, s in enumerate(result.series):
        lines.append(f"   {markers[si % len(markers)]} {s.name}")
    return "\n".join(lines)


def render_result(result: ExperimentResult, *, plot: bool = True) -> str:
    """Full report: title, table, optional plot, checks and notes."""
    parts = [f"== {result.experiment}: {result.title} ==", "",
             render_table(result)]
    if plot and result.series:
        parts += ["", render_ascii_plot(result, logy=_spans_decades(result))]
    if result.checks:
        parts += ["", "Checks:"]
        parts += [f"  {c}" for c in result.checks]
    if result.notes:
        parts += ["", "Notes:"]
        parts += [f"  - {n}" for n in result.notes]
    return "\n".join(parts)


def _spans_decades(result: ExperimentResult) -> bool:
    ys = np.concatenate([s.ys for s in result.series])
    ys = ys[ys > 0]
    return ys.size > 0 and ys.max() / max(ys.min(), 1e-12) > 50
