"""Model-accuracy scoreboard: Section 5's verdict in one table.

Runs a fixed matrix of (workload, machine) cells, prices each execution
trace under every applicable cost model with *calibrated* parameters,
and tabulates signed errors.  This is the cross-cutting summary the
paper delivers in prose ("the models do not accurately predict the
actual running time ... in the following circumstances"): one glance
shows which model breaks on which machine and why.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..algorithms import apsp, bitonic, matmul, radix
from ..calibration.table1 import Calibration, calibrate
from ..core.base import CostModel
from ..core.bpram import MPBPRAM
from ..core.bsf import BSF
from ..core.bsp import BSP
from ..core.ebsp import EBSP
from ..core.logp import LogGP, logp_from_table1
from ..core.mp_bsp import MPBSP
from ..core.pram import PRAM
from ..machines import make_machine

__all__ = ["Cell", "CellSpec", "CELL_SPECS", "Scoreboard",
           "build_scoreboard", "render_scoreboard", "run_cell"]


@dataclass
class Cell:
    """One (workload, machine, model) measurement."""

    workload: str
    machine: str
    model: str
    measured_us: float
    predicted_us: float

    @property
    def error(self) -> float:
        """Signed relative error (positive = model overestimates)."""
        return (self.predicted_us - self.measured_us) / self.measured_us

    def to_dict(self) -> dict:
        """JSON-safe form (used by the service's ``POST /compare``)."""
        return {"workload": self.workload, "machine": self.machine,
                "model": self.model, "measured_us": self.measured_us,
                "predicted_us": self.predicted_us, "error": self.error}


@dataclass
class Scoreboard:
    cells: list[Cell] = field(default_factory=list)
    #: workload -> attained-vs-optimal entry from :mod:`repro.bounds`
    #: (empty when the board was built without the optimality column).
    optimality: dict[str, dict] = field(default_factory=dict)

    def models(self) -> list[str]:
        seen: list[str] = []
        for c in self.cells:
            if c.model not in seen:
                seen.append(c.model)
        return seen

    def rows(self) -> list[tuple[str, str]]:
        seen: list[tuple[str, str]] = []
        for c in self.cells:
            key = (c.workload, c.machine)
            if key not in seen:
                seen.append(key)
        return seen

    def error(self, workload: str, machine: str, model: str) -> float | None:
        for c in self.cells:
            if (c.workload, c.machine, c.model) == (workload, machine, model):
                return c.error
        return None

    def worst_model(self) -> str:
        """The model with the largest mean |error|.

        Instructively, this is *not* PRAM: applying a more restrictive
        communication abstraction to the wrong machine overcharges far
        worse than ignoring communication altogether — MP-BSP on the
        block-transfer GCel by two orders of magnitude, and BSF (which
        relays every transfer through a master) by four to six on every
        direct-network machine.
        """
        means = {m: np.mean([abs(c.error) for c in self.cells
                             if c.model == m]) for m in self.models()}
        return max(means, key=means.get)  # type: ignore[arg-type]


def _models_for(cal: Calibration) -> list[CostModel]:
    params = cal.params
    out: list[CostModel] = [PRAM(params), BSP(params), MPBSP(params),
                            MPBPRAM(params),
                            LogGP(params, logp_from_table1(params)),
                            BSF(params)]
    if cal.unb is not None:
        out.append(EBSP(params, cal.unb))
    return out


@dataclass(frozen=True)
class CellSpec:
    """One (workload, machine) cell of the scoreboard matrix.

    ``runner(machine, scale, seed)`` executes the workload on an
    already-constructed machine; keeping machine construction out of the
    spec lets :func:`run_cell` build the machine with phenomena switched
    off (the ablation harness, :mod:`repro.ablation`).
    """

    name: str
    machine: str
    runner: Callable  # (machine, scale, seed) -> RunResult


#: the scoreboard's workload matrix, in render order.
CELL_SPECS: dict[str, CellSpec] = {spec.name: spec for spec in [
    CellSpec("matmul", "cm5",
             lambda m, scale, seed: matmul.run(
                 m, max(64, int(256 * scale) // 16 * 16),
                 variant="bsp-staggered", seed=seed)),
    CellSpec("matmul-blk", "cm5",
             lambda m, scale, seed: matmul.run(
                 m, max(64, int(256 * scale) // 16 * 16),
                 variant="bpram", seed=seed)),
    CellSpec("bitonic", "maspar",
             lambda m, scale, seed: bitonic.run(
                 m, max(8, int(32 * scale) // 8 * 8),
                 variant="bsp", seed=seed)),
    CellSpec("bitonic-blk", "gcel",
             lambda m, scale, seed: bitonic.run(
                 m, max(256, int(1024 * scale) // 256 * 256),
                 variant="bpram", seed=seed)),
    CellSpec("apsp", "gcel",
             lambda m, scale, seed: apsp.run(
                 m, max(32, int(128 * scale) // 32 * 32), seed=seed)),
    CellSpec("radix", "modern",
             lambda m, scale, seed: radix.run(
                 m, max(256, int(1024 * scale) // 256 * 256),
                 variant="bpram", seed=seed)),
]}


def run_cell(name: str, *, scale: float = 1.0, seed: int = 0,
             disable: tuple[str, ...] = ()) -> list[Cell]:
    """Run one scoreboard cell and price its trace under every model.

    ``disable`` switches machine phenomena off (they must belong to the
    cell's machine — see ``Machine.PHENOMENA``).  Calibration runs on
    the *ablated* machine: removing a phenomenon changes the measured
    world, and the models are re-fitted to it just as they were fitted
    to the real one.  With ``disable=()`` this is bit-identical to the
    cell's slice of :func:`build_scoreboard`.
    """
    spec = CELL_SPECS[name]
    machine = make_machine(spec.machine, seed=seed, disable=tuple(disable))
    cal = calibrate(machine, seed=seed)
    res = spec.runner(machine, scale, seed)
    return [Cell(workload=spec.name, machine=spec.machine, model=model.name,
                 measured_us=res.time_us,
                 predicted_us=model.trace_cost(res.trace))
            for model in _models_for(cal)]


def build_scoreboard(*, scale: float = 1.0, seed: int = 0,
                     optimality: bool = True) -> Scoreboard:
    """Run the workload matrix and price every trace under every model.

    ``optimality=True`` additionally fills the attained-vs-optimal
    column from :mod:`repro.bounds`.  Under the default IR engine the
    cell runs above have just recorded their step programs, so the
    column is a pure structure extraction — no extra simulation.
    """
    board = Scoreboard()
    for name in CELL_SPECS:
        board.cells.extend(run_cell(name, scale=scale, seed=seed))
    if optimality:
        # imported lazily: repro.bounds imports the algorithm modules,
        # and the scoreboard must stay importable on its own.
        from ..bounds import scoreboard_optimality
        board.optimality = scoreboard_optimality(scale=scale, seed=seed)
    return board


def render_scoreboard(board: Scoreboard) -> str:
    """Text table: rows = (workload, machine), columns = models.

    The trailing ``att/opt`` column reports the workload's measured
    communication volume over its analytic lower bound (the optimality
    scoreboard, ``repro bounds``); ``-`` where no bound cell matches.
    """
    models = board.models()
    head = f"{'workload':<14}{'machine':<9}" + "".join(
        f"{m:>11}" for m in models) + f"{'att/opt':>10}"
    lines = ["Signed prediction error (positive = model overestimates)",
             head, "-" * len(head)]
    for workload, machine in board.rows():
        row = f"{workload:<14}{machine:<9}"
        for model in models:
            err = board.error(workload, machine, model)
            row += f"{'-':>11}" if err is None else f"{err:>+10.0%} "
        opt = board.optimality.get(workload)
        row += f"{'-':>10}" if opt is None else f"{opt['ratio']:>9.1f}x"
        lines.append(row)
    lines.append("")
    lines.append(f"least faithful model overall: {board.worst_model()}")
    return "\n".join(lines)
