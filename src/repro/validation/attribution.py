"""Per-superstep model-error attribution.

The paper's evaluation doesn't stop at "the prediction is 21% off" — it
identifies *which communication behaviour* carries the error (processor
contention in the matmul replicate phase, the cheap cube pattern in
bitonic's exchanges, the scatter superstep of APSP).  This module
mechanises that diagnosis: price a trace superstep by superstep, compare
against the machine's measured time, and rank the labels by their
contribution to the total error.

The same machinery doubles as a profiler (:func:`time_by_label`): the
hpc-parallel guides' first rule is "no optimisation without measuring",
and that applies to virtual time too.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.base import CostModel
from ..core.errors import TraceError
from ..core.trace import Trace

__all__ = ["time_by_label", "LabelError", "attribute_error",
           "render_attribution"]


def _family(label: str) -> str:
    """Collapse per-iteration labels: ``col-scatter-17`` -> ``col-scatter``,
    ``r3-allgather`` -> ``r-allgather``, ``merge-2.1`` -> ``merge``."""
    if not label:
        return "(unlabelled)"
    parts = []
    for part in label.split("-"):
        stripped = part.rstrip("0123456789.")
        if stripped:
            parts.append(stripped)
    return "-".join(parts) if parts else "(numeric)"


def time_by_label(trace: Trace) -> dict[str, float]:
    """Measured virtual time aggregated by superstep label family."""
    out: dict[str, float] = {}
    for step in trace:
        if np.isnan(step.measured_us):
            raise TraceError("trace contains unsimulated supersteps")
        key = _family(step.label)
        out[key] = out.get(key, 0.0) + step.measured_us
    return dict(sorted(out.items(), key=lambda kv: -kv[1]))


@dataclass
class LabelError:
    """Measured vs predicted time for one superstep family."""

    label: str
    measured_us: float
    predicted_us: float

    @property
    def gap_us(self) -> float:
        """Signed prediction gap (positive = model overestimates)."""
        return self.predicted_us - self.measured_us

    @property
    def error(self) -> float:
        if self.measured_us == 0:
            return 0.0 if self.predicted_us == 0 else float("inf")
        return self.gap_us / self.measured_us


def attribute_error(trace: Trace, model: CostModel) -> list[LabelError]:
    """Rank superstep families by their contribution to the model error.

    Returns one :class:`LabelError` per label family, sorted by absolute
    gap — the first entry answers "where is the model wrong?".
    """
    measured: dict[str, float] = {}
    predicted: dict[str, float] = {}
    for step in trace:
        if np.isnan(step.measured_us):
            raise TraceError("trace contains unsimulated supersteps")
        key = _family(step.label)
        measured[key] = measured.get(key, 0.0) + step.measured_us
        predicted[key] = predicted.get(key, 0.0) + model.superstep_cost(step)
    rows = [LabelError(label=k, measured_us=measured[k],
                       predicted_us=predicted[k]) for k in measured]
    rows.sort(key=lambda r: -abs(r.gap_us))
    return rows


def render_attribution(rows: list[LabelError], *, top: int = 10) -> str:
    """Text table of the largest error contributors."""
    head = (f"{'superstep family':<26}{'measured':>12}{'predicted':>12}"
            f"{'gap':>12}{'err':>8}")
    lines = ["Model-error attribution (largest gaps first)", head,
             "-" * len(head)]
    for r in rows[:top]:
        err = f"{r.error:+.0%}" if np.isfinite(r.error) else "inf"
        lines.append(f"{r.label:<26}{r.measured_us:>12,.0f}"
                     f"{r.predicted_us:>12,.0f}{r.gap_us:>+12,.0f}"
                     f"{err:>8}")
    total_m = sum(r.measured_us for r in rows)
    total_p = sum(r.predicted_us for r in rows)
    lines.append("-" * len(head))
    lines.append(f"{'total':<26}{total_m:>12,.0f}{total_p:>12,.0f}"
                 f"{total_p - total_m:>+12,.0f}"
                 f"{(total_p - total_m) / total_m:>+8.0%}")
    return "\n".join(lines)
