"""Data model for experiment outputs (one object per paper figure/table)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.errors import ExperimentError

__all__ = ["Series", "Check", "ExperimentResult"]


@dataclass
class Series:
    """One curve of a figure: name + aligned x/y arrays."""

    name: str
    xs: np.ndarray
    ys: np.ndarray

    def __post_init__(self) -> None:
        self.xs = np.asarray(self.xs, dtype=float)
        self.ys = np.asarray(self.ys, dtype=float)
        if self.xs.shape != self.ys.shape or self.xs.ndim != 1:
            raise ExperimentError(
                f"series {self.name!r}: xs {self.xs.shape} and ys "
                f"{self.ys.shape} must be aligned 1-D arrays")

    def at(self, x: float) -> float:
        """The y value at an exact x (the sweeps use exact grid points)."""
        idx = np.nonzero(self.xs == x)[0]
        if idx.size != 1:
            raise ExperimentError(f"series {self.name!r} has no point x={x}")
        return float(self.ys[idx[0]])

    # ------------------------------------------------------------------
    # Serialisation.  JSON emits the shortest decimal that round-trips a
    # float64, so to_dict -> from_dict reproduces the arrays bit for bit
    # (what lets cached results stand in for fresh computations).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"name": self.name, "xs": self.xs.tolist(),
                "ys": self.ys.tolist()}

    @classmethod
    def from_dict(cls, data: dict) -> "Series":
        return cls(data["name"], data["xs"], data["ys"])

    def identical(self, other: "Series") -> bool:
        """Exact (bitwise) equality of name and both arrays."""
        return (self.name == other.name
                and self.xs.shape == other.xs.shape
                and bool(np.all(self.xs == other.xs))
                and bool(np.all(self.ys == other.ys)))


@dataclass
class Check:
    """One verified paper claim: name, pass/fail and the evidence."""

    name: str
    passed: bool
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    checks: list[Check] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def get(self, name: str) -> Series:
        for s in self.series:
            if s.name == name:
                return s
        known = ", ".join(s.name for s in self.series)
        raise ExperimentError(
            f"{self.experiment}: no series {name!r}; have: {known}")

    @property
    def passed(self) -> bool:
        return all(c.passed for c in self.checks)

    def check(self, name: str, passed, detail: str = "") -> Check:
        c = Check(name=name, passed=bool(passed), detail=detail)
        self.checks.append(c)
        return c

    # ------------------------------------------------------------------
    # Serialisation (reproducibility artifacts)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-safe dictionary with every series, check and note."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "x_label": self.x_label,
            "y_label": self.y_label,
            "series": [s.to_dict() for s in self.series],
            "checks": [{"name": c.name, "passed": c.passed,
                        "detail": c.detail} for c in self.checks],
            "notes": list(self.notes),
            "passed": self.passed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`."""
        result = cls(experiment=data["experiment"], title=data["title"],
                     x_label=data["x_label"], y_label=data["y_label"])
        for s in data["series"]:
            result.series.append(Series.from_dict(s))
        for c in data["checks"]:
            result.checks.append(Check(name=c["name"], passed=c["passed"],
                                       detail=c.get("detail", "")))
        result.notes = list(data.get("notes", []))
        return result

    def identical(self, other: "ExperimentResult") -> bool:
        """Bit-exact equality of every field (golden/cache assertions)."""
        return (self.experiment == other.experiment
                and self.title == other.title
                and self.x_label == other.x_label
                and self.y_label == other.y_label
                and len(self.series) == len(other.series)
                and all(a.identical(b)
                        for a, b in zip(self.series, other.series))
                and [(c.name, c.passed, c.detail) for c in self.checks]
                == [(c.name, c.passed, c.detail) for c in other.checks]
                and self.notes == other.notes)
