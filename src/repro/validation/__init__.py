"""Measured-vs-predicted comparison utilities and figure rendering."""

from .attribution import (
    LabelError,
    attribute_error,
    render_attribution,
    time_by_label,
)
from .compare import (
    max_abs_relative_error,
    mean_relative_error,
    overestimation_factor,
    relative_errors,
)
from .scoreboard import Cell, Scoreboard, build_scoreboard, render_scoreboard
from .series import Check, ExperimentResult, Series
from .textfig import render_ascii_plot, render_result, render_table

__all__ = [
    "Series",
    "Check",
    "ExperimentResult",
    "relative_errors",
    "max_abs_relative_error",
    "mean_relative_error",
    "overestimation_factor",
    "render_table",
    "render_ascii_plot",
    "render_result",
    "Cell",
    "Scoreboard",
    "build_scoreboard",
    "render_scoreboard",
    "LabelError",
    "attribute_error",
    "render_attribution",
    "time_by_label",
]
