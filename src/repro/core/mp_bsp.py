"""The MP-BSP model — the paper's single-port BSP variant (§3.1).

The MasPar MP-1 allows each PE at most one outstanding message, so the
paper defines MP-BSP: computation alternates with *communication steps* in
which every processor writes at most one word into another processor's
memory.  A communication step in which processor ``i`` receives ``h_i``
messages costs ``L + g * max_i h_i`` — i.e. every step is a 1-h relation.

A superstep's communication phase is therefore priced as a *sequence of
steps*.  If the algorithm supplied an explicit schedule (step tags on the
message groups, as the staggered implementations of §4 do), the model
prices exactly those steps; otherwise it assumes the canonical staggered
schedule: ``h_s`` steps, each receiving ``ceil(h_r / h_s)`` messages.
"""

from __future__ import annotations

import numpy as np

from .base import CostModel
from .relations import CommPhase

__all__ = ["MPBSP"]


class MPBSP(CostModel):
    """Single-port BSP: each communication step costs ``L + g * h_step``."""

    name = "mp-bsp"

    def step_cost(self, substep: CommPhase) -> float:
        """Cost of one scheduled step, decomposed into single-port sub-steps.

        A processor sending ``s`` words in the step needs ``s`` sequential
        word-level communication steps; with receives spread as evenly as
        the schedule allows, the step costs ``s * (L + g * ceil(r / s))``
        where ``r`` is the maximum words received by any processor.  The
        common special cases reduce to the paper's charges: a permutation
        costs ``L + g`` and a 1-h relation costs ``L + g * h``.
        """
        if substep.is_empty:
            return 0.0
        w = self.params.w
        words = -(-substep.msg_bytes // w) * substep.count
        sent = np.bincount(substep.src, weights=words, minlength=substep.P)
        recv = np.bincount(substep.dst, weights=words, minlength=substep.P)
        s = float(sent.max(initial=0))
        r = float(recv.max(initial=0))
        if s == 0:
            return 0.0
        return s * (self.params.L + self.params.g * float(np.ceil(r / s)))

    def comm_cost(self, phase: CommPhase) -> float:
        if phase.is_empty:
            return 0.0
        if phase.n_steps > 1:
            return sum(self.step_cost(sub) for sub in phase.split_steps())
        # A single (or no) schedule step prices identically either way:
        # the canonical staggered decomposition of the whole phase.
        return self.step_cost(phase)
