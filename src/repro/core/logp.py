"""LogP and LogGP cost models (extension).

The paper repeatedly positions its models against LogP (Culler et al.,
PPoPP'93) and LogGP (Alexandrov et al., SPAA'95): LogP "captures [the
finite-capacity] aspect" behind the CM-5 contention error (§8), and
"another model that has many of the aspects of the MP-BPRAM is the LogGP
model" (§2.2, footnote 2).  This module implements both as trace pricers
so they can be compared head-to-head with the paper's models on the same
executions.

Parameters (all microseconds):

``L``  end-to-end latency of a small message,
``o``  processor overhead to send or receive one message,
``g``  gap — minimum interval between consecutive messages of one
       processor (reciprocal bandwidth per processor),
``G``  (LogGP only) gap per *byte* for long messages,
``P``  number of processors.

Pricing one communication phase (standard LogP accounting):

* every processor is busy ``o`` per message it sends or receives, plus
  ``(k - 1) * max(g - o, 0)`` stalls if it handles ``k = max(sends,
  recvs)`` messages back to back;
* under LogGP each message additionally streams its bytes beyond the
  first word at ``G`` per byte;
* the phase completes ``L`` after the busiest processor finishes (we add
  one ``L``, the pipelined-delivery reading the LogP authors use).

:func:`logp_from_table1` maps a machine's fitted (MP-)BSP / MP-BPRAM
parameters onto LogGP ones, so the extension experiment can price with
LogGP without a separate calibration pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import CostModel
from .errors import ModelError
from .params import ModelParams
from .relations import CommPhase

__all__ = ["LogPParams", "LogP", "LogGP", "logp_from_table1"]


@dataclass(frozen=True)
class LogPParams:
    """LogP/LogGP parameter set, in microseconds."""

    P: int
    L: float
    o: float
    g: float
    G: float = 0.0
    w: int = 4  # small-message size in bytes

    def __post_init__(self) -> None:
        if self.P <= 0:
            raise ModelError("LogP needs P >= 1")
        for name in ("L", "o", "g", "G"):
            if getattr(self, name) < 0:
                raise ModelError(f"LogP parameter {name} must be >= 0")

    @property
    def capacity(self) -> int:
        """The finite network capacity ``ceil(L / g)`` per processor."""
        if self.g == 0:
            return 1
        return max(1, int(np.ceil(self.L / self.g)))


class LogP(CostModel):
    """The LogP model: fixed-size small messages only.

    Messages larger than ``w`` bytes count as multiple small messages,
    like under BSP — LogP has no long-message support, which is what
    LogGP added.
    """

    name = "logp"

    def __init__(self, params: ModelParams, lp: LogPParams):
        super().__init__(params)
        self.lp = lp

    def _message_counts(self, phase: CommPhase) -> tuple[np.ndarray, np.ndarray]:
        words = -(-phase.msg_bytes // self.lp.w) * phase.count
        sent = np.bincount(phase.src, weights=words, minlength=phase.P)
        recv = np.bincount(phase.dst, weights=words, minlength=phase.P)
        return sent, recv

    def comm_cost(self, phase: CommPhase) -> float:
        if phase.is_empty:
            return 0.0
        lp = self.lp
        sent, recv = self._message_counts(phase)
        busy = lp.o * (sent + recv)
        k = np.maximum(sent, recv)
        stalls = np.maximum(k - 1, 0) * max(lp.g - lp.o, 0.0)
        return float((busy + stalls).max()) + lp.L


class LogGP(LogP):
    """LogGP: LogP plus a per-byte gap ``G`` for long messages.

    A message of ``m`` bytes costs its sender ``o + (m - w) G`` of
    occupancy (and the same at the receiver), so bulk transfers amortise
    the per-message overhead — the property that makes LogGP "have many
    of the aspects of the MP-BPRAM" (paper §2.2).
    """

    name = "loggp"

    def comm_cost(self, phase: CommPhase) -> float:
        if phase.is_empty:
            return 0.0
        lp = self.lp
        extra = np.maximum(phase.msg_bytes - lp.w, 0) * phase.count
        sent_msgs = phase.sends_per_proc
        recv_msgs = phase.recvs_per_proc
        # The per-byte gap G occupies the *sending* interface (the
        # receiver pays only its o at delivery) — standard LogGP
        # accounting: a long message takes o + (m-1)G + L + o.
        sent_bytes = np.bincount(phase.src, weights=extra, minlength=phase.P)
        busy = lp.o * (sent_msgs + recv_msgs) + lp.G * sent_bytes
        k = np.maximum(sent_msgs, recv_msgs)
        stalls = np.maximum(k - 1, 0) * max(lp.g - lp.o, 0.0)
        return float((busy + stalls).max()) + lp.L


def logp_from_table1(params: ModelParams) -> LogPParams:
    """Derive LogGP parameters from fitted (MP-)BSP / MP-BPRAM ones.

    The mapping follows the models' definitions: one small message costs
    a send plus a receive overhead, so ``o = g_bsp / 2``; the per-
    processor gap equals the BSP per-message cost, ``g = g_bsp``; the
    per-byte gap is the block-transfer rate, ``G = sigma``; the latency
    takes BSP's ``L`` without its barrier component (half, as a
    convention documented here).
    """
    return LogPParams(P=params.P, L=params.L / 2, o=params.g / 2,
                      g=params.g, G=params.sigma, w=params.w)
