"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause without masking
programming errors (``TypeError``, ``ValueError`` from NumPy, ...).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "TraceError",
    "SimulationError",
    "DeadlockError",
    "MailboxError",
    "CalibrationError",
    "ExperimentError",
    "AblationError",
    "BoundsError",
    "FaultError",
    "FaultInjected",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ModelError(ReproError):
    """A cost model was asked to price something it cannot represent."""


class TraceError(ReproError):
    """A communication/computation trace is malformed or inconsistent."""


class SimulationError(ReproError):
    """The SPMD simulator detected an illegal program behaviour."""


class DeadlockError(SimulationError):
    """Some virtual processors are blocked while others have terminated."""


class MailboxError(DeadlockError):
    """A receive did not match any delivered message.

    On a real machine this processor would block forever, so the error
    is a :class:`DeadlockError` (and transitively a simulation error).
    """


class CalibrationError(ReproError):
    """Parameter fitting failed or produced non-physical values."""


class ExperimentError(ReproError):
    """An experiment was configured with unusable parameters."""


class AblationError(ReproError):
    """An ablation request named unknown components or cells."""


class BoundsError(ReproError):
    """An optimality-bounds request named unknown cells or bad knobs."""


class FaultError(ReproError):
    """A fault plan is malformed (unknown point, bad parameter)."""


class FaultInjected(ReproError):
    """A deterministic injected fault fired (see :mod:`repro.faults`).

    Raised *on purpose* at an instrumented fault point; recovery code
    treats it as a transient failure.  It must pickle cleanly because it
    crosses process boundaries from pool workers to the parent.
    """

    def __init__(self, point: str, hit: int = 0):
        super().__init__(f"injected fault at {point!r} (hit #{hit})")
        self.point = point
        self.hit = hit

    def __reduce__(self):
        return (FaultInjected, (self.point, self.hit))
