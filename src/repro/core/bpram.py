"""The Message-Passing Block PRAM cost model (paper §2.2).

Processors exchange messages of arbitrary length; a message of ``m`` bytes
takes ``sigma * m + ell``.  The model is synchronous and *single-port*: in
one communication step a processor may send at most one message and
receive at most one message, and every processor awaits the completion of
the longest transfer of the step.

A communication phase is priced as the best single-port schedule of its
messages: a processor with ``k`` sends (or receives) needs ``k``
sequential steps, so

    ``cost = n_steps * ell + sigma * max_p max(bytes_sent_p, bytes_recv_p)``

with ``n_steps = max_p max(#sent_p, #recv_p)``.  The special cases reduce
to the paper's charges — a block permutation costs ``sigma * m + ell``,
and ``q`` staggered exchanges cost ``q * (sigma * m + ell)``.  Patterns
that *cannot* be routed directly under the single-port restriction (all
keys converging on one bucket in sample sort, §4.3.1) are not rejected but
priced at their true serialised cost, which is exactly why the paper's
sample sort needs the multi-phase routing scheme of [JáJá & Ryu].
"""

from __future__ import annotations

import numpy as np

from .base import CostModel
from .relations import CommPhase

__all__ = ["MPBPRAM"]


class MPBPRAM(CostModel):
    """Block-transfer model with parameters ``(P, sigma, ell)``."""

    name = "mp-bpram"

    def comm_cost(self, phase: CommPhase) -> float:
        if phase.is_empty:
            return 0.0
        sends = phase.sends_per_proc
        recvs = phase.recvs_per_proc
        n_steps = int(max(sends.max(initial=0), recvs.max(initial=0)))
        if n_steps == 0:
            return 0.0
        through = np.maximum(phase.bytes_sent_per_proc, phase.bytes_recv_per_proc)
        return n_steps * self.params.ell + self.params.sigma * float(through.max())
