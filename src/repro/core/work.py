"""Local-computation work descriptors.

Algorithms do not charge raw microseconds for local computation.  Instead
they emit *work descriptors* — "multiply two b x b blocks", "radix-sort n
keys" — which are priced twice:

* by a **cost model** (:func:`nominal_time`) using the constant
  coefficients of :class:`~repro.core.params.ModelParams` — this is what
  the paper's closed-form predictions do (e.g. ``alpha * N^3 / P``);
* by a **machine model** (:meth:`repro.machines.base.Machine.compute_time`)
  which may deviate from the constants, e.g. the CM-5 local matrix multiply
  slows down once the working set spills out of the 64 KB cache
  (paper §5.1: "the primary source of error is in the local computation").

Keeping work symbolic until pricing is what lets the reproduction show
*why* predictions go wrong, rather than baking the answer in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .errors import ModelError
from .params import ModelParams

__all__ = [
    "Work",
    "Flops",
    "MatmulBlock",
    "RadixSort",
    "Merge",
    "Compare",
    "Copy",
    "Generic",
    "WORK_FIELDS",
    "nominal_time",
    "nominal_time_batch",
    "work_fields",
]


@dataclass(frozen=True)
class Work:
    """Base class for all work descriptors."""


@dataclass(frozen=True)
class Flops(Work):
    """``n`` compound floating-point operations (one add + one multiply)."""

    n: float

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ModelError("Flops count must be >= 0")


@dataclass(frozen=True)
class MatmulBlock(Work):
    """A local dense matrix product ``(m x k) @ (k x n)``.

    Carries the shape so machines can model cache behaviour; the nominal
    cost is simply ``alpha * m * k * n``.
    """

    m: int
    k: int
    n: int

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) < 0:
            raise ModelError("matmul block dimensions must be >= 0")

    @property
    def flops(self) -> int:
        return self.m * self.k * self.n

    @property
    def working_set_bytes(self) -> int:
        """Bytes touched assuming 8-byte elements for all three operands."""
        return 8 * (self.m * self.k + self.k * self.n + self.m * self.n)


@dataclass(frozen=True)
class RadixSort(Work):
    """Radix sort of ``n`` keys of ``bits`` bits with ``radix_bits`` digits.

    Priced as ``(bits/radix_bits) * (sort_beta * 2**radix_bits +
    sort_gamma * n)`` — the empirical law of paper §4.2.1.
    """

    n: int
    bits: int = 32
    radix_bits: int = 8

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ModelError("RadixSort n must be >= 0")
        if self.bits <= 0 or self.radix_bits <= 0:
            raise ModelError("RadixSort bit widths must be positive")
        if self.radix_bits > self.bits:
            raise ModelError("radix_bits cannot exceed key width")

    @property
    def passes(self) -> int:
        return -(-self.bits // self.radix_bits)  # ceil division


@dataclass(frozen=True)
class Merge(Work):
    """A linear-time merge touching ``n`` keys (paper's bitonic merge step)."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ModelError("Merge n must be >= 0")


@dataclass(frozen=True)
class Compare(Work):
    """``n`` key comparisons / bucket classifications (sample sort §4.3)."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ModelError("Compare n must be >= 0")


@dataclass(frozen=True)
class Copy(Work):
    """Move ``n`` words between local buffers (the ``beta`` term of §4.1)."""

    n: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise ModelError("Copy n must be >= 0")


@dataclass(frozen=True)
class Generic(Work):
    """An opaque amount of local time, in microseconds.

    Used for bookkeeping the models do not distinguish (loop overheads,
    address arithmetic).  Both the nominal and machine price equal ``us``.
    """

    us: float

    def __post_init__(self) -> None:
        if self.us < 0:
            raise ModelError("Generic time must be >= 0")


def nominal_time(work: Work, params: ModelParams) -> float:
    """Price ``work`` with the constant model coefficients, in microseconds.

    This is the computation-cost function shared by all the paper's
    closed-form predictions; machine models deliberately deviate from it.
    """
    if isinstance(work, Flops):
        return params.alpha * work.n
    if isinstance(work, MatmulBlock):
        return params.alpha * work.flops
    if isinstance(work, RadixSort):
        return work.passes * (
            params.sort_beta * (1 << work.radix_bits) + params.sort_gamma * work.n
        )
    if isinstance(work, Merge):
        return params.merge_alpha * work.n
    if isinstance(work, Compare):
        return params.merge_alpha * work.n
    if isinstance(work, Copy):
        return params.beta_copy * work.n
    if isinstance(work, Generic):
        return work.us
    raise ModelError(f"cannot price work descriptor of type {type(work).__name__}")


# ----------------------------------------------------------------------
# Batched (vectorised) pricing
# ----------------------------------------------------------------------

#: parameter fields of each built-in work kind, in declaration order.
#: The batched engine packs homogeneous items into one array per field.
WORK_FIELDS: dict[type, tuple[str, ...]] = {
    Flops: ("n",),
    MatmulBlock: ("m", "k", "n"),
    RadixSort: ("n", "bits", "radix_bits"),
    Merge: ("n",),
    Compare: ("n",),
    Copy: ("n",),
    Generic: ("us",),
}


def work_fields(kind: type) -> tuple[str, ...]:
    """Parameter field names of a work kind (:data:`WORK_FIELDS` entry)."""
    try:
        return WORK_FIELDS[kind]
    except KeyError:
        raise ModelError(
            f"no field spec for work kind {kind.__name__}; add it to "
            "WORK_FIELDS to enable batched pricing") from None


def nominal_time_batch(kind: type, params: dict[str, np.ndarray],
                       mp: ModelParams) -> np.ndarray | None:
    """Vectorised :func:`nominal_time` over a batch of same-kind items.

    ``params`` maps field names (see :data:`WORK_FIELDS`) to equal-length
    arrays.  Returns per-item microseconds, elementwise bit-identical to
    the scalar function (same operations in the same order), or ``None``
    for kinds this function does not know — callers then fall back to
    per-item scalar pricing.
    """
    if kind is Flops:
        return mp.alpha * np.asarray(params["n"])
    if kind is MatmulBlock:
        flops = (np.asarray(params["m"]) * np.asarray(params["k"])
                 * np.asarray(params["n"]))
        return mp.alpha * flops
    if kind is RadixSort:
        bits = np.asarray(params["bits"])
        radix_bits = np.asarray(params["radix_bits"])
        passes = -(-bits // radix_bits)
        return passes * (mp.sort_beta * (1 << radix_bits)
                         + mp.sort_gamma * np.asarray(params["n"]))
    if kind is Merge or kind is Compare:
        return mp.merge_alpha * np.asarray(params["n"])
    if kind is Copy:
        return mp.beta_copy * np.asarray(params["n"])
    if kind is Generic:
        return np.asarray(params["us"], dtype=np.float64)
    return None
