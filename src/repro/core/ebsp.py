"""The E-BSP model — BSP extended with unbalanced communication (§2.3, §4.4.1).

E-BSP views every communication pattern as an ``(M, h1, h2)``-relation and,
crucially, charges *less* for patterns in which only part of the machine is
active.  The paper instantiates it twice:

* **MasPar variant** (:class:`EBSP`): the cost of a communication step with
  ``P'`` active processors is ``T_unb(P') = a P' + b sqrt(P') + c``, the
  law fitted from Fig. 2.  A phase is priced as a sequence of such steps
  (plus a ``g`` tail for steps that are 1-h relations with ``h > 1``).
* **GCel variant** (:class:`ScatterAwareBSP`): the paper observes that a
  multinode scatter — ``sqrt(P)`` senders spreading ``h`` messages over the
  machine — costs ``g_mscat * h + L`` with ``g_mscat ~= g / 9.1`` (§5.3,
  Fig. 14), and repairs the APSP prediction by using ``g_mscat`` for
  scatter-like supersteps.
"""

from __future__ import annotations

import math

import numpy as np

from .base import CostModel
from .bsp import BSP
from .errors import ModelError
from .params import ModelParams, UnbalancedCost
from .relations import CommPhase

__all__ = ["EBSP", "ScatterAwareBSP", "LocalityAwareBSP"]


class EBSP(CostModel):
    """E-BSP with an explicit partial-permutation cost law (MasPar §4.4.1)."""

    name = "e-bsp"

    def __init__(self, params: ModelParams, unb: UnbalancedCost):
        super().__init__(params)
        self.unb = unb

    def step_cost(self, substep: CommPhase) -> float:
        """Cost of one scheduled step, decomposed into single-port sub-steps.

        A processor sending ``s`` words in the step performs ``s``
        sequential word-level communication steps; in each, the active
        message count is the number of sending processors (the paper's
        ``P'``, Fig. 2).  A sub-step whose hottest destination receives
        ``h > 1`` words serialises there, adding the ``g`` tail.
        """
        if substep.is_empty:
            return 0.0
        w = self.params.w
        words = -(-substep.msg_bytes // w) * substep.count
        sent = np.bincount(substep.src, weights=words, minlength=substep.P)
        recv = np.bincount(substep.dst, weights=words, minlength=substep.P)
        s = float(sent.max(initial=0))
        if s == 0:
            return 0.0
        per_step = self.unb(substep.senders)
        h_r_step = float(np.ceil(recv.max(initial=0) / s))
        if h_r_step > 1:
            per_step += self.params.g * (h_r_step - 1)
        return s * per_step

    def comm_cost(self, phase: CommPhase) -> float:
        if phase.is_empty:
            return 0.0
        if phase.n_steps > 1:
            return sum(self.step_cost(sub) for sub in phase.split_steps())
        return self.step_cost(phase)

    def _comm_costs(self, phases: list[CommPhase]) -> list[float]:
        """Columnar unbalanced-cost pricing of many phases (bit-identical).

        One sort by ``(phase, step tag)`` makes every scheduled sub-step a
        contiguous run; word totals per ``(sub-step, endpoint)`` are exact
        integer segment sums, and the ``T_unb`` law is evaluated
        elementwise in the same operation order as :meth:`step_cost`.
        """
        if (type(self).comm_cost is not EBSP.comm_cost
                or type(self).step_cost is not EBSP.step_cost
                or len({ph.P for ph in phases}) > 1):
            return super()._comm_costs(phases)
        n = len(phases)
        out = [0.0] * n
        w = self.params.w
        srcs, dsts, words_l, steps, pids = [], [], [], [], []
        for i, ph in enumerate(phases):
            if not ph.is_empty:
                srcs.append(ph.src)
                dsts.append(ph.dst)
                words_l.append(-(-ph.msg_bytes // w) * ph.count)
                steps.append(ph.step)
                pids.append(np.full(ph.src.size, i, dtype=np.int64))
        if not srcs:
            return out
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
        words = np.concatenate(words_l)
        step = np.concatenate(steps)
        pid = np.concatenate(pids)
        P = phases[0].P

        smin = int(step.min())
        srange = int(step.max()) - smin + 1
        key = pid * srange + (step - smin)
        order = np.argsort(key, kind="stable")
        skey = key[order]
        s_arr = src[order]
        d_arr = dst[order]
        w_arr = words[order]
        spid = pid[order]
        new_seg = np.concatenate(([True], np.diff(skey) != 0))
        starts = np.nonzero(new_seg)[0]
        nseg = starts.size
        seg_id = np.cumsum(new_seg) - 1
        seg_pid = spid[starts]

        def _endpoint_stats(ep: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            """Per sub-step: (max summed words at one endpoint, #distinct
            endpoints) — exact int64 sums, order-independent."""
            o2 = np.argsort(seg_id * P + ep, kind="stable")
            k2 = (seg_id * P + ep)[o2]
            w2 = w_arr[o2]
            run_starts = np.nonzero(
                np.concatenate(([True], np.diff(k2) != 0)))[0]
            run_sum = np.add.reduceat(w2, run_starts)
            run_seg = k2[run_starts] // P
            srs = np.nonzero(np.concatenate(([True], np.diff(run_seg) != 0)))[0]
            mx = np.zeros(nseg, dtype=np.int64)
            cnt = np.zeros(nseg, dtype=np.int64)
            mx[run_seg[srs]] = np.maximum.reduceat(run_sum, srs)
            cnt[run_seg[srs]] = np.diff(np.concatenate((srs, [run_seg.size])))
            return mx, cnt

        sent_max, senders = _endpoint_stats(s_arr)
        recv_max, _ = _endpoint_stats(d_arr)

        s_max = sent_max.astype(np.float64)
        senders_f = senders.astype(np.float64)
        per_step = (self.unb.a * senders_f + self.unb.b * np.sqrt(senders_f)
                    + self.unb.c)
        safe = np.where(s_max > 0, s_max, 1.0)
        h_r_step = np.ceil(recv_max.astype(np.float64) / safe)
        per_step = per_step + self.params.g * (h_r_step - 1.0)
        seg_cost = np.where(s_max > 0, s_max * per_step, 0.0)

        phase_bounds = np.nonzero(
            np.concatenate(([True], np.diff(seg_pid) != 0)))[0]
        phase_ends = np.concatenate((phase_bounds[1:], [nseg]))
        costs_l = seg_cost.tolist()
        for pi, lo, hi in zip(seg_pid[phase_bounds].tolist(),
                              phase_bounds.tolist(), phase_ends.tolist()):
            out[pi] = sum(costs_l[lo:hi])
        return out


class ScatterAwareBSP(BSP):
    """BSP with a cheaper bandwidth factor for scatter-like phases.

    A phase counts as *scatter-like* when at most ``sqrt(P)`` processors
    send while the receives are spread over (essentially) the whole
    machine — the ``(N, N/sqrt(P), N/P)``-relation of the paper's APSP
    broadcast.  Such phases are priced ``g_scatter * h + L``; everything
    else falls back to plain BSP.
    """

    name = "bsp+mscat"

    def __init__(self, params: ModelParams, g_scatter: float):
        super().__init__(params)
        if g_scatter <= 0:
            raise ModelError("g_scatter must be positive")
        self.g_scatter = g_scatter

    def is_scatter_like(self, phase: CommPhase) -> bool:
        if phase.is_empty:
            return False
        few_senders = phase.senders <= math.isqrt(phase.P) + 1
        spread = phase.receivers >= phase.P // 2
        return few_senders and spread

    def comm_cost(self, phase: CommPhase) -> float:
        if phase.is_empty:
            return 0.0
        if not self.is_scatter_like(phase):
            return super().comm_cost(phase)
        w = self.params.w
        words = -(-phase.msg_bytes // w) * phase.count
        sent = np.bincount(phase.src, weights=words, minlength=phase.P)
        h = float(sent.max(initial=0))
        return self.g_scatter * h + self.params.L


class LocalityAwareBSP(BSP):
    """BSP with a distance-dependent bandwidth factor (E-BSP's "general
    locality" ingredient — extension).

    On a store-and-forward grid, a word travelling ``d`` hops costs
    roughly ``g0 + g_hop * d``; the flat BSP ``g`` is this quantity
    averaged over a *random* pattern.  This model prices each message by
    its actual distance on a ``side x side`` grid, so neighbour patterns
    (halo exchanges) come out cheaper and machine-spanning patterns
    dearer — the effect the E-BSP technical report models and our T800
    machine exhibits.

    ``g0`` is the distance-independent per-word cost and ``g_hop`` the
    per-word-per-hop cost; a calibration can obtain them by fitting
    timings of fixed-distance permutations (see the ext-t800 experiment).
    """

    name = "bsp+locality"

    def __init__(self, params: ModelParams, side: int, g0: float,
                 g_hop: float):
        super().__init__(params)
        if side * side != params.P:
            raise ModelError(f"grid side {side} does not match P={params.P}")
        if g0 < 0 or g_hop < 0:
            raise ModelError("g0 and g_hop must be non-negative")
        self.side = side
        self.g0 = g0
        self.g_hop = g_hop

    def comm_cost(self, phase: CommPhase) -> float:
        if phase.is_empty:
            return 0.0
        w = self.params.w
        words = -(-phase.msg_bytes // w) * phase.count
        sr, sc = np.divmod(phase.src, self.side)
        dr, dc = np.divmod(phase.dst, self.side)
        hops = np.abs(sr - dr) + np.abs(sc - dc)
        cost = words * (self.g0 + self.g_hop * hops)
        per_send = np.bincount(phase.src, weights=cost, minlength=phase.P)
        per_recv = np.bincount(phase.dst, weights=cost, minlength=phase.P)
        return float(np.maximum(per_send, per_recv).max()) + self.params.L

    def _comm_costs(self, phases: list[CommPhase]) -> list[float]:
        """Columnar distance-weighted pricing (bit-identical to the
        scalar path: per-group costs are elementwise and the combined-key
        bincounts accumulate in the same group order)."""
        if (type(self).comm_cost is not LocalityAwareBSP.comm_cost
                or len({ph.P for ph in phases}) > 1):
            return super()._comm_costs(phases)
        n = len(phases)
        out = [0.0] * n
        w = self.params.w
        srcs, dsts, words_l, pids = [], [], [], []
        for i, ph in enumerate(phases):
            if not ph.is_empty:
                srcs.append(ph.src)
                dsts.append(ph.dst)
                words_l.append(-(-ph.msg_bytes // w) * ph.count)
                pids.append(np.full(ph.src.size, i, dtype=np.int64))
        if not srcs:
            return out
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
        words = np.concatenate(words_l)
        pid = np.concatenate(pids)
        P = phases[0].P
        sr, sc = np.divmod(src, self.side)
        dr, dc = np.divmod(dst, self.side)
        hops = np.abs(sr - dr) + np.abs(sc - dc)
        cost = words * (self.g0 + self.g_hop * hops)
        per_send = np.bincount(pid * P + src, weights=cost,
                               minlength=n * P).reshape(n, P)
        per_recv = np.bincount(pid * P + dst, weights=cost,
                               minlength=n * P).reshape(n, P)
        total = np.maximum(per_send, per_recv).max(axis=1) + self.params.L
        for i in np.unique(pid).tolist():
            out[i] = float(total[i])
        return out
