"""Closed-form running-time predictions from Section 4 of the paper.

These are the exact algebraic expressions the paper derives for each
algorithm under each model, parameterised by :class:`ModelParams`.  They
serve two purposes:

* they are the "predicted" curves of Figs. 3-6, 8-13 and 15;
* tests cross-check them against trace-priced costs (pricing the actual
  simulator trace with the corresponding :class:`CostModel`), which
  validates both the algorithm implementations and the model pricers.

All times are in microseconds.  ``flops_to_mflops`` converts to the
Mflops axis used by Figs. 16, 19 and 20.
"""

from __future__ import annotations

import math

import numpy as np

from .errors import ModelError
from .params import ModelParams, UnbalancedCost

__all__ = [
    "cube_root_procs",
    "bsp_matmul",
    "mp_bsp_matmul",
    "bpram_matmul",
    "local_sort_time",
    "bsp_bitonic",
    "mp_bsp_bitonic",
    "bpram_bitonic",
    "bsp_sample_sort",
    "bpram_sample_sort",
    "bsp_apsp",
    "mp_bsp_apsp",
    "ebsp_apsp_maspar",
    "scatter_corrected_apsp",
    "bsp_lu",
    "lu_flops",
    "flops_to_mflops",
    "matmul_mflops",
]


def cube_root_procs(P: int) -> int:
    """Return ``q`` with ``q**3 == P`` or raise (matmul needs ``P = q^3``)."""
    q = round(P ** (1.0 / 3.0))
    if q * q * q != P:
        raise ModelError(f"matrix multiplication needs P = q^3, got P={P}")
    return q


def _ilog2(n: int) -> int:
    if n <= 0 or n & (n - 1):
        raise ModelError(f"expected a positive power of two, got {n}")
    return n.bit_length() - 1


# ----------------------------------------------------------------------
# Matrix multiplication (paper §4.1)
# ----------------------------------------------------------------------

def bsp_matmul(N: int, p: ModelParams, P: int | None = None) -> float:
    """``T = alpha N^3/P + beta N^2/q^2 + 3 g N^2/q^2 + 2 L`` (§4.1)."""
    P = P or p.P
    q = cube_root_procs(P)
    words = N * N / q ** 2
    return (p.alpha * N ** 3 / P + p.beta_copy * words
            + 3.0 * p.g * words + 2.0 * p.L)


def mp_bsp_matmul(N: int, p: ModelParams, P: int | None = None) -> float:
    """``T = alpha N^3/P + beta N^2/q^2 + 3 (g+L) N^2/q^2`` (§4.1)."""
    P = P or p.P
    q = cube_root_procs(P)
    words = N * N / q ** 2
    return (p.alpha * N ** 3 / P + p.beta_copy * words
            + 3.0 * (p.g + p.L) * words)


def bpram_matmul(N: int, p: ModelParams, P: int | None = None) -> float:
    """``T = alpha N^3/P + beta N^2/q^2 + 3 q (sigma w N^2/P + ell)`` (§4.1)."""
    P = P or p.P
    q = cube_root_procs(P)
    words = N * N / q ** 2
    return (p.alpha * N ** 3 / P + p.beta_copy * words
            + 3.0 * q * (p.sigma * p.w * N * N / P + p.ell))


# ----------------------------------------------------------------------
# Sorting (paper §4.2, §4.3)
# ----------------------------------------------------------------------

def local_sort_time(n: float, p: ModelParams, *, bits: int = 32,
                    radix_bits: int = 8) -> float:
    """Radix-sort law ``(b/r)(beta 2^r + gamma n)`` (§4.2.1)."""
    passes = -(-bits // radix_bits)
    return passes * (p.sort_beta * (1 << radix_bits) + p.sort_gamma * n)


def _bitonic_stages(P: int) -> float:
    """``sum_{d=1}^{log P} d = 0.5 log P (log P + 1)`` merge steps."""
    lg = _ilog2(P)
    return 0.5 * lg * (lg + 1)


def bsp_bitonic(M: int, p: ModelParams, P: int | None = None) -> float:
    """``T_ls + sum_d d (alpha_m M + g M + L)`` (§4.2)."""
    P = P or p.P
    steps = _bitonic_stages(P)
    return (local_sort_time(M, p)
            + steps * (p.merge_alpha * M + p.g * M + p.L))


def mp_bsp_bitonic(M: int, p: ModelParams, P: int | None = None) -> float:
    """``T_ls + 0.5 log P (log P + 1)(alpha_m M + (g+L) M)`` (§4.2)."""
    P = P or p.P
    steps = _bitonic_stages(P)
    return (local_sort_time(M, p)
            + steps * (p.merge_alpha * M + (p.g + p.L) * M))


def bpram_bitonic(M: int, p: ModelParams, P: int | None = None) -> float:
    """``T_ls + 0.5 log P (log P + 1)(alpha_m M + sigma w M + ell)`` (§4.2)."""
    P = P or p.P
    steps = _bitonic_stages(P)
    return (local_sort_time(M, p)
            + steps * (p.merge_alpha * M + p.sigma * p.w * M + p.ell))


def bsp_sample_sort(M: int, p: ModelParams, *, oversample: int,
                    M_max: float | None = None, P: int | None = None) -> float:
    """BSP sample sort: splitter + send + local-sort phases (§4.3).

    ``M_max`` is the maximum bucket size; defaults to the expectation-style
    bound ``M * (1 + sqrt(2 ln P / S))`` if not supplied from a run.
    """
    P = P or p.P
    S = oversample
    if S < 1:
        raise ModelError("oversampling ratio must be >= 1")
    if M_max is None:
        M_max = M * (1.0 + math.sqrt(2.0 * math.log(max(P, 2)) / S))
    t_splitter = bsp_bitonic(S, p, P) + p.g * (P - 1) + p.L
    t_scan = 2.0 * (p.g * P + p.L)
    t_send = (local_sort_time(M, p) + p.merge_alpha * (M + P)
              + t_scan + p.g * M_max + p.L)
    t_buckets = local_sort_time(M_max, p)
    return t_splitter + t_send + t_buckets


def bpram_sample_sort(M: int, p: ModelParams, *, oversample: int,
                      M_max: float | None = None, P: int | None = None) -> float:
    """MP-BPRAM sample sort with the block-transfer substeps of §4.3.1.

    Splitter broadcast as a ``P x P`` transpose: ``2 sqrt(P)(sigma w
    sqrt(P) + ell)``; multi-scan ``4 sqrt(P)(sigma w sqrt(P) + ell)``;
    send-to-buckets ``4 sqrt(P)(4 sigma w N/P^1.5 + ell)``.
    """
    P = P or p.P
    S = oversample
    if M_max is None:
        M_max = M * (1.0 + math.sqrt(2.0 * math.log(max(P, 2)) / S))
    rootP = math.sqrt(P)
    t_splitter = (bpram_bitonic(S, p, P)
                  + 2.0 * rootP * (p.sigma * p.w * rootP + p.ell))
    t_scan = 4.0 * rootP * (p.sigma * p.w * rootP + p.ell)
    t_classify = local_sort_time(M, p) + p.merge_alpha * (M + P)
    t_route = 4.0 * rootP * (4.0 * p.sigma * p.w * M / rootP + p.ell)
    t_buckets = local_sort_time(M_max, p)
    return t_splitter + t_scan + t_classify + t_route + t_buckets


# ----------------------------------------------------------------------
# All pairs shortest path (paper §4.4)
# ----------------------------------------------------------------------

def _apsp_geometry(N: int, P: int) -> tuple[int, int]:
    rootP = math.isqrt(P)
    if rootP * rootP != P:
        raise ModelError(f"APSP needs a square processor grid, got P={P}")
    if N % rootP:
        raise ModelError(f"APSP needs sqrt(P) | N, got N={N}, sqrt(P)={rootP}")
    return rootP, N // rootP


def bsp_apsp(N: int, p: ModelParams, P: int | None = None) -> float:
    """``T = alpha N^3 / P + 2 N T_bcast`` with the BSP broadcast (§4.4)."""
    P = P or p.P
    rootP, M = _apsp_geometry(N, P)
    t_bcast = 2.0 * (p.g * M + p.L)
    if M < rootP:
        t_bcast += (p.g + p.L) * math.log2(rootP / M)
    return p.alpha * N ** 3 / P + 2.0 * N * t_bcast


def mp_bsp_apsp(N: int, p: ModelParams, P: int | None = None) -> float:
    """APSP under MP-BSP: ``T_bcast = 2 (g+L) M`` (or the ``M < sqrt(P)`` form)."""
    P = P or p.P
    rootP, M = _apsp_geometry(N, P)
    if M >= rootP:
        t_bcast = 2.0 * (p.g + p.L) * M
    else:
        t_bcast = (p.g + p.L) * (2.0 * M + math.log2(rootP / M))
    return p.alpha * N ** 3 / P + 2.0 * N * t_bcast


def ebsp_apsp_maspar(N: int, p: ModelParams, unb: UnbalancedCost,
                     P: int | None = None) -> float:
    """APSP under the E-BSP MasPar variant (§4.4.1).

    ``T_bcast = M T_unb(sqrt(P)) + M T_unb(P)`` for ``M >= sqrt(P)``; an
    extra doubling phase of ``log(sqrt(P)/M)`` steps with ``2^i N`` active
    PEs otherwise.
    """
    P = P or p.P
    rootP, M = _apsp_geometry(N, P)
    t_bcast = M * unb(rootP) + M * unb(P)
    if M < rootP:
        phases = int(math.log2(rootP / M))
        t_bcast += sum(unb(min(P, (1 << i) * N)) for i in range(phases))
    return p.alpha * N ** 3 / P + 2.0 * N * t_bcast


def scatter_corrected_apsp(N: int, p: ModelParams, g_scatter: float,
                           P: int | None = None) -> float:
    """The paper's GCel repair: first broadcast superstep at ``g_mscat`` (§5.3)."""
    P = P or p.P
    rootP, M = _apsp_geometry(N, P)
    t_bcast = (g_scatter * M + p.L) + (p.g * M + p.L)
    if M < rootP:
        t_bcast += (p.g + p.L) * math.log2(rootP / M)
    return p.alpha * N ** 3 / P + 2.0 * N * t_bcast


# ----------------------------------------------------------------------
# LU decomposition (extension; same broadcast structure as APSP, §4.4)
# ----------------------------------------------------------------------

def bsp_lu(N: int, p: ModelParams, P: int | None = None, *,
           g_bcast: float | None = None) -> float:
    """Right-looking blocked LU under BSP (extension).

    Per elimination step: a one-word pivot broadcast down a column, a
    column-segment and a row-segment broadcast (single sender each, so
    BSP charges the sender side ``g (sqrt(P)-1) l_k + L``), and the
    trailing update whose *maximum* per-processor work is
    ``l_k^2`` compound ops (the bottom-right block).

    ``g_bcast`` substitutes a cheaper bandwidth factor for the broadcast
    supersteps — the same repair as the paper's ``g_mscat`` for APSP
    (§5.3): a single-sender broadcast is receive-bound on the GCel.
    """
    P = P or p.P
    rootP, M = _apsp_geometry(N, P)
    g_b = p.g if g_bcast is None else g_bcast
    t = 0.0
    for k in range(N - 1):
        l_k = min(M, N - 1 - k)
        # pivot word down the column (also a single-sender broadcast)
        t += g_b * (rootP - 1) + p.L
        # column and row segment broadcasts + multiplier division
        t += 2.0 * (g_b * (rootP - 1) * l_k + p.L)
        t += p.alpha * l_k  # the division a_ik / a_kk
        # trailing update: the busiest processor updates an l_k x l_k tile
        t += p.alpha * l_k * l_k
    return t


def lu_flops(N: int) -> float:
    """Sequential compound-op count of LU, ``sum_k (N-1-k)^2 + (N-1-k)``."""
    ks = np.arange(N - 1)
    rem = N - 1 - ks
    return float((rem * rem + rem).sum())


# ----------------------------------------------------------------------
# Mflops conversions (Figs. 16, 19, 20)
# ----------------------------------------------------------------------

def flops_to_mflops(flops: float, time_us: float) -> float:
    """Aggregate Mflops given total flops and a time in microseconds."""
    if time_us <= 0:
        raise ModelError("time must be positive to compute a rate")
    return flops / time_us


def matmul_mflops(N: int, time_us: float) -> float:
    """Matrix-multiplication rate, counting ``2 N^3`` flops (as the paper does)."""
    return flops_to_mflops(2.0 * N ** 3, time_us)
