"""The PRAM cost model (extension — the paper's point of departure).

Section 1: "because the PRAM model does not capture communication cost,
it does not discourage the design of parallel algorithms with huge
amounts of interprocessor communication."  Pricing real traces with a
PRAM — communication and synchronisation free, computation at the
machine's ``alpha`` — quantifies exactly how wrong that is on each
platform: the extension experiment shows PRAM underestimating a
communication-bound sort by orders of magnitude on the GCel while being
merely optimistic for compute-bound matmul on the CM-5.
"""

from __future__ import annotations

from .base import CostModel
from .relations import CommPhase

__all__ = ["PRAM"]


class PRAM(CostModel):
    """Synchronous shared memory: communication costs nothing."""

    name = "pram"

    def comm_cost(self, phase: CommPhase) -> float:
        return 0.0
