"""Core cost models and parameter sets — the paper's primary contribution.

Public surface:

* :class:`ModelParams`, :class:`UnbalancedCost`, :data:`PAPER_PARAMS` —
  Table 1 and the MasPar partial-permutation law;
* :class:`CommPhase`, :class:`Relation` — communication patterns and their
  ``(M, h1, h2)`` analysis;
* :class:`Trace`, :class:`Superstep` — execution traces;
* work descriptors (:class:`Flops`, :class:`RadixSort`, ...);
* the cost models :class:`BSP`, :class:`MPBSP`, :class:`MPBPRAM`,
  :class:`EBSP`, :class:`ScatterAwareBSP`;
* the closed-form predictions of paper §4 in :mod:`repro.core.predictions`.
"""

from .base import CostModel
from .bpram import MPBPRAM
from .bsf import BSF
from .bsp import BSP
from .ebsp import EBSP, LocalityAwareBSP, ScatterAwareBSP
from .logp import LogGP, LogP, LogPParams, logp_from_table1
from .errors import (
    CalibrationError,
    DeadlockError,
    ExperimentError,
    MailboxError,
    ModelError,
    ReproError,
    SimulationError,
    TraceError,
)
from .mp_bsp import MPBSP
from .pram import PRAM
from .params import PAPER_PARAMS, PAPER_UNBALANCED, ModelParams, UnbalancedCost, paper_params
from .relations import CommPhase, Relation, merge_phases
from .trace import Superstep, Trace
from .work import (
    Compare,
    Copy,
    Flops,
    Generic,
    MatmulBlock,
    Merge,
    RadixSort,
    Work,
    nominal_time,
)

__all__ = [
    "CostModel",
    "BSP",
    "MPBSP",
    "MPBPRAM",
    "BSF",
    "EBSP",
    "ScatterAwareBSP",
    "LocalityAwareBSP",
    "LogP",
    "LogGP",
    "LogPParams",
    "logp_from_table1",
    "PRAM",
    "ModelParams",
    "UnbalancedCost",
    "PAPER_PARAMS",
    "PAPER_UNBALANCED",
    "paper_params",
    "CommPhase",
    "Relation",
    "merge_phases",
    "Trace",
    "Superstep",
    "Work",
    "Flops",
    "MatmulBlock",
    "RadixSort",
    "Merge",
    "Compare",
    "Copy",
    "Generic",
    "nominal_time",
    "ReproError",
    "ModelError",
    "TraceError",
    "SimulationError",
    "DeadlockError",
    "MailboxError",
    "CalibrationError",
    "ExperimentError",
]
