"""Exact left-to-right segmented sums — the replay engines' inner kernel.

Both the fused IR replay path and the MasPar batched pricer need "sum
``terms[starts[i] : starts[i] + lens[i]]`` left-to-right, per segment
``i``" with *scalar-loop float semantics*: each segment's partial sums
must associate ``((t0 + t1) + t2) ...`` exactly like the per-phase
``cost += term`` loop they replace.  ``np.add.reduceat`` (pairwise
summation) would not preserve that association, so the NumPy fallback
sweeps column-by-column: iteration ``k`` adds every segment's ``k``-th
term, which keeps each segment's accumulation strictly left-to-right
while doing one vector operation per column.

When the optional ``repro[jit]`` extra is installed, a numba kernel does
the same sequential accumulation per segment in compiled code — the
operations are identical IEEE double adds in the identical order, so the
result is bit-identical (no fastmath).  The NumPy path is the required
default; numba never changes results, only speed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["segment_sums", "HAVE_NUMBA"]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit  # type: ignore

    @_njit(cache=True)
    def _segment_sums_jit(terms, starts, lens, out):  # pragma: no cover
        for i in range(starts.size):
            c = 0.0
            for k in range(lens[i]):
                c += terms[starts[i] + k]
            out[i] = c

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - numba absent or broken
    _segment_sums_jit = None
    HAVE_NUMBA = False


def _segment_sums_numpy(terms: np.ndarray, starts: np.ndarray,
                        lens: np.ndarray, out: np.ndarray) -> None:
    maxlen = int(lens.max())
    if maxlen == 1 and lens.min() == 1:
        out[:] = terms[starts]
        return
    for k in range(maxlen):
        mask = lens > k
        out[mask] += terms[starts[mask] + k]


def segment_sums(terms: np.ndarray, starts: np.ndarray,
                 lens: np.ndarray) -> np.ndarray:
    """Per-segment left-to-right sums of ``terms``.

    ``out[i] = terms[starts[i]] + ... + terms[starts[i] + lens[i] - 1]``
    accumulated in index order from ``0.0``; zero-length segments sum to
    exactly ``0.0``.
    """
    out = np.zeros(lens.size)
    if terms.size and lens.size:
        if _segment_sums_jit is not None:  # pragma: no cover - numba only
            _segment_sums_jit(np.ascontiguousarray(terms),
                              np.ascontiguousarray(starts),
                              np.ascontiguousarray(lens), out)
        else:
            _segment_sums_numpy(terms, starts, lens, out)
    return out
