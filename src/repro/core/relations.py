"""Communication patterns and their vectorised analysis.

The central objects of the paper are *communication patterns* and the ways
the different models summarise them:

* BSP sees an ``h``-relation: ``h = max(h_s, h_r)`` where ``h_s``/``h_r``
  are the maximum number of messages sent/received by any processor;
* MP-BPRAM sees a sequence of *block steps*, each processor sending and
  receiving at most one (long) message per step;
* E-BSP sees an ``(M, h1, h2)``-relation — at most ``h1`` sends and ``h2``
  receives per processor, at most ``M`` messages in total.

A :class:`CommPhase` stores the pattern of one superstep as *message
groups* — ``count`` messages of ``msg_bytes`` bytes each from ``src`` to
``dst`` — so a processor sending 4096 fine-grain words is one group, not
4096 Python objects.  All analyses below are NumPy-vectorised over groups
(per the hpc-parallel guides: no per-message Python loops on hot paths).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from .errors import TraceError

__all__ = ["CommPhase", "Relation", "merge_phases"]


@dataclass(frozen=True)
class Relation:
    """The E-BSP ``(M, h1, h2)`` summary of a communication pattern.

    ``h1``/``h2`` are the maximum per-processor send/receive counts, ``M``
    the total number of messages, ``active`` the number of processors that
    send or receive at least one message.  A full h-relation is the special
    case ``M = h * P`` and ``h1 = h2 = h`` (paper §2.3).
    """

    M: int
    h1: int
    h2: int
    active: int

    @property
    def h(self) -> int:
        """The plain-BSP summary ``h = max(h1, h2)``."""
        return max(self.h1, self.h2)

    def is_full_h_relation(self, P: int) -> bool:
        return self.h1 == self.h2 and self.M == self.h1 * P


@dataclass(frozen=True)
class CommPhase:
    """The communication pattern of one superstep, as message groups.

    Parameters
    ----------
    P:
        number of processors.
    src, dst:
        integer arrays of shape ``(G,)`` — endpoints of each group.
    count:
        messages per group (``>= 1``).
    msg_bytes:
        bytes per message in the group.
    step:
        schedule sub-step tag per group.  Single-port machines (MasPar)
        route one sub-step at a time; ``-1`` means "no schedule given".
    stagger:
        whether the send order was staggered to avoid several processors
        targeting the same destination simultaneously (paper §5.1 — the
        unstaggered CM-5 matrix multiply runs 21% slower).
    """

    P: int
    src: np.ndarray
    dst: np.ndarray
    count: np.ndarray
    msg_bytes: np.ndarray
    step: np.ndarray = field(default=None)  # type: ignore[assignment]
    stagger: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "src", np.asarray(self.src, dtype=np.int64))
        object.__setattr__(self, "dst", np.asarray(self.dst, dtype=np.int64))
        object.__setattr__(self, "count", np.asarray(self.count, dtype=np.int64))
        object.__setattr__(self, "msg_bytes", np.asarray(self.msg_bytes, dtype=np.int64))
        if self.step is None:
            object.__setattr__(self, "step", np.full(self.src.shape, -1, dtype=np.int64))
        else:
            object.__setattr__(self, "step", np.asarray(self.step, dtype=np.int64))
        shapes = {a.shape for a in (self.src, self.dst, self.count, self.msg_bytes, self.step)}
        if len(shapes) != 1 or any(a.ndim != 1 for a in (self.src,)):
            raise TraceError(f"inconsistent group array shapes: {shapes}")
        if self.P <= 0:
            raise TraceError("CommPhase needs P >= 1")
        if self.src.size:
            if self.src.min() < 0 or self.src.max() >= self.P:
                raise TraceError("message source out of range")
            if self.dst.min() < 0 or self.dst.max() >= self.P:
                raise TraceError("message destination out of range")
            if self.count.min() < 1:
                raise TraceError("group count must be >= 1")
            if self.msg_bytes.min() < 0:
                raise TraceError("message size must be >= 0")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def _trusted(cls, P: int, src: np.ndarray, dst: np.ndarray, count: np.ndarray,
                 msg_bytes: np.ndarray, step: np.ndarray, stagger: bool) -> "CommPhase":
        """Build a phase from arrays already known to be valid ``int64``.

        Skips ``__post_init__`` conversion/validation — for internal use on
        hot paths only (engine-built phases whose groups were validated at
        ``put``/``put_group`` time, and sub-phases sliced from a validated
        parent).  Semantically identical to the public constructor.
        """
        self = object.__new__(cls)
        d = object.__setattr__
        d(self, "P", P)
        d(self, "src", src)
        d(self, "dst", dst)
        d(self, "count", count)
        d(self, "msg_bytes", msg_bytes)
        d(self, "step", step)
        d(self, "stagger", stagger)
        return self

    @classmethod
    def empty(cls, P: int) -> "CommPhase":
        z = np.zeros(0, dtype=np.int64)
        return cls(P=P, src=z, dst=z.copy(), count=z.copy(), msg_bytes=z.copy())

    @classmethod
    def permutation(cls, perm: np.ndarray, msg_bytes: int, *, P: int | None = None,
                    step: int = -1, stagger: bool = True) -> "CommPhase":
        """A (partial) permutation: processor ``i`` sends to ``perm[i]``.

        Entries with ``perm[i] < 0`` or ``perm[i] == i`` are inactive.
        """
        perm = np.asarray(perm, dtype=np.int64)
        n = perm.size if P is None else P
        mask = (perm >= 0) & (perm != np.arange(perm.size))
        src = np.nonzero(mask)[0].astype(np.int64)
        dst = perm[mask]
        ones = np.ones(src.size, dtype=np.int64)
        return cls(P=n, src=src, dst=dst, count=ones,
                   msg_bytes=np.full(src.size, msg_bytes, dtype=np.int64),
                   step=np.full(src.size, step, dtype=np.int64), stagger=stagger)

    @property
    def n_groups(self) -> int:
        return int(self.src.size)

    @cached_property
    def is_empty(self) -> bool:
        return self.src.size == 0 or int(self.count.sum()) == 0

    # ------------------------------------------------------------------
    # Vectorised per-processor summaries
    # ------------------------------------------------------------------
    @cached_property
    def sends_per_proc(self) -> np.ndarray:
        """Messages sent by each processor; shape ``(P,)``."""
        return np.bincount(self.src, weights=self.count, minlength=self.P).astype(np.int64)

    @cached_property
    def recvs_per_proc(self) -> np.ndarray:
        """Messages received by each processor; shape ``(P,)``."""
        return np.bincount(self.dst, weights=self.count, minlength=self.P).astype(np.int64)

    @cached_property
    def bytes_sent_per_proc(self) -> np.ndarray:
        return np.bincount(self.src, weights=self.count * self.msg_bytes,
                           minlength=self.P).astype(np.int64)

    @cached_property
    def bytes_recv_per_proc(self) -> np.ndarray:
        return np.bincount(self.dst, weights=self.count * self.msg_bytes,
                           minlength=self.P).astype(np.int64)

    @cached_property
    def traffic_bytes_per_proc(self) -> np.ndarray:
        """Bytes sent plus received by each processor; shape ``(P,)``.

        The per-processor *communication volume* of the phase — the
        quantity the bandwidth lower bounds of :mod:`repro.bounds`
        constrain from below.
        """
        return self.bytes_sent_per_proc + self.bytes_recv_per_proc

    @property
    def max_traffic_bytes(self) -> int:
        """Largest per-processor communication volume (sent + received)."""
        return int(self.traffic_bytes_per_proc.max(initial=0))

    @property
    def h_s(self) -> int:
        """Maximum messages sent by any processor (BSP ``h_s``)."""
        return int(self.sends_per_proc.max(initial=0))

    @property
    def h_r(self) -> int:
        """Maximum messages received by any processor (BSP ``h_r``)."""
        return int(self.recvs_per_proc.max(initial=0))

    @property
    def h(self) -> int:
        return max(self.h_s, self.h_r)

    @property
    def total_messages(self) -> int:
        return int(self.count.sum())

    @property
    def total_bytes(self) -> int:
        return int((self.count * self.msg_bytes).sum())

    @cached_property
    def active_procs(self) -> int:
        """Processors that send or receive at least one message."""
        mask = (self.sends_per_proc > 0) | (self.recvs_per_proc > 0)
        return int(mask.sum())

    @cached_property
    def senders(self) -> int:
        return int((self.sends_per_proc > 0).sum())

    @cached_property
    def receivers(self) -> int:
        return int((self.recvs_per_proc > 0).sum())

    def relation(self) -> Relation:
        """The E-BSP ``(M, h1, h2)`` summary of this phase."""
        return Relation(M=self.total_messages, h1=self.h_s, h2=self.h_r,
                        active=self.active_procs)

    # ------------------------------------------------------------------
    # Pattern classification
    # ------------------------------------------------------------------
    @cached_property
    def is_partial_permutation(self) -> bool:
        """True iff every processor sends <= 1 and receives <= 1 message."""
        return self.h_s <= 1 and self.h_r <= 1

    @cached_property
    def cube_bit(self) -> int:
        """If every message goes to ``src XOR 2**k`` for one fixed ``k``,
        return ``k``; otherwise ``-1``.

        This is the pattern of a bitonic merge step, which the MasPar
        global router completes roughly twice as fast as a random
        permutation (paper §5.1).  Message counts are irrelevant: a
        repeated pairwise exchange with the same partner is still a cube
        pattern.
        """
        if self.is_empty:
            return -1
        x = self.src ^ self.dst
        first = int(x[0])
        if first <= 0 or (first & (first - 1)) != 0:
            return -1
        if not bool(np.all(x == first)):
            return -1
        return int(first).bit_length() - 1

    @cached_property
    def max_fan_in(self) -> int:
        """Largest number of *distinct senders* targeting one destination."""
        if self.is_empty:
            return 0
        pair = self.src * self.P + self.dst
        dsts = np.unique(pair) % self.P
        return int(np.bincount(dsts, minlength=self.P).max(initial=0))

    def dest_cluster_loads(self, cluster_size: int) -> np.ndarray:
        """Messages entering each cluster of ``cluster_size`` processors.

        The MasPar router has one channel per 16-PE cluster; the spread of
        these loads is the source of the error bars in the paper's Fig. 1.
        """
        if cluster_size <= 0:
            raise TraceError("cluster_size must be positive")
        cache = self.__dict__.setdefault("_cluster_loads_cache", {})
        loads = cache.get(cluster_size)
        if loads is None:
            n_clusters = -(-self.P // cluster_size)
            loads = np.bincount(self.dst // cluster_size, weights=self.count,
                                minlength=n_clusters).astype(np.int64)
            cache[cluster_size] = loads
        return loads

    # ------------------------------------------------------------------
    # Schedule steps
    # ------------------------------------------------------------------
    @cached_property
    def _step_order(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One stable sort of ``step`` shared by every schedule analysis.

        Returns ``(order, sorted_steps, bounds)`` where ``order`` is the
        stable argsort of ``step``, ``sorted_steps = step[order]`` and
        ``bounds`` are the piece boundaries between distinct tags.
        """
        order = np.argsort(self.step, kind="stable")
        sorted_steps = self.step[order]
        bounds = np.nonzero(np.diff(sorted_steps))[0] + 1
        return order, sorted_steps, bounds

    @cached_property
    def step_ids(self) -> np.ndarray:
        """Sorted unique schedule sub-step tags present in the phase."""
        order, sorted_steps, bounds = self._step_order
        if sorted_steps.size == 0:
            return sorted_steps
        starts = np.concatenate(([0], bounds))
        return sorted_steps[starts]

    @property
    def n_steps(self) -> int:
        return int(self.step_ids.size)

    def split_steps(self) -> list["CommPhase"]:
        """Split into one phase per schedule sub-step (sorted by tag).

        Groups tagged ``-1`` form their own pseudo-step.  Single-port
        machine models route sub-steps sequentially.
        """
        if self.n_steps <= 1:
            return [self]
        cached = self.__dict__.get("_split_cache")
        if cached is not None:
            return cached
        order, sorted_steps, bounds = self._step_order
        pieces = np.split(order, bounds)
        subs = []
        for idx in pieces:
            sub = CommPhase._trusted(P=self.P, src=self.src[idx], dst=self.dst[idx],
                                     count=self.count[idx], msg_bytes=self.msg_bytes[idx],
                                     step=self.step[idx], stagger=self.stagger)
            # Each piece holds exactly one tag — seed the derived caches so
            # the children never re-sort what the parent already knows.
            sub.__dict__["step_ids"] = sub.step[:1]
            subs.append(sub)
        self.__dict__["_split_cache"] = subs
        return subs


def merge_phases(phases: list[CommPhase]) -> CommPhase:
    """Concatenate several phases (same ``P``) into one.

    Schedule tags are offset so steps of later phases follow steps of
    earlier ones; the result is staggered only if every input was.
    """
    if not phases:
        raise TraceError("merge_phases needs at least one phase")
    P = phases[0].P
    if any(ph.P != P for ph in phases):
        raise TraceError("cannot merge phases with different P")
    srcs, dsts, counts, sizes, steps = [], [], [], [], []
    offset = 0
    for ph in phases:
        srcs.append(ph.src)
        dsts.append(ph.dst)
        counts.append(ph.count)
        sizes.append(ph.msg_bytes)
        tags = ph.step.copy()
        tags[tags < 0] = 0
        steps.append(tags + offset)
        offset += int(tags.max(initial=0)) + 1
    # The inputs are validated phases and the tag offsets keep steps >= 0,
    # so the concatenation can skip re-validation.
    return CommPhase._trusted(
        P=P,
        src=np.concatenate(srcs),
        dst=np.concatenate(dsts),
        count=np.concatenate(counts),
        msg_bytes=np.concatenate(sizes),
        step=np.concatenate(steps),
        stagger=all(ph.stagger for ph in phases),
    )
