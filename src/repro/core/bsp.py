"""The Bulk-Synchronous Parallel cost model (Valiant 1990, paper §2.1).

The cost of a superstep ``S`` is ``c + g * max(h_s, h_r) + L`` where ``c``
is the maximum local computation, ``h_s``/``h_r`` the maximum number of
messages sent/received by any processor.  This follows the cost definition
the paper adopts from Bisseling & McColl (their footnote 1) rather than
Valiant's original ``max{c, g*h_s, g*h_r, L}``.

Messages larger than the machine word ``w`` count as multiple messages —
BSP gives no special treatment to long messages (paper §1).
"""

from __future__ import annotations

import numpy as np

from .base import CostModel
from .relations import CommPhase

__all__ = ["BSP"]


class BSP(CostModel):
    """The plain BSP model with parameters ``(P, g, L)`` and word size ``w``."""

    name = "bsp"

    def words_per_proc(self, phase: CommPhase) -> tuple[int, int]:
        """Max words sent / received by any processor.

        A message of ``b`` bytes counts as ``ceil(b / w)`` BSP messages.
        """
        w = self.params.w
        words = -(-phase.msg_bytes // w) * phase.count  # ceil division
        sent = np.bincount(phase.src, weights=words, minlength=phase.P)
        recv = np.bincount(phase.dst, weights=words, minlength=phase.P)
        return int(sent.max(initial=0)), int(recv.max(initial=0))

    def comm_cost(self, phase: CommPhase) -> float:
        if phase.is_empty:
            return 0.0
        h_s, h_r = self.words_per_proc(phase)
        return self.params.g * max(h_s, h_r) + self.params.L
