"""The Bulk-Synchronous Parallel cost model (Valiant 1990, paper §2.1).

The cost of a superstep ``S`` is ``c + g * max(h_s, h_r) + L`` where ``c``
is the maximum local computation, ``h_s``/``h_r`` the maximum number of
messages sent/received by any processor.  This follows the cost definition
the paper adopts from Bisseling & McColl (their footnote 1) rather than
Valiant's original ``max{c, g*h_s, g*h_r, L}``.

Messages larger than the machine word ``w`` count as multiple messages —
BSP gives no special treatment to long messages (paper §1).
"""

from __future__ import annotations

import numpy as np

from .base import CostModel
from .relations import CommPhase

__all__ = ["BSP"]


class BSP(CostModel):
    """The plain BSP model with parameters ``(P, g, L)`` and word size ``w``."""

    name = "bsp"

    def words_per_proc(self, phase: CommPhase) -> tuple[int, int]:
        """Max words sent / received by any processor.

        A message of ``b`` bytes counts as ``ceil(b / w)`` BSP messages.
        """
        w = self.params.w
        words = -(-phase.msg_bytes // w) * phase.count  # ceil division
        sent = np.bincount(phase.src, weights=words, minlength=phase.P)
        recv = np.bincount(phase.dst, weights=words, minlength=phase.P)
        return int(sent.max(initial=0)), int(recv.max(initial=0))

    def comm_cost(self, phase: CommPhase) -> float:
        if phase.is_empty:
            return 0.0
        h_s, h_r = self.words_per_proc(phase)
        return self.params.g * max(h_s, h_r) + self.params.L

    def _comm_costs(self, phases: list[CommPhase]) -> list[float]:
        """Columnar ``g h + L`` over many phases at once (bit-identical).

        Word totals are integers, so the combined-key bincount sums are
        exact; subclasses that override :meth:`comm_cost` automatically
        fall back to the scalar loop.
        """
        if (type(self).comm_cost is not BSP.comm_cost
                or len({ph.P for ph in phases}) > 1):
            return super()._comm_costs(phases)
        n = len(phases)
        out = [0.0] * n
        srcs, dsts, words_l, pids = [], [], [], []
        for i, ph in enumerate(phases):
            if not ph.is_empty:
                srcs.append(ph.src)
                dsts.append(ph.dst)
                words_l.append(-(-ph.msg_bytes // self.params.w) * ph.count)
                pids.append(np.full(ph.src.size, i, dtype=np.int64))
        if not srcs:
            return out
        src = np.concatenate(srcs)
        dst = np.concatenate(dsts)
        words = np.concatenate(words_l)
        pid = np.concatenate(pids)
        P = phases[0].P
        sent = np.bincount(pid * P + src, weights=words,
                           minlength=n * P).reshape(n, P)
        recv = np.bincount(pid * P + dst, weights=words,
                           minlength=n * P).reshape(n, P)
        h = np.maximum(sent.max(axis=1), recv.max(axis=1)).astype(np.int64)
        cost = self.params.g * h + self.params.L
        for i in np.unique(pid).tolist():
            out[i] = float(cost[i])
        return out
