"""Abstract base class for cost models.

A cost model prices a :class:`~repro.core.trace.Trace` superstep by
superstep.  Concrete models implement :meth:`comm_cost`; the local
computation term ``c`` (the maximum nominal work of any processor) is
shared by all models, as in the paper where all predictions use the same
``alpha``/``beta``/``gamma`` coefficients for local work.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .params import ModelParams
from .relations import CommPhase
from .trace import Superstep, Trace

__all__ = ["CostModel"]


class CostModel(ABC):
    """Prices traces in microseconds under one parallel computation model."""

    #: short identifier, e.g. ``"bsp"``; set by subclasses.
    name: str = "abstract"

    def __init__(self, params: ModelParams):
        self.params = params

    # ------------------------------------------------------------------
    @abstractmethod
    def comm_cost(self, phase: CommPhase) -> float:
        """Predicted time of one communication phase, in microseconds.

        An empty phase costs nothing: models charge their latency term
        only when communication (and hence a synchronisation) happens, so
        that computation-only supersteps can be merged with neighbours —
        this is how the paper's closed forms count e.g. ``2 L`` for the
        four-superstep matrix multiplication.
        """

    def superstep_cost(self, step: Superstep) -> float:
        """``c + comm_cost(phase)`` for one superstep."""
        return step.max_work_nominal_us(self.params) + self.comm_cost(step.phase)

    def comm_cost_batch(self, phases: "list[CommPhase]") -> "list[float]":
        """Predicted times of many phases at once.

        Cost models are deterministic, so repeated phase *objects* (the
        vector engine interns recurring communication patterns) are
        priced once: this driver deduplicates by identity and hands the
        distinct phases to :meth:`_comm_costs`.
        """
        first: dict[int, int] = {}
        uniq: list[CommPhase] = []
        index: list[int] = []
        for ph in phases:
            j = first.get(id(ph))
            if j is None:
                j = len(uniq)
                first[id(ph)] = j
                uniq.append(ph)
            index.append(j)
        costs = self._comm_costs(uniq)
        return [costs[j] for j in index]

    def _comm_costs(self, phases: "list[CommPhase]") -> "list[float]":
        """Batching hook behind :meth:`comm_cost_batch`.

        The default delegates to :meth:`comm_cost` phase by phase;
        columnar overrides must return bit-identical values (the
        equivalence tests compare the two).
        """
        return [self.comm_cost(ph) for ph in phases]

    def trace_cost(self, trace: Trace) -> float:
        """Predicted total running time of a trace."""
        comm = self.comm_cost_batch([s.phase for s in trace])
        return sum(s.max_work_nominal_us(self.params) + c
                   for s, c in zip(trace, comm))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(machine={self.params.machine!r})"
