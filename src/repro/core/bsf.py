"""The BSF (Bulk Synchronous Farm) master-worker cost model (extension).

After "Verification of BSF Parallel Computational Model" (PAPERS.md): a
BSF computer is a master and ``P`` workers on a star — *all* data moves
through the master, which relays every transfer serially.  Pricing a
superstep's communication phase therefore ignores the pattern entirely:
a phase with ``N`` messages totalling ``W`` words costs

    ``T_comm = 2 (g W + o_master N) + L``

(worker -> master -> worker: every word crosses the star twice, every
message pays the master's per-message handling twice, plus one global
latency).  ``o_master`` defaults to ``g`` — one word's worth of handling
per message, the natural choice when Table 1 gives no separate master
constant.

The model's signature contribution is its *scalability bound*.  With
``t_comp`` the aggregate (sequential-equivalent) work of a trace and
``t_interact`` the per-worker share of the serialised master traffic,
BSF predicts

    ``T(P') = t_comp / P' + t_interact * P'``

whose minimum over the farm size ``P'`` sits at

    ``P_max = sqrt(t_comp / t_interact)``

— beyond ``P_max`` workers, adding hardware makes the farm *slower*,
because the master's serial relay grows linearly while the per-worker
compute share shrinks.  :meth:`BSF.p_max` exposes the bound as a
first-class prediction; the hypothesis suite validates it against
simulated speedup curves.
"""

from __future__ import annotations

import math

import numpy as np

from .base import CostModel
from .params import ModelParams
from .relations import CommPhase
from .trace import Trace

__all__ = ["BSF"]


class BSF(CostModel):
    """Master-worker (Bulk Synchronous Farm) cost model."""

    name = "bsf"

    def __init__(self, params: ModelParams, o_master: float | None = None):
        super().__init__(params)
        self.o_master = float(params.g if o_master is None else o_master)

    def comm_cost(self, phase: CommPhase) -> float:
        if phase.is_empty:
            return 0.0
        w = self.params.w
        words = -(-phase.msg_bytes // w) * phase.count
        total_words = float(words.sum())
        total_msgs = float(phase.count.sum())
        return (2.0 * (self.params.g * total_words
                       + self.o_master * total_msgs) + self.params.L)

    def _comm_costs(self, phases: list[CommPhase]) -> list[float]:
        """Columnar totals (bit-identical: integer word/message sums are
        exact, and the closing arithmetic is elementwise)."""
        if type(self).comm_cost is not BSF.comm_cost:
            return super()._comm_costs(phases)
        n = len(phases)
        out = [0.0] * n
        w = self.params.w
        words_l, msgs_l, pids = [], [], []
        for i, ph in enumerate(phases):
            if not ph.is_empty:
                words_l.append(-(-ph.msg_bytes // w) * ph.count)
                msgs_l.append(ph.count)
                pids.append(np.full(ph.src.size, i, dtype=np.int64))
        if not words_l:
            return out
        words = np.concatenate(words_l)
        msgs = np.concatenate(msgs_l)
        pid = np.concatenate(pids)
        total_words = np.bincount(pid, weights=words, minlength=n)
        total_msgs = np.bincount(pid, weights=msgs, minlength=n)
        cost = (2.0 * (self.params.g * total_words
                       + self.o_master * total_msgs) + self.params.L)
        for i in np.unique(pid).tolist():
            out[i] = float(cost[i])
        return out

    # ------------------------------------------------------------------
    # The scalability bound
    # ------------------------------------------------------------------
    def t_comp(self, trace: Trace) -> float:
        """Aggregate sequential-equivalent work of the trace, in us."""
        return float(sum(float(s.work_nominal_us(self.params).sum())
                         for s in trace))

    def t_interact(self, trace: Trace) -> float:
        """Per-worker share of the serialised master interaction, in us.

        The total master-relay time grows linearly in the farm size when
        every worker contributes a fixed traffic share, so dividing the
        traced total by the traced farm size gives the size-independent
        interaction constant of the BSF scaling law.
        """
        comm = self.comm_cost_batch([s.phase for s in trace])
        return float(sum(comm)) / trace.P

    def predicted_time(self, trace: Trace, P: int | None = None) -> float:
        """``T(P') = t_comp / P' + t_interact * P'`` for a farm of ``P'``."""
        p = float(trace.P if P is None else P)
        if p <= 0:
            raise ValueError(f"farm size must be positive, got {p}")
        return self.t_comp(trace) / p + self.t_interact(trace) * p

    def p_max(self, trace: Trace) -> float:
        """The BSF scalability bound ``sqrt(t_comp / t_interact)``.

        The farm size past which adding workers slows the computation
        down; ``inf`` for interaction-free traces.
        """
        tc = self.t_comp(trace)
        ti = self.t_interact(trace)
        if ti <= 0.0:
            return float("inf")
        return math.sqrt(tc / ti)
