"""Execution traces: the interface between algorithms, machines and models.

Running an algorithm on the SPMD simulator produces a :class:`Trace` — a
sequence of :class:`Superstep` records, each holding the local work done by
every processor and the communication pattern that followed it.  The same
trace is then priced twice:

* a *machine* prices it during simulation — that is the "measured" time;
* a *cost model* prices it afterwards — that is the "predicted" time.

This mirrors the paper's methodology: the implementation is fixed, and the
question is how well each model's cost function anticipates what the
machine actually does with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .errors import TraceError
from .params import ModelParams
from .relations import CommPhase
from .work import Work, nominal_time

__all__ = ["Superstep", "Trace"]


@dataclass
class Superstep:
    """One superstep: per-processor local work, then one communication phase."""

    phase: CommPhase
    work: dict[int, list[Work]] = field(default_factory=dict)
    label: str = ""
    #: duration charged by the machine model during simulation (max across
    #: processors), filled in by the engine; ``nan`` if never simulated.
    measured_us: float = float("nan")

    @property
    def P(self) -> int:
        return self.phase.P

    def add_work(self, proc: int, item: Work) -> None:
        if not 0 <= proc < self.P:
            raise TraceError(f"processor {proc} out of range for P={self.P}")
        self.work.setdefault(proc, []).append(item)

    def work_nominal_us(self, params: ModelParams) -> np.ndarray:
        """Per-processor nominal local-computation time, shape ``(P,)``."""
        out = np.zeros(self.P)
        for proc, items in self.work.items():
            out[proc] = sum(nominal_time(item, params) for item in items)
        return out

    def max_work_nominal_us(self, params: ModelParams) -> float:
        """The model's ``c`` term: maximum local computation of any processor."""
        if not self.work:
            return 0.0
        return float(self.work_nominal_us(params).max())


@dataclass
class Trace:
    """A complete run: an ordered list of supersteps."""

    P: int
    supersteps: list[Superstep] = field(default_factory=list)
    label: str = ""

    def append(self, step: Superstep) -> None:
        if step.P != self.P:
            raise TraceError(
                f"superstep has P={step.P}, trace has P={self.P}")
        self.supersteps.append(step)

    def __len__(self) -> int:
        return len(self.supersteps)

    def __iter__(self):
        return iter(self.supersteps)

    def __getitem__(self, idx: int) -> Superstep:
        return self.supersteps[idx]

    @property
    def measured_us(self) -> float:
        """Total machine-charged time (sum over supersteps)."""
        total = 0.0
        for step in self.supersteps:
            if np.isnan(step.measured_us):
                raise TraceError(
                    "trace contains supersteps that were never simulated")
            total += step.measured_us
        return total

    @property
    def total_messages(self) -> int:
        return sum(s.phase.total_messages for s in self.supersteps)

    @property
    def total_bytes(self) -> int:
        return sum(s.phase.total_bytes for s in self.supersteps)

    def summary(self) -> str:
        """A short human-readable description of the trace."""
        lines = [f"Trace({self.label or 'unnamed'}): P={self.P}, "
                 f"{len(self)} supersteps, {self.total_messages} messages, "
                 f"{self.total_bytes} bytes"]
        for i, s in enumerate(self.supersteps):
            rel = s.phase.relation()
            lines.append(
                f"  [{i:3d}] {s.label or '-':<28} "
                f"M={rel.M:<8d} h1={rel.h1:<6d} h2={rel.h2:<6d} "
                f"active={rel.active}")
        return "\n".join(lines)
