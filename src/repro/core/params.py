"""Model parameter sets (the paper's Table 1) and related helpers.

The paper characterises each machine by a small set of cost-model
parameters, all expressed in *microseconds* (the authors explicitly do not
normalise ``g`` and ``L`` w.r.t. processor speed):

``P``
    number of processors,
``g``
    BSP bandwidth factor — time per message of ``w`` bytes in a full
    h-relation,
``L``
    BSP synchronisation / latency cost per superstep,
``sigma``
    MP-BPRAM time per *byte* of a block transfer,
``ell``
    MP-BPRAM startup cost of a block transfer,
``w``
    computational word size in bytes (4 on the MasPar and GCel, 8 —
    double precision — on the CM-5),
``alpha``
    time of a compound floating-point operation (one addition plus one
    multiplication, paper §4.1.1),
``beta_copy``
    time to move one word between local buffers (the ``beta * N^2/q^2``
    term of the matrix-multiplication predictions),
``sort_beta`` / ``sort_gamma``
    coefficients of the local radix sort,
    ``T = (b/r) * (sort_beta * 2**r + sort_gamma * n)`` (paper §4.2.1),
``merge_alpha``
    per-key cost of the linear local merge used by bitonic sort.

:data:`PAPER_PARAMS` holds the values published in Table 1; the calibration
package (:mod:`repro.calibration`) re-derives them from simulated
microbenchmarks, which is the reproduction of the paper's Section 3.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

from .errors import ModelError

__all__ = [
    "ModelParams",
    "UnbalancedCost",
    "PAPER_PARAMS",
    "PAPER_UNBALANCED",
    "paper_params",
]


@dataclass(frozen=True)
class ModelParams:
    """Cost-model parameters for one machine (all times in microseconds)."""

    machine: str
    P: int
    g: float
    L: float
    sigma: float
    ell: float
    w: int = 4
    alpha: float = 1.0
    beta_copy: float = 0.5
    sort_beta: float = 1.0
    sort_gamma: float = 1.0
    merge_alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.P <= 0:
            raise ModelError(f"P must be positive, got {self.P}")
        if self.w <= 0:
            raise ModelError(f"word size must be positive, got {self.w}")
        for name in ("g", "L", "sigma", "ell", "alpha"):
            if getattr(self, name) < 0:
                raise ModelError(f"{name} must be non-negative")

    # ------------------------------------------------------------------
    # Derived quantities used throughout the paper
    # ------------------------------------------------------------------
    @property
    def bulk_gain(self) -> float:
        """Maximum gain of block transfers over ``w``-byte messages.

        The paper calls this the ratio ``g / (w * sigma)`` — about 120 on
        the GCel, 3.3 on the MasPar (there computed as ``(g+L)/(w*sigma)``
        because the MasPar is single-port) and 4.2 on the CM-5.
        """
        return self.g / (self.w * self.sigma)

    @property
    def single_port_bulk_gain(self) -> float:
        """The single-port variant ``(g + L) / (w * sigma)`` (MasPar)."""
        return (self.g + self.L) / (self.w * self.sigma)

    def h_relation_time(self, h: float) -> float:
        """BSP time of a full h-relation followed by a barrier."""
        return self.g * h + self.L

    def block_message_time(self, nbytes: float) -> float:
        """MP-BPRAM time of one block message of ``nbytes`` bytes."""
        return self.sigma * nbytes + self.ell

    def with_updates(self, **kwargs: float) -> "ModelParams":
        """Return a copy with some fields replaced."""
        return dataclasses.replace(self, **kwargs)


@dataclass(frozen=True)
class UnbalancedCost:
    """E-BSP cost of a partial permutation on a single-port machine.

    The paper models the time of a communication step in which ``P'``
    processors are active as a second-order polynomial in ``sqrt(P')``::

        T_unb(P') = a * P' + b * sqrt(P') + c        (microseconds)

    For the MasPar MP-1 the fitted coefficients are ``a = 0.84``,
    ``b = 11.8`` and ``c = 73.3`` (paper §3.1).
    """

    a: float
    b: float
    c: float

    def __call__(self, active: float) -> float:
        if active < 0:
            raise ModelError(f"active processor count must be >= 0, got {active}")
        if active == 0:
            return 0.0
        return self.a * active + self.b * math.sqrt(active) + self.c

    def as_tuple(self) -> tuple[float, float, float]:
        return (self.a, self.b, self.c)


#: Table 1 of the paper, in microseconds.  ``alpha`` and the local-kernel
#: coefficients are derived from the paper's prose (§4.1.1, §7 and the
#: machine descriptions), not from Table 1 itself.
PAPER_PARAMS: dict[str, ModelParams] = {
    "maspar": ModelParams(
        machine="maspar",
        P=1024,
        g=32.2,
        L=1400.0,
        sigma=107.0,
        ell=630.0,
        w=4,
        # 1K MasPar MP-1 peak: 75 single-precision Mflops => a compound
        # add+multiply on one PE takes about 2/(75e6/1024) s ~= 27 us at
        # peak.  The blocked register kernel of §4.1.1 sustains slightly
        # less; alpha ~= 30 us reproduces the measured 39.9 Mflops of the
        # MP-BPRAM matmul at N = 700 (with q = 10, P = 1000 PEs).
        alpha=30.0,
        beta_copy=6.0,
        sort_beta=28.0,
        sort_gamma=26.0,
        merge_alpha=24.0,
    ),
    "gcel": ModelParams(
        machine="gcel",
        P=64,
        g=4480.0,
        L=5100.0,
        sigma=9.3,
        ell=6900.0,
        w=4,
        # T805 @ 30 MHz: ~0.6 Mflops sustained on compound ops.
        alpha=3.3,
        beta_copy=0.45,
        sort_beta=2.4,
        sort_gamma=1.9,
        # Per-key merge cost including PVM pack/unpack of the exchanged
        # buffers; backed out of the measured 1.36 ms/key MP-BPRAM bitonic
        # time (paper §6).
        merge_alpha=24.0,
    ),
    "cm5": ModelParams(
        machine="cm5",
        P=64,
        g=9.1,
        L=45.0,
        sigma=0.27,
        ell=75.0,
        w=8,
        # Paper §4.1.1: alpha = 2 / 7.0e6 s ~= 0.29 us per compound op
        # (the assembly kernel sustains 6.5-7.5 Mflops).
        alpha=0.29,
        beta_copy=0.05,
        sort_beta=0.6,
        sort_gamma=0.55,
        merge_alpha=0.35,
    ),
}

#: The MasPar partial-permutation law fitted in paper §3.1 (Fig. 2).
PAPER_UNBALANCED: dict[str, UnbalancedCost] = {
    "maspar": UnbalancedCost(a=0.84, b=11.8, c=73.3),
}


def paper_params(machine: str) -> ModelParams:
    """Return the published Table 1 parameters for ``machine``.

    Raises :class:`~repro.core.errors.ModelError` for unknown machines.
    """
    try:
        return PAPER_PARAMS[machine]
    except KeyError:
        known = ", ".join(sorted(PAPER_PARAMS))
        raise ModelError(f"unknown machine {machine!r}; known: {known}") from None
