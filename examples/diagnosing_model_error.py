#!/usr/bin/env python
"""Diagnosing *where* a model's prediction goes wrong.

The paper never stops at an error percentage — it names the culprit
superstep ("the defect is the result of processor contention", §5.1).
The library mechanises that workflow: run, attribute, read the table.

Two cases from the paper:

1. the unstaggered CM-5 matrix multiply: BSP underestimates exactly the
   two communication supersteps where many processors converge on one
   destination;
2. APSP on the GCel: BSP's error concentrates in the scatter supersteps
   of the broadcast, not the allgathers — which is precisely why the
   paper's fix (use g_mscat for that superstep only) works.

Run:  python examples/diagnosing_model_error.py
"""

from repro.algorithms import apsp, matmul
from repro.calibration import calibrate
from repro.core import BSP
from repro.machines import CM5, GCel
from repro.validation.attribution import attribute_error, render_attribution

# ---- case 1: contention in the unstaggered matmul --------------------
machine = CM5(seed=21)
cal = calibrate(machine, seed=21)
res = matmul.run(machine, 256, variant="bsp", seed=21)  # naive order!
rows = attribute_error(res.trace, BSP(cal.params))
print("Case 1 — unstaggered matmul on the CM-5 (BSP)")
print(render_attribution(rows))
print("""-> both communication families come out *under*-predicted
   (negative gap): the naive schedule stalls on endpoint contention,
   which BSP cannot see.  Re-run with variant="bsp-staggered" and the
   gaps collapse (paper Fig. 4).\n""")

# ---- case 2: the unbalanced scatter inside APSP ----------------------
machine = GCel(seed=22)
cal = calibrate(machine, seed=22)
res = apsp.run(machine, 64, seed=22)
rows = attribute_error(res.trace, BSP(cal.params))
print("Case 2 — APSP on the GCel (BSP)")
print(render_attribution(rows, top=6))
print("""-> the overestimate concentrates in the scatter supersteps
   (sqrt(P) senders, everyone receiving a sliver), while the allgather
   families are priced fairly.  Charging only the scatter at g_mscat is
   therefore exactly the right repair — the paper's Fig. 13.""")
