#!/usr/bin/env python
"""Extending the harness with your own machine model.

The validation pipeline is machine-agnostic: anything that subclasses
:class:`repro.machines.base.Machine` can be calibrated, run and
predicted.  Here we build a hypothetical "GCel-2" — the same transputer
mesh with a rewritten message layer (10x cheaper per-message software) —
calibrate it from scratch, and watch the paper's conclusions shift:
bulk transfers stop being "an absolute requirement" (§6) because
g/(w*sigma) drops from ~120 to ~12.

Run:  python examples/custom_machine.py
"""

from repro.algorithms import bitonic
from repro.calibration import calibrate
from repro.machines import GCel


class GCel2(GCel):
    """A GCel with a lightweight active-message layer."""

    name = "gcel2"

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        # rewrite of the HPVM software stack: 10x cheaper per message
        self.c_send /= 10
        self.c_recv /= 10
        self.barrier_us /= 10
        # block transfers keep the same DMA engine
        # drift window grows with the faster layer
        self.drift_window *= 4


for machine in (GCel(seed=5), GCel2(seed=5)):
    cal = calibrate(machine, seed=5)
    p = cal.params
    print(f"\n{machine.name}: fitted g={p.g:.0f} L={p.L:.0f} "
          f"sigma={p.sigma:.1f} ell={p.ell:.0f} "
          f"-> bulk gain g/(w*sigma) = {p.bulk_gain:.0f}")

    M = 1024
    t_word = bitonic.run(machine, M, variant="bsp-sync", seed=5).time_us
    t_blk = bitonic.run(type(machine)(seed=5), M, variant="bpram",
                        seed=5).time_us
    print(f"  bitonic sort, M={M}: word-at-a-time {t_word / 1e3:8.0f} ms, "
          f"block {t_blk / 1e3:8.0f} ms  (speedup x{t_word / t_blk:.1f})")

print("""
On the real GCel the block version wins by ~60x end to end; on GCel-2 the
gap shrinks by an order of magnitude — whether a computation model must
capture bulk transfer is a property of the machine's software stack, not
of the algorithm (the paper's Section 8 conclusion, quantified).""")
