#!/usr/bin/env python
"""A miniature of the paper's evaluation (Section 5), end to end.

For the all-pairs-shortest-path workload on each of the three machines:

1. **calibrate** the machine from microbenchmarks (Section 3) —
   no Table 1 constants are assumed;
2. **predict** the running time with the closed forms of Section 4;
3. **measure** by running the actual SPMD Floyd implementation;
4. report the prediction error, reproducing the paper's finding that
   BSP-style models break on unbalanced communication (MasPar +dozens
   of %, GCel ~2x) while staying accurate on the fat-tree CM-5 — and
   that E-BSP / the g_mscat correction repair them.

Run:  python examples/model_validation_study.py
"""

from repro.algorithms import apsp
from repro.calibration import calibrate
from repro.core.predictions import (
    bsp_apsp,
    ebsp_apsp_maspar,
    mp_bsp_apsp,
    scatter_corrected_apsp,
)
from repro.machines import CM5, GCel, MasParMP1


def study(machine, N, predictions):
    cal = calibrate(machine, seed=7)
    measured = apsp.run(machine, N, seed=7).time_us
    print(f"\n{machine.name}: APSP with N={N} vertices on P={machine.P}")
    print(f"  measured            {measured / 1e3:10.1f} ms")
    for name, fn in predictions:
        pred = fn(cal)
        err = (pred - measured) / measured
        print(f"  {name:<18}  {pred / 1e3:10.1f} ms  ({err:+.0%})")


# MasPar: a 256-PE partition keeps this example snappy; M < sqrt(P) as in
# the paper's N=512 / P=1024 configuration.
maspar = MasParMP1(P=256, seed=7)
study(maspar, 128, [
    ("MP-BSP", lambda c: mp_bsp_apsp(128, c.params, P=256)),
    ("E-BSP", lambda c: ebsp_apsp_maspar(128, c.params, c.unb, P=256)),
])

gcel = GCel(seed=7)
study(gcel, 128, [
    ("BSP", lambda c: bsp_apsp(128, c.params)),
    ("BSP + g_mscat", lambda c: scatter_corrected_apsp(
        128, c.params, c.g_scatter)),
])

cm5 = CM5(seed=7)
study(cm5, 128, [
    ("BSP", lambda c: bsp_apsp(128, c.params)),
])

print("\nTakeaway: the cheaper a machine routes *partial* patterns, the "
      "worse plain\nBSP's full-h-relation charge predicts it; E-BSP's "
      "unbalanced-communication\nterms close the gap (paper Sections 5.3 "
      "and 8).")
