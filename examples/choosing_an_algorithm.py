#!/usr/bin/env python
"""Using cost models the way the paper intends: as *design* tools.

Question: to sort 64 x 1024 keys on the GCel, should you use bitonic
sort or sample sort?  Asymptotically sample sort wins (one all-to-all
instead of log^2 P exchange rounds) — but the MP-BPRAM model, which
knows about message startup costs and the single-port restriction,
predicts otherwise for realistic sizes, and the simulator confirms it
(the paper's Fig. 18: "The performance of sample sort is somewhat
disappointing").

Run:  python examples/choosing_an_algorithm.py
"""

from repro.algorithms import bitonic, samplesort
from repro.core.predictions import bpram_bitonic, bpram_sample_sort
from repro.machines import GCel
from repro.core import paper_params

params = paper_params("gcel")
P = params.P

print(f"{'M':>6} {'predicted bitonic':>18} {'predicted sample':>18} "
      f"{'measured bitonic':>18} {'measured sample':>18}   model says")
for M in (128, 512, 2048):
    pred_b = bpram_bitonic(M, params)
    pred_s = bpram_sample_sort(M, params, oversample=64)

    mach = GCel(seed=3)
    meas_b = bitonic.run(mach, M, variant="bpram", seed=3).time_us
    meas_s = samplesort.run(GCel(seed=3), M, variant="bpram",
                            oversample=min(64, M), seed=3).time_us

    verdict = "bitonic" if pred_b < pred_s else "sample sort"
    agree = (meas_b < meas_s) == (pred_b < pred_s)
    note = "(confirmed)" if agree else "(measurement disagrees!)"
    print(f"{M:>6} {pred_b / 1e3:>15.0f} ms {pred_s / 1e3:>15.0f} ms "
          f"{meas_b / 1e3:>15.0f} ms {meas_s / 1e3:>15.0f} ms   "
          f"{verdict} {note}")

print("""
Why: under MP-BPRAM a processor may receive only one message per step,
so sample sort's key routing must run as 4*sqrt(P) padded block steps
costing ~16*sigma*w*M per node — comparable to the whole 21-step bitonic
schedule — and it still pays its splitter and multi-scan phases on top.

At large M the model starts to favour sample sort, but the measurement
keeps disagreeing: packing and unpacking the padded buffers costs real
per-key time the formula does not capture.  That is the paper's Fig. 18
in miniature — "although it is the most efficient sorting algorithm in
theory, it does not outperform bitonic sort" (Section 6) — and a live
demonstration of why validating models against machines matters.""")
