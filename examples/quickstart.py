#!/usr/bin/env python
"""Quickstart: sort on a simulated 1996 supercomputer, test a cost model.

This is the library's core loop in ~40 lines:

1. instantiate a machine model (here the 64-node Parsytec GCel),
2. run a real SPMD algorithm on it (bitonic sort, block-transfer
   variant) — the keys really get sorted,
3. price the execution trace with a cost model (MP-BPRAM) and compare
   its prediction against the machine's "measured" virtual time.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import make_machine
from repro.algorithms import bitonic
from repro.core import BSP, MPBPRAM, paper_params

# 1. a machine -------------------------------------------------------------
machine = make_machine("gcel", seed=42)
print(f"machine: {machine.name}, P = {machine.P} processors")

# 2. run bitonic sort with 1024 keys per node ------------------------------
M = 1024
result = bitonic.run(machine, M, variant="bpram", seed=42)

keys_sorted = np.concatenate(result.returns)
assert np.all(keys_sorted[:-1] <= keys_sorted[1:]), "not sorted?!"
print(f"sorted {machine.P * M} keys in {result.time_ms:.1f} virtual ms "
      f"({result.time_us / M:.0f} us per key per node)")

# 3. what did the models think it would take? ------------------------------
params = paper_params("gcel")
for model in (MPBPRAM(params), BSP(params)):
    predicted = model.trace_cost(result.trace)
    err = (predicted - result.time_us) / result.time_us
    print(f"{model.name:>9} predicts {predicted / 1e3:10.1f} ms "
          f"({err:+.0%} vs measured)")

# MP-BPRAM nails it; BSP, which cannot express block transfers, is off by
# an order of magnitude — the paper's central GCel observation (§6).
