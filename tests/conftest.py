"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.params import paper_params
from repro.machines import CM5, GCel, MasParMP1


@pytest.fixture(autouse=True)
def _isolated_result_cache(tmp_path, monkeypatch):
    """Point the runner's result cache at a per-test directory.

    Keeps tests hermetic: CLI invocations never read or pollute the
    user's ``~/.cache/repro``.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def maspar() -> MasParMP1:
    return MasParMP1(seed=7)


@pytest.fixture
def maspar_small() -> MasParMP1:
    """A 64-PE MasPar partition — fast enough for unit tests."""
    return MasParMP1(P=64, seed=7)


@pytest.fixture
def gcel() -> GCel:
    return GCel(seed=7)


@pytest.fixture
def cm5() -> CM5:
    return CM5(seed=7)


@pytest.fixture(params=["maspar", "gcel", "cm5"])
def any_machine(request):
    """One of the three platforms (MasPar shrunk to 64 PEs for speed)."""
    if request.param == "maspar":
        return MasParMP1(P=64, seed=11)
    if request.param == "gcel":
        return GCel(seed=11)
    return CM5(seed=11)


@pytest.fixture
def maspar_params():
    return paper_params("maspar")


@pytest.fixture
def gcel_params():
    return paper_params("gcel")


@pytest.fixture
def cm5_params():
    return paper_params("cm5")
