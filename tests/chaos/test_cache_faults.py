"""Chaos tests for the result cache's self-healing read path.

Write-side faults mangle entries (corrupt bytes, truncation, stale
checksum); the read side must detect each one, quarantine the file,
report a miss, and let the recompute heal the slot — with the healed
entry bit-identical to a never-faulted one.
"""

import json

import pytest

from repro.experiments import get
from repro.faults import faults_active
from repro.runner import ResultCache, run_experiments

pytestmark = pytest.mark.chaos

KEY = "deadbeef" * 8  # any well-formed (hex) content address


@pytest.fixture(scope="module")
def result():
    """One real experiment result to store and mangle."""
    return get("fig14").run(scale=0.3, seed=0)


class TestQuarantineAndHeal:
    @pytest.mark.parametrize("point", ["cache-corrupt", "cache-truncate",
                                       "cache-stale"])
    def test_mangled_write_quarantined_then_healed(self, tmp_path, result,
                                                   point):
        cache = ResultCache(tmp_path)
        with faults_active(f"{point}:count=1"):
            cache.put(KEY, result)
            # the poisoned entry is detected, moved aside, and missed
            assert cache.get(KEY) is None
            assert cache.stats.quarantined == 1
            assert len(cache.quarantined()) == 1
            # recompute-and-store heals the slot (count is exhausted)
            cache.put(KEY, result)
        healed = cache.get(KEY)
        assert healed is not None and healed.identical(result)
        assert cache.stats.quarantined == 1  # no second quarantine

    def test_healed_entry_is_byte_identical_to_clean(self, tmp_path, result):
        clean = ResultCache(tmp_path / "clean")
        faulted = ResultCache(tmp_path / "faulted")
        clean_path = clean.put(KEY, result, meta={"experiment": "fig14"})
        with faults_active("cache-corrupt:count=1"):
            faulted.put(KEY, result, meta={"experiment": "fig14"})
            faulted.get(KEY)  # quarantine
            healed_path = faulted.put(KEY, result,
                                      meta={"experiment": "fig14"})
        assert healed_path.read_bytes() == clean_path.read_bytes()

    def test_clean_entries_verify_and_stay_put(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        cache.put(KEY, result)
        got = cache.get(KEY)
        assert got is not None and got.identical(result)
        assert cache.stats.quarantined == 0
        assert cache.quarantined() == []

    def test_hand_flipped_byte_detected(self, tmp_path, result):
        """Checksum verification catches bit-rot, not just injected
        faults: flip one character on disk by hand."""
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, result)
        raw = path.read_text()
        i = raw.index('"result"') + 20
        flipped = raw[:i] + ("1" if raw[i] != "1" else "2") + raw[i + 1:]
        assert json.loads(flipped)  # still valid JSON — only the sum fails
        path.write_text(flipped)
        assert cache.get(KEY) is None
        assert cache.stats.quarantined == 1


class TestRunnerEndToEnd:
    def test_corrupted_store_recomputed_bit_identically(self, tmp_path):
        """run → corrupt store → run again: quarantine + recompute →
        run a third time: a verified hit.  All three results identical."""
        cache = ResultCache(tmp_path)
        (first,) = run_experiments(["fig14"], scale=0.3, cache=cache,
                                   faults="cache-corrupt:count=1")
        assert not first.cached

        second_cache = ResultCache(tmp_path)
        (second,) = run_experiments(["fig14"], scale=0.3,
                                    cache=second_cache)
        assert not second.cached  # the poisoned entry did not serve
        assert second_cache.stats.quarantined == 1
        assert second.result.identical(first.result)

        third_cache = ResultCache(tmp_path)
        (third,) = run_experiments(["fig14"], scale=0.3, cache=third_cache)
        assert third.cached  # healed
        assert third_cache.stats.quarantined == 0
        assert third.result.identical(first.result)

    def test_stats_summary_reports_quarantine(self, tmp_path, result):
        cache = ResultCache(tmp_path)
        with faults_active("cache-truncate:count=1"):
            cache.put(KEY, result)
        cache.get(KEY)
        assert "1 quarantined" in cache.stats.summary()
