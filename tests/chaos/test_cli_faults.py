"""Chaos tests for the CLI surface of the fault layer.

Exit-code contract: a run that *recovers* from injected faults exits 0
with results bit-identical to a fault-free sweep (compared at the byte
level via the content-addressed cache files); a malformed plan exits 2
with a parse error on stderr, never a traceback.
"""

import pytest

from repro.cli import main
from repro.faults import ENV_VAR


def cache_files(root):
    """``{relative path: bytes}`` of every stored result under ``root``."""
    results = root / "repro-cache" / "results"
    return {p.relative_to(results): p.read_bytes()
            for p in sorted(results.glob("*/*.json"))}


@pytest.mark.chaos
class TestExitCodes:
    def test_malformed_flag_plan_exits_2(self, capsys):
        assert main(["run", "fig14", "--faults", "worker-vanish"]) == 2
        err = capsys.readouterr().err
        assert "unknown fault point" in err
        assert "Traceback" not in err

    def test_malformed_env_plan_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "worker-crash:p=lots")
        assert main(["run", "fig14", "--scale", "0.3", "--no-plot"]) == 2
        assert "not a number" in capsys.readouterr().err

    def test_serve_rejects_malformed_plan_without_binding(self, capsys):
        assert main(["serve", "--faults", "nope"]) == 2
        assert "unknown fault point" in capsys.readouterr().err

    def test_recovered_run_exits_0(self, capsys):
        code = main(["run", "fig14", "--scale", "0.3", "--no-plot",
                     "--no-cache", "--faults", "cache-corrupt"])
        assert code == 0
        assert "PASS" in capsys.readouterr().out


@pytest.mark.chaos
class TestEnvPlanEndToEnd:
    def test_env_corruption_quarantined_and_healed(self, capsys, tmp_path,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
        monkeypatch.setenv(ENV_VAR, "cache-corrupt:count=1")
        assert main(["run", "fig14", "--scale", "0.3", "--no-plot"]) == 0
        monkeypatch.delenv(ENV_VAR)
        # second run hits the poisoned entry: quarantine, recompute, heal
        assert main(["run", "fig14", "--scale", "0.3", "--no-plot"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        quarantine = tmp_path / "repro-cache" / "quarantine"
        assert len(list(quarantine.glob("*.json"))) == 1
        # third run serves the healed entry
        assert main(["run", "fig14", "--scale", "0.3", "--no-plot"]) == 0


@pytest.mark.chaos
@pytest.mark.slow
class TestAcceptanceSweep:
    def test_faulted_sweep_byte_identical_to_clean(self, tmp_path,
                                                   monkeypatch, capsys):
        """The issue's acceptance criterion: a multi-experiment sweep
        under ``worker-crash:p=0.2,seed=7`` stores byte-for-byte the
        same cache entries as the fault-free sweep."""
        ids = ["fig1", "fig14", "table1"]
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "clean"
                                                  / "repro-cache"))
        assert main(["run", *ids, "--scale", "0.3", "--jobs", "2",
                     "--no-plot"]) == 0
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "faulted"
                                                  / "repro-cache"))
        assert main(["run", *ids, "--scale", "0.3", "--jobs", "2",
                     "--no-plot", "--faults",
                     "worker-crash:p=0.2,seed=7"]) == 0
        capsys.readouterr()

        clean = cache_files(tmp_path / "clean")
        faulted = cache_files(tmp_path / "faulted")
        assert set(clean) == set(faulted) and len(clean) == len(ids)
        for name in clean:
            assert clean[name] == faulted[name], name
