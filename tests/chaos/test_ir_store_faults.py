"""Chaos tests for the step-program IR store's self-healing read path.

Damaged ``.irp`` blobs (flipped bytes, truncation, stale checksums,
garbage headers) must be detected by the checksum envelope, quarantined
out of the way, and reported as misses — after which the caller's
re-record heals the slot with a blob *byte-identical* to a never-faulted
one (serialisation is canonical).  A poisoned store never changes what a
run computes: replays after quarantine stay bit-identical.
"""

import numpy as np
import pytest

from repro.algorithms import bitonic
from repro.machines import CM5
from repro.simulator.ir import IRStore, ir_store_scope

pytestmark = pytest.mark.chaos


def run_ir(seed=3):
    return bitonic.run(CM5(seed=seed), 64, P=16, seed=1, engine="ir")


def blob_paths(root):
    return sorted(p for p in root.rglob("*.irp")
                  if "quarantine" not in p.parts)


def mangle(path, how):
    raw = bytearray(path.read_bytes())
    if how == "flip":
        raw[len(raw) // 2] ^= 0xFF
    elif how == "truncate":
        raw = raw[:len(raw) // 2]
    elif how == "no-header":
        raw = raw.replace(b"repro-ir", b"not-an-ir", 1)
    elif how == "empty":
        raw = bytearray()
    path.write_bytes(bytes(raw))


class TestPoisonedBlobQuarantine:
    @pytest.mark.parametrize("how", ["flip", "truncate", "no-header",
                                     "empty"])
    def test_damage_quarantined_and_rerecorded(self, tmp_path, how):
        root = tmp_path / "ir"
        with ir_store_scope(IRStore(root)) as store:
            clean = run_ir()
            assert store.recorded == 1
        (path,) = blob_paths(root)
        pristine = path.read_bytes()
        mangle(path, how)

        # fresh store (fresh process): the poisoned blob must be missed,
        # moved aside, and the re-record must heal the slot
        with ir_store_scope(IRStore(root)) as store:
            healed = run_ir()
            assert store.quarantined == 1
            assert store.disk_hits == 0
            assert store.recorded == 1
        qdir = root / "quarantine"
        assert len(list(qdir.iterdir())) == 1
        (healed_path,) = blob_paths(root)
        assert healed_path.read_bytes() == pristine

        # the damage never reached the simulation
        assert healed.time_us == clean.time_us
        assert np.array_equal(healed.clocks, clean.clocks)

    def test_clean_blob_read_back_not_quarantined(self, tmp_path):
        root = tmp_path / "ir"
        with ir_store_scope(IRStore(root)):
            run_ir()
        with ir_store_scope(IRStore(root)) as store:
            run_ir()
            assert store.disk_hits == 1
            assert store.quarantined == 0
        assert not (root / "quarantine").exists()

    def test_poisoned_radix_recording_heals_byte_identically(self, tmp_path):
        """The healing path is algorithm-agnostic: a flipped byte in a
        radix-sort recording on the modern profile quarantines, re-records
        a blob byte-identical to the pristine one, and leaves every
        simulated observable (time, clocks, output keys) unchanged."""
        from repro.algorithms import radix
        from repro.machines import ModernCluster

        def run_radix():
            return radix.run(ModernCluster(seed=2), 256, P=16, seed=11,
                             engine="ir")

        root = tmp_path / "ir"
        with ir_store_scope(IRStore(root)) as store:
            clean = run_radix()
            assert store.recorded == 1
        (path,) = blob_paths(root)
        pristine = path.read_bytes()
        mangle(path, "flip")

        with ir_store_scope(IRStore(root)) as store:
            healed = run_radix()
            assert store.quarantined == 1
            assert store.disk_hits == 0
            assert store.recorded == 1
        (healed_path,) = blob_paths(root)
        assert healed_path.read_bytes() == pristine

        assert healed.time_us == clean.time_us
        assert np.array_equal(healed.clocks, clean.clocks)
        assert all(np.array_equal(h, c)
                   for h, c in zip(healed.returns, clean.returns))

    def test_unreadable_root_never_fails_a_run(self, tmp_path):
        """Disk persistence is best-effort: a store rooted at a plain
        file (mkdir/read both fail) still serves from memory."""
        bogus = tmp_path / "not-a-dir"
        bogus.write_text("occupied")
        with ir_store_scope(IRStore(bogus)) as store:
            a = run_ir()
            b = run_ir()
            assert store.recorded == 1
            assert store.memory_hits == 1
        assert a.time_us == b.time_us
