"""Shared fixtures for the chaos suite.

Every test here activates a deterministic :class:`repro.faults.FaultPlan`
and asserts that the recovery layer restores the *exact* fault-free
behaviour: bit-identical results, bounded attempt counts (via
:class:`~repro.faults.FakeClock` — no real sleeping for backoff), and
the documented exit codes / HTTP statuses.  Reproducing any failure
needs only the plan string printed in the test id.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.faults import FakeClock, deactivate
from repro.runner.pool import shutdown_pool


@pytest.fixture(autouse=True)
def _fault_hygiene():
    """No plan leaks into or out of a chaos test, and no worker pool
    primed with one survives it."""
    deactivate()
    yield
    deactivate()
    shutdown_pool()


@pytest.fixture
def fake_clock() -> FakeClock:
    return FakeClock()


def http(port, method, path, body=None, timeout=60.0):
    """One request; returns ``(status, parsed-or-raw body, headers)``.

    Unlike the service suite's helper this keeps the response headers —
    the chaos tests assert ``Retry-After`` on degradation responses.
    """
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", method=method,
        data=json.dumps(body).encode() if body is not None else None)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            status, raw, headers = resp.status, resp.read(), resp.headers
    except urllib.error.HTTPError as exc:
        status, raw, headers = exc.code, exc.read(), exc.headers
    ctype = headers.get("Content-Type", "")
    if ctype.startswith("application/json"):
        return status, json.loads(raw), headers
    return status, raw.decode(), headers
