"""Chaos tests for the multi-process fleet and the shared result arena.

Three failure families, each asserting the tentpole contract survives:

* **worker death** (SIGKILL mid-loadtest, the ``worker-exit`` fault):
  the supervisor respawns deterministically, clients only ever see the
  documented degradation ladder (connection drop or 503 + Retry-After),
  and post-recovery answers are byte-identical to the offline oracle;
* **arena poison** (the ``arena-poison`` fault, and raw garbage slots):
  checksum verification quarantines the slot and the reader falls back
  to a bit-identical recompute/disk read — corrupt bytes never escape;
* **handoff loss**: an accepted-then-dropped connection costs exactly
  one client retry, nothing else.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import socket
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.faults import FaultPlan, deactivate, install
from repro.runner.cache import ResultCache
from repro.service import ServiceConfig, ServiceThread
from repro.service.loadtest import run_loadtest
from repro.service.oracle import predict_offline
from repro.service.shm import SharedArena

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from fleetharness import (FleetProc, pid_alive, raw_request,  # noqa: E402
                          wait_dead)

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

DOC = {"machine": "gcel", "model": "bsp", "algorithm": "bitonic",
       "size": 32}


def offline_bytes(doc) -> bytes:
    return (json.dumps(predict_offline(doc)) + "\n").encode()


class TestWorkerDeath:
    def test_kill9_mid_loadtest_respawns_within_ladder(self):
        """SIGKILL a worker under live load: the fleet keeps answering,
        every failure the clients saw is in the documented ladder, and
        the replacement worker serves byte-identical results."""
        with FleetProc(2) as fleet:
            victim_index, victim_pid = sorted(fleet.worker_pids().items())[0]
            killer = threading.Timer(
                1.0, os.kill, args=(victim_pid, signal.SIGKILL))
            killer.start()
            try:
                report = asyncio.run(run_loadtest(
                    "127.0.0.1", fleet.port, concurrency=4, duration_s=4.0,
                    mix=(1, 0, 0)))
            finally:
                killer.cancel()
            new_pid = fleet.wait_respawn(victim_index, victim_pid)
            assert new_pid != victim_pid and pid_alive(new_pid)
            assert not pid_alive(victim_pid)
            # failures stay within the documented degradation ladder
            assert set(report.error_detail) <= {"connection", "http 503"}, \
                report.error_detail
            assert report.total > 0
            # the healed fleet answers bit-identically to the oracle
            status, payload = raw_request(fleet.port, "POST", "/predict",
                                          json.dumps(DOC).encode())
            assert status == 200
            assert payload == offline_bytes(DOC)

    def test_worker_exit_fault_respawns_deterministically(self):
        """``worker-exit:count=1`` arms every worker to die mid-request
        (``os._exit(23)``); the supervisor reports the exit code and
        respawns, and the killed requests surface only as connection
        drops — never as wrong bytes or hangs."""
        with FleetProc(2, args=("--faults", "worker-exit:count=1")) as fleet:
            body = json.dumps(DOC).encode()
            outcomes = []
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                try:
                    status, payload = raw_request(fleet.port, "POST",
                                                  "/predict", body,
                                                  timeout=10)
                    outcomes.append((status, payload))
                except (ConnectionError, OSError):
                    outcomes.append(("dropped", None))
                if any("respawning" in line for line in fleet.lines):
                    break
                time.sleep(0.25)
            assert any("exited (code 23) — respawning" in line
                       for line in fleet.lines), \
                f"no worker hit the worker-exit fault: {outcomes}"
            # any successful answer was byte-identical (a respawned
            # worker is re-armed, so the fleet flaps by design here and
            # zero successes is a legal schedule)
            bodies = {p for s, p in outcomes if s == 200}
            assert bodies <= {offline_bytes(DOC)}
            # failures were connection drops (the killed request) only —
            # a worker dying mid-request can't hand out wrong bytes
            assert {s for s, _ in outcomes} <= {200, 503, "dropped"}
            # the supervisor replaced the dead worker and stays up
            assert fleet.proc.poll() is None
            assert len(fleet.worker_pids()) == 2


class TestArenaPoison:
    def test_poisoned_put_quarantines_and_recovers_from_disk(self, tmp_path):
        """The ``arena-poison`` fault mangles a published payload while
        its checksum stays honest: every reader detects it, quarantines
        the slot, and falls back to the (bit-identical) disk entry."""
        arena = SharedArena.over(64, 32768)
        writer = ResultCache(tmp_path / "writer", arena=arena)
        reader = ResultCache(tmp_path / "reader", arena=arena)
        key = "deadbeef" * 5
        doc = {"algorithm": "bitonic", "t_pred": 1.5}

        install(FaultPlan.parse("arena-poison:count=1"))
        try:
            writer.put_doc(key, doc)
        finally:
            deactivate()
        # the reader's probe detects the mangled slot and misses clean
        # (its own disk root is empty) rather than returning bad bytes
        assert reader.get_doc(key) is None
        assert arena.stats.quarantined == 1
        # the writer recovers from its disk copy and republishes a clean
        # arena entry, which the reader then shares
        assert writer.get_doc(key) == doc
        assert reader.get_doc(key) == doc
        assert arena.stats.quarantined == 1

    def test_garbage_slot_falls_back_to_disk(self, tmp_path):
        """Arena bytes that pass the arena checksum but fail the result
        cache's own verification are invalidated, not trusted."""
        arena = SharedArena.over(64, 32768)
        cache = ResultCache(tmp_path / "cache", arena=arena)
        key = "cafebabe" * 5
        doc = {"algorithm": "apsp", "t_pred": 2.25}
        cache.put_doc(key, doc)
        # overwrite the slot with well-checksummed garbage
        arena.put(ResultCache._arena_key(key), b"this is not a cache doc")
        assert cache.get_doc(key) == doc
        # ...and the repaired arena entry now serves a fresh reader
        other = ResultCache(tmp_path / "other", arena=arena)
        assert other.get_doc(key) == doc

    def test_arena_is_optimization_only(self, tmp_path):
        """With no arena at all, behaviour is identical — the arena is
        a pure accelerator, never a correctness dependency."""
        plain = ResultCache(tmp_path / "plain")
        key = "0badf00d" * 5
        doc = {"algorithm": "lu", "t_pred": 0.125}
        plain.put_doc(key, doc)
        assert plain.get_doc(key) == doc


class TestHandoffLoss:
    def test_dropped_accept_costs_one_retry(self, tmp_path):
        """``handoff-loss:count=1`` drops the first accepted connection
        before reading the request; the retry is answered perfectly."""
        config = ServiceConfig(port=0, workers=2, warm=False,
                               cache_dir=str(tmp_path / "cache"),
                               faults="handoff-loss:count=1")
        with ServiceThread(config) as svc:
            body = json.dumps(DOC).encode()
            with pytest.raises((ConnectionError, OSError)):
                raw_request(svc.port, "POST", "/predict", body, timeout=10)
            status, payload = raw_request(svc.port, "POST", "/predict",
                                          body)
            assert status == 200
            assert payload == offline_bytes(DOC)
            _, metrics = raw_request(svc.port, "GET", "/metrics")
            assert ('repro_faults_injected_total{point="handoff-loss"} 1'
                    in metrics.decode())

    def test_fleet_signal_teardown_leaves_no_sockets(self):
        """After SIGTERM the port is closed fleet-wide — no half-open
        placeholder or worker socket keeps accepting."""
        with FleetProc(2) as fleet:
            port = fleet.port
            pids = list(fleet.worker_pids().values())
            assert fleet.stop() == 0
            assert wait_dead(pids)
        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=2).close()
