"""Chaos tests for the ablation evaluator's recovery paths.

Worker crashes mid-matrix, poisoned cache entries and served dispatch
faults are injected into ablation runs; every test asserts the report
still lands byte-identical to the fault-free one — the evaluator rides
the same retry/fallback/quarantine machinery as the experiment runner,
and a cell run is a pure function of its run ID.
"""

import json

import pytest

from repro.ablation import AblateRequest, ablate
from repro.faults import RetryPolicy
from repro.runner import ResultCache
from repro.service.oracle import ablate_offline

from .conftest import http
from .test_service_faults import service

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

#: two components on two machines -> a 4-run matrix (2 baseline cells +
#: one ablated run each), small enough to stay fast, wide enough that a
#: mid-matrix crash leaves completed work behind.
SELECTION = dict(components=("sync-loss", "cube-discount"),
                 cells=("apsp", "bitonic"), scale=0.3, seed=0)
N_RUNS = 4

POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05,
                     seed=0)


def report_bytes(report: dict) -> bytes:
    return json.dumps(report, sort_keys=True).encode()


@pytest.fixture(scope="module")
def baseline() -> bytes:
    """The fault-free report every recovery must reproduce exactly."""
    return report_bytes(ablate(AblateRequest(**SELECTION,
                                             use_cache=False)))


class TestWorkerFaults:
    @pytest.mark.parametrize("seed", [7, 11, 13])
    def test_probabilistic_crashes_recover_bit_identical(self, baseline,
                                                         fake_clock, seed):
        report = ablate(
            AblateRequest(**SELECTION, jobs=2, use_cache=False),
            faults=f"worker-crash:p=0.5,seed={seed}",
            retry=POLICY, clock=fake_clock)
        assert report_bytes(report) == baseline
        assert len(fake_clock.sleeps) <= (POLICY.max_attempts - 1) * N_RUNS

    def test_certain_crash_falls_back_in_process(self, baseline,
                                                 fake_clock):
        """p=1: every pool attempt dies; the in-process fallback runs
        each cell with exactly the policy's backoff schedule spent."""
        report = ablate(
            AblateRequest(**SELECTION, jobs=2, use_cache=False),
            faults="worker-crash", retry=POLICY, clock=fake_clock)
        assert report_bytes(report) == baseline
        assert fake_clock.sleeps == POLICY.delays() * N_RUNS

    def test_hung_workers_time_out_and_recover(self, baseline, fake_clock):
        report = ablate(
            AblateRequest(**SELECTION, jobs=2, use_cache=False),
            faults="worker-hang:delay=0.6,count=1", retry=POLICY,
            clock=fake_clock, exec_timeout_s=0.2)
        assert report_bytes(report) == baseline


class TestCacheFaults:
    @pytest.mark.parametrize("point", ["cache-corrupt", "cache-truncate",
                                       "cache-stale"])
    def test_poisoned_entries_quarantined_then_healed(self, tmp_path,
                                                      baseline, point):
        """Mangle one stored cell doc; the next run quarantines it,
        recomputes, and both reports stay byte-identical."""
        req = AblateRequest(**SELECTION, cache_dir=str(tmp_path))
        first = ablate(req, faults=f"{point}:count=1")
        assert report_bytes(first) == baseline

        second = ablate(req)
        assert report_bytes(second) == baseline
        cache = ResultCache(tmp_path)
        assert len(cache.quarantined()) == 1

        # third run: fully verified hits, still the same bytes
        third = ablate(req)
        assert report_bytes(third) == baseline


class TestServedFaults:
    DOC = {"components": ["sync-loss"], "cells": ["apsp"], "scale": 0.3,
           "seed": 0}

    def test_dispatch_error_retried_to_offline_bytes(self, tmp_path):
        with service(tmp_path, faults="dispatch-error:count=1") as svc:
            status, body, _ = http(svc.port, "POST", "/ablate", self.DOC)
            assert status == 200
            assert body == json.loads(json.dumps(ablate_offline(self.DOC)))
            _, metrics, _ = http(svc.port, "GET", "/metrics")
            assert 'repro_faults_injected_total{point="dispatch-error"} 1' \
                in metrics

    def test_worker_crash_inside_service_still_serves(self, tmp_path):
        """A crash fault active inside the batch worker's evaluator is
        absorbed by the evaluator's own retries (jobs=1 runs inline, so
        the fault point fires nowhere) — the served bytes don't change."""
        with service(tmp_path, faults="worker-crash:p=0.5,seed=3") as svc:
            status, body, _ = http(svc.port, "POST", "/ablate", self.DOC)
            assert status == 200
            assert body == json.loads(json.dumps(ablate_offline(self.DOC)))
