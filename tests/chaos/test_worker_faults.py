"""Chaos tests for the warm-pool recovery path.

Crash, hang and spawn faults are injected into the worker pool under
seeded plans; every test asserts the batch still completes with results
bit-identical to the fault-free run, and that the bounded backoff spent
exactly (or at most) its budgeted attempts — measured on a FakeClock,
so no test actually sleeps through a backoff schedule.
"""

import pytest

from repro.faults import FakeClock, RetryPolicy
from repro.runner import run_experiments

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

#: two cheap experiments exercising distinct machines/calibrations.
IDS = ["fig1", "fig14"]
SCALE = 0.3

#: a tight policy so exhausted-retry tests stay fast even on real clocks.
POLICY = RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05,
                     seed=0)


@pytest.fixture(scope="module")
def baseline():
    """The fault-free results (serial, uncached) every test compares to."""
    outs = run_experiments(IDS, scale=SCALE, cache=None)
    return {o.id: o.result for o in outs}


class TestWorkerCrash:
    @pytest.mark.parametrize("seed", [7, 11, 13])
    def test_probabilistic_crashes_recover_bit_identical(self, baseline,
                                                         fake_clock, seed):
        """Three different crash schedules, one invariant: same bytes."""
        outs = run_experiments(
            IDS, scale=SCALE, cache=None, jobs=2,
            faults=f"worker-crash:p=0.5,seed={seed}",
            retry=POLICY, clock=fake_clock)
        for out in outs:
            assert not out.cached
            assert out.result.identical(baseline[out.id]), out.id
            for a, b in zip(out.result.series, baseline[out.id].series):
                assert a.ys.tobytes() == b.ys.tobytes()
        # bounded attempts: at most the policy's schedule per experiment
        assert len(fake_clock.sleeps) <= (POLICY.max_attempts - 1) * len(IDS)

    def test_certain_crash_falls_back_in_process(self, baseline, fake_clock):
        """p=1: every pool attempt fails, the in-process fallback runs —
        and the backoff schedule replayed is *exactly* the policy's."""
        outs = run_experiments(
            IDS, scale=SCALE, cache=None, jobs=2, faults="worker-crash",
            retry=POLICY, clock=fake_clock)
        for out in outs:
            assert out.result.identical(baseline[out.id]), out.id
        assert fake_clock.sleeps == POLICY.delays() * len(IDS)

    def test_faulted_results_land_in_cache_and_heal(self, baseline,
                                                    fake_clock, tmp_path):
        """A recovered run stores normal entries: the next run hits."""
        from repro.runner import ResultCache

        cache = ResultCache(tmp_path)
        run_experiments(IDS, scale=SCALE, cache=cache, jobs=2,
                        faults="worker-crash:p=0.5,seed=7",
                        retry=POLICY, clock=fake_clock)
        warm = ResultCache(tmp_path)
        outs = run_experiments(IDS, scale=SCALE, cache=warm)
        assert all(o.cached for o in outs)
        for out in outs:
            assert out.result.identical(baseline[out.id]), out.id


class TestSpawnFaults:
    def test_broken_pool_recovers(self, baseline, fake_clock):
        """spawn-crash breaks the pool during bring-up; the batch must
        still complete bit-identically (rebuild or in-process)."""
        outs = run_experiments(
            IDS, scale=SCALE, cache=None, jobs=2, faults="spawn-crash",
            retry=POLICY, clock=fake_clock)
        for out in outs:
            assert out.result.identical(baseline[out.id]), out.id
        assert len(fake_clock.sleeps) <= (POLICY.max_attempts - 1) * len(IDS)

    def test_slow_spawn_only_delays(self, baseline):
        """spawn-slow is pure latency: no retries, identical results."""
        clock = FakeClock()
        outs = run_experiments(
            IDS, scale=SCALE, cache=None, jobs=2,
            faults="spawn-slow:delay=0.05", retry=POLICY, clock=clock)
        for out in outs:
            assert out.result.identical(baseline[out.id]), out.id
        assert clock.sleeps == []  # parent never had to back off


class TestWorkerHang:
    def test_deadline_cancels_and_retries(self, baseline, fake_clock):
        """A hung worker trips ``exec_timeout_s``; the task is retried
        elsewhere and the batch stays bit-identical."""
        outs = run_experiments(
            IDS, scale=SCALE, cache=None, jobs=2,
            faults="worker-hang:delay=0.6,count=1",
            retry=POLICY, clock=fake_clock, exec_timeout_s=0.2)
        for out in outs:
            assert out.result.identical(baseline[out.id]), out.id
        assert 0 < len(fake_clock.sleeps) \
            <= (POLICY.max_attempts - 1) * len(IDS)
