"""Chaos tests for the serving layer's graceful degradation.

Dispatcher faults (worker exceptions, stuck batches, LRU eviction
storms) are injected into live servers; the assertions pin the contract:
recovered answers are bit-identical to the offline oracle, exhausted or
shed requests answer 503 with a ``Retry-After`` header, and repeated
failures on one key trip its circuit breaker.
"""

import json
import threading
import time

import pytest

from repro.service import ServiceConfig, ServiceThread
from repro.service.oracle import predict_offline

from .conftest import http

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

DOC = {"machine": "gcel", "model": "bsp", "algorithm": "bitonic",
       "size": 64}


def service(tmp_path, **overrides):
    base = dict(port=0, workers=2, window_ms=1.0, warm=False,
                cache_dir=str(tmp_path / "cache"))
    base.update(overrides)
    return ServiceThread(ServiceConfig(**base))


def offline(doc):
    return json.loads(json.dumps(predict_offline(doc)))


class TestDispatchErrorRecovery:
    def test_transient_error_retried_bit_identical(self, tmp_path):
        with service(tmp_path, faults="dispatch-error:count=1") as svc:
            status, body, _ = http(svc.port, "POST", "/predict", DOC)
            assert status == 200
            assert body == offline(DOC)
            # the recovery is visible on /metrics: the fault fired and
            # the dispatcher spent (bounded) retries absorbing it
            _, metrics, _ = http(svc.port, "GET", "/metrics")
            assert 'repro_faults_injected_total{point="dispatch-error"} 1' \
                in metrics
            assert 'repro_retries_total{site="dispatch"} 1' in metrics

    def test_exhausted_retries_answer_503_retry_after(self, tmp_path):
        with service(tmp_path, faults="dispatch-error") as svc:
            status, body, headers = http(svc.port, "POST", "/predict", DOC)
            assert status == 503
            assert "transient failure" in body["error"]
            assert int(headers["Retry-After"]) >= 1

    def test_slow_dispatch_within_deadline_succeeds(self, tmp_path):
        with service(tmp_path,
                     faults="dispatch-slow:delay=0.05,count=1") as svc:
            status, body, _ = http(svc.port, "POST", "/predict", DOC)
            assert status == 200
            assert body == offline(DOC)


class TestDeadline:
    def test_stuck_batch_trips_request_timeout(self, tmp_path):
        with service(tmp_path, faults="dispatch-slow:delay=0.5",
                     request_timeout_s=0.1) as svc:
            status, body, headers = http(svc.port, "POST", "/predict", DOC)
            assert status == 503
            assert "deadline" in body["error"]
            assert int(headers["Retry-After"]) >= 1


class TestCircuitBreaker:
    def test_poisoned_key_trips_isolated_breaker(self, tmp_path):
        with service(tmp_path, faults="dispatch-error",
                     breaker_threshold=2, breaker_reset_s=60.0) as svc:
            # two real failures burn the threshold ...
            errors = [http(svc.port, "POST", "/predict", DOC)[1]["error"]
                      for _ in range(2)]
            assert all("transient failure" in e for e in errors)
            # ... then the breaker fails the key fast, without dispatching
            status, body, headers = http(svc.port, "POST", "/predict", DOC)
            assert status == 503
            assert "circuit open" in body["error"]
            assert int(headers["Retry-After"]) >= 1
            _, metrics, _ = http(svc.port, "GET", "/metrics")
            assert 'repro_rejected_total{reason="breaker"} 1' in metrics


class TestSaturation:
    def test_full_dispatcher_sheds_load(self, tmp_path):
        with service(tmp_path, workers=1, faults="dispatch-slow:delay=0.6",
                     saturation_limit=1) as svc:
            slow: dict = {}

            def occupy():
                slow["resp"] = http(svc.port, "POST", "/predict", DOC)

            t = threading.Thread(target=occupy)
            t.start()
            try:
                # let the slow request reach the dispatcher: it then owns
                # the single in-flight slot for ~0.6s
                time.sleep(0.2)
                doc2 = dict(DOC, size=128)  # a different key
                status, body, headers = http(svc.port, "POST", "/predict",
                                             doc2)
                assert status == 503
                assert "saturated" in body["error"]
                assert int(headers["Retry-After"]) >= 1
            finally:
                t.join()
            # the in-flight request still completed, slowly but correctly
            assert slow["resp"][0] == 200
            assert slow["resp"][1] == offline(DOC)


class TestLruStorm:
    def test_eviction_storm_recomputes_identically(self, tmp_path):
        with service(tmp_path, faults="lru-storm") as svc:
            first = http(svc.port, "POST", "/predict", DOC)
            second = http(svc.port, "POST", "/predict", DOC)
            assert first[0] == second[0] == 200
            assert first[1] == second[1] == offline(DOC)
            _, metrics, _ = http(svc.port, "GET", "/metrics")
            # every batch recomputed: the storm fired and no probe hit
            assert 'repro_faults_injected_total{point="lru-storm"}' \
                in metrics
            assert 'repro_lru_hits_total{kind="predict"}' not in metrics
