"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro.algorithms import apsp, bitonic, matmul, samplesort
from repro.core import BSP, MPBPRAM, ModelParams
from repro.core.errors import ModelError, SimulationError
from repro.core.relations import CommPhase
from repro.machines import CM5, GCel, MasParMP1
from repro.simulator import run_spmd


class TestDegenerateParams:
    def test_zero_latency_model(self):
        p = ModelParams(machine="x", P=4, g=1.0, L=0.0, sigma=0.1, ell=0.0)
        ph = CommPhase.permutation(np.roll(np.arange(4), 1), 4)
        assert BSP(p).comm_cost(ph) == pytest.approx(1.0)
        assert MPBPRAM(p).comm_cost(ph) == pytest.approx(0.4)

    def test_zero_byte_message(self):
        ph = CommPhase(P=4, src=[0], dst=[1], count=[1], msg_bytes=[0])
        p = ModelParams(machine="x", P=4, g=1.0, L=2.0, sigma=0.1, ell=5.0)
        # zero bytes -> zero words, but the startup terms still apply
        assert MPBPRAM(p).comm_cost(ph) == pytest.approx(5.0)

    def test_negative_message_rejected(self):
        with pytest.raises(Exception):
            CommPhase(P=4, src=[0], dst=[1], count=[1], msg_bytes=[-1])


class TestTinyMachines:
    def test_single_processor_program(self, cm5):
        def prog(ctx):
            ctx.charge_flops(100)
            yield ctx.sync()
            return ctx.rank

        res = run_spmd(cm5, prog, P=1)
        assert res.returns == [0]
        assert res.time_us > 0

    def test_two_processor_bitonic(self):
        res = bitonic.run(CM5(seed=0), 4, variant="bsp", P=2, seed=1)
        flat = np.concatenate(res.returns)
        assert np.all(flat[:-1] <= flat[1:])

    def test_one_by_one_apsp_grid(self, cm5):
        res = apsp.run(cm5, 4, P=1, seed=0)
        got = apsp.assemble(1, 4, res.returns)
        assert np.allclose(got, apsp.reference_apsp(res.inputs))

    def test_minimum_matmul(self, cm5):
        # q = 1: a single processor does everything locally
        res = matmul.run(cm5, 4, variant="bpram", P=1, seed=0)
        C = matmul.assemble(res.setup, res.returns)
        A, B = res.inputs
        assert np.allclose(C, A @ B)


class TestAdversarialInputs:
    def test_bitonic_all_equal_keys(self):
        machine = CM5(seed=0)
        keys = np.full((16, 8), 42, dtype=np.uint64)

        def prog(ctx):
            return bitonic.bitonic_program(ctx, keys[ctx.rank], "bsp")

        res = run_spmd(machine, prog, P=16)
        assert all(np.asarray(r).size == 8 for r in res.returns)
        flat = np.concatenate(res.returns)
        assert np.all(flat == 42)

    def test_bitonic_presorted_and_reversed(self):
        machine = CM5(seed=0)
        for order in (1, -1):
            base = np.arange(16 * 8, dtype=np.uint64)[::order].reshape(16, 8)

            def prog(ctx):
                return bitonic.bitonic_program(ctx, base[ctx.rank].copy(),
                                               "bpram")

            res = run_spmd(machine, prog, P=16)
            flat = np.concatenate(res.returns)
            assert np.array_equal(flat, np.sort(base.ravel()))

    def test_samplesort_single_hot_bucket(self):
        """Every key identical: one bucket takes everything, the padded
        routing must absorb the skew (or grow its messages)."""
        machine = CM5(seed=0)
        keys = np.full((16, 32), 7, dtype=np.uint64)

        def prog(ctx):
            return samplesort.sample_sort_program(ctx, keys[ctx.rank],
                                                  "bpram", 8, sample_seed=0)

        res = run_spmd(machine, prog, P=16)
        flat = np.concatenate([np.asarray(r) for r in res.returns])
        assert flat.size == 16 * 32 and np.all(flat == 7)

    def test_apsp_fully_disconnected(self, cm5):
        res = apsp.run(cm5, 16, P=16, seed=0, density=0.0)
        got = apsp.assemble(16, 16, res.returns)
        off_diag = ~np.eye(16, dtype=bool)
        assert np.all(got[off_diag] >= apsp.INF / 2)

    def test_apsp_fully_connected(self, cm5):
        res = apsp.run(cm5, 16, P=16, seed=0, density=1.0)
        got = apsp.assemble(16, 16, res.returns)
        assert np.allclose(got, apsp.reference_apsp(res.inputs))


class TestProgramFaults:
    def test_receive_before_send_superstep(self, cm5):
        """Reading a message that arrives only next superstep fails loudly."""

        def prog(ctx):
            if ctx.rank == 0:
                ctx.put(1, 1, nbytes=4, tag="late")
            if ctx.rank == 1:
                with pytest.raises(Exception):
                    ctx.get(src=0, tag="late")
            yield ctx.sync()
            if ctx.rank == 1:
                assert ctx.get(src=0, tag="late") == 1

        run_spmd(cm5, prog, P=2)

    def test_mixed_yield_types_rejected(self, cm5):
        def prog(ctx):
            yield ctx.sync()
            yield 42

        with pytest.raises(SimulationError):
            run_spmd(cm5, prog, P=2)

    def test_machine_rejects_foreign_clock_shape(self):
        m = GCel(seed=0)
        ph = CommPhase.permutation(np.roll(np.arange(64), 1), 4)
        with pytest.raises(Exception):
            m.comm_time(ph, np.zeros(32))


class TestSeedIsolation:
    def test_machine_instances_do_not_share_state(self):
        a = MasParMP1(P=64, seed=5)
        b = MasParMP1(P=64, seed=5)
        ph = CommPhase.permutation(np.roll(np.arange(64), 3), 4)
        # interleaved calls must match pairwise (no hidden global RNG)
        assert a.phase_cost(ph) == b.phase_cost(ph)
        assert a.phase_cost(ph) == b.phase_cost(ph)
