"""Tests for the BSP collectives library (after reference [16])."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms.collectives import broadcast, prefix_sum, reduce_vector
from repro.core import BSP, paper_params
from repro.core.errors import ExperimentError
from repro.machines import CM5
from repro.simulator import run_spmd

CM5_PARAMS = paper_params("cm5")


def run_collective(machine, body, P=16):
    def prog(ctx):
        out = yield from body(ctx)
        return out

    return run_spmd(machine, prog, P=P)


@pytest.mark.parametrize("strategy", ["naive", "two-phase"])
class TestBroadcast:
    def test_everyone_gets_the_vector(self, cm5, strategy):
        vec = np.arange(64, dtype=float)

        def body(ctx):
            out = yield from broadcast(
                ctx, vec if ctx.rank == 3 else None, 3, "b", strategy)
            return out

        res = run_collective(cm5, body)
        for out in res.returns:
            assert np.array_equal(out, vec)

    def test_root_zero(self, cm5, strategy):
        vec = np.ones(16)

        def body(ctx):
            out = yield from broadcast(
                ctx, vec if ctx.rank == 0 else None, 0, "b", strategy)
            return out

        res = run_collective(cm5, body)
        assert all(np.array_equal(o, vec) for o in res.returns)


class TestBroadcastCosts:
    def _trace(self, strategy, n, P=16):
        vec = np.zeros(n)

        def body(ctx):
            out = yield from broadcast(
                ctx, vec if ctx.rank == 0 else None, 0, "b", strategy)
            return out

        return run_collective(CM5(seed=1), body, P=P).trace

    def test_naive_priced_as_root_bottleneck(self):
        n, P = 64, 16
        cost = BSP(CM5_PARAMS).trace_cost(self._trace("naive", n, P))
        expected = CM5_PARAMS.g * n * (P - 1) + CM5_PARAMS.L
        assert cost == pytest.approx(expected, rel=0.01)

    def test_two_phase_priced_near_2gn(self):
        n, P = 256, 16
        cost = BSP(CM5_PARAMS).trace_cost(self._trace("two-phase", n, P))
        # scatter: h ~ n(P-1)/P; allgather: h ~ n(P-1)/P
        expected = 2 * (CM5_PARAMS.g * n * (P - 1) / P + CM5_PARAMS.L)
        assert cost == pytest.approx(expected, rel=0.05)

    def test_two_phase_beats_naive_for_large_vectors(self):
        n, P = 1024, 16
        naive = BSP(CM5_PARAMS).trace_cost(self._trace("naive", n, P))
        smart = BSP(CM5_PARAMS).trace_cost(self._trace("two-phase", n, P))
        assert smart < naive / 4

    def test_superstep_counts(self):
        # naive pays one latency term, two-phase pays two — the trade
        # the companion paper's optimal collectives balance
        naive = [s for s in self._trace("naive", 16) if not s.phase.is_empty]
        smart = [s for s in self._trace("two-phase", 16)
                 if not s.phase.is_empty]
        assert len(naive) == 1 and len(smart) == 2


@pytest.mark.parametrize("strategy", ["naive", "two-phase"])
class TestReduce:
    def test_sum_at_root(self, cm5, strategy):
        P = 16

        def body(ctx):
            vec = np.full(32, float(ctx.rank))
            out = yield from reduce_vector(ctx, vec, 5, "r", strategy)
            return out

        res = run_collective(cm5, body, P=P)
        expected = np.full(32, sum(range(P)))
        assert np.array_equal(res.returns[5], expected)
        assert all(res.returns[r] is None for r in range(P) if r != 5)


@pytest.mark.parametrize("strategy", ["tree", "direct"])
class TestPrefixSum:
    def test_exclusive_prefix(self, cm5, strategy):
        def body(ctx):
            out = yield from prefix_sum(ctx, float(ctx.rank + 1), "s",
                                        strategy)
            return out

        res = run_collective(cm5, body)
        for rank, out in enumerate(res.returns):
            assert out == pytest.approx(sum(range(1, rank + 1)))

    @given(st.integers(0, 5))
    @settings(max_examples=5, deadline=None)
    def test_random_values(self, strategy, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 100, size=16).astype(float)

        def body(ctx):
            out = yield from prefix_sum(ctx, values[ctx.rank], "s",
                                        strategy)
            return out

        res = run_collective(CM5(seed=1), body)
        for rank, out in enumerate(res.returns):
            assert out == pytest.approx(values[:rank].sum())


class TestScanCosts:
    def _trace(self, strategy, P=64):
        def body(ctx):
            out = yield from prefix_sum(ctx, 1.0, "s", strategy)
            return out

        return run_collective(CM5(seed=1), body, P=P).trace

    def test_tree_is_log_supersteps(self):
        trace = self._trace("tree")
        assert len([s for s in trace if not s.phase.is_empty]) == 6

    def test_direct_is_one_superstep(self):
        trace = self._trace("direct")
        assert len([s for s in trace if not s.phase.is_empty]) == 1

    def test_cost_tradeoff(self):
        # tree: (g + L) log P ; direct: g (P-1) + L — on the CM-5 with
        # P = 64, direct's bandwidth term loses to tree's latency terms.
        tree = BSP(CM5_PARAMS).trace_cost(self._trace("tree"))
        direct = BSP(CM5_PARAMS).trace_cost(self._trace("direct"))
        assert tree == pytest.approx(6 * (CM5_PARAMS.g + CM5_PARAMS.L),
                                     rel=0.01)
        assert direct == pytest.approx(
            CM5_PARAMS.g * 63 + CM5_PARAMS.L, rel=0.01)


class TestValidation:
    def test_bad_strategy(self, cm5):
        def body(ctx):
            out = yield from prefix_sum(ctx, 1.0, "s", "quantum")
            return out

        with pytest.raises(ExperimentError):
            run_collective(cm5, body)

    def test_vector_must_divide(self, cm5):
        def body(ctx):
            out = yield from broadcast(
                ctx, np.zeros(17) if ctx.rank == 0 else None, 0, "b",
                "two-phase")
            return out

        with pytest.raises(ExperimentError):
            run_collective(cm5, body)
