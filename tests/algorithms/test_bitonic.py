"""Tests for bitonic sort (paper §4.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import bitonic
from repro.core import MPBPRAM, MPBSP, paper_params
from repro.core.errors import ExperimentError
from repro.core.predictions import bpram_bitonic, bsp_bitonic, mp_bsp_bitonic
from repro.machines import CM5, GCel, MasParMP1


def globally_sorted_and_permuted(res) -> bool:
    flat = np.concatenate([np.asarray(r) for r in res.returns])
    return (bool(np.all(flat[:-1] <= flat[1:]))
            and np.array_equal(np.sort(flat), np.sort(res.inputs.ravel())))


@pytest.mark.parametrize("variant", bitonic.VARIANTS)
class TestCorrectness:
    def test_sorts_on_cm5(self, cm5, variant):
        res = bitonic.run(cm5, 32, variant=variant, seed=5)
        assert globally_sorted_and_permuted(res)

    def test_sorts_on_gcel(self, gcel, variant):
        res = bitonic.run(gcel, 16, variant=variant, seed=6)
        assert globally_sorted_and_permuted(res)


class TestStructure:
    def test_merge_step_count(self, cm5):
        # log P = 6 stages, sum_d d = 21 exchange supersteps (+0 for sort)
        res = bitonic.run(cm5, 8, variant="bsp", seed=0)
        comm_steps = [s for s in res.trace if not s.phase.is_empty]
        assert len(comm_steps) == 21

    def test_every_exchange_is_cube_permutation(self, cm5):
        res = bitonic.run(cm5, 8, variant="bsp", seed=0)
        bits = [s.phase.cube_bit for s in res.trace if not s.phase.is_empty]
        assert all(b >= 0 for b in bits)
        # last stage descends through bits log P-1 .. 0
        assert bits[-6:] == [5, 4, 3, 2, 1, 0]

    def test_equal_keys_balanced(self, cm5):
        res = bitonic.run(cm5, 16, variant="bsp", seed=0)
        assert all(np.asarray(r).size == 16 for r in res.returns)

    def test_single_key_per_proc(self, cm5):
        res = bitonic.run(cm5, 1, variant="bsp", seed=2)
        assert globally_sorted_and_permuted(res)

    def test_bad_variant(self, cm5):
        with pytest.raises(ExperimentError):
            bitonic.run(cm5, 8, variant="quantum")

    def test_non_power_of_two_P(self, cm5):
        with pytest.raises(ExperimentError):
            bitonic.run(cm5, 8, variant="bsp", P=48)


class TestPredictionAgreement:
    def test_bpram_trace_vs_closed_form(self, gcel, gcel_params):
        res = bitonic.run(gcel, 128, variant="bpram", seed=0)
        trace_cost = MPBPRAM(gcel_params).trace_cost(res.trace)
        closed = bpram_bitonic(128, gcel_params)
        assert trace_cost == pytest.approx(closed, rel=0.05)

    def test_mp_bsp_trace_vs_closed_form(self, maspar_params):
        m = MasParMP1(P=64, seed=1)
        params = maspar_params.with_updates(P=64)
        res = bitonic.run(m, 32, variant="bsp", seed=0)
        trace_cost = MPBSP(params).trace_cost(res.trace)
        closed = mp_bsp_bitonic(32, params, P=64)
        assert trace_cost == pytest.approx(closed, rel=0.05)


class TestPaperPhenomena:
    def test_maspar_models_overestimate_by_factor_2(self):
        # §5.1 / Fig. 5: the MP-BSP model overestimates by almost 2x
        # because the cube pattern is especially cheap on the router.
        m = MasParMP1(seed=3)
        params = paper_params("maspar")
        res = bitonic.run(m, 32, variant="bsp", seed=0)
        ratio = mp_bsp_bitonic(32, params) / res.time_us
        assert 1.7 < ratio < 2.7

    def test_maspar_bpram_prediction_also_high_but_closer(self):
        # Fig. 10: MP-BPRAM also overestimates, but is slightly tighter.
        m = MasParMP1(seed=3)
        params = paper_params("maspar")
        res_b = bitonic.run(m, 32, variant="bpram", seed=0)
        ratio_b = bpram_bitonic(32, params) / res_b.time_us
        res_w = bitonic.run(m, 32, variant="bsp", seed=0)
        ratio_w = mp_bsp_bitonic(32, params) / res_w.time_us
        assert 1.0 < ratio_b < ratio_w

    def test_maspar_bulk_gain_about_2(self):
        # Fig. 17: the block version wins by ~2.1x (max 3.3).
        m = MasParMP1(seed=3)
        t_word = bitonic.run(m, 64, variant="bsp", seed=0).time_us
        t_blk = bitonic.run(m, 64, variant="bpram", seed=0).time_us
        assert t_word / t_blk == pytest.approx(2.1, abs=0.4)

    def test_gcel_bpram_prediction_accurate(self):
        # Fig. 11: "the estimated times ... almost coincide".
        g = GCel(seed=3)
        params = paper_params("gcel")
        res = bitonic.run(g, 1024, variant="bpram", seed=0)
        assert bpram_bitonic(1024, params) == pytest.approx(res.time_us, rel=0.08)

    def test_gcel_two_orders_of_magnitude(self):
        # §6: BSP (fine-grain, synchronized) vs MP-BPRAM on the GCel —
        # "almost two orders of magnitude" with 4K keys per processor.
        g = GCel(seed=3)
        t_sync = bitonic.run(g, 2048, variant="bsp-sync", seed=0).time_us
        t_blk = bitonic.run(g, 2048, variant="bpram", seed=0).time_us
        assert t_sync / t_blk > 30

    def test_gcel_drift_hurts_and_sync_fixes(self):
        # Figs. 6/7: the unsynchronized version drifts beyond ~300
        # messages; barriers every 256 messages repair it.
        g1 = GCel(seed=4)
        t_plain = bitonic.run(g1, 1024, variant="bsp-nosync", seed=0).time_us
        g2 = GCel(seed=4)
        t_sync = bitonic.run(g2, 1024, variant="bsp-sync", seed=0).time_us
        assert t_plain > 1.1 * t_sync

    def test_gcel_synchronized_matches_prediction(self):
        g = GCel(seed=4)
        params = paper_params("gcel")
        res = bitonic.run(g, 1024, variant="bsp-sync", seed=0)
        assert bsp_bitonic(1024, params) == pytest.approx(res.time_us, rel=0.10)

    def test_cm5_prediction_reasonable(self, cm5_params):
        c = CM5(seed=4)
        res = bitonic.run(c, 256, variant="bsp", seed=0)
        assert bsp_bitonic(256, cm5_params) == pytest.approx(res.time_us, rel=0.25)


class TestPropertyBased:
    @given(st.integers(0, 5), st.sampled_from([4, 8, 16]))
    @settings(max_examples=10, deadline=None)
    def test_sorts_any_seed_and_P(self, seed, P):
        c = CM5(seed=1)
        res = bitonic.run(c, 8, variant="bsp", P=P, seed=seed)
        assert globally_sorted_and_permuted(res)

    @given(st.sampled_from([1, 2, 4, 16]))
    @settings(max_examples=8, deadline=None)
    def test_bpram_sorts_various_M(self, M):
        c = CM5(seed=1)
        res = bitonic.run(c, M, variant="bpram", P=16, seed=3)
        assert globally_sorted_and_permuted(res)
