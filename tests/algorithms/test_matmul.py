"""Tests for the 3D matrix multiplication (paper §4.1)."""

import numpy as np
import pytest

from repro.algorithms import matmul
from repro.core import BSP, MPBPRAM, MPBSP, paper_params
from repro.core.errors import ExperimentError
from repro.core.predictions import bpram_matmul, bsp_matmul, mp_bsp_matmul
from repro.machines import CM5, MasParMP1


class TestSetup:
    def test_geometry(self):
        s = matmul.MatmulSetup.create(64, 64)
        assert s.q == 4 and s.sub == 16 and s.rows == 4

    def test_coords_roundtrip(self):
        s = matmul.MatmulSetup.create(64, 64)
        for rank in range(64):
            assert s.rank_of(*s.coords(rank)) == rank

    def test_non_cubic_P_rejected(self):
        with pytest.raises(Exception):
            matmul.MatmulSetup.create(64, 100)

    def test_bad_N_rejected(self):
        with pytest.raises(ExperimentError):
            matmul.MatmulSetup.create(50, 64)


@pytest.mark.parametrize("variant", matmul.VARIANTS)
class TestCorrectness:
    def test_product_correct(self, cm5, variant):
        res = matmul.run(cm5, 32, variant=variant, seed=3)
        C = matmul.assemble(res.setup, res.returns)
        A, B = res.inputs
        assert np.allclose(C, A @ B)

    def test_on_maspar_partition(self, variant):
        m = MasParMP1(P=64, seed=4)
        res = matmul.run(m, 48, variant=variant, seed=1)
        C = matmul.assemble(res.setup, res.returns)
        A, B = res.inputs
        assert np.allclose(C, A @ B)


class TestTraceShape:
    def test_three_supersteps_with_two_comm_phases(self, cm5):
        res = matmul.run(cm5, 32, variant="bsp-staggered", seed=0)
        comm = [s for s in res.trace if not s.phase.is_empty]
        assert len(comm) == 2  # replicate + exchange-partials

    def test_communication_volume(self, cm5):
        # superstep 1 moves ~2 N^2/q^2 words per processor (§4.1); on a
        # MIMD machine the A copy to self stays local, so a generic
        # processor sends (q-1) A-blocks plus q B-blocks of N^2/q^3 words.
        N = 32
        res = matmul.run(cm5, N, variant="bsp-staggered", seed=0)
        rep = res.trace[0]
        q = res.setup.q
        block_words = N * N // q ** 3
        assert rep.phase.sends_per_proc.max() == (2 * q - 1) * block_words

    def test_unstaggered_flag_recorded(self, cm5):
        res = matmul.run(cm5, 32, variant="bsp", seed=0)
        assert not res.trace[0].phase.stagger
        res = matmul.run(cm5, 32, variant="bsp-staggered", seed=0)
        assert res.trace[0].phase.stagger


class TestPredictionAgreement:
    """Trace-priced model costs must track the closed forms of §4.1."""

    def test_bsp_trace_vs_closed_form(self, cm5, cm5_params):
        res = matmul.run(cm5, 64, variant="bsp-staggered", seed=0)
        trace_cost = BSP(cm5_params).trace_cost(res.trace)
        closed = bsp_matmul(64, cm5_params, P=64)
        assert trace_cost == pytest.approx(closed, rel=0.15)

    def test_bpram_trace_vs_closed_form(self, cm5, cm5_params):
        res = matmul.run(cm5, 64, variant="bpram", seed=0)
        trace_cost = MPBPRAM(cm5_params).trace_cost(res.trace)
        closed = bpram_matmul(64, cm5_params, P=64)
        assert trace_cost == pytest.approx(closed, rel=0.15)

    def test_mp_bsp_trace_vs_closed_form(self, maspar_params):
        m = MasParMP1(P=64, seed=0)
        params = maspar_params.with_updates(P=64)
        res = matmul.run(m, 48, variant="bsp-staggered", seed=0)
        trace_cost = MPBSP(params).trace_cost(res.trace)
        closed = mp_bsp_matmul(48, params, P=64)
        assert trace_cost == pytest.approx(closed, rel=0.15)


class TestPaperPhenomena:
    def test_cm5_unstaggered_about_20_percent_slower(self):
        # §5.1: 227 ms measured vs 188 ms predicted at N = 256 — a 21%
        # error caused by processor contention, fixed by staggering.
        m = CM5(seed=2)
        t_stag = matmul.run(m, 256, variant="bsp-staggered", seed=0).time_us
        t_uns = matmul.run(m, 256, variant="bsp", seed=0).time_us
        assert t_uns / t_stag == pytest.approx(1.21, abs=0.06)

    def test_cm5_staggered_matches_prediction_at_midsize(self, cm5_params):
        m = CM5(seed=2)
        t = matmul.run(m, 256, variant="bsp-staggered", seed=0).time_us
        pred = bsp_matmul(256, cm5_params, P=64)
        assert t == pytest.approx(pred, rel=0.08)

    def test_cm5_bpram_faster_than_bsp(self):
        # Fig. 16: the long-message version wins by ~43% at N = 512.
        m = CM5(seed=2)
        t_bsp = matmul.run(m, 512, variant="bsp-staggered", seed=0).time_us
        t_bpr = matmul.run(m, 512, variant="bpram", seed=0).time_us
        assert 1.25 < t_bsp / t_bpr < 1.65

    def test_maspar_bpram_prediction_within_3_percent(self):
        # Fig. 8: "all errors are less than 3%".
        m = MasParMP1(seed=2)
        params = paper_params("maspar").with_updates(P=512)
        res = matmul.run(m, 256, variant="bpram", P=512, seed=0)
        pred = bpram_matmul(256, params, P=512)
        assert abs(pred - res.time_us) / res.time_us < 0.03


class TestLayoutVariants:
    """The §4.1 initial-distribution variants (2D row-strip start)."""

    @pytest.mark.parametrize("variant", matmul.LAYOUT_VARIANTS)
    def test_correct_from_strip_layout(self, cm5, variant):
        res = matmul.run(cm5, 64, variant=variant, seed=6)
        C = matmul.assemble(res.setup, res.returns)
        A, B = res.inputs
        assert np.allclose(C, A @ B)

    def test_bpram_2d_has_extra_superstep(self, cm5):
        res3d = matmul.run(cm5, 64, variant="bpram", seed=0)
        res2d = matmul.run(cm5, 64, variant="bpram-2d", seed=0)
        comm3d = [s for s in res3d.trace if not s.phase.is_empty]
        comm2d = [s for s in res2d.trace if not s.phase.is_empty]
        assert len(comm2d) == len(comm3d) + 1
        assert comm2d[0].label == "redistribute"

    def test_bsp_2d_keeps_superstep_count(self, cm5):
        res3d = matmul.run(cm5, 64, variant="bsp-staggered", seed=0)
        res2d = matmul.run(cm5, 64, variant="bsp-2d", seed=0)
        assert (len([s for s in res2d.trace if not s.phase.is_empty])
                == len([s for s in res3d.trace if not s.phase.is_empty]))

    def test_strip_layout_needs_divisibility(self, cm5):
        # N = 48 is a multiple of q^2 = 16 but not of P = 64
        with pytest.raises(ExperimentError, match="2d layout"):
            matmul.run(cm5, 48, variant="bpram-2d", seed=0)

    def test_blocks_pay_fine_grain_does_not(self):
        from repro.machines import GCel
        g3 = matmul.run(GCel(seed=2), 64, variant="bpram", seed=1).time_us
        g2 = matmul.run(GCel(seed=2), 64, variant="bpram-2d", seed=1).time_us
        assert g2 / g3 > 1.2
        c3 = matmul.run(CM5(seed=2), 64, variant="bsp-staggered",
                        seed=1).time_us
        c2 = matmul.run(CM5(seed=2), 64, variant="bsp-2d", seed=1).time_us
        assert c2 / c3 < 1.12
