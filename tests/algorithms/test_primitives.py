"""Tests for the communication primitives (grid all-to-all, multi-scan)."""

import numpy as np
import pytest

from repro.algorithms.primitives import alltoall_words, grid_side, multiscan
from repro.core import MPBPRAM, paper_params
from repro.core.errors import ExperimentError
from repro.machines import CM5
from repro.simulator import run_spmd


class TestGridSide:
    def test_square(self):
        assert grid_side(64) == 8
        assert grid_side(16) == 4

    def test_non_square_rejected(self):
        with pytest.raises(ExperimentError):
            grid_side(48)


@pytest.mark.parametrize("mode", ["bsp", "bpram"])
class TestAlltoall:
    def test_each_proc_learns_all_words(self, cm5, mode):
        def prog(ctx):
            words = np.arange(ctx.P, dtype=np.int64) * 1000 + ctx.rank
            out = yield from alltoall_words(ctx, words, "t", mode)
            return out

        res = run_spmd(cm5, prog, P=16)
        for rank, out in enumerate(res.returns):
            # out[src] = word src had for `rank` = rank*1000 + src
            assert out.tolist() == [rank * 1000 + src for src in range(16)]

    def test_wrong_shape_rejected(self, cm5, mode):
        def prog(ctx):
            out = yield from alltoall_words(
                ctx, np.zeros(3, dtype=np.int64), "t", mode)
            return out

        with pytest.raises(ExperimentError):
            run_spmd(cm5, prog, P=16)


class TestAlltoallCosts:
    def test_bpram_cost_is_transpose_formula(self, cm5_params):
        # 2 sqrt(P) (sigma w sqrt(P) + ell) — the splitter broadcast cost.
        c = CM5(seed=1)

        def prog(ctx):
            out = yield from alltoall_words(
                ctx, np.zeros(ctx.P, dtype=np.int64), "t", "bpram")
            return out

        res = run_spmd(c, prog, P=64)
        priced = MPBPRAM(cm5_params).trace_cost(res.trace)
        p = cm5_params
        expected = 2 * 8 * (p.sigma * p.w * 8 + p.ell)
        assert priced == pytest.approx(expected, rel=0.02)

    def test_bsp_single_superstep_per_round(self, cm5):
        def prog(ctx):
            out = yield from alltoall_words(
                ctx, np.zeros(ctx.P, dtype=np.int64), "t", "bsp")
            return out

        res = run_spmd(cm5, prog, P=16)
        assert len([s for s in res.trace if not s.phase.is_empty]) == 1


@pytest.mark.parametrize("mode", ["bsp", "bpram"])
class TestMultiscan:
    def test_offsets_are_exclusive_prefix_sums(self, cm5, mode):
        P = 16
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 10, size=(P, P))

        def prog(ctx):
            result = yield from multiscan(
                ctx, counts[ctx.rank].astype(np.int64), "scan", mode)
            return result

        res = run_spmd(cm5, prog, P=P)
        for rank, (offsets, total) in enumerate(res.returns):
            for j in range(P):
                assert offsets[j] == counts[:rank, j].sum()
            assert total == counts[:, rank].sum()

    def test_disjoint_write_ranges(self, cm5, mode):
        """Offsets partition each bucket: [off, off+count) never overlap."""
        P = 16
        rng = np.random.default_rng(1)
        counts = rng.integers(0, 5, size=(P, P))

        def prog(ctx):
            result = yield from multiscan(
                ctx, counts[ctx.rank].astype(np.int64), "scan", mode)
            return result

        res = run_spmd(cm5, prog, P=P)
        for j in range(P):  # every bucket
            intervals = sorted(
                (res.returns[p][0][j], res.returns[p][0][j] + counts[p, j])
                for p in range(P))
            for (a1, b1), (a2, b2) in zip(intervals, intervals[1:]):
                assert b1 <= a2
            assert intervals[-1][1] == counts[:, j].sum()
