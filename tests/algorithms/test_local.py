"""Tests for local computation kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import SimulationError
from repro.core.work import Compare, MatmulBlock, Merge, RadixSort
from repro.simulator.context import ProcContext
from repro.algorithms.local import classify_keys, local_matmul, merge_keep, radix_sort


@pytest.fixture
def ctx():
    return ProcContext(rank=0, P=4, word_bytes=4)


def charged(ctx):
    *_, work = ctx._drain()
    return work


class TestRadixSort:
    def test_sorts(self, ctx, rng):
        keys = rng.integers(0, 2**32, size=1000, dtype=np.uint64)
        out = radix_sort(ctx, keys)
        assert np.array_equal(out, np.sort(keys))

    def test_charges_radix_work(self, ctx):
        radix_sort(ctx, np.arange(100, dtype=np.uint64))
        work = charged(ctx)
        assert work == [RadixSort(100, bits=32, radix_bits=8)]

    def test_empty(self, ctx):
        out = radix_sort(ctx, np.empty(0, dtype=np.uint64))
        assert out.size == 0

    def test_duplicates(self, ctx):
        keys = np.array([5, 1, 5, 1, 5], dtype=np.uint64)
        assert radix_sort(ctx, keys).tolist() == [1, 1, 5, 5, 5]

    def test_small_key_width(self, ctx, rng):
        keys = rng.integers(0, 2**16, size=256, dtype=np.uint64)
        out = radix_sort(ctx, keys, bits=16)
        assert np.array_equal(out, np.sort(keys))

    def test_negative_rejected(self, ctx):
        with pytest.raises(SimulationError):
            radix_sort(ctx, np.array([-1, 2], dtype=np.int64))

    def test_2d_rejected(self, ctx):
        with pytest.raises(SimulationError):
            radix_sort(ctx, np.zeros((2, 2), dtype=np.uint64))

    @given(st.lists(st.integers(0, 2**32 - 1), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_matches_np_sort(self, lst):
        ctx = ProcContext(rank=0, P=2, word_bytes=4)
        keys = np.array(lst, dtype=np.uint64)
        assert np.array_equal(radix_sort(ctx, keys), np.sort(keys))


class TestMergeKeep:
    def test_keep_min(self, ctx):
        a = np.array([1, 4, 7], dtype=np.uint64)
        b = np.array([2, 3, 9], dtype=np.uint64)
        assert merge_keep(ctx, a, b, keep_min=True).tolist() == [1, 2, 3]

    def test_keep_max(self, ctx):
        a = np.array([1, 4, 7], dtype=np.uint64)
        b = np.array([2, 3, 9], dtype=np.uint64)
        assert merge_keep(ctx, a, b, keep_min=False).tolist() == [4, 7, 9]

    def test_charges_output_length(self, ctx):
        merge_keep(ctx, np.arange(8, dtype=np.uint64),
                   np.arange(8, dtype=np.uint64), keep_min=True)
        assert charged(ctx) == [Merge(8)]

    def test_length_mismatch(self, ctx):
        with pytest.raises(SimulationError):
            merge_keep(ctx, np.arange(3), np.arange(4), keep_min=True)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=50), st.data())
    @settings(max_examples=50, deadline=None)
    def test_partition_property(self, lst, data):
        """min-half and max-half partition the multiset of both runs."""
        other = data.draw(st.lists(st.integers(0, 100), min_size=len(lst),
                                   max_size=len(lst)))
        ctx = ProcContext(rank=0, P=2, word_bytes=4)
        a = np.sort(np.array(lst, dtype=np.uint64))
        b = np.sort(np.array(other, dtype=np.uint64))
        lo = merge_keep(ctx, a, b, keep_min=True)
        hi = merge_keep(ctx, a, b, keep_min=False)
        assert np.array_equal(np.sort(np.concatenate([lo, hi])),
                              np.sort(np.concatenate([a, b])))
        assert lo.max(initial=0) <= hi.min(initial=101)


class TestLocalMatmul:
    def test_product(self, ctx, rng):
        A = rng.standard_normal((4, 6))
        B = rng.standard_normal((6, 3))
        assert np.allclose(local_matmul(ctx, A, B), A @ B)

    def test_charges_block_shape(self, ctx):
        local_matmul(ctx, np.zeros((4, 6)), np.zeros((6, 3)))
        assert charged(ctx) == [MatmulBlock(4, 6, 3)]

    def test_shape_mismatch(self, ctx):
        with pytest.raises(SimulationError):
            local_matmul(ctx, np.zeros((4, 5)), np.zeros((6, 3)))


class TestClassifyKeys:
    def test_buckets(self, ctx):
        keys = np.array([1, 5, 10, 20], dtype=np.uint64)
        splitters = np.array([4, 15], dtype=np.uint64)
        assert classify_keys(ctx, keys, splitters).tolist() == [0, 1, 1, 2]

    def test_key_equal_to_splitter_goes_right(self, ctx):
        keys = np.array([4], dtype=np.uint64)
        splitters = np.array([4], dtype=np.uint64)
        assert classify_keys(ctx, keys, splitters).tolist() == [1]

    def test_charges_linear_work(self, ctx):
        classify_keys(ctx, np.arange(10, dtype=np.uint64),
                      np.array([5], dtype=np.uint64))
        assert charged(ctx) == [Compare(12)]
