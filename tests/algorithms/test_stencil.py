"""Tests for the Jacobi stencil workload."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import stencil
from repro.core.errors import ExperimentError
from repro.machines import CM5, T800Grid


class TestReference:
    def test_fixed_point_of_constant_grid(self):
        grid = np.ones((8, 8))
        out = stencil.reference_jacobi(grid, 5)
        assert np.allclose(out, 1.0)

    def test_boundary_untouched(self, rng):
        grid = rng.random((8, 8))
        out = stencil.reference_jacobi(grid, 3)
        assert np.array_equal(out[0, :], grid[0, :])
        assert np.array_equal(out[:, -1], grid[:, -1])

    def test_smoothing_reduces_variance(self, rng):
        grid = rng.random((16, 16))
        out = stencil.reference_jacobi(grid, 10)
        assert out[1:-1, 1:-1].var() < grid[1:-1, 1:-1].var()


class TestParallelCorrectness:
    @pytest.mark.parametrize("N,P,iters", [(16, 16, 3), (32, 16, 5),
                                           (64, 64, 4)])
    def test_matches_reference(self, N, P, iters):
        m = T800Grid(P=P, seed=3)
        res = stencil.run(m, N, iters, seed=1)
        got = stencil.assemble(P, N, res.returns)
        assert np.allclose(got, stencil.reference_jacobi(res.inputs, iters))

    def test_on_cm5_too(self, cm5):
        res = stencil.run(cm5, 32, 4, seed=2)
        got = stencil.assemble(64, 32, res.returns)
        assert np.allclose(got, stencil.reference_jacobi(res.inputs, 4))

    def test_zero_iterations(self, cm5):
        res = stencil.run(cm5, 16, 0, P=16, seed=0)
        got = stencil.assemble(16, 16, res.returns)
        assert np.allclose(got, res.inputs)

    def test_geometry_validation(self, cm5):
        with pytest.raises(ExperimentError):
            stencil.run(cm5, 30, 2, P=16)

    @given(st.integers(1, 6))
    @settings(max_examples=5, deadline=None)
    def test_any_iteration_count(self, iters):
        m = CM5(seed=1)
        res = stencil.run(m, 16, iters, P=16, seed=4)
        got = stencil.assemble(16, 16, res.returns)
        assert np.allclose(got, stencil.reference_jacobi(res.inputs, iters))


class TestCommunicationStructure:
    def test_halos_are_neighbour_messages(self):
        m = T800Grid(seed=0)
        res = stencil.run(m, 64, 2, seed=0)
        for step in res.trace:
            if step.phase.is_empty:
                continue
            hops = m.hops(step.phase.src, step.phase.dst)
            assert int(hops.max()) == 1  # pure nearest-neighbour traffic

    def test_interior_proc_exchanges_four_halos(self):
        m = T800Grid(seed=0)
        res = stencil.run(m, 64, 1, seed=0)
        ph = res.trace[0].phase
        # an interior processor (rank 9 = (1,1)) sends 4 halos of 8 words
        assert ph.sends_per_proc[9] == 4 * 8
        # a corner (rank 0) sends only 2
        assert ph.sends_per_proc[0] == 2 * 8
