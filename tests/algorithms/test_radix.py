"""Tests for the parallel integer radix sort (scenario extension)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import radix, samplesort
from repro.core.errors import ExperimentError
from repro.core.work import RadixSort
from repro.machines import CM5, GCel, ModernCluster

pytestmark = pytest.mark.fast


def check(res) -> bool:
    flat = np.concatenate([np.asarray(r) for r in res.returns])
    return (bool(np.all(flat[:-1] <= flat[1:]))
            and np.array_equal(np.sort(flat), np.sort(res.inputs.ravel())))


@pytest.mark.parametrize("variant", radix.VARIANTS)
class TestCorrectness:
    def test_sorts_on_cm5(self, cm5, variant):
        assert check(radix.run(cm5, 64, variant=variant, seed=2))

    def test_sorts_on_gcel(self, gcel, variant):
        assert check(radix.run(gcel, 32, variant=variant, seed=3))

    def test_sorts_on_modern(self, variant):
        m = ModernCluster(P=16, seed=7)
        assert check(radix.run(m, 48, variant=variant, P=16, seed=4))

    def test_skewed_input_still_sorts(self, cm5, variant):
        # nearly-constant keys put (almost) every key in one bucket;
        # the padded grid route and the scan must survive the skew
        P, M = 16, 32
        keys = np.full((P, M), (7 << 28) + 1, dtype=np.uint64)
        keys[0, :5] = [1, 2, 3, 4, 5]

        def program(ctx):
            return radix.radix_sort_program(ctx, keys[ctx.rank], variant)

        from repro.simulator import run_spmd
        res = run_spmd(cm5, program, P=P)
        flat = np.concatenate([np.asarray(r) for r in res.returns])
        assert np.array_equal(np.sort(flat), np.sort(keys.ravel()))
        assert np.all(flat[:-1] <= flat[1:])

    def test_narrow_keys(self, cm5, variant):
        assert check(radix.run(cm5, 40, variant=variant, P=16, seed=5,
                               key_bits=8))


class TestValidation:
    def test_bad_variant(self, cm5):
        with pytest.raises(ExperimentError):
            radix.run(cm5, 32, variant="bogus")

    def test_non_power_of_two_p(self, cm5):
        with pytest.raises(ExperimentError, match="power-of-two"):
            radix.run(cm5, 32, variant="bsp", P=12)

    def test_digit_must_fit_the_key(self, cm5):
        # log2(64) = 6 >= key_bits
        with pytest.raises(ExperimentError, match="key_bits"):
            radix.run(cm5, 32, variant="bsp", P=64, key_bits=6)


class TestRadixTrick:
    def test_finishing_sort_covers_only_low_bits(self, cm5):
        """The routed keys share their top digit, so the last local
        sort is over ``key_bits - log2 P`` bits — visible in the trace
        as a RadixSort work item narrower than the 32-bit opener."""
        res = radix.run(cm5, 64, variant="bpram", P=16, seed=1,
                        engine="generator")
        widths = [w.bits for s in res.trace for items in s.work.values()
                  for w in items if isinstance(w, RadixSort)]
        assert 32 in widths          # the opening full-key sort
        assert 32 - 4 in widths      # the finishing sort, P=16 -> 4 bits
        assert max(widths) == 32

    def test_beats_samplesort_on_gcel(self):
        """No sampling phase and a shorter finishing sort: radix wins
        against sample sort through the identical grid route."""
        g1, g2 = GCel(seed=5), GCel(seed=5)
        M = 1024
        t_radix = radix.run(g1, M, variant="bpram", seed=0).time_us
        t_sample = samplesort.run(g2, M, variant="bpram", oversample=32,
                                  seed=0).time_us
        assert t_radix < t_sample


class TestPropertyBased:
    @given(st.integers(0, 4), st.sampled_from([16, 64]))
    @settings(max_examples=8, deadline=None)
    def test_sorts_any_seed(self, seed, P):
        c = CM5(seed=1)
        assert check(radix.run(c, 32, variant="bpram", P=P, seed=seed))

    @given(st.sampled_from([8, 12, 24]), st.sampled_from(radix.VARIANTS))
    @settings(max_examples=6, deadline=None)
    def test_sorts_any_key_width(self, key_bits, variant):
        c = CM5(seed=1)
        assert check(radix.run(c, 32, variant=variant, P=16, seed=0,
                               key_bits=key_bits))
