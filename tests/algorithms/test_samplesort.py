"""Tests for sample sort (paper §4.3)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import bitonic, samplesort
from repro.core.errors import ExperimentError
from repro.machines import CM5, GCel


def check(res) -> bool:
    flat = np.concatenate([np.asarray(r) for r in res.returns])
    return (bool(np.all(flat[:-1] <= flat[1:]))
            and np.array_equal(np.sort(flat), np.sort(res.inputs.ravel())))


@pytest.mark.parametrize("variant", samplesort.VARIANTS)
class TestCorrectness:
    def test_sorts_on_cm5(self, cm5, variant):
        res = samplesort.run(cm5, 64, variant=variant, oversample=16, seed=2)
        assert check(res)

    def test_sorts_on_gcel(self, gcel, variant):
        res = samplesort.run(gcel, 32, variant=variant, oversample=8, seed=3)
        assert check(res)

    def test_skewed_input_still_sorts(self, cm5, variant):
        # nearly-constant keys stress splitter selection and bucket skew
        P, M = 64, 32
        keys = np.full((P, M), 7, dtype=np.uint64)
        keys[0, :5] = [1, 2, 3, 4, 5]

        def program(ctx):
            return samplesort.sample_sort_program(
                ctx, keys[ctx.rank], variant, 8, sample_seed=1)

        from repro.simulator import run_spmd
        res = run_spmd(cm5, program)
        flat = np.concatenate([np.asarray(r) for r in res.returns])
        assert np.array_equal(np.sort(flat), np.sort(keys.ravel()))
        assert np.all(flat[:-1] <= flat[1:])


class TestValidation:
    def test_bad_variant(self, cm5):
        with pytest.raises(ExperimentError):
            samplesort.run(cm5, 32, variant="bogus")

    def test_oversample_bounds(self, cm5):
        with pytest.raises(ExperimentError):
            samplesort.run(cm5, 32, variant="bpram", oversample=0)
        with pytest.raises(ExperimentError):
            samplesort.run(cm5, 32, variant="bpram", oversample=64)


class TestOversampling:
    def test_larger_s_balances_buckets(self, cm5):
        sizes = {}
        for S in (4, 32):
            res = samplesort.run(cm5, 256, variant="bpram", oversample=S,
                                 seed=4)
            bucket_sizes = np.array([np.asarray(r).size for r in res.returns])
            sizes[S] = bucket_sizes.max() / bucket_sizes.mean()
        assert sizes[32] < sizes[4]


class TestPaperPhenomena:
    def test_plain_does_not_beat_bitonic_on_gcel(self):
        # Fig. 18: "it does not outperform bitonic sort."
        g = GCel(seed=5)
        ratios = []
        for M in (128, 512, 2048):
            t_ss = samplesort.run(g, M, variant="bpram", oversample=64,
                                  seed=0).time_us
            t_bt = bitonic.run(g, M, variant="bpram", seed=0).time_us
            ratios.append(t_ss / t_bt)
        assert min(ratios) > 0.9
        assert max(ratios) > 1.3  # clearly worse at the small end

    def test_staggered_packing_roughly_2x(self):
        # Fig. 18: the staggered packed variant "yields an improvement by
        # a factor of approximately 2".
        g = GCel(seed=5)
        gains = []
        for M in (1024, 2048):
            t_plain = samplesort.run(g, M, variant="bpram", oversample=64,
                                     seed=0).time_us
            t_stag = samplesort.run(g, M, variant="bpram-staggered",
                                    oversample=64, seed=0).time_us
            gains.append(t_plain / t_stag)
        assert 1.4 < np.mean(gains) < 3.2

    def test_send_phase_dominated_by_padded_route(self, gcel_params):
        # §6: the send substep alone needs ~16 sigma w N/P us per key.
        g = GCel(seed=5)
        M = 2048
        res = samplesort.run(g, M, variant="bpram", oversample=64, seed=0)
        route = sum(s.measured_us for s in res.trace
                    if s.label.startswith("route-"))
        floor = 16 * gcel_params.sigma * gcel_params.w * M
        assert route > 0.9 * floor


class TestPropertyBased:
    @given(st.integers(0, 4), st.sampled_from([16, 64]))
    @settings(max_examples=8, deadline=None)
    def test_sorts_any_seed(self, seed, P):
        c = CM5(seed=1)
        res = samplesort.run(c, 32, variant="bpram", oversample=8, P=P,
                             seed=seed)
        assert check(res)

    @given(st.sampled_from([1, 2, 8]))
    @settings(max_examples=6, deadline=None)
    def test_tiny_oversample_still_correct(self, S):
        c = CM5(seed=1)
        res = samplesort.run(c, 32, variant="bpram-staggered", oversample=S,
                             P=16, seed=0)
        assert check(res)
