"""Tests for all-pairs shortest path (paper §4.4)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import apsp
from repro.core import BSP, paper_params
from repro.core.errors import ExperimentError
from repro.core.predictions import bsp_apsp, ebsp_apsp_maspar, mp_bsp_apsp
from repro.core.params import PAPER_UNBALANCED
from repro.machines import CM5, GCel, MasParMP1


class TestReference:
    def test_matches_scipy(self, rng):
        from scipy.sparse.csgraph import floyd_warshall
        D = apsp.random_digraph(24, 0.3, rng)
        ours = apsp.reference_apsp(D)
        # scipy treats INF as no edge
        Ds = D.copy()
        Ds[Ds >= apsp.INF] = np.inf
        theirs = floyd_warshall(Ds)
        mask = np.isfinite(theirs)
        assert np.allclose(ours[mask], theirs[mask])
        assert np.all(ours[~mask] >= apsp.INF / 2)

    def test_triangle_inequality(self, rng):
        D = apsp.random_digraph(16, 0.5, rng)
        out = apsp.reference_apsp(D)
        for k in range(16):
            assert np.all(out <= out[:, k:k + 1] + out[k:k + 1, :] + 1e-9)


class TestCorrectness:
    def test_m_ge_side(self, cm5):
        # N=32, P=16 -> side=4, M=8 >= side
        res = apsp.run(cm5, 32, P=16, seed=1)
        got = apsp.assemble(16, 32, res.returns)
        assert np.allclose(got, apsp.reference_apsp(res.inputs))

    def test_m_lt_side(self, cm5):
        # N=8, P=16 -> side=4, M=2 < side: doubling path
        res = apsp.run(cm5, 8, P=16, seed=2)
        got = apsp.assemble(16, 8, res.returns)
        assert np.allclose(got, apsp.reference_apsp(res.inputs))

    def test_m_equals_one(self, cm5):
        res = apsp.run(cm5, 4, P=16, seed=3)
        got = apsp.assemble(16, 4, res.returns)
        assert np.allclose(got, apsp.reference_apsp(res.inputs))

    def test_full_machine(self, cm5):
        res = apsp.run(cm5, 64, seed=4)
        got = apsp.assemble(64, 64, res.returns)
        assert np.allclose(got, apsp.reference_apsp(res.inputs))

    def test_disconnected_vertices_stay_infinite(self, cm5):
        res = apsp.run(cm5, 32, P=16, seed=5, density=0.02)
        got = apsp.assemble(16, 32, res.returns)
        ref = apsp.reference_apsp(res.inputs)
        assert np.array_equal(got >= apsp.INF / 2, ref >= apsp.INF / 2)


class TestValidation:
    def test_non_square_grid(self, cm5):
        with pytest.raises(ExperimentError):
            apsp.run(cm5, 32, P=32)

    def test_indivisible_N(self, cm5):
        with pytest.raises(ExperimentError):
            apsp.run(cm5, 30, P=16)


class TestScatterPattern:
    def test_scatter_superstep_is_unbalanced(self, cm5):
        """The first broadcast superstep is the (N, N/sqrt(P), N/P)-relation
        of §4.4.1: few senders, machine-wide receives."""
        res = apsp.run(cm5, 32, P=16, seed=0)
        scat = next(s for s in res.trace if s.label.endswith("scatter"))
        rel = scat.phase.relation()
        assert scat.phase.senders <= 4  # sqrt(P) owners
        assert rel.h1 > rel.h2  # sends dominate receives


class TestPaperPhenomena:
    def test_maspar_mp_bsp_overestimates_massively(self):
        # Fig. 12: at N=512, MP-BSP predicts 53.9 s vs measured 30.3 s
        # (78% off).  Scaled-down geometry, same physics: P=256, N=128
        # gives M=8 < sqrt(P)=16 like the paper's M=16 < 32.
        m = MasParMP1(P=256, seed=6)
        params = paper_params("maspar").with_updates(P=256)
        res = apsp.run(m, 128, seed=0)
        pred = mp_bsp_apsp(128, params, P=256)
        assert pred / res.time_us > 1.35

    def test_maspar_ebsp_much_closer(self):
        m = MasParMP1(P=256, seed=6)
        params = paper_params("maspar").with_updates(P=256)
        unb = PAPER_UNBALANCED["maspar"]
        res = apsp.run(m, 128, seed=0)
        err_ebsp = abs(ebsp_apsp_maspar(128, params, unb, P=256) - res.time_us)
        err_mpbsp = abs(mp_bsp_apsp(128, params, P=256) - res.time_us)
        assert err_ebsp < 0.45 * err_mpbsp

    def test_gcel_bsp_overestimates(self):
        # Fig. 13: substantial error from charging the scatter as a full
        # h-relation.
        g = GCel(seed=6)
        params = paper_params("gcel")
        res = apsp.run(g, 64, seed=0)
        assert bsp_apsp(64, params) / res.time_us > 1.4

    def test_cm5_bsp_accurate(self):
        # Fig. 15: "the BSP model accurately predicts the actual running
        # times" on the fat tree.
        c = CM5(seed=6)
        params = paper_params("cm5")
        res = apsp.run(c, 64, seed=0)
        pred = bsp_apsp(64, params)
        assert pred == pytest.approx(res.time_us, rel=0.25)


class TestPropertyBased:
    @given(st.integers(0, 6))
    @settings(max_examples=6, deadline=None)
    def test_correct_any_graph(self, seed):
        c = CM5(seed=1)
        res = apsp.run(c, 16, P=16, seed=seed, density=0.4)
        got = apsp.assemble(16, 16, res.returns)
        assert np.allclose(got, apsp.reference_apsp(res.inputs))

    @given(st.floats(0.05, 0.95))
    @settings(max_examples=6, deadline=None)
    def test_correct_any_density(self, density):
        c = CM5(seed=1)
        res = apsp.run(c, 16, P=16, seed=9, density=density)
        got = apsp.assemble(16, 16, res.returns)
        assert np.allclose(got, apsp.reference_apsp(res.inputs))
