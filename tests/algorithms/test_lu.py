"""Tests for the LU decomposition extension."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import lu
from repro.core.errors import ExperimentError
from repro.core.predictions import bsp_lu, lu_flops
from repro.core import paper_params
from repro.machines import CM5, GCel


class TestReference:
    def test_factors_reproduce_matrix(self, rng):
        A = lu.random_dd_matrix(12, rng)
        L, U = lu.reference_lu(A)
        assert np.allclose(L @ U, A)
        assert np.allclose(np.tril(L, -1) + np.triu(U),
                           np.tril(L, -1) + U)

    def test_unit_lower_triangular(self, rng):
        A = lu.random_dd_matrix(8, rng)
        L, U = lu.reference_lu(A)
        assert np.allclose(np.diag(L), 1.0)
        assert np.allclose(np.triu(L, 1), 0.0)
        assert np.allclose(np.tril(U, -1), 0.0)

    def test_diagonally_dominant_generator(self, rng):
        A = lu.random_dd_matrix(16, rng)
        off = np.abs(A).sum(axis=1) - np.abs(np.diag(A))
        assert np.all(np.abs(np.diag(A)) > off - 1e-9)


class TestParallelCorrectness:
    @pytest.mark.parametrize("N,P", [(16, 16), (32, 16), (48, 16), (64, 64)])
    def test_matches_reference(self, cm5, N, P):
        res = lu.run(cm5, N, P=P, seed=4)
        got = lu.assemble(P, N, res.returns)
        L, U = lu.reference_lu(res.inputs)
        assert np.allclose(got, np.tril(L, -1) + U)

    def test_factorisation_property(self, cm5):
        N, P = 32, 16
        res = lu.run(cm5, N, P=P, seed=5)
        got = lu.assemble(P, N, res.returns)
        Lg = np.tril(got, -1) + np.eye(N)
        Ug = np.triu(got)
        assert np.allclose(Lg @ Ug, res.inputs)

    def test_on_gcel(self, gcel):
        res = lu.run(gcel, 32, P=16, seed=6)
        got = lu.assemble(16, 32, res.returns)
        L, U = lu.reference_lu(res.inputs)
        assert np.allclose(got, np.tril(L, -1) + U)

    def test_geometry_validation(self, cm5):
        with pytest.raises(ExperimentError):
            lu.run(cm5, 30, P=16)
        with pytest.raises(ExperimentError):
            lu.run(cm5, 32, P=32)

    @given(st.integers(0, 5))
    @settings(max_examples=5, deadline=None)
    def test_any_seed(self, seed):
        c = CM5(seed=1)
        res = lu.run(c, 16, P=16, seed=seed)
        got = lu.assemble(16, 16, res.returns)
        L, U = lu.reference_lu(res.inputs)
        assert np.allclose(got, np.tril(L, -1) + U)


class TestCommunicationStructure:
    def test_broadcasts_are_single_sender(self, cm5):
        res = lu.run(cm5, 32, P=16, seed=0)
        col_steps = [s for s in res.trace if s.label.startswith("col-")]
        assert col_steps
        for s in col_steps:
            if not s.phase.is_empty:
                # one owner per processor row sends
                assert s.phase.senders <= 4

    def test_traffic_shrinks_as_elimination_proceeds(self, cm5):
        res = lu.run(cm5, 64, P=16, seed=0)
        col_bytes = [s.phase.total_bytes for s in res.trace
                     if s.label.startswith("col-")]
        # compare first and last non-empty broadcast volumes
        nonzero = [b for b in col_bytes if b]
        assert nonzero[0] > nonzero[-1]


class TestPredictions:
    def test_lu_flops_formula(self):
        # sum_{k} (N-1-k)^2 + (N-1-k)
        N = 10
        expected = sum((N - 1 - k) ** 2 + (N - 1 - k) for k in range(N - 1))
        assert lu_flops(N) == expected

    def test_bsp_overestimates_gcel(self):
        g = GCel(seed=7)
        res = lu.run(g, 64, seed=7)
        assert bsp_lu(64, paper_params("gcel")) > 3 * res.time_us

    def test_corrected_close_on_gcel(self):
        g = GCel(seed=7)
        res = lu.run(g, 64, seed=7)
        fixed = bsp_lu(64, paper_params("gcel"), g_bcast=576.0)
        assert fixed == pytest.approx(res.time_us, rel=0.15)

    def test_bsp_reasonable_on_cm5(self):
        c = CM5(seed=7)
        res = lu.run(c, 64, seed=7)
        assert bsp_lu(64, paper_params("cm5")) == pytest.approx(
            res.time_us, rel=0.35)
