"""Tests for experiment plumbing: machine factory, calibration cache,
registry ordering."""

import pytest

from repro.experiments import base, common
from repro.machines import CM5, GCel, MasParMP1, ModernCluster, T800Grid


class TestMachineFor:
    def test_all_names(self):
        assert isinstance(common.machine_for("maspar"), MasParMP1)
        assert isinstance(common.machine_for("gcel"), GCel)
        assert isinstance(common.machine_for("cm5"), CM5)
        assert isinstance(common.machine_for("t800"), T800Grid)
        assert isinstance(common.machine_for("modern"), ModernCluster)

    def test_partition_override(self):
        assert common.machine_for("maspar", P=256).P == 256
        assert common.machine_for("modern").P == 256
        assert common.machine_for("modern", P=64).P == 64

    def test_unknown(self):
        with pytest.raises(ValueError):
            common.machine_for("connection-machine-6")


class TestCalibrationCache:
    def test_memoised_per_config(self):
        m1 = common.machine_for("cm5", seed=3)
        m2 = common.machine_for("cm5", seed=3)
        a = common.calibrated(m1, seed=3)
        b = common.calibrated(m2, seed=3)
        assert a is b  # cached

    def test_distinct_partitions_distinct_calibrations(self):
        a = common.calibrated(common.machine_for("maspar", P=256), seed=4)
        b = common.calibrated(common.machine_for("maspar", P=1024), seed=4)
        assert a is not b
        assert a.params.P == 256 and b.params.P == 1024


class TestRegistrySortKey:
    def test_tables_first_then_figures_then_rest(self):
        ids = list(base.all_experiments())
        assert ids[0] == "table1"
        figs = [i for i in ids if i.startswith("fig")]
        assert figs == sorted(figs, key=lambda s: int(s[3:]))
        # ablations and extensions come after the figures
        assert ids.index("abl-stagger") > ids.index("fig20")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(Exception, match="duplicate"):
            @base.register("fig1", "again", "nope")
            def dup(**kwargs):  # pragma: no cover
                raise AssertionError

    def test_experiment_dataclass_frozen(self):
        exp = base.get("fig1")
        with pytest.raises(Exception):
            exp.id = "fig99"  # type: ignore[misc]
