"""Unit tests for the process-global fault injector."""

import pytest

from repro.core.errors import FaultInjected
from repro.faults import (
    ENV_VAR,
    FakeClock,
    FaultInjector,
    FaultPlan,
    active,
    corrupt_text,
    deactivate,
    fault_flag,
    fault_point,
    faults_active,
    install,
    plan_from_env,
)

pytestmark = pytest.mark.fast


@pytest.fixture(autouse=True)
def _no_global_plan():
    """Every test starts and ends with no plan installed."""
    deactivate()
    yield
    deactivate()


class TestDeterminism:
    def test_same_plan_replays_same_schedule(self):
        plan = FaultPlan.parse("worker-crash:p=0.3,seed=42")
        draws = []
        for _ in range(2):
            inj = FaultInjector(plan)
            draws.append([inj.flag("worker-crash") for _ in range(50)])
        assert draws[0] == draws[1]
        assert any(draws[0]) and not all(draws[0])

    def test_seed_changes_schedule(self):
        a = FaultInjector(FaultPlan.parse("worker-crash:p=0.3,seed=1"))
        b = FaultInjector(FaultPlan.parse("worker-crash:p=0.3,seed=2"))
        assert [a.flag("worker-crash") for _ in range(64)] \
            != [b.flag("worker-crash") for _ in range(64)]

    def test_points_draw_independently(self):
        # same seed, different points: schedules must not be correlated
        inj = FaultInjector(FaultPlan.parse(
            "worker-crash:p=0.5,seed=9;cache-corrupt:p=0.5,seed=9"))
        a = [inj.flag("worker-crash") for _ in range(64)]
        b = [inj.flag("cache-corrupt") for _ in range(64)]
        assert a != b


class TestFiring:
    def test_count_caps_fires(self):
        inj = FaultInjector(FaultPlan.parse("worker-crash:count=2"))
        fired = [inj.flag("worker-crash") for _ in range(10)]
        assert fired == [True, True] + [False] * 8
        assert inj.stats()["worker-crash"] == {"visits": 10, "fired": 2}

    def test_p_one_always_fires(self):
        inj = FaultInjector(FaultPlan.parse("worker-crash"))
        assert all(inj.flag("worker-crash") for _ in range(5))

    def test_p_zero_never_fires(self):
        inj = FaultInjector(FaultPlan.parse("worker-crash:p=0"))
        assert not any(inj.flag("worker-crash") for _ in range(50))

    def test_unplanned_point_never_fires(self):
        inj = FaultInjector(FaultPlan.parse("worker-crash"))
        assert inj.flag("cache-corrupt") is False

    def test_hit_raises_with_point_and_ordinal(self):
        inj = FaultInjector(FaultPlan.parse("worker-crash:count=1"))
        with pytest.raises(FaultInjected, match="worker-crash") as exc:
            inj.hit("worker-crash")
        assert exc.value.point == "worker-crash"
        assert exc.value.hit == 1
        inj.hit("worker-crash")  # count exhausted: no-op

    def test_delay_spec_sleeps_instead_of_raising(self):
        clock = FakeClock()
        inj = FaultInjector(FaultPlan.parse("worker-hang:delay=0.25,count=2"),
                            clock=clock)
        for _ in range(4):
            inj.hit("worker-hang")
        assert clock.sleeps == [0.25, 0.25]

    def test_on_fire_callback_sees_every_fire(self):
        inj = FaultInjector(FaultPlan.parse("worker-crash:count=3"))
        seen = []
        inj.on_fire = seen.append
        for _ in range(5):
            inj.flag("worker-crash")
        assert seen == ["worker-crash"] * 3

    def test_injected_fault_pickles_cleanly(self):
        import pickle

        exc = FaultInjected("worker-crash", 4)
        clone = pickle.loads(pickle.dumps(exc))
        assert (clone.point, clone.hit) == ("worker-crash", 4)
        assert str(clone) == str(exc)


class TestGlobalPlumbing:
    def test_no_plan_is_a_no_op(self):
        assert active() is None
        fault_point("worker-crash")  # must not raise
        assert fault_flag("lru-storm") is False

    def test_install_and_deactivate(self):
        install("worker-crash")
        assert active() is not None
        with pytest.raises(FaultInjected):
            fault_point("worker-crash")
        deactivate()
        fault_point("worker-crash")

    def test_faults_active_scopes_and_restores(self):
        outer = install("cache-corrupt")
        with faults_active("worker-crash") as inner:
            assert active() is inner
            assert fault_flag("cache-corrupt") is False
        assert active() is outer

    def test_faults_active_none_is_passthrough(self):
        outer = install("cache-corrupt")
        with faults_active(None) as inj:
            assert inj is outer
        assert active() is outer

    def test_faults_active_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with faults_active("worker-crash"):
                raise RuntimeError("boom")
        assert active() is None

    def test_plan_from_env(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert plan_from_env() is None
        monkeypatch.setenv(ENV_VAR, "worker-crash:p=0.5")
        plan = plan_from_env()
        assert plan is not None and plan.get("worker-crash").probability \
            == 0.5
        monkeypatch.setenv(ENV_VAR, "   ")
        assert plan_from_env() is None


class TestCorruptText:
    def test_deterministic_and_damaging(self):
        payload = '{"format":2,"result":{"xs":[1,2,3],"ys":[4,5,6]}}'
        a = corrupt_text(payload)
        assert a == corrupt_text(payload)
        assert a != payload

    def test_short_payloads_become_marker(self):
        assert corrupt_text("tiny") == "#corrupt#"
