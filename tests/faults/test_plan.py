"""Unit tests for the fault-plan syntax and validation."""

import pytest

from repro.faults import KNOWN_POINTS, FaultError, FaultPlan, FaultSpec

pytestmark = pytest.mark.fast


class TestParse:
    def test_bare_point_defaults(self):
        plan = FaultPlan.parse("worker-crash")
        spec = plan.get("worker-crash")
        assert spec == FaultSpec(point="worker-crash")
        assert spec.probability == 1.0 and spec.count is None
        assert spec.seed == 0 and spec.delay_s == 0.0

    def test_full_parameter_set(self):
        plan = FaultPlan.parse("worker-crash:p=0.2,count=3,seed=7,delay=0.5")
        spec = plan.get("worker-crash")
        assert spec.probability == 0.2
        assert spec.count == 3
        assert spec.seed == 7
        assert spec.delay_s == 0.5

    def test_multiple_points_semicolon_separated(self):
        plan = FaultPlan.parse("cache-corrupt:count=1;dispatch-slow:p=0.5")
        assert "cache-corrupt" in plan and "dispatch-slow" in plan
        assert plan.get("cache-corrupt").count == 1
        assert plan.get("dispatch-slow").probability == 0.5

    def test_whitespace_tolerated(self):
        plan = FaultPlan.parse(" worker-crash : p=0.5 , seed=3 ; lru-storm ")
        assert plan.get("worker-crash").probability == 0.5
        assert "lru-storm" in plan

    def test_round_trip_is_canonical(self):
        text = "worker-crash:p=0.2,count=3,seed=7;cache-stale:count=1"
        plan = FaultPlan.parse(text)
        again = FaultPlan.parse(plan.render())
        assert again.render() == plan.render()
        assert again.specs == plan.specs

    def test_render_keeps_delay(self):
        plan = FaultPlan.parse("worker-hang:delay=0.25")
        assert "delay=0.25" in plan.render()
        assert FaultPlan.parse(plan.render()).get("worker-hang").delay_s \
            == 0.25


class TestRejection:
    def test_unknown_point_names_known_ones(self):
        with pytest.raises(FaultError, match="unknown fault point"):
            FaultPlan.parse("worker-vanish")

    def test_unknown_parameter(self):
        with pytest.raises(FaultError, match="unknown parameter"):
            FaultPlan.parse("worker-crash:q=0.5")

    def test_non_numeric_value(self):
        with pytest.raises(FaultError, match="not a number"):
            FaultPlan.parse("worker-crash:p=lots")

    def test_malformed_pair(self):
        with pytest.raises(FaultError, match="malformed parameter"):
            FaultPlan.parse("worker-crash:p")

    def test_empty_plan(self):
        with pytest.raises(FaultError, match="empty fault plan"):
            FaultPlan.parse(" ; ")

    def test_duplicate_point(self):
        with pytest.raises(FaultError, match="duplicate"):
            FaultPlan.parse("worker-crash;worker-crash:p=0.5")

    @pytest.mark.parametrize("bad", ["p=1.5", "p=-0.1", "count=-1",
                                     "delay=-2"])
    def test_out_of_range_parameters(self, bad):
        with pytest.raises(FaultError):
            FaultPlan.parse(f"worker-crash:{bad}")


class TestCatalogue:
    def test_every_known_point_parses_bare(self):
        for point in KNOWN_POINTS:
            assert point in FaultPlan.parse(point)

    def test_catalogue_covers_all_layers(self):
        names = set(KNOWN_POINTS)
        assert {"worker-crash", "worker-hang", "spawn-crash",
                "spawn-slow"} <= names        # runner pool
        assert {"cache-corrupt", "cache-truncate",
                "cache-stale"} <= names       # result cache
        assert {"dispatch-error", "dispatch-slow",
                "lru-storm"} <= names         # service
