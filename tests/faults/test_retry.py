"""Unit tests for the bounded-backoff retry primitive and the clocks."""

import pytest

from repro.faults import (
    FakeClock,
    MonotonicClock,
    RetryExhausted,
    RetryPolicy,
    retry_call,
)

pytestmark = pytest.mark.fast


class TestPolicy:
    def test_schedule_is_deterministic(self):
        policy = RetryPolicy(max_attempts=4, seed=3)
        assert policy.delays() == policy.delays()
        assert RetryPolicy(max_attempts=4, seed=4).delays() \
            != policy.delays()

    def test_schedule_length_and_exponential_base(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.1,
                             max_delay_s=10.0, jitter=0.0)
        assert policy.delays() == [0.1, 0.2, 0.4]

    def test_delays_capped(self):
        policy = RetryPolicy(max_attempts=5, base_delay_s=1.0,
                             max_delay_s=1.5, jitter=0.0)
        assert policy.delays() == [1.0, 1.5, 1.5, 1.5]

    def test_jitter_bounded(self):
        policy = RetryPolicy(max_attempts=8, base_delay_s=0.1,
                             max_delay_s=0.1, jitter=0.5, seed=11)
        for d in policy.delays():
            assert 0.1 <= d <= 0.15

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="non-negative"):
            RetryPolicy(base_delay_s=-1)


class TestRetryCall:
    def test_success_needs_no_sleep(self):
        clock = FakeClock()
        out = retry_call(lambda i: "ok", policy=RetryPolicy(), clock=clock)
        assert out == "ok" and clock.sleeps == []

    def test_recovers_after_transient_failures(self):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=3, seed=5)

        def flaky(attempt):
            if attempt < 2:
                raise OSError("transient")
            return attempt

        assert retry_call(flaky, policy=policy, clock=clock) == 2
        # the sleeps are exactly the policy's schedule — replayable
        assert clock.sleeps == policy.delays()

    def test_attempts_are_bounded_and_cause_chained(self):
        clock = FakeClock()
        calls = []

        def always(attempt):
            calls.append(attempt)
            raise OSError("down")

        with pytest.raises(RetryExhausted) as exc:
            retry_call(always, policy=RetryPolicy(max_attempts=3),
                       clock=clock)
        assert calls == [0, 1, 2]
        assert exc.value.attempts == 3
        assert isinstance(exc.value.__cause__, OSError)
        assert len(clock.sleeps) == 2

    def test_non_retryable_propagates_immediately(self):
        clock = FakeClock()

        def typed(attempt):
            raise KeyError("deterministic")

        with pytest.raises(KeyError):
            retry_call(typed, policy=RetryPolicy(max_attempts=5),
                       clock=clock, retry_on=(OSError,))
        assert clock.sleeps == []  # no attempt was burned on it

    def test_on_retry_fires_before_each_sleep(self):
        seen = []

        def failing(attempt):
            raise OSError(attempt)

        with pytest.raises(RetryExhausted):
            retry_call(failing, policy=RetryPolicy(max_attempts=3),
                       clock=FakeClock(),
                       on_retry=lambda i, exc: seen.append(i))
        assert seen == [0, 1]


class TestClocks:
    def test_fake_clock_records_and_advances(self):
        clock = FakeClock(start=10.0)
        clock.sleep(1.5)
        clock.sleep(0.5)
        assert clock.sleeps == [1.5, 0.5]
        assert clock.total_slept == 2.0
        assert clock.time() == 12.0
        clock.advance(3.0)
        assert clock.time() == 15.0
        assert clock.sleeps == [1.5, 0.5]  # advance() is not a sleep

    def test_monotonic_clock_moves_forward(self):
        clock = MonotonicClock()
        t0 = clock.time()
        clock.sleep(0)  # zero sleep must not block
        assert clock.time() >= t0
