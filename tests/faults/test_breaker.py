"""Unit tests for the per-key circuit breaker (FakeClock-driven)."""

import pytest

from repro.faults import CircuitBreaker, FakeClock

pytestmark = pytest.mark.fast


@pytest.fixture
def clock():
    return FakeClock()


class TestStateMachine:
    def test_closed_allows_everything(self, clock):
        breaker = CircuitBreaker(threshold=3, reset_s=10.0, clock=clock)
        assert breaker.state == "closed"
        assert all(breaker.allow() for _ in range(10))

    def test_trips_after_threshold_consecutive_failures(self, clock):
        breaker = CircuitBreaker(threshold=3, reset_s=10.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self, clock):
        breaker = CircuitBreaker(threshold=3, reset_s=10.0, clock=clock)
        for _ in range(5):
            breaker.record_failure()
            breaker.record_failure()
            breaker.record_success()  # streak broken: never trips
        assert breaker.state == "closed"

    def test_half_open_probe_after_reset(self, clock):
        breaker = CircuitBreaker(threshold=1, reset_s=10.0, clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # the probe request
        assert breaker.state == "half-open"

    def test_probe_success_closes(self, clock):
        breaker = CircuitBreaker(threshold=1, reset_s=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_for_a_full_window(self, clock):
        breaker = CircuitBreaker(threshold=5, reset_s=10.0, clock=clock)
        for _ in range(5):
            breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure()  # one failure suffices in half-open
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance(10.5)
        assert breaker.allow()


class TestRetryAfter:
    def test_counts_down_the_reset_window(self, clock):
        breaker = CircuitBreaker(threshold=1, reset_s=10.0, clock=clock)
        assert breaker.retry_after_s() == 0.0
        breaker.record_failure()
        assert breaker.retry_after_s() == 10.0
        clock.advance(4.0)
        assert breaker.retry_after_s() == 6.0
        clock.advance(100.0)
        assert breaker.retry_after_s() == 0.0


class TestValidation:
    def test_threshold_and_reset_validated(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="reset_s"):
            CircuitBreaker(reset_s=-1.0)
