"""Tests for the experiment registry and a sample of cheap experiments.

The expensive full-figure runs live in ``benchmarks/``; here we check the
registry mechanics and that representative experiments produce sound
results at a small scale.
"""

import pytest

from repro.core.errors import ExperimentError
from repro.experiments import all_experiments, get
from repro.experiments.common import scaled_sizes
from repro.validation.series import ExperimentResult

EXPECTED_IDS = {
    "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
    "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "fig18", "fig19", "fig20",
    "abl-stagger", "abl-msgsize", "abl-sync", "abl-oversample",
    "abl-layout", "abl-radix",
    "ext-models", "ext-sensitivity", "ext-lu", "ext-primitives",
    "ext-t800", "ext-misranking", "ext-radix", "ext-modern",
}


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        assert set(all_experiments()) == EXPECTED_IDS

    def test_ordering_figures_numeric(self):
        ids = [i for i in all_experiments() if i.startswith("fig")]
        assert ids == sorted(ids, key=lambda s: int(s[3:]))

    def test_get_unknown(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            get("fig99")

    def test_scale_validated(self):
        with pytest.raises(ExperimentError):
            get("fig14").run(scale=0.0)
        with pytest.raises(ExperimentError):
            get("fig14").run(scale=2.0)

    def test_metadata(self):
        exp = get("fig12")
        assert "shortest path" in exp.title.lower()
        assert "Fig. 12" in exp.paper_ref

    def test_every_experiment_declares_machines(self):
        valid = {"maspar", "gcel", "cm5", "t800", "modern"}
        for exp in all_experiments().values():
            assert exp.machines, f"{exp.id} declares no machines"
            assert set(exp.machines) <= valid, exp.id

    def test_cache_inputs_shape(self):
        inputs = get("table1").cache_inputs()
        assert inputs == {"machines": ["maspar", "gcel", "cm5"], "rev": 1}

    def test_register_rejects_unknown_machine(self):
        from repro.experiments.base import register

        with pytest.raises(ExperimentError, match="unknown machine"):
            register("bogus", "t", "ref", machines=("cray",))


class TestScaledSizes:
    def test_identity_at_full_scale(self):
        assert scaled_sizes([100, 200], 1.0, multiple=100) == [100, 200]

    def test_snapping_and_dedup(self):
        assert scaled_sizes([100, 200, 300], 0.3, multiple=100) == [100]

    def test_minimum(self):
        assert scaled_sizes([64], 0.1, multiple=16, minimum=32) == [32]


class TestRepresentativeRuns:
    @pytest.mark.parametrize("exp_id", ["fig14", "fig7", "fig2"])
    def test_cheap_experiments_pass(self, exp_id):
        result = get(exp_id).run(scale=0.3, seed=1)
        assert isinstance(result, ExperimentResult)
        assert result.series
        assert result.checks
        failed = [c for c in result.checks if not c.passed]
        assert not failed, failed

    def test_results_are_deterministic(self):
        a = get("fig14").run(scale=0.3, seed=2)
        b = get("fig14").run(scale=0.3, seed=2)
        assert (a.get("full h-relations").ys
                == b.get("full h-relations").ys).all()

    def test_seeds_change_measurements(self):
        a = get("fig1").run(scale=0.2, seed=1)
        b = get("fig1").run(scale=0.2, seed=2)
        assert (a.get("measured (mean)").ys
                != b.get("measured (mean)").ys).any()
