"""Golden-figure regression tests.

Each snapshot under ``tests/golden/`` is the full serialised
:class:`~repro.validation.series.ExperimentResult` of one fast
experiment at a fixed (scale, seed).  Every stochastic element of the
simulators draws from an explicitly seeded generator, so reproduction
must be *bit-identical* — any diff is a determinism or behaviour
regression.  Regenerate intentionally with
``PYTHONPATH=src python scripts/update_golden.py``.
"""

import json
from pathlib import Path

import pytest

from repro.experiments import get
from repro.runner import ResultCache, experiment_key
from repro.validation.series import ExperimentResult

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_IDS = ["fig1", "fig4", "fig14", "table1", "ext-radix"]
#: snapshots owned by other golden suites
#: (tests/ablation/test_golden.py, tests/bounds/test_golden.py)
EXTRA_SNAPSHOTS = ["ablate", "bounds"]

pytestmark = pytest.mark.golden


def _load(exp_id: str) -> dict:
    return json.loads((GOLDEN_DIR / f"{exp_id}.json").read_text())


class TestGoldenFigures:
    def test_snapshots_exist(self):
        assert sorted(p.stem for p in GOLDEN_DIR.glob("*.json")) \
            == sorted(GOLDEN_IDS + EXTRA_SNAPSHOTS)

    @pytest.mark.parametrize("exp_id", GOLDEN_IDS)
    def test_bit_identical_reproduction(self, exp_id):
        doc = _load(exp_id)
        fresh = get(exp_id).run(scale=doc["scale"], seed=doc["seed"])
        golden = ExperimentResult.from_dict(doc["result"])
        assert fresh.identical(golden), (
            f"{exp_id} diverged from tests/golden/{exp_id}.json — if the "
            "change is intentional, rerun scripts/update_golden.py")
        # the serialised form matches too (names, checks, notes, floats)
        assert fresh.to_dict() == doc["result"]

    @pytest.mark.parametrize("exp_id", GOLDEN_IDS)
    def test_golden_checks_all_pass(self, exp_id):
        golden = ExperimentResult.from_dict(_load(exp_id)["result"])
        assert golden.passed


class TestGoldenCacheRoundTrip:
    @pytest.mark.parametrize("exp_id", GOLDEN_IDS)
    def test_cache_hit_equals_cache_miss(self, exp_id, tmp_path):
        """A result served from the runner's disk cache is bit-identical
        to the freshly computed (golden) one."""
        doc = _load(exp_id)
        cache = ResultCache(tmp_path)
        fresh = get(exp_id).run(scale=doc["scale"], seed=doc["seed"])
        key = experiment_key(exp_id, scale=doc["scale"], seed=doc["seed"],
                             fingerprint="golden-test")
        cache.put(key, fresh)
        hit = cache.get(key)
        assert hit is not None
        assert hit.identical(fresh)
        assert hit.to_dict() == doc["result"]
