"""Tests for the MasPar MP-1 machine model — the phenomena of §3.1/§5.1."""

import numpy as np
import pytest

from repro.core.errors import SimulationError
from repro.core.relations import CommPhase
from repro.core.work import Flops, MatmulBlock
from repro.machines import MasParMP1


def random_permutation_phase(P, rng, msg_bytes=4):
    perm = rng.permutation(P)
    while np.any(perm == np.arange(P)):
        perm = rng.permutation(P)
    return CommPhase.permutation(perm, msg_bytes)


class TestConstruction:
    def test_default_is_1024_pes(self):
        assert MasParMP1().P == 1024

    def test_partition_sizes(self):
        assert MasParMP1(P=64).P == 64

    def test_bad_partition_rejected(self):
        with pytest.raises(SimulationError):
            MasParMP1(P=100)
        with pytest.raises(SimulationError):
            MasParMP1(P=8)

    def test_simd(self):
        assert MasParMP1().simd
        assert MasParMP1().barrier_time() == 0.0


class TestPermutationCosts:
    def test_full_permutation_about_1300us(self, rng):
        # §5.1: "the time taken by a 1-1 relation is about 1300 us".
        m = MasParMP1(seed=1)
        times = [m.phase_cost(random_permutation_phase(1024, rng))
                 for _ in range(10)]
        assert np.mean(times) == pytest.approx(1311, rel=0.05)

    def test_partial_permutation_32_active_about_13_percent(self, rng):
        m = MasParMP1(seed=1)
        perm = np.full(1024, -1)
        targets = rng.choice(1024, 32, replace=False)
        sources = rng.choice(1024, 32, replace=False)
        src_arr = np.array(sources)
        ph = CommPhase(P=1024, src=src_arr, dst=np.array(targets),
                       count=np.ones(32, dtype=np.int64),
                       msg_bytes=np.full(32, 4, dtype=np.int64))
        full = m.phase_cost(random_permutation_phase(1024, rng))
        assert m.phase_cost(ph) / full == pytest.approx(0.13, abs=0.05)

    def test_cube_permutation_about_590us(self):
        # §5.1: single-bit-XOR permutations take ~590 us, less than half a
        # random permutation.
        m = MasParMP1(seed=1)
        cube = CommPhase.permutation(np.arange(1024) ^ 4, 4)
        t = m.phase_cost(cube)
        assert t == pytest.approx(590, rel=0.05)

    def test_cube_cheaper_than_random(self, rng):
        m = MasParMP1(seed=1)
        cube = m.phase_cost(CommPhase.permutation(np.arange(1024) ^ 1, 4))
        rand = m.phase_cost(random_permutation_phase(1024, rng))
        assert cube < 0.5 * rand


class TestOneToHRelations:
    def _one_h(self, P, h, rng):
        n_dest = P // h
        dests = rng.choice(P, n_dest, replace=False)
        dst = np.repeat(dests, h)[:P]
        return CommPhase(P=P, src=np.arange(P), dst=dst,
                         count=np.ones(P, dtype=np.int64),
                         msg_bytes=np.full(P, 4, dtype=np.int64))

    def test_roughly_linear_in_h(self, rng):
        # Fig. 1: fitting a line to 1-h relation times gives g ~ 32, L ~ 1400.
        m = MasParMP1(seed=2)
        hs = np.array([1, 2, 4, 8, 16, 32])
        times = np.array([
            np.mean([m.phase_cost(self._one_h(1024, h, rng)) for _ in range(5)])
            for h in hs])
        g, L = np.polyfit(hs, times, 1)
        assert 25 < g < 45
        assert 1100 < L < 1600

    def test_h1_cheaper_than_fit_intercept(self, rng):
        # §5.1: the h=1 point lies *below* the fitted g+L ~ 1430 line —
        # the source of the matmul prediction error.
        m = MasParMP1(seed=2)
        hs = np.array([1, 2, 4, 8, 16, 32])
        times = np.array([
            np.mean([m.phase_cost(self._one_h(1024, h, rng)) for _ in range(5)])
            for h in hs])
        g, L = np.polyfit(hs, times, 1)
        assert times[0] < g * 1 + L

    def test_cluster_conflicts_add_variance(self, rng):
        # The error bars of Fig. 1: one router channel per 16-PE cluster.
        m = MasParMP1(seed=2)
        times = [m.phase_cost(self._one_h(1024, 16, rng)) for _ in range(30)]
        assert np.std(times) > 5.0


class TestBlockTransfers:
    def test_block_permutation_linear_in_bytes(self, rng):
        m = MasParMP1(seed=3)
        sizes = np.array([64, 256, 1024, 4096])
        times = []
        for s in sizes:
            perm = rng.permutation(1024)
            ph = CommPhase.permutation(perm, int(s))
            times.append(m.phase_cost(ph))
        sigma, ell = np.polyfit(sizes, times, 1)
        # Table 1: sigma = 107, ell = 630.
        assert 95 < sigma < 120
        assert 300 < ell < 1000

    def test_block_transfer_beats_word_at_a_time(self, rng):
        m = MasParMP1(seed=3)
        perm = rng.permutation(1024)
        block = CommPhase.permutation(perm, 4 * 64)
        words = CommPhase(P=1024, src=np.arange(1024), dst=perm,
                          count=np.full(1024, 64, dtype=np.int64),
                          msg_bytes=np.full(1024, 4, dtype=np.int64))
        # some self-sends in perm are fine for this comparison
        assert m.phase_cost(block) < 0.5 * m.phase_cost(words)


class TestSinglePortSerialisation:
    def test_multiple_sends_serialise(self, rng):
        m = MasParMP1(P=64, seed=4)
        one = CommPhase(P=64, src=[0], dst=[1], count=[1], msg_bytes=[4])
        three = CommPhase(P=64, src=[0, 0, 0], dst=[1, 2, 3],
                          count=[1, 1, 1], msg_bytes=[4, 4, 4])
        assert m.phase_cost(three) == pytest.approx(3 * m.phase_cost(one), rel=0.15)

    def test_repeated_counts_serialise(self):
        m = MasParMP1(P=64, seed=4)
        single = CommPhase(P=64, src=[0], dst=[1], count=[1], msg_bytes=[4])
        repeated = CommPhase(P=64, src=[0], dst=[1], count=[10], msg_bytes=[4])
        assert m.phase_cost(repeated) == pytest.approx(
            10 * m.phase_cost(single), rel=0.15)

    def test_hot_receiver_serialises(self):
        m = MasParMP1(P=64, seed=4)
        fan = CommPhase(P=64, src=np.arange(1, 17), dst=np.zeros(16, dtype=np.int64),
                        count=np.ones(16, dtype=np.int64),
                        msg_bytes=np.full(16, 4, dtype=np.int64),
                        step=np.zeros(16, dtype=np.int64))
        spread = CommPhase(P=64, src=np.arange(1, 17), dst=np.arange(17, 33),
                           count=np.ones(16, dtype=np.int64),
                           msg_bytes=np.full(16, 4, dtype=np.int64),
                           step=np.zeros(16, dtype=np.int64))
        assert m.phase_cost(fan) > m.phase_cost(spread)


class TestCompute:
    def test_compute_is_nominal(self):
        m = MasParMP1(seed=5)
        assert m.compute_time(Flops(1000), 0) == pytest.approx(
            1000 * m.nominal.alpha)

    def test_no_cache_effects(self):
        # lockstep PEs, no caches: rate independent of block size
        m = MasParMP1(seed=5)
        small = m.compute_time(MatmulBlock(8, 8, 8), 0) / 8**3
        large = m.compute_time(MatmulBlock(64, 64, 64), 0) / 64**3
        assert small == pytest.approx(large)


class TestDeterminism:
    def test_same_seed_same_cost(self, rng):
        ph = random_permutation_phase(1024, rng)
        assert MasParMP1(seed=9).phase_cost(ph) == MasParMP1(seed=9).phase_cost(ph)
