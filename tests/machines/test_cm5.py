"""Tests for the CM-5 machine model — the phenomena of §3.3/§5.1."""

import numpy as np
import pytest

from repro.core.relations import CommPhase
from repro.core.work import Flops, MatmulBlock
from repro.machines import CM5


def full_h_relation(P, h, rng, msg_bytes=8):
    src = np.tile(np.arange(P), h)
    dst = np.concatenate([rng.permutation(P) for _ in range(h)])
    return CommPhase(P=P, src=src, dst=dst,
                     count=np.ones(P * h, dtype=np.int64),
                     msg_bytes=np.full(P * h, msg_bytes, dtype=np.int64))


class TestHRelations:
    def test_g_and_L_near_table1(self, rng):
        m = CM5(seed=1)
        hs = np.array([1, 4, 16, 64, 256])
        times = np.array([
            m.phase_cost(full_h_relation(64, int(h), rng)) + m.barrier_time()
            for h in hs])
        g, L = np.polyfit(hs, times, 1)
        assert g == pytest.approx(9.1, rel=0.10)
        assert L == pytest.approx(45, rel=0.6)

    def test_fat_tree_partial_patterns_not_discounted(self, rng):
        # §5.3: "due to its large bisection bandwidth, there is only a
        # minor difference between a full h-relation and a scatter".
        m = CM5(seed=1)
        h = 64
        t_full = m.phase_cost(full_h_relation(64, h, rng))
        # scatter: 8 senders, h messages each, fan over machine
        src = np.repeat(np.arange(8), h)
        dst = rng.integers(0, 64, size=8 * h)
        scat = CommPhase(P=64, src=src, dst=dst,
                         count=np.ones(8 * h, dtype=np.int64),
                         msg_bytes=np.full(8 * h, 8, dtype=np.int64))
        # per-h cost of the scatter is NOT an order of magnitude cheaper
        assert t_full / m.phase_cost(scat) < 3


class TestEndpointContention:
    def _phase(self, stagger):
        # 4 senders all target the same destination (plus background perm)
        src = np.array([1, 2, 3, 4])
        dst = np.zeros(4, dtype=np.int64)
        return CommPhase(P=64, src=src, dst=dst,
                         count=np.full(4, 32, dtype=np.int64),
                         msg_bytes=np.full(4, 8, dtype=np.int64),
                         stagger=stagger)

    def test_unstaggered_slower(self):
        m = CM5(seed=2)
        t_stag = m.phase_cost(self._phase(stagger=True))
        t_uns = m.phase_cost(self._phase(stagger=False))
        assert t_uns > t_stag

    def test_penalty_about_20_to_40_percent(self):
        # §5.1: the unstaggered matmul was 21% slower overall.
        m = CM5(seed=2)
        t_stag = np.mean([m.phase_cost(self._phase(True)) for _ in range(10)])
        t_uns = np.mean([m.phase_cost(self._phase(False)) for _ in range(10)])
        assert 1.1 < t_uns / t_stag < 1.5

    def test_no_fan_in_no_penalty(self, rng):
        m = CM5(seed=2)
        perm = np.roll(np.arange(64), 1)
        ph_t = CommPhase.permutation(perm, 8, stagger=True)
        ph_f = CommPhase.permutation(perm, 8, stagger=False)
        a = np.mean([m.phase_cost(ph_t) for _ in range(10)])
        b = np.mean([m.phase_cost(ph_f) for _ in range(10)])
        assert b / a == pytest.approx(1.0, rel=0.02)


class TestBlockTransfers:
    def test_block_permutation_matches_table1(self):
        m = CM5(seed=3)
        sizes = np.array([256, 1024, 4096, 16384])
        perm = np.roll(np.arange(64), 5)
        times = [m.phase_cost(CommPhase.permutation(perm, int(s))) for s in sizes]
        sigma, ell = np.polyfit(sizes, times, 1)
        assert sigma == pytest.approx(0.27, rel=0.15)
        assert ell == pytest.approx(75, rel=0.40)

    def test_bulk_gain_about_4(self):
        # §3.3: g/(w sigma) ~ 4.2 for 8-byte messages.
        m = CM5(seed=3)
        n_words = 1024
        perm = np.roll(np.arange(64), 1)
        fine = CommPhase(P=64, src=np.arange(64), dst=perm,
                         count=np.full(64, n_words, dtype=np.int64),
                         msg_bytes=np.full(64, 8, dtype=np.int64))
        block = CommPhase.permutation(perm, 8 * n_words)
        ratio = m.phase_cost(fine) / m.phase_cost(block)
        assert 2.5 < ratio < 6


class TestCacheEffects:
    def test_kernel_rate_in_paper_band(self):
        # §4.1.1: 6.5-7.5 Mflops for 32..256 square blocks.
        m = CM5(seed=4)
        for b in (32, 64):
            t = m.compute_time(MatmulBlock(b, b, b), 0)
            mflops = 2.0 * b**3 / t
            assert 6.0 < mflops < 8.0

    def test_big_blocks_drop_toward_5_2(self):
        # §4.1.1: "When N = 512, the performance drops to 5.2 Mflops."
        m = CM5(seed=4)
        b = 512
        t = m.compute_time(MatmulBlock(b, b, b), 0)
        mflops = 2.0 * b**3 / t
        assert mflops == pytest.approx(5.2, rel=0.10)

    def test_tiny_blocks_pay_overhead(self):
        m = CM5(seed=4)
        t = m.compute_time(MatmulBlock(8, 8, 8), 0)
        mflops = 2.0 * 8**3 / t
        assert mflops < 5.0

    def test_non_matmul_work_nominal(self):
        m = CM5(seed=4)
        times = [m.compute_time(Flops(10000), 0) for _ in range(20)]
        assert np.mean(times) == pytest.approx(10000 * m.nominal.alpha, rel=0.02)


class TestBarrier:
    def test_barrier_cheap(self):
        # fast control network
        assert CM5(seed=5).barrier_time() < 100
