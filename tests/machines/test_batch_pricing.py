"""Batched pricing vs the scalar oracle: exact agreement (hypothesis).

Two fast paths were layered over the per-phase scalar code and both keep
a bit-identity contract with it:

* cost models override ``CostModel._comm_costs`` with columnar pricing;
  the scalar ``comm_cost`` loop remains the oracle;
* machines override ``Machine.comm_time_batch`` with pricers that hoist
  the deterministic pattern analysis over the whole phase sequence; the
  base-class :class:`CommPricer` *is* the scalar loop.

These sweeps draw random phase sequences — repeated objects included,
since the vector engine interns recurring patterns and both batch layers
deduplicate by identity — and require clocks, costs and the machine RNG
stream to agree exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (BSF, BSP, EBSP, LocalityAwareBSP, MPBPRAM, MPBSP,
                        ScatterAwareBSP, paper_params)
from repro.core.params import UnbalancedCost
from repro.core.relations import CommPhase
from repro.machines import CM5, GCel, MasParMP1, ModernCluster, T800Grid

MACHINES = {
    "maspar": MasParMP1,
    "gcel": GCel,
    "cm5": CM5,
    "t800": T800Grid,
    "modern": ModernCluster,
}


def draw_phase(draw, P):
    """One random CommPhase: arbitrary fan-in/out, steps, stagger."""
    n = draw(st.integers(1, 10))
    src = draw(st.lists(st.integers(0, P - 1), min_size=n, max_size=n))
    dst = draw(st.lists(st.integers(0, P - 1), min_size=n, max_size=n))
    count = draw(st.lists(st.integers(1, 6), min_size=n, max_size=n))
    size = draw(st.lists(st.sampled_from([4, 8, 64, 1024]),
                         min_size=n, max_size=n))
    step = draw(st.lists(st.sampled_from([-1, 0, 1, 2, 3]),
                         min_size=n, max_size=n))
    stagger = draw(st.booleans())
    return CommPhase(P=P, src=np.array(src), dst=np.array(dst),
                     count=np.array(count), msg_bytes=np.array(size),
                     step=np.array(step), stagger=stagger)


def draw_sequence(draw, P, max_phases=6):
    """A phase sequence with identity repeats (interned patterns)."""
    phases = [draw_phase(draw, P)
              for _ in range(draw(st.integers(1, max_phases)))]
    # repeat some objects, as the vector engine's interning does
    picks = draw(st.lists(st.integers(0, len(phases) - 1),
                          min_size=1, max_size=2 * max_phases))
    seq = [phases[i] for i in picks]
    if CommPhase.empty(P) and draw(st.booleans()):
        seq.append(CommPhase.empty(P))
    return seq


def all_models(params):
    # MasPar MP-1 T_unb coefficients (paper §3.1) for E-BSP; the grid
    # side / bandwidth knobs just need plausible values here — only
    # batch-vs-scalar agreement is under test, not the prices themselves
    import math

    unb = UnbalancedCost(a=0.84, b=11.8, c=73.3)
    side = math.isqrt(params.P)
    models = [BSP(params), MPBSP(params), MPBPRAM(params),
              EBSP(params, unb), BSF(params),
              ScatterAwareBSP(params, g_scatter=params.g / 2)]
    if side * side == params.P:
        models.append(LocalityAwareBSP(params, side=side, g0=0.1,
                                       g_hop=0.05))
    return models


class TestModelBatchAgreement:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_comm_cost_batch_equals_scalar_loop(self, data):
        P = data.draw(st.sampled_from([4, 16, 64]))
        seq = draw_sequence(data.draw, P)
        for params in (paper_params("gcel").with_updates(P=P),
                       paper_params("cm5").with_updates(P=P)):
            for model in all_models(params):
                batch = model.comm_cost_batch(seq)
                scalar = [model.comm_cost(ph) for ph in seq]
                assert batch == scalar, \
                    f"{model.name} batch pricing diverged"

    def test_batch_of_nothing(self):
        for model in all_models(paper_params("gcel")):
            assert model.comm_cost_batch([]) == []


class TestMachineBatchAgreement:
    @pytest.mark.parametrize("machine", list(MACHINES))
    @given(data=st.data())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_pricer_equals_scalar_loop(self, machine, data):
        P = data.draw(st.sampled_from([16, 64]))
        seed = data.draw(st.integers(0, 2 ** 16))
        seq = draw_sequence(data.draw, P)
        barriers = [data.draw(st.booleans()) for _ in seq]

        m_scalar = MACHINES[machine](P=P, seed=seed)
        m_batch = MACHINES[machine](P=P, seed=seed)
        pricer = m_batch.comm_time_batch(seq)

        cs = np.zeros(P)
        cb = np.zeros(P)
        for i, (ph, barrier) in enumerate(zip(seq, barriers)):
            cs = m_scalar.comm_time(ph, cs, barrier=barrier)
            cb = pricer.comm_time(i, cb, barrier=barrier)
            assert np.array_equal(cs, cb), \
                f"{machine} clocks diverged at phase {i}"
        # identical draws: the noise streams must end in the same state
        assert m_scalar.rng.bit_generator.state == \
            m_batch.rng.bit_generator.state


class TestAblatedMachineBatchAgreement:
    """The bit-identity contract survives ablation: with any subset of a
    machine's phenomena disabled, the batched pricer must still return
    byte-for-byte what the ablated scalar loop returns (the ablation
    harness prices whole traces through the batch path)."""

    @pytest.mark.parametrize("machine",
                             [m for m in MACHINES
                              if MACHINES[m].PHENOMENA])
    @given(data=st.data())
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_pricer_equals_scalar_loop_under_ablation(self, machine, data):
        cls = MACHINES[machine]
        disable = tuple(data.draw(st.sets(
            st.sampled_from(sorted(cls.PHENOMENA)), min_size=1)))
        P = data.draw(st.sampled_from([16, 64]))
        seed = data.draw(st.integers(0, 2 ** 16))
        seq = draw_sequence(data.draw, P)
        barriers = [data.draw(st.booleans()) for _ in seq]

        m_scalar = cls(P=P, seed=seed, disable=disable)
        m_batch = cls(P=P, seed=seed, disable=disable)
        pricer = m_batch.comm_time_batch(seq)

        cs = np.zeros(P)
        cb = np.zeros(P)
        for i, (ph, barrier) in enumerate(zip(seq, barriers)):
            cs = m_scalar.comm_time(ph, cs, barrier=barrier)
            cb = pricer.comm_time(i, cb, barrier=barrier)
            assert np.array_equal(cs, cb), \
                f"{machine} (disable={disable}) diverged at phase {i}"
        assert m_scalar.rng.bit_generator.state == \
            m_batch.rng.bit_generator.state
