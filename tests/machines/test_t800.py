"""Tests for the T800 grid machine and the locality-aware model."""

import numpy as np
import pytest

from repro.core.ebsp import LocalityAwareBSP
from repro.core.errors import ModelError, SimulationError
from repro.core.relations import CommPhase
from repro.machines import T800Grid


def east_shift(P, side, d, msg_bytes=4):
    """Partial permutation: every processor sends d columns east."""
    ranks = np.arange(P)
    cols = ranks % side
    dst = np.where(cols + d < side, ranks + d, -1)
    return CommPhase.permutation(dst, msg_bytes)


class TestConstruction:
    def test_default_64(self):
        m = T800Grid()
        assert m.P == 64 and m.side == 8

    def test_square_required(self):
        with pytest.raises(SimulationError):
            T800Grid(P=48)

    def test_other_sizes(self):
        assert T800Grid(P=16).side == 4


class TestLocality:
    def test_hops_manhattan(self):
        m = T800Grid()
        assert m.hops(np.array([0]), np.array([9]))[0] == 2  # (0,0)->(1,1)
        assert m.hops(np.array([0]), np.array([63]))[0] == 14

    def test_cost_grows_with_distance(self):
        m = T800Grid(seed=1)
        costs = [np.mean([T800Grid(seed=s).phase_cost(east_shift(64, 8, d))
                          for s in range(3)]) for d in (1, 3, 5, 7)]
        assert costs == sorted(costs)
        assert costs[-1] > 2 * costs[0]

    def test_neighbour_cheaper_than_random(self, rng):
        m = T800Grid(seed=1)
        neigh = east_shift(64, 8, 1)
        perm = rng.permutation(64)
        rand = CommPhase.permutation(perm, 4)
        assert m.phase_cost(neigh) < 0.7 * m.phase_cost(rand)

    def test_flat_g_means_bsp_cannot_see_it(self):
        # BSP prices both shifts identically; the machine does not —
        # that is the whole point of the locality extension.
        m = T800Grid(seed=1)
        near, far = east_shift(64, 8, 1), east_shift(64, 8, 7)
        assert near.h == far.h  # identical BSP summary
        assert m.phase_cost(far) > 1.5 * m.phase_cost(near)


class TestLocalityAwareBSP:
    def _model(self, g0=30.0, g_hop=14.0):
        m = T800Grid(seed=0)
        return LocalityAwareBSP(m.nominal, m.side, g0=g0, g_hop=g_hop)

    def test_prices_by_distance(self):
        model = self._model()
        near = east_shift(64, 8, 1)
        far = east_shift(64, 8, 7)
        c_near = model.comm_cost(near)
        c_far = model.comm_cost(far)
        assert c_far - c_near == pytest.approx(6 * 14.0, rel=0.01)

    def test_word_counting(self):
        model = self._model()
        one = east_shift(64, 8, 2, msg_bytes=4)
        four = east_shift(64, 8, 2, msg_bytes=16)
        assert model.comm_cost(four) - model.params.L == pytest.approx(
            4 * (model.comm_cost(one) - model.params.L))

    def test_validation(self):
        m = T800Grid(seed=0)
        with pytest.raises(ModelError):
            LocalityAwareBSP(m.nominal, 7, g0=1, g_hop=1)
        with pytest.raises(ModelError):
            LocalityAwareBSP(m.nominal, 8, g0=-1, g_hop=1)

    def test_empty_free(self):
        assert self._model().comm_cost(CommPhase.empty(64)) == 0.0


class TestLinkContention:
    def test_bisection_heavy_pattern_pays(self):
        m = T800Grid(seed=2)
        # everyone in the left half sends far right: all traffic crosses
        # the middle cut
        src = np.arange(32)
        cols = src % 8
        heavy_src = src[cols < 4]
        dst = heavy_src + 4
        n = heavy_src.size
        heavy = CommPhase(P=64, src=heavy_src, dst=dst,
                          count=np.full(n, 64, dtype=np.int64),
                          msg_bytes=np.full(n, 4, dtype=np.int64))
        # same volume, nearest neighbour
        light = CommPhase(P=64, src=heavy_src, dst=heavy_src + 1,
                          count=np.full(n, 64, dtype=np.int64),
                          msg_bytes=np.full(n, 4, dtype=np.int64))
        assert m.phase_cost(heavy) > m.phase_cost(light)
