"""Tests for the GCel machine model — the phenomena of §3.2/§5.1/§5.3."""

import numpy as np
import pytest

from repro.core.relations import CommPhase
from repro.core.work import Flops
from repro.machines import GCel


def full_h_relation(P, h, rng, msg_bytes=4):
    """A random full h-relation: h random permutations overlaid."""
    src = np.tile(np.arange(P), h)
    dst = np.concatenate([rng.permutation(P) for _ in range(h)])
    return CommPhase(P=P, src=src, dst=dst,
                     count=np.ones(P * h, dtype=np.int64),
                     msg_bytes=np.full(P * h, msg_bytes, dtype=np.int64))


def multinode_scatter(P, h, rng):
    """sqrt(P) senders scatter h messages each, receivers balanced (§5.3).

    The paper's experiment guarantees each processor receives at most
    ceil(h / sqrt(P)) messages, so targets are assigned round-robin.
    """
    root = int(P ** 0.5)
    src = np.repeat(np.arange(root), h)
    receivers = np.arange(root, P)  # "the remaining processors"
    dst = receivers[np.arange(root * h) % receivers.size]
    n = src.size
    return CommPhase(P=P, src=src, dst=dst,
                     count=np.ones(n, dtype=np.int64),
                     msg_bytes=np.full(n, 4, dtype=np.int64))


class TestHRelations:
    def test_g_and_L_near_table1(self, rng):
        # Table 1: g = 4480, L = 5100 under HPVM.
        m = GCel(seed=1)
        hs = np.array([1, 2, 4, 8, 16])
        times = np.array([
            m.phase_cost(full_h_relation(64, int(h), rng)) + m.barrier_time()
            for h in hs])
        g, L = np.polyfit(hs, times, 1)
        assert g == pytest.approx(4480, rel=0.10)
        assert L == pytest.approx(5100, rel=0.40)

    def test_scatter_is_much_cheaper(self, rng):
        # Fig. 14: a multinode scatter is up to a factor 9.1 cheaper than
        # a full h-relation with the same h.
        m = GCel(seed=1)
        h = 64
        t_full = m.phase_cost(full_h_relation(64, h, rng))
        t_scat = m.phase_cost(multinode_scatter(64, h, rng))
        assert 5 < t_full / t_scat < 12

    def test_scatter_effective_g_near_492(self, rng):
        m = GCel(seed=1)
        hs = np.array([32, 64, 128, 256])
        times = np.array([m.phase_cost(multinode_scatter(64, int(h), rng))
                          for h in hs])
        g_mscat, _ = np.polyfit(hs, times, 1)
        # Paper: 492 us; our mechanistic decomposition (receive side of
        # c_recv h sqrt(P)/(P - sqrt(P))) lands near 576 us — same order,
        # same conclusion (far below g = 4480).
        assert 420 < g_mscat < 680


class TestBlockTransfers:
    def test_block_permutation_matches_table1(self, rng):
        m = GCel(seed=2)
        sizes = np.array([256, 1024, 4096, 16384])
        times = []
        for s in sizes:
            perm = np.roll(np.arange(64), 7)
            times.append(m.phase_cost(CommPhase.permutation(perm, int(s))))
        sigma, ell = np.polyfit(sizes, times, 1)
        assert sigma == pytest.approx(9.3, rel=0.15)
        assert ell == pytest.approx(6900, rel=0.30)

    def test_bulk_gain_about_120(self, rng):
        # §3.2: grouping into long messages gains up to g/(w sigma) ~ 120.
        m = GCel(seed=2)
        n_words = 4096
        perm = np.roll(np.arange(64), 1)
        fine = CommPhase(P=64, src=np.arange(64), dst=perm,
                         count=np.full(64, n_words, dtype=np.int64),
                         msg_bytes=np.full(64, 4, dtype=np.int64))
        block = CommPhase.permutation(perm, 4 * n_words)
        ratio = m.phase_cost(fine) / m.phase_cost(block)
        assert 60 < ratio < 150


class TestDrift:
    def _exchange_clocks(self, m, steps, barrier):
        perm = np.roll(np.arange(64), 1)
        ph = CommPhase(P=64, src=np.arange(64), dst=perm,
                       count=np.full(64, steps, dtype=np.int64),
                       msg_bytes=np.full(64, 4, dtype=np.int64))
        clocks = np.zeros(64)
        return m.comm_time(ph, clocks, barrier=barrier)

    def test_linear_below_window(self):
        # Fig. 7: h-h permutations behave like h-relations until h ~ 300.
        m = GCel(seed=3)
        t100 = self._exchange_clocks(m, 100, barrier=False).max()
        t200 = self._exchange_clocks(m, 200, barrier=False).max()
        assert t200 / t100 == pytest.approx(2.0, rel=0.10)

    def test_drift_beyond_window(self):
        # ... after which times become noisy and keep elevating.
        m = GCel(seed=3)
        t600 = self._exchange_clocks(m, 600, barrier=False).max()
        linear = self._exchange_clocks(m, 300, barrier=False).max() * 2
        assert t600 > 1.1 * linear

    def test_barrier_eliminates_drift(self):
        # §5.1: a barrier every 256 messages eliminates the performance drop.
        m = GCel(seed=3)
        total = 0.0
        clocks = np.zeros(64)
        for _ in range(4):  # 4 x 150 = 600 messages with barriers between
            clocks = self._exchange_clocks(m, 150, barrier=True)
        t_sync = clocks.max() - 0  # includes barrier costs
        m2 = GCel(seed=3)
        t_drift = float(self._exchange_clocks(m2, 600, barrier=False).max())
        assert t_sync < t_drift

    def test_unsynchronised_clocks_spread(self):
        m = GCel(seed=4)
        clocks = self._exchange_clocks(m, 400, barrier=False)
        assert clocks.std() > 0

    def test_barrier_equalises_clocks(self):
        m = GCel(seed=4)
        clocks = self._exchange_clocks(m, 400, barrier=True)
        assert np.allclose(clocks, clocks[0])


class TestCompute:
    def test_compute_near_nominal_with_jitter(self):
        m = GCel(seed=5)
        times = [m.compute_time(Flops(10_000), r) for r in range(20)]
        nominal = 10_000 * m.nominal.alpha
        assert np.mean(times) == pytest.approx(nominal, rel=0.02)
        assert np.std(times) > 0  # MIMD jitter present


class TestEmptyPhase:
    def test_barrier_only_costs_L(self):
        m = GCel(seed=6)
        clocks = m.comm_time(CommPhase.empty(64), np.zeros(64), barrier=True)
        assert clocks.max() == pytest.approx(m.barrier_us)

    def test_no_barrier_no_cost(self):
        m = GCel(seed=6)
        clocks = m.comm_time(CommPhase.empty(64), np.zeros(64), barrier=False)
        assert clocks.max() == 0.0
