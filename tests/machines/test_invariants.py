"""Property-based invariants every machine model must satisfy."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.relations import CommPhase
from repro.core.work import Flops, Merge, RadixSort
from repro.machines import CM5, GCel, MasParMP1

MACHINES = [lambda seed: MasParMP1(P=64, seed=seed),
            lambda seed: GCel(seed=seed),
            lambda seed: CM5(seed=seed)]


def mean_cost(factory, phase, trials=5):
    return float(np.mean([factory(s).phase_cost(phase)
                          for s in range(trials)]))


def random_phase(P, n, rng, max_count=4, max_bytes=64):
    src = rng.integers(0, P, size=n)
    dst = rng.integers(0, P, size=n)
    count = rng.integers(1, max_count + 1, size=n)
    size = rng.integers(1, max_bytes + 1, size=n)
    return CommPhase(P=P, src=src, dst=dst, count=count, msg_bytes=size)


@pytest.mark.parametrize("factory", MACHINES)
class TestPhaseCostInvariants:
    def test_nonnegative_and_finite(self, factory, rng):
        for _ in range(10):
            ph = random_phase(64, int(rng.integers(1, 30)), rng)
            t = factory(0).phase_cost(ph)
            assert np.isfinite(t) and t >= 0

    def test_deterministic_given_seed(self, factory, rng):
        ph = random_phase(64, 20, rng)
        assert factory(3).phase_cost(ph) == factory(3).phase_cost(ph)

    def test_more_messages_cost_more(self, factory, rng):
        base = random_phase(64, 10, rng)
        double = CommPhase(P=64, src=base.src, dst=base.dst,
                           count=base.count * 4, msg_bytes=base.msg_bytes)
        assert mean_cost(factory, double) > mean_cost(factory, base)

    def test_bigger_blocks_cost_more(self, factory):
        perm = np.roll(np.arange(64), 1)
        small = CommPhase.permutation(perm, 512)
        big = CommPhase.permutation(perm, 8192)
        assert mean_cost(factory, big) > mean_cost(factory, small)

    def test_clocks_never_go_backward(self, factory, rng):
        m = factory(1)
        clocks = np.abs(rng.normal(1000, 200, size=64))
        ph = random_phase(64, 15, rng)
        for barrier in (True, False):
            new = m.comm_time(ph, clocks.copy(), barrier=barrier)
            assert new.shape == (64,)
            assert np.all(new >= clocks - 1e-9)

    def test_empty_phase_barrier_only(self, factory):
        m = factory(1)
        clocks = np.zeros(64)
        new = m.comm_time(CommPhase.empty(64), clocks, barrier=True)
        assert float(new.max()) <= m.barrier_time() + 1e-9


@pytest.mark.parametrize("factory", MACHINES)
class TestComputeInvariants:
    def test_nonnegative(self, factory):
        m = factory(2)
        for work in (Flops(0), Flops(1000), Merge(10), RadixSort(100)):
            assert m.compute_time(work, 0) >= 0

    def test_scales_with_work(self, factory):
        m = factory(2)
        small = np.mean([m.compute_time(Flops(1000), r) for r in range(8)])
        large = np.mean([m.compute_time(Flops(100000), r) for r in range(8)])
        assert large > 50 * small


class TestHypothesisPatterns:
    @given(st.integers(1, 40), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_gcel_any_pattern_positive(self, n, seed):
        rng = np.random.default_rng(seed)
        ph = random_phase(64, n, rng)
        t = GCel(seed=0).phase_cost(ph)
        assert t > 0

    @given(st.integers(1, 40), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_maspar_any_pattern_positive(self, n, seed):
        rng = np.random.default_rng(seed)
        ph = random_phase(64, n, rng)
        t = MasParMP1(P=64, seed=0).phase_cost(ph)
        assert t > 0

    @given(st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_cm5_superset_costs_at_least_subset(self, seed):
        """Adding traffic to a phase cannot make it (meaningfully) cheaper."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 20))
        ph = random_phase(64, n, rng)
        half = CommPhase(P=64, src=ph.src[: n // 2 + 1],
                         dst=ph.dst[: n // 2 + 1],
                         count=ph.count[: n // 2 + 1],
                         msg_bytes=ph.msg_bytes[: n // 2 + 1])
        full = mean_cost(lambda s: CM5(seed=s), ph, trials=3)
        part = mean_cost(lambda s: CM5(seed=s), half, trials=3)
        assert full >= 0.95 * part
