"""End-to-end integration tests: the full validation pipeline, and the
shipped examples as executable documentation."""

import runpy
from pathlib import Path

import numpy as np
import pytest

from repro.algorithms import apsp, bitonic, matmul, samplesort
from repro.calibration import calibrate
from repro.core import BSP, MPBPRAM, MPBSP
from repro.core.predictions import bpram_bitonic, bsp_apsp, mp_bsp_apsp
from repro.machines import CM5, GCel, MasParMP1

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestFullPipeline:
    """Calibrate -> run -> predict -> compare, like the paper did."""

    def test_gcel_bitonic_pipeline(self):
        machine = GCel(seed=11)
        cal = calibrate(machine, seed=11)
        res = bitonic.run(machine, 512, variant="bpram", seed=11)
        # correctness
        flat = np.concatenate(res.returns)
        assert np.all(flat[:-1] <= flat[1:])
        # closed form with *fitted* parameters within a few percent
        pred = bpram_bitonic(512, cal.params)
        assert pred == pytest.approx(res.time_us, rel=0.06)
        # trace pricing agrees with the closed form
        traced = MPBPRAM(cal.params).trace_cost(res.trace)
        assert traced == pytest.approx(pred, rel=0.05)

    def test_maspar_apsp_pipeline(self):
        machine = MasParMP1(P=256, seed=12)
        cal = calibrate(machine, seed=12)
        res = apsp.run(machine, 64, seed=12)
        got = apsp.assemble(256, 64, res.returns)
        assert np.allclose(got, apsp.reference_apsp(res.inputs))
        # the paper's qualitative finding, from fitted parameters only
        assert mp_bsp_apsp(64, cal.params, P=256) > 1.3 * res.time_us

    def test_cm5_matmul_pipeline(self):
        machine = CM5(seed=13)
        cal = calibrate(machine, seed=13)
        res = matmul.run(machine, 128, variant="bsp-staggered", seed=13)
        C = matmul.assemble(res.setup, res.returns)
        A, B = res.inputs
        assert np.allclose(C, A @ B)
        pred = BSP(cal.params).trace_cost(res.trace)
        assert pred == pytest.approx(res.time_us, rel=0.15)

    def test_all_sorts_agree_on_the_answer(self):
        machine = CM5(seed=14)
        M = 64
        a = bitonic.run(machine, M, variant="bsp", seed=14)
        b = bitonic.run(CM5(seed=14), M, variant="bpram", seed=14)
        c = samplesort.run(CM5(seed=14), M, variant="bpram",
                           oversample=16, seed=14)
        ref = np.sort(a.inputs.ravel())
        for res in (a, b, c):
            assert np.array_equal(np.concatenate(res.returns), ref)

    def test_same_trace_priced_by_every_model_orders_sanely(self):
        """On the GCel block sort: BSP >> MP-BSP-ish >> measured-level
        MP-BPRAM — the paper's Section 6 ranking."""
        machine = GCel(seed=15)
        cal = calibrate(machine, seed=15)
        res = bitonic.run(machine, 256, variant="bpram", seed=15)
        bsp = BSP(cal.params).trace_cost(res.trace)
        mpbsp = MPBSP(cal.params).trace_cost(res.trace)
        bpram = MPBPRAM(cal.params).trace_cost(res.trace)
        assert bpram < bsp < mpbsp
        assert bsp / bpram > 20


class TestExamples:
    """Every shipped example must run clean (they print; that's fine)."""

    @pytest.mark.parametrize("script", [
        "quickstart.py",
        "choosing_an_algorithm.py",
        "custom_machine.py",
        "model_validation_study.py",
    ])
    def test_example_runs(self, script, capsys):
        runpy.run_path(str(EXAMPLES / script), run_name="__main__")
        out = capsys.readouterr().out
        assert len(out) > 100  # produced a real report

    def test_quickstart_shows_the_gap(self, capsys):
        runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
        out = capsys.readouterr().out
        assert "mp-bpram" in out and "bsp" in out
