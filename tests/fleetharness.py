"""Subprocess harness for fleet tests: a real ``repro serve --processes N``.

The in-process :class:`~repro.service.server.ServiceThread` cannot
exercise fork/SO_REUSEPORT/signal behaviour, so fleet tests drive the
actual CLI in a child process, parse the supervisor's banner and
``fleet: worker i pid=...`` lines for the port and worker pids, and
assert on real process state (liveness, respawn, exit codes).
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

_SRC = str(Path(__file__).resolve().parents[1] / "src")

_BANNER_RE = re.compile(r"listening on http://[\d.]+:(\d+)")
_WORKER_RE = re.compile(r"fleet: worker (\d+) pid=(\d+)$")


class FleetProc:
    """One supervised ``repro serve`` fleet as a subprocess."""

    def __init__(self, processes: int = 2, *, args: tuple = (),
                 env: dict | None = None):
        self.processes = processes
        self.extra_args = list(args)
        self.extra_env = dict(env or {})
        self.proc: subprocess.Popen | None = None
        self.port: int | None = None
        #: worker index -> current pid (updated on respawn lines)
        self.workers: dict[int, int] = {}
        #: every line the supervisor printed, in order
        self.lines: list[str] = []
        self._lock = threading.Lock()
        self._reader: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self, timeout: float = 60.0) -> "FleetProc":
        env = dict(os.environ)
        env["PYTHONPATH"] = _SRC + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        env.update(self.extra_env)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--processes", str(self.processes), "--no-warm",
             *self.extra_args],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        self._reader = threading.Thread(target=self._read, daemon=True)
        self._reader.start()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                ready = (self.port is not None
                         and len(self.workers) >= self.processes)
            if ready:
                break
            if self.proc.poll() is not None:
                raise RuntimeError(
                    "fleet exited during boot:\n" + "\n".join(self.lines))
            time.sleep(0.02)
        else:
            raise TimeoutError(
                "fleet did not become ready:\n" + "\n".join(self.lines))
        # the supervisor names workers at fork time, before their
        # listening sockets exist — wait until a connection is accepted
        import socket

        while time.monotonic() < deadline:
            try:
                socket.create_connection(("127.0.0.1", self.port),
                                         timeout=2).close()
                return self
            except OSError:
                time.sleep(0.05)
        raise TimeoutError(
            "fleet never accepted a connection:\n" + "\n".join(self.lines))

    def _read(self) -> None:
        assert self.proc is not None and self.proc.stdout is not None
        for line in self.proc.stdout:
            line = line.rstrip("\n")
            with self._lock:
                self.lines.append(line)
                m = _BANNER_RE.search(line)
                if m:
                    self.port = int(m.group(1))
                m = _WORKER_RE.search(line)
                if m:
                    self.workers[int(m.group(1))] = int(m.group(2))

    # ------------------------------------------------------------------
    def worker_pids(self) -> dict[int, int]:
        with self._lock:
            return dict(self.workers)

    def wait_respawn(self, index: int, old_pid: int,
                     timeout: float = 30.0) -> int:
        """Block until worker ``index`` runs under a pid != ``old_pid``."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            pid = self.worker_pids().get(index)
            if pid is not None and pid != old_pid:
                return pid
            time.sleep(0.05)
        raise TimeoutError(
            f"worker {index} not respawned:\n" + "\n".join(self.lines))

    def send(self, sig: int) -> None:
        assert self.proc is not None
        self.proc.send_signal(sig)

    def wait(self, timeout: float = 30.0) -> int:
        assert self.proc is not None
        code = self.proc.wait(timeout)
        if self._reader is not None:
            self._reader.join(5.0)
        return code

    def stop(self, timeout: float = 30.0) -> int:
        """Graceful shutdown; returns the supervisor's exit code."""
        assert self.proc is not None
        if self.proc.poll() is None:
            self.send(signal.SIGTERM)
        return self.wait(timeout)

    # ------------------------------------------------------------------
    def __enter__(self) -> "FleetProc":
        return self.start()

    def __exit__(self, *exc) -> None:
        if self.proc is not None and self.proc.poll() is None:
            try:
                self.stop()
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(10.0)


def raw_request(port: int, method: str, path: str, body: bytes = b"",
                host: str = "127.0.0.1",
                timeout: float = 30.0) -> tuple[int, bytes]:
    """One fresh-connection HTTP exchange returning the raw body bytes.

    A fresh connection per call matters against a fleet: SO_REUSEPORT
    balances at accept time, so new connections spread across workers
    while a keep-alive one would pin to whichever worker accepted it.
    """
    import socket

    with socket.create_connection((host, port), timeout=timeout) as sock:
        head = (f"{method} {path} HTTP/1.1\r\nHost: fleet-test\r\n"
                f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n")
        sock.sendall(head.encode() + body)
        data = b""
        while chunk := sock.recv(65536):
            data += chunk
    if not data:
        raise ConnectionError("connection dropped before a response")
    headers, _, payload = data.partition(b"\r\n\r\n")
    return int(headers.split()[1]), payload


def metric_value(text: str, name: str, labels: str = "") -> float | None:
    """The value of one exposition line, or None when absent."""
    needle = f"{name}{labels} "
    for line in text.splitlines():
        if line.startswith(needle):
            return float(line.rsplit(" ", 1)[1])
    return None


def pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


def wait_dead(pids, timeout: float = 15.0) -> bool:
    """True once every pid in ``pids`` is gone."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not any(pid_alive(p) for p in pids):
            return True
        time.sleep(0.05)
    return False
