"""Golden optimality ranking.

``tests/golden/bounds.json`` pins the full-matrix attained-vs-optimal
report at (scale 0.3, seed 0) — ratios, bounds, measured volumes and
headroom flags, byte for byte.  Regenerate intentionally with
``PYTHONPATH=src python scripts/update_golden.py``.

Unlike the ablation golden, the full matrix here is sub-second (the
measurement path needs no calibration), so the byte-identity test stays
in tier-1 and the ``fast`` pre-commit selection.
"""

import json
from pathlib import Path

import pytest

from repro.bounds import DEFAULT_CELLS, SCHEMA, BoundsRequest, bounds

GOLDEN = Path(__file__).parents[1] / "golden" / "bounds.json"


def report_bytes(report: dict) -> bytes:
    return json.dumps(report, sort_keys=True).encode()


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN.read_text())


@pytest.mark.golden
@pytest.mark.fast
class TestGoldenRanking:
    def test_full_matrix_reproduces_golden_bytes(self, golden):
        fresh = bounds(BoundsRequest(scale=golden["scale"],
                                     seed=golden["seed"], use_cache=False))
        assert report_bytes(fresh) == report_bytes(golden["report"]), (
            "optimality ranking diverged from tests/golden/bounds.json — "
            "if the change is intentional, rerun scripts/update_golden.py")

    def test_golden_ranking_is_complete_and_sorted(self, golden):
        report = golden["report"]
        assert report["schema"] == SCHEMA
        assert {e["cell"] for e in report["ranking"]} == set(DEFAULT_CELLS)
        assert report["skipped"] == []
        ratios = [e["ratio"] for e in report["ranking"]]
        assert ratios == sorted(ratios, reverse=True)

    def test_golden_is_sound_and_consistently_flagged(self, golden):
        report = golden["report"]
        flagged = set(report["summary"]["flagged"])
        for e in report["ranking"]:
            assert e["ratio"] >= 1.0, e
            assert e["headroom"] == (e["cell"] in flagged)
            assert e["headroom"] == (e["ratio"] > report["threshold"])
