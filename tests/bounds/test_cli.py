"""``repro bounds`` and the ``cache info`` IR-store satellite."""

import json

import pytest

from repro.cli import main

pytestmark = pytest.mark.fast

SUBSET = ["--cells", "apsp/gcel", "bitonic/maspar", "--scale", "0.3"]


class TestBoundsCommand:
    def test_table_render(self, capsys):
        assert main(["bounds", *SUBSET, "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "Attained vs optimal" in out
        assert "bitonic/maspar" in out and "apsp/gcel" in out
        assert "HEADROOM" in out  # bitonic at 125x clears any default
        assert "scale=0.3" in out

    def test_json_to_stdout_matches_offline(self, capsys):
        from repro.service.oracle import bounds_offline

        assert main(["bounds", *SUBSET, "--no-cache", "--json", "-"]) == 0
        out = capsys.readouterr().out
        report = json.loads(out)
        offline = json.loads(json.dumps(bounds_offline(
            {"cells": ["apsp/gcel", "bitonic/maspar"], "scale": 0.3})))
        assert report == offline
        # acceptance: same canonical bytes as the service's reference
        assert json.dumps(report, sort_keys=True) \
            == json.dumps(offline, sort_keys=True)
        # --json - prints only JSON, no table
        assert "Attained vs optimal" not in out

    def test_json_to_file_plus_table(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        assert main(["bounds", *SUBSET, "--no-cache",
                     "--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"wrote {path}" in out
        assert "Attained vs optimal" in out
        report = json.loads(path.read_text())
        assert report["schema"] == "repro-bounds/1"
        assert {e["cell"] for e in report["ranking"]} \
            == {"apsp/gcel", "bitonic/maspar"}

    def test_threshold_changes_the_flags(self, capsys):
        assert main(["bounds", "--cells", "apsp/gcel", "--scale", "0.3",
                     "--threshold", "2", "--no-cache", "--json", "-"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["threshold"] == 2.0
        assert report["ranking"][0]["headroom"] is True

    def test_unknown_cell_exits_2(self, capsys):
        assert main(["bounds", "--cells", "bogus"]) == 2
        err = capsys.readouterr().err
        assert "unknown bound cell" in err and "apsp/gcel" in err

    def test_repeat_run_hits_the_result_cache(self, capsys):
        assert main(["bounds", "--cells", "apsp/gcel"]) == 0
        capsys.readouterr()
        assert main(["cache", "info"]) == 0
        assert "bounds:apsp/gcel" in capsys.readouterr().out


class TestCacheInfoIrStore:
    def test_info_reports_recorded_programs(self, capsys):
        # a bounds run records one step program per measured cell
        main(["bounds", "--cells", "apsp/gcel", "--no-cache"])
        capsys.readouterr()
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "1 recorded step program(s)" in out
        assert "0 cached result(s)" in out

    def test_info_json_reports_count_and_bytes(self, capsys):
        main(["bounds", "--cells", "apsp/gcel", "bitonic/maspar",
              "--no-cache"])
        capsys.readouterr()
        assert main(["cache", "info", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ir"]["count"] == 2
        assert doc["ir"]["bytes"] > 0

    def test_clear_resets_what_info_reports(self, capsys):
        main(["bounds", "--cells", "apsp/gcel", "--no-cache"])
        capsys.readouterr()
        assert main(["cache", "clear"]) == 0
        assert "1 step program(s)" in capsys.readouterr().out
        main(["cache", "info", "--json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["ir"] == {"count": 0, "bytes": 0}

    def test_info_excludes_quarantined_blobs(self, capsys):
        from repro.simulator.ir import IRStore, default_ir_root

        main(["bounds", "--cells", "apsp/gcel", "--no-cache"])
        capsys.readouterr()
        root = default_ir_root()
        blobs = [p for p in root.rglob("*.irp")]
        assert len(blobs) == 1
        blobs[0].write_bytes(b"garbage")  # corrupt the blob on disk
        store = IRStore(root)
        key = blobs[0].name[:-len(".irp")]
        assert store.get(key) is None  # read quarantines it
        assert store.disk_stats() == (0, 0)
        main(["cache", "info", "--json"])
        assert json.loads(capsys.readouterr().out)["ir"]["count"] == 0
