"""Fixtures for the bounds suite."""

import pytest

from repro.simulator.ir import IRStore, set_ir_store


@pytest.fixture(autouse=True)
def _fresh_ir_store():
    """A fresh process-global IR store per test.

    The store's in-memory side outlives the per-test ``$REPRO_CACHE_DIR``
    isolation (other suites record the very same algorithm
    configurations), so cold/warm-path assertions here would otherwise
    depend on test order.
    """
    prev = set_ir_store(IRStore())
    yield
    set_ir_store(prev)
