"""Measurement: IR warm path, live fallback parity, and the acceptance
invariants (soundness on every default cell; a warm matrix never
re-simulates)."""

import json

import pytest

from repro.bounds import (
    BOUND_CELLS,
    BoundsRequest,
    DEFAULT_CELLS,
    bounds,
    cell_ir_key,
    measure_cell,
    trace_comm_volume,
)
from repro.bounds.cells import cell_run
from repro.experiments.common import machine_for
from repro.simulator.ir import IRStore, ir_store_scope
from repro.simulator.vector import engine_scope


def report_bytes(report: dict) -> bytes:
    return json.dumps(report, sort_keys=True).encode()


@pytest.mark.fast
class TestSoundness:
    def test_every_default_cell_attains_at_least_the_bound(self):
        """Acceptance: measured volume never below the analytic bound,
        on every (algorithm, machine, P) cell of the default matrix."""
        report = bounds(BoundsRequest(use_cache=False))
        assert [e["cell"] for e in report["ranking"]] != []
        assert {e["cell"] for e in report["ranking"]} == set(DEFAULT_CELLS)
        for e in report["ranking"]:
            assert e["ratio"] >= 1.0, e
            assert e["measured_words"] >= e["bound_words"], e
            # traffic >= one-sided volumes by construction
            assert e["measured_total_words"] > 0
            assert e["headroom"] == (e["ratio"] > report["threshold"])

    def test_ranking_is_sorted_by_descending_ratio(self):
        report = bounds(BoundsRequest(use_cache=False))
        ratios = [e["ratio"] for e in report["ranking"]]
        assert ratios == sorted(ratios, reverse=True)


@pytest.mark.fast
class TestWarmPath:
    def test_warm_matrix_never_runs_a_simulation(self, monkeypatch):
        """Acceptance: with the IR store warm, `repro bounds` over the
        default matrix completes without re-running any simulation."""
        import repro.bounds.measure as measure_mod

        with ir_store_scope(IRStore(disk=False)):
            cold = bounds(BoundsRequest(use_cache=False))

            calls = []

            def spy(cell, machine, n, seed):
                calls.append(cell.name)
                raise AssertionError(
                    f"live simulation for {cell.name} on a warm IR store")

            monkeypatch.setattr(measure_mod, "_live_volume", spy)
            warm = bounds(BoundsRequest(use_cache=False))
        assert calls == []
        assert report_bytes(warm) == report_bytes(cold)

    def test_cold_measurement_records_under_the_cells_ir_key(self):
        """The key the measurement probes is the key run() records
        under — pins the deliberate key_params duplication in
        bounds/cells.py against run()-signature drift, per cell."""
        for name in DEFAULT_CELLS:
            cell = BOUND_CELLS[name]
            n = cell.size(0.3)
            machine = machine_for(cell.machine, seed=0)
            with ir_store_scope(IRStore(disk=False)) as store:
                with engine_scope("ir"):
                    cell_run(cell, machine, n, 0)
                assert cell_ir_key(cell, machine, n, 0) in store.memory, \
                    f"key mismatch for {name}"


@pytest.mark.fast
class TestVolumeParity:
    @pytest.mark.parametrize("name", ["apsp/gcel", "bitonic/maspar",
                                      "matmul/cm5"])
    def test_program_extraction_equals_live_trace(self, name):
        """The warm (structure-only) numbers are the live-trace numbers:
        record under the IR engine, then compare the store extraction
        against a vector-engine trace of the same configuration."""
        cell = BOUND_CELLS[name]
        n = cell.size(0.3)
        machine = machine_for(cell.machine, seed=0)
        with ir_store_scope(IRStore(disk=False)):
            with engine_scope("vector"):
                live = trace_comm_volume(
                    cell_run(cell, machine, n, 0).trace, machine.nominal.w)
            with engine_scope("ir"):
                warm = measure_cell(cell, scale=0.3, seed=0)
        assert warm["volume"] == live
        assert warm["n"] == n


@pytest.mark.fast
class TestCaching:
    def test_fresh_equals_cached_bytes(self, tmp_path):
        req = BoundsRequest(cells=("apsp/gcel", "bitonic/maspar"),
                            cache_dir=str(tmp_path / "cache"))
        fresh = bounds(req)
        cached = bounds(req)
        assert report_bytes(fresh) == report_bytes(cached)

    def test_force_recomputes_to_identical_bytes(self, tmp_path):
        req = BoundsRequest(cells=("apsp/gcel",),
                            cache_dir=str(tmp_path / "cache"))
        first = bounds(req)
        import dataclasses
        forced = bounds(dataclasses.replace(req, force=True))
        assert report_bytes(first) == report_bytes(forced)


@pytest.mark.fast
class TestScoreboardColumn:
    def test_scoreboard_optimality_matches_the_report(self):
        from repro.bounds import SCOREBOARD_BOUND_CELLS, \
            scoreboard_optimality

        report = bounds(BoundsRequest(use_cache=False))
        by_cell = {e["cell"]: e for e in report["ranking"]}
        column = scoreboard_optimality(scale=0.3, seed=0)
        assert set(column) == set(SCOREBOARD_BOUND_CELLS)
        for workload, entry in column.items():
            ref = by_cell[SCOREBOARD_BOUND_CELLS[workload]]
            assert entry["ratio"] == ref["ratio"]
            assert entry["bound_words"] == ref["bound_words"]
            assert entry["measured_words"] == ref["measured_words"]

    def test_render_scoreboard_shows_the_column(self):
        from repro.validation.scoreboard import Cell, Scoreboard, \
            render_scoreboard

        board = Scoreboard(cells=[Cell("apsp", "gcel", "bsp", 100.0, 120.0)],
                           optimality={"apsp": {"cell": "apsp/gcel",
                                                "family": "matmul-family",
                                                "n": 32,
                                                "bound_words": 160.0,
                                                "measured_words": 528.0,
                                                "ratio": 3.3}})
        text = render_scoreboard(board)
        assert "att/opt" in text
        assert "3.3x" in text

    def test_build_scoreboard_can_skip_the_column(self):
        from repro.validation.scoreboard import build_scoreboard

        board = build_scoreboard(scale=0.3, seed=0, optimality=False)
        assert board.optimality == {}


@pytest.mark.slow
class TestParallel:
    def test_parallel_equals_serial_bytes(self):
        serial = bounds(BoundsRequest(use_cache=False))
        parallel = bounds(BoundsRequest(jobs=2, use_cache=False))
        assert report_bytes(serial) == report_bytes(parallel)
