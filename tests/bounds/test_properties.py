"""Hypothesis battery over real measurements (ISSUE 9 satellites).

Soundness (measured >= bound) on sampled cells/scales/seeds, ratio
invariance across seeds for the deterministic-structure algorithms,
and monotone growth of measured volume in n at fixed P.  The analytic
halves (bound monotonicity, size schedules) live in test_analytic.py;
these run real simulations, so examples are bounded and the heavier
classes are marked slow.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bounds import BOUND_CELLS, DEFAULT_CELLS, cell_bound, \
    measure_cell

SCALES = (0.3, 0.65, 1.0)

#: every default cell has deterministic communication *structure* at
#: fixed n: the dense algorithms by construction, bitonic because the
#: network is data-oblivious, samplesort because its oversampled
#: splitters balance uniform keys identically at these sizes, and radix
#: because the §4.3.1 padded grid route fixes the routed volume
#: regardless of the drawn keys.
DET_SETTINGS = settings(max_examples=12, deadline=None,
                        suppress_health_check=[
                            HealthCheck.function_scoped_fixture])


def ratio_of(cell, scale, seed):
    doc = measure_cell(cell, scale=scale, seed=seed)
    bound = cell_bound(cell, doc["n"], doc["volume"]["P"])
    return doc["volume"]["max_traffic_words"] / bound["bound_words"]


@pytest.mark.slow
class TestSoundnessProperty:
    @DET_SETTINGS
    @given(name=st.sampled_from(DEFAULT_CELLS),
           scale=st.sampled_from(SCALES),
           seed=st.integers(min_value=0, max_value=2))
    def test_measured_never_below_bound(self, name, scale, seed):
        cell = BOUND_CELLS[name]
        doc = measure_cell(cell, scale=scale, seed=seed)
        bound = cell_bound(cell, doc["n"], doc["volume"]["P"])
        assert doc["volume"]["max_traffic_words"] \
            >= bound["bound_words"], (name, scale, seed)


@pytest.mark.slow
class TestSeedInvariance:
    @DET_SETTINGS
    @given(name=st.sampled_from(DEFAULT_CELLS),
           scale=st.sampled_from(SCALES),
           seeds=st.tuples(st.integers(min_value=0, max_value=3),
                           st.integers(min_value=0, max_value=3)))
    def test_ratio_is_seed_invariant(self, name, scale, seeds):
        cell = BOUND_CELLS[name]
        a, b = seeds
        assert ratio_of(cell, scale, a) == ratio_of(cell, scale, b), \
            (name, scale, seeds)


@pytest.mark.slow
class TestMonotoneGrowth:
    @pytest.mark.parametrize("name", DEFAULT_CELLS)
    def test_volume_and_bound_grow_with_n(self, name):
        """Walking the scale ladder grows n, and with it both the
        measured volume and the analytic bound, at fixed P."""
        cell = BOUND_CELLS[name]
        prev_n = prev_vol = prev_bound = -1.0
        for scale in SCALES:
            doc = measure_cell(cell, scale=scale, seed=0)
            vol = doc["volume"]["max_traffic_words"]
            bound = cell_bound(cell, doc["n"], doc["volume"]["P"])
            if doc["n"] == prev_n:
                assert vol == prev_vol
                continue
            assert doc["n"] > prev_n
            assert vol > prev_vol, (name, scale)
            assert bound["bound_words"] >= prev_bound, (name, scale)
            prev_n, prev_vol = doc["n"], vol
            prev_bound = bound["bound_words"]
