"""Request validation: every malformed ``POST /bounds`` body is a 422's
``BoundsError`` here, never a traceback deeper in the stack."""

import pytest

from repro.bounds import BoundsRequest, DEFAULT_THRESHOLD, bound_run_id, \
    bounds
from repro.core.errors import BoundsError

pytestmark = pytest.mark.fast


class TestFromJson:
    def test_defaults(self):
        req = BoundsRequest.from_json({})
        assert req == BoundsRequest()
        assert req.cells is None
        assert (req.scale, req.seed) == (0.3, 0)
        assert req.threshold == DEFAULT_THRESHOLD

    def test_explicit_selection(self):
        req = BoundsRequest.from_json({
            "cells": ["apsp/gcel", "matmul/cm5"], "scale": 0.5,
            "seed": 3, "threshold": 4})
        assert req.cells == ("apsp/gcel", "matmul/cm5")
        assert (req.scale, req.seed, req.threshold) == (0.5, 3, 4.0)

    @pytest.mark.parametrize("doc", [[], "x", 7, None])
    def test_non_object_body(self, doc):
        with pytest.raises(BoundsError, match="JSON object"):
            BoundsRequest.from_json(doc)

    @pytest.mark.parametrize("bad", [[], "apsp/gcel", [3], ["a", 3], {}])
    def test_malformed_cell_lists(self, bad):
        with pytest.raises(BoundsError, match="non-empty list"):
            BoundsRequest.from_json({"cells": bad})

    def test_unknown_cells_fail_at_validation_time(self):
        with pytest.raises(BoundsError, match="unknown bound cell"):
            BoundsRequest.from_json({"cells": ["bogus"]})

    @pytest.mark.parametrize("scale", [0, 0.0, -0.3, 1.5, "0.3", True,
                                       None])
    def test_bad_scale(self, scale):
        with pytest.raises(BoundsError, match="scale"):
            BoundsRequest.from_json({"scale": scale})

    @pytest.mark.parametrize("seed", [-1, 2 ** 31, 0.5, "0", True, None])
    def test_bad_seed(self, seed):
        with pytest.raises(BoundsError, match="seed"):
            BoundsRequest.from_json({"seed": seed})

    @pytest.mark.parametrize("threshold", [0, -2, float("inf"),
                                           float("nan"), "8", True, None])
    def test_bad_threshold(self, threshold):
        with pytest.raises(BoundsError, match="threshold"):
            BoundsRequest.from_json({"threshold": threshold})

    @pytest.mark.parametrize("engine", ["turbo", 3, None, ["ir"]])
    def test_bad_engine(self, engine):
        with pytest.raises(BoundsError, match="engine"):
            BoundsRequest.from_json({"engine": engine})


class TestKey:
    def test_engine_accepted_but_not_in_key(self):
        a = BoundsRequest.from_json({"engine": "ir"})
        b = BoundsRequest.from_json({"engine": "generator"})
        assert a.engine == "ir" and b.engine == "generator"
        assert a.key == b.key

    def test_cell_order_is_canonicalised(self):
        a = BoundsRequest(cells=("apsp/gcel", "matmul/cm5"))
        b = BoundsRequest(cells=("matmul/cm5", "apsp/gcel",
                                 "matmul/cm5"))
        assert a.key == b.key

    def test_threshold_is_part_of_the_key(self):
        # the threshold changes the report's headroom flags, so two
        # requests differing only in it must not share an LRU entry
        a = BoundsRequest(threshold=8.0)
        b = BoundsRequest(threshold=2.0)
        assert a.key != b.key

    def test_run_id_depends_on_everything_named(self):
        base = dict(scale=0.3, seed=0, fingerprint="f")
        rid = bound_run_id("apsp/gcel", **base)
        assert rid != bound_run_id("lu/gcel", **base)
        assert rid != bound_run_id("apsp/gcel", scale=0.5, seed=0,
                                   fingerprint="f")
        assert rid != bound_run_id("apsp/gcel", scale=0.3, seed=1,
                                   fingerprint="f")
        assert rid != bound_run_id("apsp/gcel", scale=0.3, seed=0,
                                   fingerprint="g")
        assert rid == bound_run_id("apsp/gcel", **base)


class TestBoundsEntry:
    def test_unknown_cell_raises_before_any_run(self):
        with pytest.raises(BoundsError, match="unknown bound cell"):
            bounds(BoundsRequest(cells=("bogus",), use_cache=False))

    def test_bad_jobs_rejected(self):
        with pytest.raises(BoundsError, match="jobs"):
            bounds(BoundsRequest(cells=("apsp/gcel",), jobs=0,
                                 use_cache=False))

    def test_bad_engine_rejected(self):
        with pytest.raises(BoundsError, match="engine"):
            bounds(BoundsRequest(cells=("apsp/gcel",), engine="turbo",
                                 use_cache=False))
